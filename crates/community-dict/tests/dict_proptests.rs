//! Property tests for dictionary classification invariants.

use bgp_model::community::{LargeCommunity, StandardCommunity};
use community_dict::classify::{classify_large, large_fn};
use community_dict::prelude::*;
use proptest::prelude::*;

fn arb_ixp() -> impl Strategy<Value = IxpId> {
    proptest::sample::select(IxpId::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The indexed lookup must agree with an exhaustive linear scan for
    /// every community value, on every scheme.
    #[test]
    fn indexed_matches_linear(ixp in arb_ixp(), hi in any::<u16>(), lo in any::<u16>()) {
        let dict = schemes::dictionary(ixp);
        let c = StandardCommunity::from_parts(hi, lo);
        prop_assert_eq!(dict.classify(c), dict.classify_linear(c));
    }

    /// Classification is a pure function of the dictionary: rebuilding the
    /// dictionary from its own entries changes nothing.
    #[test]
    fn rebuild_is_stable(ixp in arb_ixp(), hi in any::<u16>(), lo in any::<u16>()) {
        let dict = schemes::dictionary(ixp);
        let rebuilt = Dictionary::new(ixp, dict.entries().to_vec());
        prop_assert_eq!(rebuilt.len(), dict.len());
        let c = StandardCommunity::from_parts(hi, lo);
        prop_assert_eq!(rebuilt.classify(c), dict.classify(c));
    }

    /// The union of the two sources classifies at least everything the
    /// RS-config alone classifies (monotonicity of union).
    #[test]
    fn union_is_monotone(ixp in arb_ixp(), hi in any::<u16>(), lo in any::<u16>()) {
        let full = schemes::dictionary(ixp);
        let rs_only = full.restricted_to(|s| s.rs_config);
        let c = StandardCommunity::from_parts(hi, lo);
        if rs_only.classify(c).is_ixp_defined() {
            prop_assert!(full.classify(c).is_ixp_defined());
        }
    }

    /// Every avoid/only community constructed by the scheme helpers must
    /// classify to exactly the action it was constructed for.
    #[test]
    fn constructed_actions_classify_back(ixp in arb_ixp(), target in 1u32..64000) {
        let dict = schemes::dictionary(ixp);
        let asn = bgp_model::asn::Asn(target);
        let c = schemes::avoid_community(ixp, asn);
        let a = dict.classify(c).action().expect("avoid classifies");
        // exact "all peers" values shadow a handful of target ASNs (e.g.
        // 0:6695 means "all" at DE-CIX) — that is the documented scheme
        if c != schemes::avoid_all_community(ixp) {
            prop_assert_eq!(a, Action::avoid(asn));
        }
        let c = schemes::only_community(ixp, asn);
        if c != schemes::announce_all_community(ixp)
            && dict.classify(c).action().is_some()
        {
            let a = dict.classify(c).action().unwrap();
            // informational exacts at 64000+ shadow the only-template there
            if target < 64000 {
                prop_assert_eq!(a, Action::only(asn));
            }
        }
    }

    /// Large-community classification only ever fires for the RS ASN as
    /// global administrator.
    #[test]
    fn large_requires_rs_admin(ixp in arb_ixp(), g in any::<u32>(), arg in any::<u32>()) {
        let c = LargeCommunity::new(g, large_fn::AVOID, arg);
        let cl = classify_large(ixp, c);
        if g != ixp.rs_asn().value() {
            prop_assert_eq!(cl, Classification::Unknown);
        } else {
            prop_assert!(cl.is_ixp_defined());
        }
    }
}
