//! Concrete community schemes for the eight IXPs, modeled on their public
//! documentation, with dictionary sizes matching the paper's §3 counts:
//! 649 (IX.br-SP), 774 (DE-CIX, shared by Frankfurt/Madrid/New York),
//! 58 (LINX), 37 (AMS-IX), 50 (BCIX) and 67 (Netnod) — 3,183 total when
//! the DE-CIX scheme is counted once per DE-CIX IXP, as the paper does.
//!
//! Scheme shapes follow the real ones: DE-CIX uses `0:<peer-as>` /
//! `6695:<peer-as>` with `0:6695` / `6695:6695` for "all" and RFC 7999
//! blackholing; IX.br uses a 65000-series block; AMS-IX only supports
//! prepend-to-all via exact values (the paper's §5.3 note that
//! fine-grained prepending needs extended communities there); LINX gained
//! prepend communities in June 2021.

use bgp_model::asn::Asn;
use bgp_model::community::{well_known, StandardCommunity};

use crate::action::{Action, ActionKind, Target};
use crate::dictionary::Dictionary;
use crate::entry::{DictionaryEntry, SourceSet};
use crate::ixp::IxpId;
use crate::known;
use crate::pattern::Pattern;
use crate::semantics::{InfoKind, Semantics};

const C: fn(u16, u16) -> StandardCommunity = StandardCommunity::from_parts;

/// Expected dictionary sizes from the paper (§3).
pub const fn expected_len(ixp: IxpId) -> usize {
    match ixp {
        IxpId::IxBrSp => 649,
        IxpId::DeCixFra | IxpId::DeCixMad | IxpId::DeCixNyc => 774,
        IxpId::Linx => 58,
        IxpId::AmsIx => 37,
        IxpId::Bcix => 50,
        IxpId::Netnod => 67,
    }
}

/// Whether the IXP's dictionary defines a blackhole community during the
/// paper's collection window (Jul–Oct 2021): DE-CIX prominently, AMS-IX
/// via the RFC 7999 well-known value; IX.br, LINX, BCIX and Netnod not.
pub const fn supports_blackhole(ixp: IxpId) -> bool {
    matches!(
        ixp,
        IxpId::DeCixFra | IxpId::DeCixMad | IxpId::DeCixNyc | IxpId::AmsIx
    )
}

/// Whether the scheme defines per-peer prepend communities (standard).
/// AMS-IX only prepends to all peers with standard communities; BCIX has
/// no prepend communities at all in our model.
pub const fn supports_peer_prepend(ixp: IxpId) -> bool {
    !matches!(ixp, IxpId::AmsIx | IxpId::Bcix)
}

fn action_entry(pattern: Pattern, action: Action, desc: String) -> DictionaryEntry {
    DictionaryEntry::new(pattern, Semantics::Action(action), desc)
}

fn info_entry(c: StandardCommunity, kind: InfoKind, desc: String) -> DictionaryEntry {
    DictionaryEntry::new(Pattern::Exact(c), Semantics::Informational(kind), desc)
}

/// The high values used for the action templates of one scheme.
#[derive(Debug, Clone, Copy)]
pub struct SchemeHighs {
    /// `high:<peer-as>` → do not announce to the peer.
    pub avoid: u16,
    /// `high:<peer-as>` → announce only to the peer.
    pub only: u16,
    /// `high:<peer-as>` → prepend 1/2/3×, when per-peer prepend exists.
    pub prepend: Option<[u16; 3]>,
}

/// The template high values for each scheme, used by the tagging model to
/// *construct* communities the dictionary will then classify.
pub const fn scheme_highs(ixp: IxpId) -> SchemeHighs {
    match ixp {
        IxpId::IxBrSp => SchemeHighs {
            avoid: 65000,
            only: 65001,
            prepend: Some([65002, 65003, 65004]),
        },
        IxpId::DeCixFra | IxpId::DeCixMad | IxpId::DeCixNyc => SchemeHighs {
            avoid: 0,
            only: 6695,
            prepend: Some([65501, 65502, 65503]),
        },
        IxpId::Linx => SchemeHighs {
            avoid: 0,
            only: 8714,
            prepend: Some([65511, 65512, 65513]),
        },
        IxpId::AmsIx => SchemeHighs {
            avoid: 0,
            only: 6777,
            prepend: None,
        },
        IxpId::Bcix => SchemeHighs {
            avoid: 0,
            only: 16374,
            prepend: None,
        },
        IxpId::Netnod => SchemeHighs {
            avoid: 0,
            only: 8674,
            prepend: Some([65521, 65522, 65523]),
        },
    }
}

/// The exact community meaning "do not announce to any peer".
pub fn avoid_all_community(ixp: IxpId) -> StandardCommunity {
    let rs = ixp.rs_asn().value() as u16;
    match ixp {
        IxpId::IxBrSp => C(65000, 0),
        _ => C(0, rs),
    }
}

/// The exact community meaning "announce to all peers".
pub fn announce_all_community(ixp: IxpId) -> StandardCommunity {
    let rs = ixp.rs_asn().value() as u16;
    match ixp {
        IxpId::IxBrSp => C(65001, 0),
        _ => C(rs, rs),
    }
}

/// The community an AS tags to avoid a specific peer.
pub fn avoid_community(ixp: IxpId, target: Asn) -> StandardCommunity {
    C(scheme_highs(ixp).avoid, target.value() as u16)
}

/// The community an AS tags to export only to a specific peer.
pub fn only_community(ixp: IxpId, target: Asn) -> StandardCommunity {
    C(scheme_highs(ixp).only, target.value() as u16)
}

/// The community requesting an `n`× prepend towards `target`, if the
/// scheme supports per-peer prepending.
pub fn prepend_community(ixp: IxpId, target: Asn, n: u8) -> Option<StandardCommunity> {
    let highs = scheme_highs(ixp).prepend?;
    let idx = (n.clamp(1, 3) - 1) as usize;
    Some(C(highs[idx], target.value() as u16))
}

/// The prepend-to-all community. Only AMS-IX defines one with standard
/// communities (§5.3: fine-grained prepending there needs extended
/// communities, which are out of the standard-community scope).
pub fn prepend_all_community(ixp: IxpId, n: u8) -> Option<StandardCommunity> {
    if ixp == IxpId::AmsIx {
        let rs = ixp.rs_asn().value() as u16;
        Some(C(rs, 65000 + n.clamp(1, 3) as u16))
    } else {
        None
    }
}

/// Number of informational exact entries per scheme, chosen so the total
/// dictionary sizes match the paper.
const fn info_count(ixp: IxpId) -> u16 {
    match ixp {
        IxpId::IxBrSp => 142,
        IxpId::DeCixFra | IxpId::DeCixMad | IxpId::DeCixNyc => 166,
        IxpId::Linx => 51,
        IxpId::AmsIx => 29,
        IxpId::Bcix => 46,
        IxpId::Netnod => 60,
    }
}

/// Number of enumerated per-AS documentation examples (each contributing
/// an avoid and an announce-only entry).
const fn example_count(ixp: IxpId) -> usize {
    match ixp {
        IxpId::IxBrSp => 250,
        IxpId::DeCixFra | IxpId::DeCixMad | IxpId::DeCixNyc => 300,
        _ => 0,
    }
}

/// Number of informational slots the scheme defines (public so the RS
/// tagging logic can pick valid codes).
pub const fn info_slots(ixp: IxpId) -> u16 {
    info_count(ixp)
}

/// The `slot`-th informational community of the scheme (wraps around).
pub fn info_community(ixp: IxpId, slot: u16) -> StandardCommunity {
    let rs16 = ixp.rs_asn().value() as u16;
    C(rs16, 64000 + slot % info_count(ixp))
}

/// Build the full, merged entry list for one IXP, with per-entry
/// provenance assigned (a deterministic ~14% of entries are website-only
/// — the documentation gap the paper discovered — and ~9% RS-config-only).
pub fn scheme_entries(ixp: IxpId) -> Vec<DictionaryEntry> {
    let highs = scheme_highs(ixp);
    let rs_name = ixp.short_name();
    let mut entries: Vec<DictionaryEntry> = Vec::new();

    // --- action templates ---
    entries.push(action_entry(
        Pattern::PeerAsnLow { high: highs.avoid },
        Action::avoid(Asn(0)),
        format!(
            "{rs_name}: {}:<peer-as> = do not announce to <peer-as>",
            highs.avoid
        ),
    ));
    entries.push(action_entry(
        Pattern::PeerAsnLow { high: highs.only },
        Action::only(Asn(0)),
        format!(
            "{rs_name}: {}:<peer-as> = announce only to <peer-as>",
            highs.only
        ),
    ));
    if let Some(prepend_highs) = highs.prepend {
        for (i, high) in prepend_highs.iter().enumerate() {
            let n = (i + 1) as u8;
            entries.push(action_entry(
                Pattern::PeerAsnLow { high: *high },
                Action::new(ActionKind::PrependTo(n), Target::Peer(Asn(0))),
                format!("{rs_name}: {high}:<peer-as> = prepend {n}x to <peer-as>"),
            ));
        }
    }

    // --- exact action values ---
    entries.push(action_entry(
        Pattern::Exact(avoid_all_community(ixp)),
        Action::new(ActionKind::DoNotAnnounceTo, Target::AllPeers),
        format!(
            "{rs_name}: {} = do not announce to any peer",
            avoid_all_community(ixp)
        ),
    ));
    entries.push(action_entry(
        Pattern::Exact(announce_all_community(ixp)),
        Action::new(ActionKind::AnnounceOnlyTo, Target::AllPeers),
        format!(
            "{rs_name}: {} = announce to all peers",
            announce_all_community(ixp)
        ),
    ));
    if ixp == IxpId::AmsIx {
        for n in 1u8..=3 {
            let Some(c) = prepend_all_community(ixp, n) else {
                continue;
            };
            entries.push(action_entry(
                Pattern::Exact(c),
                Action::new(ActionKind::PrependTo(n), Target::AllPeers),
                format!("{rs_name}: {c} = prepend {n}x to all peers"),
            ));
        }
    }
    if supports_blackhole(ixp) {
        entries.push(action_entry(
            Pattern::Exact(well_known::BLACKHOLE),
            Action::blackhole(),
            format!("{rs_name}: 65535:666 = blackhole (RFC 7999)"),
        ));
    }

    // --- informational exact values added by the RS ---
    // Informational lows live at 64000+, safely above every known ASN and
    // the synthetic-fill ceiling, so they never collide with the
    // enumerated `<rs-as>:<target-as>` announce-only example entries.
    let rs16 = ixp.rs_asn().value() as u16;
    let info_base = 64000u16;
    for i in 0..info_count(ixp) {
        let c = C(rs16, info_base + i);
        let kind = match i % 3 {
            0 => InfoKind::LearnedAt(i / 3),
            1 => InfoKind::OriginClass(i / 3),
            _ => InfoKind::RsNote(i / 3),
        };
        entries.push(info_entry(c, kind, format!("{rs_name}: {c} = {kind}")));
    }

    // --- enumerated per-AS documentation examples (large dictionaries) ---
    let n_examples = example_count(ixp);
    if n_examples > 0 {
        let mut targets: Vec<Asn> = known::KNOWN.iter().map(|k| k.asn).collect();
        targets.truncate(n_examples);
        if targets.len() < n_examples {
            let fill = known::synthetic_fill(n_examples - targets.len(), &targets);
            targets.extend(fill);
        }
        for asn in targets {
            entries.push(action_entry(
                Pattern::Exact(avoid_community(ixp, asn)),
                Action::avoid(asn),
                format!("{rs_name}: do not announce to {}", known::name_of(asn)),
            ));
            entries.push(action_entry(
                Pattern::Exact(only_community(ixp, asn)),
                Action::only(asn),
                format!("{rs_name}: announce only to {}", known::name_of(asn)),
            ));
        }
    }

    // --- provenance: deterministic gaps between the two sources (§3) ---
    let n = entries.len();
    for (i, e) in entries.iter_mut().enumerate() {
        e.sources = if i % 7 == 3 {
            SourceSet::WEBSITE_ONLY
        } else if i % 11 == 5 {
            SourceSet::RS_ONLY
        } else {
            SourceSet::BOTH
        };
    }
    debug_assert_eq!(n, entries.len());
    entries
}

/// The entries as they appear in the RS configuration file (LG API source).
pub fn rs_config_entries(ixp: IxpId) -> Vec<DictionaryEntry> {
    scheme_entries(ixp)
        .into_iter()
        .filter(|e| e.sources.rs_config)
        .map(|e| e.with_sources(SourceSet::RS_ONLY))
        .collect()
}

/// The entries as published in the IXP website documentation.
pub fn website_entries(ixp: IxpId) -> Vec<DictionaryEntry> {
    scheme_entries(ixp)
        .into_iter()
        .filter(|e| e.sources.website)
        .map(|e| e.with_sources(SourceSet::WEBSITE_ONLY))
        .collect()
}

/// The full dictionary for one IXP: the union of the two sources, exactly
/// as the paper constructs it.
pub fn dictionary(ixp: IxpId) -> Dictionary {
    Dictionary::union(ixp, rs_config_entries(ixp), website_entries(ixp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::Classification;

    #[test]
    fn dictionary_sizes_match_paper() {
        for ixp in IxpId::ALL {
            let d = dictionary(ixp);
            assert_eq!(d.len(), expected_len(ixp), "{ixp}: got {} entries", d.len());
        }
    }

    #[test]
    fn grand_total_is_3183() {
        let total: usize = IxpId::ALL.iter().map(|i| expected_len(*i)).sum();
        assert_eq!(total, 3183);
    }

    #[test]
    fn union_recovers_full_scheme() {
        for ixp in [IxpId::DeCixFra, IxpId::Linx] {
            let rs = rs_config_entries(ixp);
            let web = website_entries(ixp);
            assert!(
                rs.len() < expected_len(ixp),
                "{ixp} rs-config must have gaps"
            );
            assert!(
                web.len() < expected_len(ixp),
                "{ixp} website must have gaps"
            );
            let d = Dictionary::union(ixp, rs, web);
            assert_eq!(d.len(), expected_len(ixp));
        }
    }

    #[test]
    fn avoid_and_only_classify_correctly() {
        for ixp in IxpId::ALL {
            let d = dictionary(ixp);
            let he = Asn(6939);
            let c = avoid_community(ixp, he);
            assert_eq!(
                d.classify(c).action().unwrap(),
                Action::avoid(he),
                "{ixp}: {c}"
            );
            let c = only_community(ixp, he);
            assert_eq!(d.classify(c).action().unwrap(), Action::only(he));
        }
    }

    #[test]
    fn all_peer_exacts_beat_templates() {
        for ixp in IxpId::ALL {
            let d = dictionary(ixp);
            let avoid_all = d.classify(avoid_all_community(ixp)).action().unwrap();
            assert_eq!(avoid_all.target, Target::AllPeers, "{ixp}");
            assert_eq!(avoid_all.kind, ActionKind::DoNotAnnounceTo);
            let ann_all = d.classify(announce_all_community(ixp)).action().unwrap();
            assert_eq!(ann_all.target, Target::AllPeers, "{ixp}");
            assert_eq!(ann_all.kind, ActionKind::AnnounceOnlyTo);
        }
    }

    #[test]
    fn blackhole_support_matches_collection_window() {
        for ixp in IxpId::ALL {
            let d = dictionary(ixp);
            let got = d.classify(well_known::BLACKHOLE);
            if supports_blackhole(ixp) {
                assert_eq!(
                    got.action().unwrap().kind,
                    ActionKind::Blackhole,
                    "{ixp} should define blackhole"
                );
            } else {
                assert_eq!(
                    got,
                    Classification::Unknown,
                    "{ixp} should not define blackhole"
                );
            }
        }
    }

    #[test]
    fn prepend_communities_where_supported() {
        for ixp in IxpId::ALL {
            let d = dictionary(ixp);
            match prepend_community(ixp, Asn(15169), 2) {
                Some(c) => {
                    assert!(supports_peer_prepend(ixp));
                    let a = d.classify(c).action().unwrap();
                    assert_eq!(a.kind, ActionKind::PrependTo(2), "{ixp}");
                    assert_eq!(a.target, Target::Peer(Asn(15169)));
                }
                None => assert!(!supports_peer_prepend(ixp), "{ixp}"),
            }
        }
        // AMS-IX prepend-to-all via exacts
        let d = dictionary(IxpId::AmsIx);
        let c = prepend_all_community(IxpId::AmsIx, 3).unwrap();
        let a = d.classify(c).action().unwrap();
        assert_eq!(a.kind, ActionKind::PrependTo(3));
        assert_eq!(a.target, Target::AllPeers);
    }

    #[test]
    fn informational_entries_classify() {
        for ixp in IxpId::ALL {
            let d = dictionary(ixp);
            let rs16 = ixp.rs_asn().value() as u16;
            let c = C(rs16, 64000);
            match d.classify(c) {
                Classification::IxpDefined(Semantics::Informational(_)) => {}
                got => panic!("{ixp}: {c} classified as {got:?}"),
            }
        }
    }

    #[test]
    fn foreign_communities_unknown() {
        let d = dictionary(IxpId::Linx);
        // an operator-private community of some transit provider
        assert_eq!(d.classify(C(3356, 70)), Classification::Unknown);
        // another IXP's informational value
        assert_eq!(d.classify(C(26162, 1000)), Classification::Unknown);
    }

    #[test]
    fn decix_family_schemes_identical() {
        let fra = dictionary(IxpId::DeCixFra);
        let mad = dictionary(IxpId::DeCixMad);
        assert_eq!(fra.len(), mad.len());
        for (a, b) in fra.entries().iter().zip(mad.entries()) {
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.semantics, b.semantics);
        }
    }

    #[test]
    fn rs_config_restriction_loses_coverage() {
        // the §3 discovery: classifying with the RS config alone misses
        // website-only entries
        let ixp = IxpId::DeCixFra;
        let full = dictionary(ixp);
        let rs_only = full.restricted_to(|s| s.rs_config);
        assert!(rs_only.len() < full.len());
        let missing = full
            .entries()
            .iter()
            .find(|e| e.sources == SourceSet::WEBSITE_ONLY)
            .expect("some website-only entry");
        if let Pattern::Exact(c) = missing.pattern {
            assert!(full.classify(c).is_ixp_defined());
            assert_eq!(rs_only.classify(c), Classification::Unknown);
        }
    }
}
