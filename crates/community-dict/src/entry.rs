//! Dictionary entries and their provenance.
//!
//! The paper builds each IXP's dictionary as the *union* of two sources
//! (§3): the RS configuration fetched over the LG API, and the community
//! documentation published on the IXP website — because the RS list turned
//! out to be incomplete. Every entry records which source(s) listed it.

use serde::{Deserialize, Serialize};

use crate::pattern::Pattern;
use crate::semantics::Semantics;

/// Where an entry was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SourceSet {
    /// Listed in the RS configuration file (LG API).
    pub rs_config: bool,
    /// Listed in the IXP website documentation.
    pub website: bool,
}

impl SourceSet {
    /// Present in both sources.
    pub const BOTH: SourceSet = SourceSet {
        rs_config: true,
        website: true,
    };
    /// RS configuration only.
    pub const RS_ONLY: SourceSet = SourceSet {
        rs_config: true,
        website: false,
    };
    /// Website documentation only (the gap the paper discovered).
    pub const WEBSITE_ONLY: SourceSet = SourceSet {
        rs_config: false,
        website: true,
    };

    /// Merge provenance from another sighting of the same entry.
    pub fn merge(self, other: SourceSet) -> SourceSet {
        SourceSet {
            rs_config: self.rs_config || other.rs_config,
            website: self.website || other.website,
        }
    }
}

/// One dictionary entry: a community pattern, its meaning, a
/// human-readable description, and provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DictionaryEntry {
    /// The community value(s) this entry covers.
    pub pattern: Pattern,
    /// What a match means. For patterns whose low bits encode the target
    /// AS, the stored semantics uses a placeholder target that
    /// [`Pattern::resolve`](crate::pattern::Pattern) replaces at match time.
    pub semantics: Semantics,
    /// Documentation string as it would appear in the IXP docs.
    pub description: String,
    /// Which source(s) listed this entry.
    pub sources: SourceSet,
}

impl DictionaryEntry {
    /// Construct an entry present in both sources.
    pub fn new(pattern: Pattern, semantics: Semantics, description: impl Into<String>) -> Self {
        DictionaryEntry {
            pattern,
            semantics,
            description: description.into(),
            sources: SourceSet::BOTH,
        }
    }

    /// Override provenance.
    pub fn with_sources(mut self, sources: SourceSet) -> Self {
        self.sources = sources;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_merge() {
        assert_eq!(
            SourceSet::RS_ONLY.merge(SourceSet::WEBSITE_ONLY),
            SourceSet::BOTH
        );
        assert_eq!(SourceSet::BOTH.merge(SourceSet::RS_ONLY), SourceSet::BOTH);
        assert_eq!(
            SourceSet::default().merge(SourceSet::WEBSITE_ONLY),
            SourceSet::WEBSITE_ONLY
        );
    }
}
