//! The eight IXPs of the study (paper Table 1).

use std::fmt;

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;

/// Identifier for each of the paper's eight vantage-point IXPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IxpId {
    /// IX.br São Paulo, Brazil.
    IxBrSp,
    /// DE-CIX Frankfurt, Germany.
    DeCixFra,
    /// LINX London, United Kingdom.
    Linx,
    /// AMS-IX Amsterdam, Netherlands.
    AmsIx,
    /// DE-CIX Madrid, Spain.
    DeCixMad,
    /// DE-CIX New York, USA.
    DeCixNyc,
    /// BCIX Berlin, Germany.
    Bcix,
    /// Netnod Stockholm, Sweden.
    Netnod,
}

impl IxpId {
    /// All eight, Table 1 row order.
    pub const ALL: [IxpId; 8] = [
        IxpId::IxBrSp,
        IxpId::DeCixFra,
        IxpId::Linx,
        IxpId::AmsIx,
        IxpId::DeCixMad,
        IxpId::DeCixNyc,
        IxpId::Bcix,
        IxpId::Netnod,
    ];

    /// The four largest IXPs the paper's analysis focuses on.
    pub const BIG_FOUR: [IxpId; 4] = [IxpId::IxBrSp, IxpId::DeCixFra, IxpId::Linx, IxpId::AmsIx];

    /// The route server's ASN (modeled on the real RS ASNs).
    pub const fn rs_asn(self) -> Asn {
        match self {
            IxpId::IxBrSp => Asn(26162),
            IxpId::DeCixFra | IxpId::DeCixMad | IxpId::DeCixNyc => Asn(6695),
            IxpId::Linx => Asn(8714),
            IxpId::AmsIx => Asn(6777),
            IxpId::Bcix => Asn(16374),
            IxpId::Netnod => Asn(8674),
        }
    }

    /// Short machine-friendly name, as used in file names and tables.
    pub const fn short_name(self) -> &'static str {
        match self {
            IxpId::IxBrSp => "IX.br-SP",
            IxpId::DeCixFra => "DE-CIX",
            IxpId::Linx => "LINX",
            IxpId::AmsIx => "AMS-IX",
            IxpId::DeCixMad => "DE-CIX-Mad",
            IxpId::DeCixNyc => "DE-CIX-NYC",
            IxpId::Bcix => "BCIX",
            IxpId::Netnod => "Netnod",
        }
    }

    /// Location as printed in Table 1.
    pub const fn location(self) -> &'static str {
        match self {
            IxpId::IxBrSp => "São Paulo, Brazil",
            IxpId::DeCixFra => "Frankfurt, Germany",
            IxpId::Linx => "London, United Kingdom",
            IxpId::AmsIx => "Amsterdam, Netherlands",
            IxpId::DeCixMad => "Madrid, Spain",
            IxpId::DeCixNyc => "New York, USA",
            IxpId::Bcix => "Berlin, Germany",
            IxpId::Netnod => "Stockholm, Sweden",
        }
    }

    /// True for the DE-CIX family, which shares one community scheme.
    pub const fn is_decix(self) -> bool {
        matches!(self, IxpId::DeCixFra | IxpId::DeCixMad | IxpId::DeCixNyc)
    }
}

impl fmt::Display for IxpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decix_family_shares_rs_asn() {
        assert_eq!(IxpId::DeCixFra.rs_asn(), IxpId::DeCixMad.rs_asn());
        assert_eq!(IxpId::DeCixFra.rs_asn(), IxpId::DeCixNyc.rs_asn());
        assert!(IxpId::DeCixMad.is_decix());
        assert!(!IxpId::Linx.is_decix());
    }

    #[test]
    fn big_four_are_first_four() {
        assert_eq!(&IxpId::ALL[..4], &IxpId::BIG_FOUR[..]);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = IxpId::ALL.iter().map(|i| i.short_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
