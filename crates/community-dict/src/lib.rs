//! # community-dict
//!
//! IXP BGP community dictionaries: the semantics layer of the CoNEXT'22
//! reproduction. Defines the action taxonomy (§5.3 of the paper:
//! do-not-announce-to / announce-only-to / prepend-to / blackholing),
//! community patterns, per-IXP dictionaries built as the union of the RS
//! configuration and website documentation (§3), and classification of
//! every community instance on a route into IXP-defined (informational or
//! action) versus unknown.
//!
//! The eight concrete schemes in [`schemes`] reproduce the paper's
//! dictionary sizes exactly: 649 (IX.br-SP), 774 (DE-CIX ×3), 58 (LINX),
//! 37 (AMS-IX), 50 (BCIX), 67 (Netnod) — 3,183 in total.
//!
//! ```
//! use bgp_model::asn::Asn;
//! use community_dict::prelude::*;
//!
//! let dict = schemes::dictionary(IxpId::DeCixFra);
//! assert_eq!(dict.len(), 774);
//!
//! // "0:6939" at DE-CIX means: do not announce this route to AS6939
//! let c = schemes::avoid_community(IxpId::DeCixFra, Asn(6939));
//! let action = dict.classify(c).action().unwrap();
//! assert_eq!(action, Action::avoid(Asn(6939)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod classify;
pub mod config_text;
pub mod dictionary;
pub mod entry;
pub mod ixp;
pub mod known;
pub mod pattern;
pub mod schemes;
pub mod semantics;

/// Common re-exports.
pub mod prelude {
    pub use crate::action::{Action, ActionGroup, ActionKind, Target};
    pub use crate::classify::{classify_community, classify_route, route_has_action};
    pub use crate::dictionary::Dictionary;
    pub use crate::entry::{DictionaryEntry, SourceSet};
    pub use crate::ixp::IxpId;
    pub use crate::pattern::Pattern;
    pub use crate::schemes;
    pub use crate::semantics::{Classification, InfoKind, Semantics};
}

pub use prelude::*;
