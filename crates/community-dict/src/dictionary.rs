//! Per-IXP community dictionaries with indexed lookup and the paper's
//! two-source union mechanic (§3).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use bgp_model::community::StandardCommunity;

use crate::entry::{DictionaryEntry, SourceSet};
use crate::ixp::IxpId;
use crate::pattern::Pattern;
use crate::semantics::{Classification, Semantics};

/// A community dictionary for one IXP.
///
/// Lookup precedence: exact entries beat range entries beat
/// `high:<peer-as>` templates, mirroring how operators read the docs
/// ("`0:6695` means *all*, any other `0:x` means *AS x*").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dictionary {
    ixp: IxpId,
    entries: Vec<DictionaryEntry>,
    #[serde(skip)]
    index: Index,
}

#[derive(Debug, Clone, Default)]
struct Index {
    exact: HashMap<u32, usize>,
    /// Non-exact patterns grouped by their fixed high bits, each list
    /// sorted by ascending specificity.
    by_high: HashMap<u16, Vec<usize>>,
}

impl Dictionary {
    /// Build a dictionary from entries (deduplicating identical patterns,
    /// merging their provenance).
    pub fn new(ixp: IxpId, entries: Vec<DictionaryEntry>) -> Self {
        let mut merged: Vec<DictionaryEntry> = Vec::with_capacity(entries.len());
        let mut seen: HashMap<String, usize> = HashMap::new();
        for e in entries {
            let key = format!("{:?}", e.pattern);
            match seen.get(&key) {
                Some(&i) => {
                    let prev: &mut DictionaryEntry = &mut merged[i];
                    prev.sources = prev.sources.merge(e.sources);
                }
                None => {
                    seen.insert(key, merged.len());
                    merged.push(e);
                }
            }
        }
        let mut dict = Dictionary {
            ixp,
            entries: merged,
            index: Index::default(),
        };
        dict.rebuild_index();
        dict
    }

    /// The paper's union construction: RS-config entries ∪ website entries.
    pub fn union(
        ixp: IxpId,
        rs_config: Vec<DictionaryEntry>,
        website: Vec<DictionaryEntry>,
    ) -> Self {
        let mut all = rs_config;
        all.extend(website);
        Dictionary::new(ixp, all)
    }

    fn rebuild_index(&mut self) {
        self.index = Index::default();
        for (i, e) in self.entries.iter().enumerate() {
            match e.pattern {
                Pattern::Exact(c) => {
                    self.index.exact.insert(c.0, i);
                }
                _ => {
                    self.index
                        .by_high
                        .entry(e.pattern.high())
                        .or_default()
                        .push(i);
                }
            }
        }
        for list in self.index.by_high.values_mut() {
            list.sort_by_key(|&i| self.entries[i].pattern.specificity());
        }
    }

    /// The IXP this dictionary belongs to.
    pub fn ixp(&self) -> IxpId {
        self.ixp
    }

    /// All entries.
    pub fn entries(&self) -> &[DictionaryEntry] {
        &self.entries
    }

    /// Entry count — the paper's "dictionary size" (e.g. 774 for DE-CIX).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries restricted to one source (for the §3 union comparison and
    /// the RS-config-only ablation).
    pub fn restricted_to(&self, f: impl Fn(SourceSet) -> bool) -> Dictionary {
        Dictionary::new(
            self.ixp,
            self.entries
                .iter()
                .filter(|e| f(e.sources))
                .cloned()
                .collect(),
        )
    }

    /// Classify one standard community.
    pub fn classify(&self, c: StandardCommunity) -> Classification {
        if let Some(&i) = self.index.exact.get(&c.0) {
            let e = &self.entries[i];
            return Classification::IxpDefined(e.pattern.resolve(e.semantics, c));
        }
        if let Some(list) = self.index.by_high.get(&c.high()) {
            for &i in list {
                let e = &self.entries[i];
                if e.pattern.matches(c) {
                    return Classification::IxpDefined(e.pattern.resolve(e.semantics, c));
                }
            }
        }
        Classification::Unknown
    }

    /// Classify without the index (linear scan, exactness still wins).
    /// Exists for the `ablation_lookup` benchmark.
    pub fn classify_linear(&self, c: StandardCommunity) -> Classification {
        let mut best: Option<(&DictionaryEntry, u32)> = None;
        for e in &self.entries {
            if e.pattern.matches(c) {
                let spec = e.pattern.specificity();
                if best.map(|(_, s)| spec < s).unwrap_or(true) {
                    best = Some((e, spec));
                }
            }
        }
        match best {
            Some((e, _)) => Classification::IxpDefined(e.pattern.resolve(e.semantics, c)),
            None => Classification::Unknown,
        }
    }

    /// Convenience: the resolved semantics, if defined.
    pub fn semantics(&self, c: StandardCommunity) -> Option<Semantics> {
        match self.classify(c) {
            Classification::IxpDefined(s) => Some(s),
            Classification::Unknown => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ActionKind, Target};
    use crate::semantics::InfoKind;
    use bgp_model::asn::Asn;

    const C: fn(u16, u16) -> StandardCommunity = StandardCommunity::from_parts;

    fn mini_dict() -> Dictionary {
        Dictionary::new(
            IxpId::DeCixFra,
            vec![
                DictionaryEntry::new(
                    Pattern::Exact(C(0, 6695)),
                    Semantics::Action(Action::new(ActionKind::DoNotAnnounceTo, Target::AllPeers)),
                    "do not announce to any peer",
                ),
                DictionaryEntry::new(
                    Pattern::PeerAsnLow { high: 0 },
                    Semantics::Action(Action::avoid(Asn(0))),
                    "do not announce to <peer-as>",
                ),
                DictionaryEntry::new(
                    Pattern::LowRange {
                        high: 6695,
                        lo: 800,
                        hi: 899,
                    },
                    Semantics::Informational(InfoKind::LearnedAt(0)),
                    "learned at location",
                ),
                DictionaryEntry::new(
                    Pattern::PeerAsnLow { high: 6695 },
                    Semantics::Action(Action::only(Asn(0))),
                    "announce only to <peer-as>",
                ),
            ],
        )
    }

    #[test]
    fn exact_beats_template() {
        let d = mini_dict();
        // 0:6695 is the "all peers" exact entry, not "avoid AS6695"
        assert_eq!(
            d.classify(C(0, 6695)).action().unwrap().target,
            Target::AllPeers
        );
        // any other 0:x resolves via the template
        assert_eq!(
            d.classify(C(0, 6939)).action().unwrap(),
            Action::avoid(Asn(6939))
        );
    }

    #[test]
    fn range_beats_template() {
        let d = mini_dict();
        // 6695:850 is in the informational range, not "announce only to AS850"
        assert_eq!(
            d.classify(C(6695, 850)),
            Classification::IxpDefined(Semantics::Informational(InfoKind::LearnedAt(50)))
        );
        // 6695:15169 falls outside the range → announce-only template
        assert_eq!(
            d.classify(C(6695, 15169)).action().unwrap(),
            Action::only(Asn(15169))
        );
    }

    #[test]
    fn unknown_communities() {
        let d = mini_dict();
        assert_eq!(d.classify(C(3356, 100)), Classification::Unknown);
        assert_eq!(d.semantics(C(3356, 100)), None);
    }

    #[test]
    fn linear_agrees_with_indexed() {
        let d = mini_dict();
        for c in [
            C(0, 6695),
            C(0, 6939),
            C(6695, 850),
            C(6695, 15169),
            C(3356, 100),
            C(65535, 666),
        ] {
            assert_eq!(d.classify(c), d.classify_linear(c), "community {c}");
        }
    }

    #[test]
    fn union_merges_duplicate_patterns() {
        let rs = vec![DictionaryEntry::new(
            Pattern::Exact(C(0, 6695)),
            Semantics::Action(Action::new(ActionKind::DoNotAnnounceTo, Target::AllPeers)),
            "x",
        )
        .with_sources(SourceSet::RS_ONLY)];
        let web = vec![
            DictionaryEntry::new(
                Pattern::Exact(C(0, 6695)),
                Semantics::Action(Action::new(ActionKind::DoNotAnnounceTo, Target::AllPeers)),
                "x",
            )
            .with_sources(SourceSet::WEBSITE_ONLY),
            DictionaryEntry::new(
                Pattern::Exact(C(65535, 666)),
                Semantics::Action(Action::blackhole()),
                "blackhole",
            )
            .with_sources(SourceSet::WEBSITE_ONLY),
        ];
        let d = Dictionary::union(IxpId::DeCixFra, rs, web);
        assert_eq!(d.len(), 2);
        // duplicate provenance merged
        let e = d
            .entries()
            .iter()
            .find(|e| e.pattern == Pattern::Exact(C(0, 6695)))
            .unwrap();
        assert_eq!(e.sources, SourceSet::BOTH);
        // website-only entry classified even though RS config missed it
        assert!(d.classify(C(65535, 666)).is_ixp_defined());
        // restricting to RS-config loses the blackhole entry
        let rs_only = d.restricted_to(|s| s.rs_config);
        assert_eq!(rs_only.len(), 1);
        assert_eq!(rs_only.classify(C(65535, 666)), Classification::Unknown);
    }
}
