//! Textual RS configuration format.
//!
//! The paper's first dictionary source is "the RS configuration file
//! containing the semantics of informational and action BGP communities"
//! fetched over the LG API (§3). This module defines that artifact: a
//! line-based, BIRD-comment-style text rendering of dictionary entries,
//! with a strict parser — so the collection pipeline can work from the
//! same kind of file the paper's did.
//!
//! ```text
//! # DE-CIX route server communities
//! rs-asn 6695
//! community          0:6695        action  do-not-announce-to  all   "do not announce to any peer"
//! community-template 0:<peer-as>   action  do-not-announce-to  peer  "do not announce to <peer-as>"
//! community          6695:64000    info    learned-at 0              "learned at location 0"
//! ```

use std::fmt::Write as _;

use bgp_model::asn::Asn;
use bgp_model::community::StandardCommunity;

use crate::action::{Action, ActionKind, Target};
use crate::entry::{DictionaryEntry, SourceSet};
use crate::pattern::Pattern;
use crate::semantics::{InfoKind, Semantics};

/// Error parsing a config text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigParseError {}

fn action_keyword(kind: ActionKind) -> String {
    match kind {
        ActionKind::DoNotAnnounceTo => "do-not-announce-to".into(),
        ActionKind::AnnounceOnlyTo => "announce-only-to".into(),
        ActionKind::PrependTo(n) => format!("prepend-{n}-to"),
        ActionKind::Blackhole => "blackhole".into(),
    }
}

fn parse_action_keyword(word: &str) -> Option<ActionKind> {
    match word {
        "do-not-announce-to" => Some(ActionKind::DoNotAnnounceTo),
        "announce-only-to" => Some(ActionKind::AnnounceOnlyTo),
        "blackhole" => Some(ActionKind::Blackhole),
        _ => {
            let n = word.strip_prefix("prepend-")?.strip_suffix("-to")?;
            n.parse::<u8>().ok().map(ActionKind::PrependTo)
        }
    }
}

fn target_keyword(target: Target) -> String {
    match target {
        Target::AllPeers => "all".into(),
        Target::Peer(asn) => format!("as{}", asn.value()),
        Target::Region(code) => format!("region{code}"),
        Target::TaggedPrefix => "prefix".into(),
    }
}

fn parse_target_keyword(word: &str) -> Option<Target> {
    match word {
        "all" => Some(Target::AllPeers),
        "peer" => Some(Target::Peer(Asn(0))), // template placeholder
        "prefix" => Some(Target::TaggedPrefix),
        _ => {
            if let Some(asn) = word.strip_prefix("as") {
                return asn.parse::<u32>().ok().map(|v| Target::Peer(Asn(v)));
            }
            word.strip_prefix("region")
                .and_then(|c| c.parse::<u16>().ok())
                .map(Target::Region)
        }
    }
}

fn info_keywords(kind: InfoKind) -> (&'static str, u16) {
    match kind {
        InfoKind::LearnedAt(c) => ("learned-at", c),
        InfoKind::OriginClass(c) => ("origin-class", c),
        InfoKind::RsNote(c) => ("rs-note", c),
    }
}

fn parse_info_keywords(word: &str, code: u16) -> Option<InfoKind> {
    match word {
        "learned-at" => Some(InfoKind::LearnedAt(code)),
        "origin-class" => Some(InfoKind::OriginClass(code)),
        "rs-note" => Some(InfoKind::RsNote(code)),
        _ => None,
    }
}

/// Render entries as the RS configuration text.
pub fn render(rs_asn: Asn, name: &str, entries: &[DictionaryEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {name} route server community definitions");
    let _ = writeln!(out, "rs-asn {}", rs_asn.value());
    for e in entries {
        let (keyword, pattern_text) = match e.pattern {
            Pattern::Exact(c) => ("community", c.to_string()),
            Pattern::PeerAsnLow { high } => ("community-template", format!("{high}:<peer-as>")),
            Pattern::LowRange { high, lo, hi } => ("community-range", format!("{high}:{lo}-{hi}")),
        };
        let semantics_text = match e.semantics {
            Semantics::Action(Action { kind, target }) => {
                // templates keep the symbolic "peer" target
                let target_text = if matches!(e.pattern, Pattern::PeerAsnLow { .. })
                    && matches!(target, Target::Peer(_))
                {
                    "peer".to_string()
                } else {
                    target_keyword(target)
                };
                format!("action {} {}", action_keyword(kind), target_text)
            }
            Semantics::Informational(kind) => {
                let (word, code) = info_keywords(kind);
                format!("info {word} {code}")
            }
        };
        let desc = e.description.replace('"', "'");
        let _ = writeln!(out, "{keyword} {pattern_text} {semantics_text} \"{desc}\"");
    }
    out
}

/// Parse a config text back into entries (provenance: RS config).
pub fn parse(text: &str) -> Result<Vec<DictionaryEntry>, ConfigParseError> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("rs-asn ") {
            continue;
        }
        let err = |message: String| ConfigParseError {
            line: lineno,
            message,
        };
        // split off the quoted description
        let (head, desc) = match line.split_once('"') {
            Some((head, rest)) => {
                let desc = rest
                    .strip_suffix('"')
                    .ok_or_else(|| err("unterminated description".into()))?;
                (head.trim(), desc.to_string())
            }
            None => (line, String::new()),
        };
        let mut words = head.split_whitespace();
        let keyword = words.next().ok_or_else(|| err("empty line".into()))?;
        let pattern_text = words
            .next()
            .ok_or_else(|| err("missing community pattern".into()))?;
        let pattern = match keyword {
            "community" => Pattern::Exact(
                pattern_text
                    .parse::<StandardCommunity>()
                    .map_err(|e| err(format!("bad community: {e}")))?,
            ),
            "community-template" => {
                let (high, low) = pattern_text
                    .split_once(':')
                    .ok_or_else(|| err("bad template".into()))?;
                if low != "<peer-as>" {
                    return Err(err("template low part must be <peer-as>".into()));
                }
                Pattern::PeerAsnLow {
                    high: high.parse().map_err(|_| err("bad template high".into()))?,
                }
            }
            "community-range" => {
                let (high, range) = pattern_text
                    .split_once(':')
                    .ok_or_else(|| err("bad range".into()))?;
                let (lo, hi) = range
                    .split_once('-')
                    .ok_or_else(|| err("bad range bounds".into()))?;
                Pattern::LowRange {
                    high: high.parse().map_err(|_| err("bad range high".into()))?,
                    lo: lo.parse().map_err(|_| err("bad range lo".into()))?,
                    hi: hi.parse().map_err(|_| err("bad range hi".into()))?,
                }
            }
            other => return Err(err(format!("unknown keyword {other:?}"))),
        };
        let class = words
            .next()
            .ok_or_else(|| err("missing action/info class".into()))?;
        let semantics = match class {
            "action" => {
                let kind_word = words
                    .next()
                    .ok_or_else(|| err("missing action kind".into()))?;
                let kind = parse_action_keyword(kind_word)
                    .ok_or_else(|| err(format!("unknown action {kind_word:?}")))?;
                let target = if kind == ActionKind::Blackhole {
                    words.next(); // optional "prefix" token
                    Target::TaggedPrefix
                } else {
                    let t = words.next().ok_or_else(|| err("missing target".into()))?;
                    parse_target_keyword(t).ok_or_else(|| err(format!("unknown target {t:?}")))?
                };
                Semantics::Action(Action { kind, target })
            }
            "info" => {
                let word = words
                    .next()
                    .ok_or_else(|| err("missing info kind".into()))?;
                let code: u16 = words
                    .next()
                    .ok_or_else(|| err("missing info code".into()))?
                    .parse()
                    .map_err(|_| err("bad info code".into()))?;
                parse_info_keywords(word, code)
                    .map(Semantics::Informational)
                    .ok_or_else(|| err(format!("unknown info kind {word:?}")))?
            }
            other => return Err(err(format!("unknown class {other:?}"))),
        };
        entries
            .push(DictionaryEntry::new(pattern, semantics, desc).with_sources(SourceSet::RS_ONLY));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ixp::IxpId;
    use crate::schemes;

    #[test]
    fn render_parse_roundtrip_full_scheme() {
        for ixp in IxpId::ALL {
            let entries = schemes::rs_config_entries(ixp);
            let text = render(ixp.rs_asn(), ixp.short_name(), &entries);
            let parsed = parse(&text).unwrap_or_else(|e| panic!("{ixp}: {e}"));
            assert_eq!(parsed.len(), entries.len(), "{ixp}");
            for (a, b) in parsed.iter().zip(&entries) {
                assert_eq!(a.pattern, b.pattern, "{ixp}");
                assert_eq!(a.semantics, b.semantics, "{ixp}");
            }
        }
    }

    #[test]
    fn rendered_text_is_readable() {
        let entries = schemes::rs_config_entries(IxpId::AmsIx);
        let text = render(IxpId::AmsIx.rs_asn(), "AMS-IX", &entries);
        assert!(text.starts_with("# AMS-IX route server community definitions"));
        assert!(text.contains("rs-asn 6777"));
        assert!(text.contains("community-template 0:<peer-as> action do-not-announce-to peer"));
        assert!(text.contains("blackhole"));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse("community").is_err());
        assert!(parse("community banana action do-not-announce-to all").is_err());
        assert!(parse("community 0:6695 dance do-not-announce-to all").is_err());
        assert!(parse("community 0:6695 action pirouette all").is_err());
        assert!(parse("community-template 0:wrong action do-not-announce-to peer").is_err());
        assert!(parse("community 0:6695 action do-not-announce-to all \"unterminated").is_err());
        let err = parse("\n\nbogus line here").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# hello\n\nrs-asn 8714\ncommunity 65535:666 action blackhole prefix \"bh\"\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].semantics, Semantics::Action(Action::blackhole()));
    }

    #[test]
    fn prepend_keywords() {
        assert_eq!(
            parse_action_keyword("prepend-3-to"),
            Some(ActionKind::PrependTo(3))
        );
        assert_eq!(action_keyword(ActionKind::PrependTo(2)), "prepend-2-to");
        assert_eq!(parse_action_keyword("prepend-x-to"), None);
    }
}
