//! The action taxonomy of the paper (§5.3): every action BGP community an
//! IXP defines falls into one of four groups — *do-not-announce-to*,
//! *announce-only-to*, *prepend-to* and *blackholing* — and targets either
//! all peers, one AS, or a region/facility.

use std::fmt;

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;

/// The four action groups of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ActionKind {
    /// Do not export the route to the target.
    DoNotAnnounceTo,
    /// Export the route only to the target.
    AnnounceOnlyTo,
    /// Prepend the announcing AS `n` times before exporting to the target.
    PrependTo(u8),
    /// Drop traffic towards the tagged prefix (RFC 7999).
    Blackhole,
}

impl ActionKind {
    /// Collapse prepend counts: the paper's Table 2 groups all prepend
    /// variants into one "Prepend to" row.
    pub const fn group(self) -> ActionGroup {
        match self {
            ActionKind::DoNotAnnounceTo => ActionGroup::DoNotAnnounceTo,
            ActionKind::AnnounceOnlyTo => ActionGroup::AnnounceOnlyTo,
            ActionKind::PrependTo(_) => ActionGroup::PrependTo,
            ActionKind::Blackhole => ActionGroup::Blackhole,
        }
    }
}

/// The four groups with prepend counts collapsed (Table 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ActionGroup {
    /// "Do not announce to".
    DoNotAnnounceTo,
    /// "Announce only to".
    AnnounceOnlyTo,
    /// "Prepend to".
    PrependTo,
    /// "Blackholing".
    Blackhole,
}

impl ActionGroup {
    /// All groups, in the paper's Table 2 row order.
    pub const ALL: [ActionGroup; 4] = [
        ActionGroup::DoNotAnnounceTo,
        ActionGroup::AnnounceOnlyTo,
        ActionGroup::PrependTo,
        ActionGroup::Blackhole,
    ];
}

impl fmt::Display for ActionGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionGroup::DoNotAnnounceTo => write!(f, "Do not announce to"),
            ActionGroup::AnnounceOnlyTo => write!(f, "Announce only to"),
            ActionGroup::PrependTo => write!(f, "Prepend to"),
            ActionGroup::Blackhole => write!(f, "Blackholing"),
        }
    }
}

/// Whom an action applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Target {
    /// Every RS peer ("redistribute to all" / "do not redistribute to all").
    AllPeers,
    /// One specific AS.
    Peer(Asn),
    /// A region or facility code (DE-CIX style metro communities).
    Region(u16),
    /// The tagged prefix itself (blackholing has no AS target).
    TaggedPrefix,
}

impl Target {
    /// The targeted ASN, when the target is a single AS.
    pub const fn peer_asn(self) -> Option<Asn> {
        match self {
            Target::Peer(asn) => Some(asn),
            _ => None,
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::AllPeers => write!(f, "all peers"),
            Target::Peer(asn) => write!(f, "{asn}"),
            Target::Region(code) => write!(f, "region {code}"),
            Target::TaggedPrefix => write!(f, "tagged prefix"),
        }
    }
}

/// A fully-resolved action: what to do, and to whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Action {
    /// What to do.
    pub kind: ActionKind,
    /// To whom.
    pub target: Target,
}

impl Action {
    /// Convenience constructor.
    pub const fn new(kind: ActionKind, target: Target) -> Self {
        Action { kind, target }
    }

    /// Do-not-announce to one AS.
    pub const fn avoid(asn: Asn) -> Self {
        Action::new(ActionKind::DoNotAnnounceTo, Target::Peer(asn))
    }

    /// Announce only to one AS.
    pub const fn only(asn: Asn) -> Self {
        Action::new(ActionKind::AnnounceOnlyTo, Target::Peer(asn))
    }

    /// Blackhole the tagged prefix.
    pub const fn blackhole() -> Self {
        Action::new(ActionKind::Blackhole, Target::TaggedPrefix)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ActionKind::DoNotAnnounceTo => write!(f, "do not announce to {}", self.target),
            ActionKind::AnnounceOnlyTo => write!(f, "announce only to {}", self.target),
            ActionKind::PrependTo(n) => write!(f, "prepend {n}x to {}", self.target),
            ActionKind::Blackhole => write!(f, "blackhole"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_collapses_prepend_counts() {
        assert_eq!(ActionKind::PrependTo(1).group(), ActionGroup::PrependTo);
        assert_eq!(ActionKind::PrependTo(3).group(), ActionGroup::PrependTo);
        assert_eq!(
            ActionKind::DoNotAnnounceTo.group(),
            ActionGroup::DoNotAnnounceTo
        );
        assert_eq!(ActionKind::Blackhole.group(), ActionGroup::Blackhole);
    }

    #[test]
    fn target_peer_extraction() {
        assert_eq!(Target::Peer(Asn(6939)).peer_asn(), Some(Asn(6939)));
        assert_eq!(Target::AllPeers.peer_asn(), None);
        assert_eq!(Target::Region(100).peer_asn(), None);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            Action::avoid(Asn(6939)).to_string(),
            "do not announce to AS6939"
        );
        assert_eq!(
            Action::new(ActionKind::PrependTo(2), Target::AllPeers).to_string(),
            "prepend 2x to all peers"
        );
        assert_eq!(Action::blackhole().to_string(), "blackhole");
        assert_eq!(
            ActionGroup::DoNotAnnounceTo.to_string(),
            "Do not announce to"
        );
    }

    #[test]
    fn all_groups_order_matches_table2() {
        assert_eq!(
            ActionGroup::ALL,
            [
                ActionGroup::DoNotAnnounceTo,
                ActionGroup::AnnounceOnlyTo,
                ActionGroup::PrependTo,
                ActionGroup::Blackhole,
            ]
        );
    }
}
