//! Community semantics: every IXP-defined community is either
//! *informational* (added by the RS to describe a route) or an *action*
//! (added by a member to request traffic engineering — the paper's focus).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::action::Action;

/// What an informational community conveys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InfoKind {
    /// Where the route was learned (location / PoP code).
    LearnedAt(u16),
    /// Origin classification (e.g. "learned from customer").
    OriginClass(u16),
    /// Route-server processing note (e.g. "passed RPKI check").
    RsNote(u16),
}

impl fmt::Display for InfoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfoKind::LearnedAt(c) => write!(f, "learned at location {c}"),
            InfoKind::OriginClass(c) => write!(f, "origin class {c}"),
            InfoKind::RsNote(c) => write!(f, "route-server note {c}"),
        }
    }
}

/// The meaning of an IXP-defined community.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Semantics {
    /// Added by the IXP RS; describes the route.
    Informational(InfoKind),
    /// Added by a member; requests an action from the RS.
    Action(Action),
}

impl Semantics {
    /// True for action semantics.
    pub const fn is_action(&self) -> bool {
        matches!(self, Semantics::Action(_))
    }

    /// The action, if this is one.
    pub const fn action(&self) -> Option<Action> {
        match self {
            Semantics::Action(a) => Some(*a),
            Semantics::Informational(_) => None,
        }
    }
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Semantics::Informational(i) => write!(f, "info: {i}"),
            Semantics::Action(a) => write!(f, "action: {a}"),
        }
    }
}

/// Classification outcome for one community instance on one route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Classification {
    /// Defined by this IXP's dictionary.
    IxpDefined(Semantics),
    /// Not in the dictionary — operator-private or another network's value.
    Unknown,
}

impl Classification {
    /// True when the dictionary knew the community.
    pub const fn is_ixp_defined(&self) -> bool {
        matches!(self, Classification::IxpDefined(_))
    }

    /// The action, when IXP-defined action semantics.
    pub const fn action(&self) -> Option<Action> {
        match self {
            Classification::IxpDefined(s) => s.action(),
            Classification::Unknown => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionKind, Target};
    use bgp_model::asn::Asn;

    #[test]
    fn action_predicates() {
        let a = Semantics::Action(Action::avoid(Asn(6939)));
        let i = Semantics::Informational(InfoKind::LearnedAt(7));
        assert!(a.is_action());
        assert!(!i.is_action());
        assert_eq!(a.action().unwrap().target, Target::Peer(Asn(6939)));
        assert!(i.action().is_none());
    }

    #[test]
    fn classification_predicates() {
        let c = Classification::IxpDefined(Semantics::Action(Action::new(
            ActionKind::PrependTo(2),
            Target::AllPeers,
        )));
        assert!(c.is_ixp_defined());
        assert!(c.action().is_some());
        assert!(!Classification::Unknown.is_ixp_defined());
        assert!(Classification::Unknown.action().is_none());
        let info = Classification::IxpDefined(Semantics::Informational(InfoKind::RsNote(1)));
        assert!(info.is_ixp_defined());
        assert!(info.action().is_none());
    }

    #[test]
    fn display() {
        let s = Semantics::Informational(InfoKind::OriginClass(3));
        assert_eq!(s.to_string(), "info: origin class 3");
    }
}
