//! Route-level classification across all three community types.
//!
//! Standard communities classify against the per-IXP [`Dictionary`].
//! Large and extended communities classify by rule: IXPs define their
//! large/extended values under their own route-server ASN as the global
//! administrator (the IX.br large-community table and AMS-IX fine-grained
//! extended prepends are the real-world models). Anything else is unknown
//! — exactly the paper's Fig. 1 split.

use bgp_model::asn::Asn;
use bgp_model::community::{Community, ExtendedCommunity, ExtendedKind, LargeCommunity};
use bgp_model::route::Route;

use crate::action::{Action, ActionKind, Target};
use crate::dictionary::Dictionary;
use crate::ixp::IxpId;
use crate::semantics::{Classification, InfoKind, Semantics};

/// Large-community function codes under the RS ASN (`rs:fn:arg`).
pub mod large_fn {
    /// `rs:0:target` — do not announce to target (0 = all peers).
    pub const AVOID: u32 = 0;
    /// `rs:1:target` — announce only to target (0 = all peers).
    pub const ONLY: u32 = 1;
    /// `rs:2..=4:target` — prepend 1–3× to target.
    pub const PREPEND1: u32 = 2;
    /// Prepend 2×.
    pub const PREPEND2: u32 = 3;
    /// Prepend 3×.
    pub const PREPEND3: u32 = 4;
    /// `rs:10:code` — informational location tag.
    pub const INFO_LEARNED: u32 = 10;
    /// `rs:11:code` — informational origin class.
    pub const INFO_ORIGIN: u32 = 11;
}

fn large_target(arg: u32) -> Target {
    if arg == 0 {
        Target::AllPeers
    } else {
        Target::Peer(Asn(arg))
    }
}

/// Classify a large community against an IXP's rule-based large scheme.
pub fn classify_large(ixp: IxpId, c: LargeCommunity) -> Classification {
    if c.global != ixp.rs_asn().value() {
        return Classification::Unknown;
    }
    let sem = match c.data1 {
        large_fn::AVOID => Semantics::Action(Action::new(
            ActionKind::DoNotAnnounceTo,
            large_target(c.data2),
        )),
        large_fn::ONLY => Semantics::Action(Action::new(
            ActionKind::AnnounceOnlyTo,
            large_target(c.data2),
        )),
        large_fn::PREPEND1 => {
            Semantics::Action(Action::new(ActionKind::PrependTo(1), large_target(c.data2)))
        }
        large_fn::PREPEND2 => {
            Semantics::Action(Action::new(ActionKind::PrependTo(2), large_target(c.data2)))
        }
        large_fn::PREPEND3 => {
            Semantics::Action(Action::new(ActionKind::PrependTo(3), large_target(c.data2)))
        }
        large_fn::INFO_LEARNED => Semantics::Informational(InfoKind::LearnedAt(c.data2 as u16)),
        large_fn::INFO_ORIGIN => Semantics::Informational(InfoKind::OriginClass(c.data2 as u16)),
        _ => return Classification::Unknown,
    };
    Classification::IxpDefined(sem)
}

/// Extended-community subtypes under the RS ASN (two-octet-AS-specific).
pub mod ext_subtype {
    /// Do not announce to the local-administrator target AS.
    pub const AVOID: u8 = 0x41;
    /// Announce only to the target AS.
    pub const ONLY: u8 = 0x42;
    /// Prepend 1× to the target AS (AMS-IX fine-grained prepending).
    pub const PREPEND1: u8 = 0x43;
    /// Prepend 2×.
    pub const PREPEND2: u8 = 0x44;
    /// Prepend 3×.
    pub const PREPEND3: u8 = 0x45;
}

/// Classify an extended community against an IXP's rule-based scheme.
pub fn classify_extended(ixp: IxpId, c: ExtendedCommunity) -> Classification {
    let ExtendedKind::TwoOctetAsSpecific {
        subtype,
        asn,
        local,
        ..
    } = c.kind()
    else {
        return Classification::Unknown;
    };
    if asn != ixp.rs_asn() {
        return Classification::Unknown;
    }
    let target = if local == 0 {
        Target::AllPeers
    } else {
        Target::Peer(Asn(local))
    };
    let kind = match subtype {
        ext_subtype::AVOID => ActionKind::DoNotAnnounceTo,
        ext_subtype::ONLY => ActionKind::AnnounceOnlyTo,
        ext_subtype::PREPEND1 => ActionKind::PrependTo(1),
        ext_subtype::PREPEND2 => ActionKind::PrependTo(2),
        ext_subtype::PREPEND3 => ActionKind::PrependTo(3),
        _ => return Classification::Unknown,
    };
    Classification::IxpDefined(Semantics::Action(Action::new(kind, target)))
}

/// Classify any community for the dictionary's IXP.
pub fn classify_community(dict: &Dictionary, c: &Community) -> Classification {
    match c {
        Community::Standard(sc) => dict.classify(*sc),
        Community::Large(lc) => classify_large(dict.ixp(), *lc),
        Community::Extended(ec) => classify_extended(dict.ixp(), *ec),
    }
}

/// Classify every community instance on a route.
pub fn classify_route<'a>(
    dict: &'a Dictionary,
    route: &'a Route,
) -> impl Iterator<Item = (Community, Classification)> + 'a {
    route
        .communities()
        .map(move |c| (c, classify_community(dict, &c)))
}

/// Convenience: does the route carry at least one IXP-defined action
/// community? (The paper's §5.2 definition of a route "using" actions.)
pub fn route_has_action(dict: &Dictionary, route: &Route) -> bool {
    classify_route(dict, route).any(|(_, cl)| cl.action().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes;
    use bgp_model::community::StandardCommunity;

    #[test]
    fn large_scheme_classification() {
        let ixp = IxpId::IxBrSp;
        let rs = ixp.rs_asn().value();
        assert_eq!(
            classify_large(ixp, LargeCommunity::new(rs, large_fn::AVOID, 6939))
                .action()
                .unwrap(),
            Action::avoid(Asn(6939))
        );
        assert_eq!(
            classify_large(ixp, LargeCommunity::new(rs, large_fn::AVOID, 0))
                .action()
                .unwrap()
                .target,
            Target::AllPeers
        );
        assert_eq!(
            classify_large(ixp, LargeCommunity::new(rs, large_fn::PREPEND2, 15169))
                .action()
                .unwrap()
                .kind,
            ActionKind::PrependTo(2)
        );
        assert!(matches!(
            classify_large(ixp, LargeCommunity::new(rs, large_fn::INFO_LEARNED, 7)),
            Classification::IxpDefined(Semantics::Informational(InfoKind::LearnedAt(7)))
        ));
        // wrong global admin → unknown
        assert_eq!(
            classify_large(ixp, LargeCommunity::new(3356, 0, 6939)),
            Classification::Unknown
        );
        // unknown function code → unknown
        assert_eq!(
            classify_large(ixp, LargeCommunity::new(rs, 99, 6939)),
            Classification::Unknown
        );
    }

    #[test]
    fn extended_scheme_classification() {
        let ixp = IxpId::AmsIx;
        let rs = ixp.rs_asn().value() as u16;
        let c = ExtendedCommunity::two_octet_as(ext_subtype::PREPEND2, rs, 15169);
        assert_eq!(
            classify_extended(ixp, c).action().unwrap(),
            Action::new(ActionKind::PrependTo(2), Target::Peer(Asn(15169)))
        );
        let c = ExtendedCommunity::two_octet_as(ext_subtype::AVOID, rs, 0);
        assert_eq!(
            classify_extended(ixp, c).action().unwrap().target,
            Target::AllPeers
        );
        // route-target of some other AS → unknown
        let c = ExtendedCommunity::two_octet_as(0x02, 3356, 100);
        assert_eq!(classify_extended(ixp, c), Classification::Unknown);
    }

    #[test]
    fn route_level_classification() {
        let ixp = IxpId::DeCixFra;
        let dict = schemes::dictionary(ixp);
        let mut route = Route::builder(
            "203.0.113.0/24".parse().unwrap(),
            "198.32.0.7".parse().unwrap(),
        )
        .path([64496, 15169])
        .standard(schemes::avoid_community(ixp, Asn(6939)))
        .standard(StandardCommunity::from_parts(3356, 70)) // private/unknown
        .build();
        route.large_communities = vec![LargeCommunity::new(
            ixp.rs_asn().value(),
            large_fn::INFO_LEARNED,
            3,
        )];
        let cls: Vec<_> = classify_route(&dict, &route).collect();
        assert_eq!(cls.len(), 3);
        let defined = cls.iter().filter(|(_, c)| c.is_ixp_defined()).count();
        assert_eq!(defined, 2);
        assert!(route_has_action(&dict, &route));
        route.standard_communities.clear();
        assert!(!route_has_action(&dict, &route)); // info-only now
    }
}
