//! The named Autonomous Systems of the paper.
//!
//! §5.4–§5.5 name the networks most targeted by action communities
//! (content providers such as Hurricane Electric, Google, Akamai,
//! OVHcloud, Netflix, Edgecast, LeaseWeb) and the large ISPs tagging
//! them. This module fixes the ASN ↔ name ↔ category mapping used by the
//! community schemes and the synthetic world model. ASNs are the real
//! ones where they fit in 16 bits (standard communities cannot encode
//! 4-byte targets — a real-world constraint the paper's IXPs share).

use bgp_model::asn::Asn;

/// Business category of a network, driving its tagging behaviour in the
/// synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Content/CDN/cloud network (Google, Akamai, OVHcloud, …).
    ContentProvider,
    /// Large transit/backbone ISP (Hurricane Electric, Cogent, …).
    LargeIsp,
    /// Regional/access ISP.
    RegionalIsp,
    /// Educational / research network.
    Educational,
    /// Enterprise network.
    Enterprise,
}

/// One named network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownAs {
    /// Its ASN.
    pub asn: Asn,
    /// Human-readable name.
    pub name: &'static str,
    /// Category.
    pub category: Category,
}

macro_rules! known {
    ($($asn:expr, $name:expr, $cat:ident;)*) => {
        &[$(KnownAs { asn: Asn($asn), name: $name, category: Category::$cat },)*]
    };
}

/// The named networks. Content providers the paper lists as avoided,
/// the large ISPs it lists as "culprits", and the IX.br educational /
/// enterprise networks of §5.4.
pub const KNOWN: &[KnownAs] = known![
    // content providers / CDNs / clouds (the most-avoided networks, §5.4)
    15169, "Google", ContentProvider;
    20940, "Akamai", ContentProvider;
    13335, "Cloudflare", ContentProvider;
    16276, "OVHcloud", ContentProvider;
    2906,  "Netflix", ContentProvider;
    15133, "Edgecast", ContentProvider;
    60781, "LeaseWeb", ContentProvider;
    714,   "Apple", ContentProvider;
    16509, "Amazon", ContentProvider;
    8075,  "Microsoft", ContentProvider;
    32934, "Meta", ContentProvider;
    54113, "Fastly", ContentProvider;
    22822, "Limelight", ContentProvider;
    36408, "CDNetworks", ContentProvider;
    46489, "Twitch", ContentProvider;
    13414, "Twitter", ContentProvider;
    29990, "Filanco", ContentProvider;
    // large transit ISPs (the Fig. 7 "culprits")
    6939,  "Hurricane Electric", LargeIsp;
    174,   "Cogent", LargeIsp;
    3356,  "Lumen", LargeIsp;
    1299,  "Arelion", LargeIsp;
    3257,  "GTT", LargeIsp;
    2914,  "NTT", LargeIsp;
    6453,  "Tata", LargeIsp;
    6461,  "Zayo", LargeIsp;
    6830,  "Liberty Global", LargeIsp;
    1273,  "Vodafone", LargeIsp;
    5511,  "Orange", LargeIsp;
    12956, "Telxius", LargeIsp;
    3320,  "Deutsche Telekom", LargeIsp;
    6762,  "Sparkle", LargeIsp;
    3491,  "PCCW", LargeIsp;
    7473,  "Singtel", LargeIsp;
    4637,  "Telstra", LargeIsp;
    // regional ISPs named in §5.4 (synthetic 16-bit ASNs for 4-byte reals)
    28329, "PROLINK", RegionalIsp;
    28571, "Syntegra Telecom", RegionalIsp;
    7738,  "V.tal", RegionalIsp;
    28573, "Claro BR", RegionalIsp;
    26615, "TIM BR", RegionalIsp;
    // educational / enterprise (IX.br announce-only targets, §5.4)
    1916,  "RNP", Educational;
    22548, "NIC-Simet", Educational;
    28583, "Itau", Enterprise;
];

/// Look up a known network by ASN.
pub fn lookup(asn: Asn) -> Option<&'static KnownAs> {
    KNOWN.iter().find(|k| k.asn == asn)
}

/// Name for an ASN: the known name, or `ASxxxx`.
pub fn name_of(asn: Asn) -> String {
    match lookup(asn) {
        Some(k) => k.name.to_string(),
        None => asn.to_string(),
    }
}

/// All known ASNs of a category.
pub fn of_category(cat: Category) -> impl Iterator<Item = &'static KnownAs> {
    KNOWN.iter().filter(move |k| k.category == cat)
}

/// Deterministically generate `count` synthetic 16-bit ASNs that are
/// neither bogons nor in the known list nor in `exclude`. Used to fill
/// the enumerated per-AS example entries of the larger dictionaries.
pub fn synthetic_fill(count: usize, exclude: &[Asn]) -> Vec<Asn> {
    let mut out = Vec::with_capacity(count);
    let mut v: u32 = 1001;
    while out.len() < count {
        let asn = Asn(v);
        let taken =
            asn.is_bogon() || lookup(asn).is_some() || exclude.contains(&asn) || out.contains(&asn);
        if !taken && v < 64000 {
            out.push(asn);
        }
        v += 13;
        assert!(v < 1_000_000, "synthetic ASN space exhausted");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_asns_are_unique_and_16bit() {
        let mut asns: Vec<u32> = KNOWN.iter().map(|k| k.asn.value()).collect();
        asns.sort();
        let before = asns.len();
        asns.dedup();
        assert_eq!(asns.len(), before, "duplicate ASN in KNOWN");
        for k in KNOWN {
            assert!(k.asn.is_16bit(), "{} not 16-bit", k.name);
            assert!(!k.asn.is_bogon(), "{} is a bogon", k.name);
        }
    }

    #[test]
    fn lookup_and_names() {
        assert_eq!(lookup(Asn(6939)).unwrap().name, "Hurricane Electric");
        assert_eq!(name_of(Asn(15169)), "Google");
        assert_eq!(name_of(Asn(64999)), "AS64999");
        assert!(lookup(Asn(1)).is_none());
    }

    #[test]
    fn categories_populated() {
        assert!(of_category(Category::ContentProvider).count() >= 10);
        assert!(of_category(Category::LargeIsp).count() >= 10);
        assert!(of_category(Category::Educational).count() >= 2);
    }

    #[test]
    fn synthetic_fill_avoids_collisions() {
        let fill = synthetic_fill(300, &[Asn(1014)]);
        assert_eq!(fill.len(), 300);
        let mut sorted = fill.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 300);
        for a in &fill {
            assert!(!a.is_bogon());
            assert!(lookup(*a).is_none());
            assert_ne!(*a, Asn(1014));
            assert!(a.is_16bit());
        }
    }

    #[test]
    fn synthetic_fill_is_deterministic() {
        assert_eq!(synthetic_fill(50, &[]), synthetic_fill(50, &[]));
    }
}
