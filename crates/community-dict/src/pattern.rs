//! Community patterns.
//!
//! IXP documentation defines communities both as exact values
//! ("`0:6695` — do not announce to any peer") and as templates over the
//! peer ASN ("`0:<peer-as>` — do not announce to that peer"). A
//! [`Pattern`] covers both forms; matching a templated pattern *resolves*
//! the placeholder target in the entry's semantics to the concrete AS
//! found in the community's low bits.

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;
use bgp_model::community::StandardCommunity;

use crate::action::{Action, Target};
use crate::semantics::Semantics;

/// A pattern over standard community values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Exactly this value.
    Exact(StandardCommunity),
    /// `high:<peer-as>` — any low value, interpreted as the target ASN.
    PeerAsnLow {
        /// The fixed high 16 bits.
        high: u16,
    },
    /// `high:[lo..=hi]` — a contiguous range of low values (used for
    /// region/facility code blocks).
    LowRange {
        /// The fixed high 16 bits.
        high: u16,
        /// Lowest matching low value.
        lo: u16,
        /// Highest matching low value.
        hi: u16,
    },
}

impl Pattern {
    /// True if `c` matches the pattern.
    pub fn matches(&self, c: StandardCommunity) -> bool {
        match self {
            Pattern::Exact(v) => *v == c,
            Pattern::PeerAsnLow { high } => c.high() == *high,
            Pattern::LowRange { high, lo, hi } => {
                c.high() == *high && (*lo..=*hi).contains(&c.low())
            }
        }
    }

    /// Resolve the entry's stored semantics against the concrete matched
    /// community: templated patterns substitute the real target.
    pub fn resolve(&self, semantics: Semantics, c: StandardCommunity) -> Semantics {
        match (self, semantics) {
            (Pattern::PeerAsnLow { .. }, Semantics::Action(action)) => Semantics::Action(Action {
                kind: action.kind,
                target: Target::Peer(Asn(c.low() as u32)),
            }),
            (Pattern::LowRange { lo, .. }, Semantics::Action(action))
                if matches!(action.target, Target::Region(_)) =>
            {
                Semantics::Action(Action {
                    kind: action.kind,
                    target: Target::Region(c.low() - lo),
                })
            }
            (Pattern::LowRange { lo, .. }, Semantics::Informational(info)) => {
                use crate::semantics::InfoKind;
                let code = c.low() - lo;
                Semantics::Informational(match info {
                    InfoKind::LearnedAt(_) => InfoKind::LearnedAt(code),
                    InfoKind::OriginClass(_) => InfoKind::OriginClass(code),
                    InfoKind::RsNote(_) => InfoKind::RsNote(code),
                })
            }
            _ => semantics,
        }
    }

    /// Number of distinct community values this pattern can match. Used
    /// by precedence: more specific (smaller) patterns win.
    pub fn specificity(&self) -> u32 {
        match self {
            Pattern::Exact(_) => 1,
            Pattern::LowRange { lo, hi, .. } => (*hi as u32).saturating_sub(*lo as u32) + 1,
            Pattern::PeerAsnLow { .. } => 65536,
        }
    }

    /// The fixed high 16 bits all matches share (index key).
    pub fn high(&self) -> u16 {
        match self {
            Pattern::Exact(v) => v.high(),
            Pattern::PeerAsnLow { high } | Pattern::LowRange { high, .. } => *high,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionKind;
    use crate::semantics::InfoKind;

    const C: fn(u16, u16) -> StandardCommunity = StandardCommunity::from_parts;

    #[test]
    fn exact_matching() {
        let p = Pattern::Exact(C(0, 6695));
        assert!(p.matches(C(0, 6695)));
        assert!(!p.matches(C(0, 6694)));
        assert!(!p.matches(C(1, 6695)));
        assert_eq!(p.specificity(), 1);
    }

    #[test]
    fn peer_asn_matching_and_resolution() {
        let p = Pattern::PeerAsnLow { high: 0 };
        assert!(p.matches(C(0, 6939)));
        assert!(!p.matches(C(6695, 6939)));
        let template = Semantics::Action(Action::avoid(Asn(0)));
        let resolved = p.resolve(template, C(0, 6939));
        assert_eq!(resolved, Semantics::Action(Action::avoid(Asn(6939))));
        assert_eq!(p.specificity(), 65536);
    }

    #[test]
    fn low_range_matching() {
        let p = Pattern::LowRange {
            high: 6695,
            lo: 800,
            hi: 899,
        };
        assert!(p.matches(C(6695, 800)));
        assert!(p.matches(C(6695, 899)));
        assert!(!p.matches(C(6695, 900)));
        assert!(!p.matches(C(6695, 799)));
        assert_eq!(p.specificity(), 100);
    }

    #[test]
    fn low_range_informational_resolution() {
        let p = Pattern::LowRange {
            high: 6695,
            lo: 800,
            hi: 899,
        };
        let template = Semantics::Informational(InfoKind::LearnedAt(0));
        let resolved = p.resolve(template, C(6695, 842));
        assert_eq!(resolved, Semantics::Informational(InfoKind::LearnedAt(42)));
    }

    #[test]
    fn low_range_region_action_resolution() {
        let p = Pattern::LowRange {
            high: 65100,
            lo: 0,
            hi: 9,
        };
        let template =
            Semantics::Action(Action::new(ActionKind::DoNotAnnounceTo, Target::Region(0)));
        let resolved = p.resolve(template, C(65100, 4));
        assert_eq!(
            resolved,
            Semantics::Action(Action::new(ActionKind::DoNotAnnounceTo, Target::Region(4)))
        );
    }

    #[test]
    fn exact_resolution_is_identity() {
        let p = Pattern::Exact(C(65535, 666));
        let s = Semantics::Action(Action::blackhole());
        assert_eq!(p.resolve(s, C(65535, 666)), s);
    }
}
