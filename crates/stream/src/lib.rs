//! # stream
//!
//! BMP-style streaming collection for the CoNEXT'22 reproduction: instead
//! of polling daily snapshots through the Looking Glass, a monitoring
//! session has the route server *push* per-update events — announce,
//! withdraw, peer-up, peer-down — over the same LG transport
//! ([`looking_glass::api::LgRequest::StreamPoll`]), and an incremental
//! [`state::StateStore`] keyed by (router, peer, prefix) tracks live
//! state on the collector side. Session resets replay the feed (frames
//! keep their original sequence numbers) and the store dedups the replay;
//! peer-down events synthesize withdraws for the departed peer's table.
//!
//! The headline contract, proven by `tests/stream_equivalence.rs` and the
//! chaos stream corpus: **after any simulated day, the streamed
//! end-of-day state is byte-identical (serialized dataset hash) to the
//! snapshot the polled collector assembles** — which makes the whole
//! snapshot-era oracle apparatus (sanitation, conservation, determinism)
//! reusable against the event path.
//!
//! ```
//! use std::sync::Arc;
//! use bgp_model::prelude::*;
//! use community_dict::prelude::*;
//! use looking_glass::prelude::*;
//! use parking_lot::RwLock;
//! use route_server::prelude::*;
//! use stream::prelude::*;
//!
//! let mut rs = RouteServer::for_ixp(IxpId::Linx);
//! rs.add_member(Asn(39120), true, false);
//! rs.announce(
//!     Asn(39120),
//!     Route::builder("193.0.10.0/24".parse().unwrap(), "198.32.0.7".parse().unwrap())
//!         .path([39120, 15169])
//!         .build(),
//! );
//!
//! // drain the monitoring feed instead of paging through snapshots
//! let lg = LgServer::new(Arc::new(RwLock::new(rs)), 42);
//! let mut state = RouterState::new(IxpId::Linx);
//! let mut transport = &lg;
//! StreamCollector::default().drain(&mut state, &mut transport, 0).unwrap();
//! assert_eq!(state.route_count(), 1);
//! assert_eq!(state.to_snapshot(Afi::Ipv4, 0).route_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
mod metrics;
pub mod state;

/// Common re-exports.
pub mod prelude {
    pub use crate::collector::{DrainReport, StreamCollector, StreamConfig};
    pub use crate::state::{
        DeltaConsumer, PeerSession, RouteDelta, RouterState, StateStore, StreamStats,
    };
}

pub use prelude::*;

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use parking_lot::RwLock;

    use bgp_model::asn::Asn;
    use bgp_model::prefix::Afi;
    use bgp_model::route::Route;
    use community_dict::ixp::IxpId;
    use looking_glass::client::{Collector, LgTransport};
    use looking_glass::server::LgServer;
    use route_server::server::RouteServer;

    use crate::prelude::*;

    fn route(pfx: &str, announcer: u32) -> Route {
        Route::builder(pfx.parse().unwrap(), "198.32.0.7".parse().unwrap())
            .path([announcer, 15169])
            .build()
    }

    fn lg_with_routes(n: usize) -> LgServer {
        let mut rs = RouteServer::for_ixp(IxpId::Linx);
        rs.add_member(Asn(39120), true, false);
        rs.add_member(Asn(6939), true, true);
        for i in 0..n {
            rs.announce(
                Asn(39120),
                route(&format!("193.{}.{}.0/24", i / 250, i % 250), 39120),
            );
        }
        LgServer::new(Arc::new(RwLock::new(rs)), 7)
    }

    fn drain(lg: &LgServer, state: &mut RouterState) -> DrainReport {
        let mut t = lg;
        StreamCollector::default().drain(state, &mut t, 0).unwrap()
    }

    #[test]
    fn initial_dump_rebuilds_current_state() {
        let lg = lg_with_routes(600); // more than two STREAM_PAGEs
        let mut state = RouterState::new(IxpId::Linx);
        let report = drain(&lg, &mut state);
        assert_eq!(state.peer_count(), 2);
        assert_eq!(state.route_count(), 600);
        // 2 peer-ups + 600 announces, applied exactly once
        assert_eq!(report.applied, 602);
        assert!(report.polls >= 3, "600+ frames need several pages");
    }

    #[test]
    fn incremental_events_flow_after_the_dump() {
        let lg = lg_with_routes(3);
        let mut state = RouterState::new(IxpId::Linx);
        drain(&lg, &mut state);
        {
            let rs = lg.route_server();
            let mut rs = rs.write();
            rs.announce(Asn(6939), route("81.0.0.0/24", 6939));
            rs.withdraw(Asn(39120), &"193.0.0.0/24".parse().unwrap());
        }
        let report = drain(&lg, &mut state);
        assert_eq!(report.applied, 2);
        assert_eq!(state.route_count(), 3); // +1 announce, -1 withdraw
        assert_eq!(report.resyncs, 0);
    }

    #[test]
    fn session_reset_replays_and_dedup_absorbs_it() {
        let lg = lg_with_routes(10);
        let mut state = RouterState::new(IxpId::Linx);
        drain(&lg, &mut state);
        let applied_before = state.stats().applied;
        lg.reset_stream();
        let report = drain(&lg, &mut state);
        assert_eq!(report.resyncs, 1);
        assert_eq!(
            state.stats().applied,
            applied_before,
            "replayed frames must all be deduped"
        );
        assert!(state.stats().dupes_dropped > 0);
        assert_eq!(state.route_count(), 10);
    }

    #[test]
    fn without_dedup_a_replay_double_applies() {
        let lg = lg_with_routes(10);
        let collector = StreamCollector::new(StreamConfig {
            dedup_replays: false,
            ..StreamConfig::default()
        });
        let mut state = RouterState::new(IxpId::Linx);
        let mut t = &lg;
        collector.drain(&mut state, &mut t, 0).unwrap();
        let applied_before = state.stats().applied;
        lg.reset_stream();
        let mut t = &lg;
        collector.drain(&mut state, &mut t, 0).unwrap();
        // state converges anyway (the event algebra is last-writer-wins)
        assert_eq!(state.route_count(), 10);
        // ...but the update count betrays the duplicate application,
        // which is exactly what the chaos conservation oracle checks
        assert!(state.stats().applied > applied_before);
        assert_eq!(state.stats().dupes_dropped, 0);
    }

    #[test]
    fn peer_down_synthesizes_withdraws() {
        let lg = lg_with_routes(5);
        let mut state = RouterState::new(IxpId::Linx);
        drain(&lg, &mut state);
        lg.route_server().write().remove_member(Asn(39120));
        drain(&lg, &mut state);
        assert_eq!(state.route_count(), 0);
        assert_eq!(state.peer_count(), 1);
        assert_eq!(state.stats().synth_withdraws, 5);
    }

    #[test]
    fn streamed_snapshot_equals_polled_snapshot() {
        let lg = lg_with_routes(300);
        // stream path
        let mut state = RouterState::new(IxpId::Linx);
        drain(&lg, &mut state);
        let streamed = state.to_snapshot(Afi::Ipv4, 3);
        // poll path against the same server
        let mut t = &lg;
        let polled = Collector::default()
            .collect(&mut t, Afi::Ipv4, 3, 0)
            .unwrap()
            .snapshot;
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&polled).unwrap(),
            "streamed state must serialize byte-identically to the poll"
        );
    }

    #[test]
    fn state_store_keys_routers_independently() {
        let mut store = StateStore::new();
        store
            .router(IxpId::Linx)
            .apply(&route_server::events::RibEvent::PeerUp {
                peer: Asn(1),
                ipv4: true,
                ipv6: false,
            });
        assert_eq!(store.router(IxpId::Linx).peer_count(), 1);
        assert!(store.get(IxpId::DeCixFra).is_none());
        assert_eq!(store.stats().applied, 1);
    }

    #[test]
    fn transport_trait_is_object_safe_for_streams() {
        // the poll request flows through the same LgTransport as the
        // snapshot collector's requests (trace framing included)
        let lg = lg_with_routes(1);
        let mut t: &LgServer = &lg;
        let resp = t
            .request(
                &looking_glass::api::LgRequest::StreamPoll {
                    session: 0,
                    after: 0,
                },
                0,
            )
            .unwrap();
        assert!(matches!(
            resp,
            looking_glass::api::LgResponse::StreamEvents { .. }
        ));
    }
}
