//! The incremental state store.
//!
//! Conceptually keyed by `(router, peer, prefix)` — implemented as a
//! [`BTreeMap`] of routers, each holding a `BTreeMap<Asn, BTreeMap<Prefix,
//! Route>>`, so every iteration order is deterministic and matches the
//! polled collector's output (members in ASN order, each member's routes
//! in prefix order). Two BMP-style obligations live here:
//!
//! - **replay dedup**: the feed's sequence numbers are global and dense,
//!   so after a monitoring-session reset the server's replay re-delivers
//!   frames the store has already applied; [`RouterState::ingest`] skips
//!   any frame at or below its applied high-water mark (disable only to
//!   demonstrate the corruption — the chaos update-conservation oracle
//!   catches it);
//! - **synthesized withdraws**: a `PeerDown` event removes the peer's
//!   whole table, counting one synthesized withdraw per removed route —
//!   the stream analogue of the poll path simply not listing a departed
//!   member.

use std::collections::BTreeMap;

use bgp_model::asn::Asn;
use bgp_model::prefix::{Afi, Prefix};
use bgp_model::route::Route;
use community_dict::ixp::IxpId;
use looking_glass::api::StreamFrame;
use looking_glass::snapshot::Snapshot;
use route_server::events::RibEvent;

/// What one applied [`RibEvent`] changed in the store, expressed so a
/// consumer can maintain derived state *incrementally*: every variant
/// carries both the removed ("retract this") and the inserted ("apply
/// this") sides of the mutation, plus the session context that decides
/// visibility (a route is visible for a family iff its announcer holds a
/// session for that family — exactly [`RouterState::to_snapshot`]'s
/// filter). Borrows point into the store right after the mutation, so
/// emitting a delta is allocation-free.
#[derive(Debug)]
pub enum RouteDelta<'a> {
    /// A peer session came up or changed families. `routes` is the
    /// peer's *current* table: routes whose family just gained a session
    /// became visible, routes whose family just lost one became
    /// invisible.
    PeerUp {
        /// The peer.
        peer: Asn,
        /// Session flags before the event (`None`: peer was unknown).
        prev: Option<PeerSession>,
        /// Session flags after the event.
        now: PeerSession,
        /// The peer's stored table (possibly empty), both families.
        routes: &'a BTreeMap<Prefix, Route>,
    },
    /// A peer went down: its session and whole table were removed.
    PeerDown {
        /// The peer.
        peer: Asn,
        /// Session flags before the teardown (`None`: no session held).
        prev: Option<PeerSession>,
        /// The removed table (the synthesized withdraws), both families.
        routes: &'a BTreeMap<Prefix, Route>,
    },
    /// A route was inserted, possibly replacing one at the same prefix.
    Announce {
        /// The announcing peer.
        peer: Asn,
        /// The peer's current session flags (`None`: no session — the
        /// route is invisible until a `PeerUp` arrives).
        session: Option<PeerSession>,
        /// The route this announcement replaced, if any.
        old: Option<&'a Route>,
        /// The route now stored.
        new: &'a Route,
    },
    /// A stored route was withdrawn. Withdraws that matched nothing emit
    /// no delta — the store did not change.
    Withdraw {
        /// The withdrawing peer.
        peer: Asn,
        /// The peer's current session flags.
        session: Option<PeerSession>,
        /// The removed route.
        old: &'a Route,
    },
}

/// A consumer of per-event store deltas — the hook incremental analyses
/// attach to. [`RouterState::apply_with`] calls [`DeltaConsumer::on_delta`]
/// exactly once per store mutation, *after* the mutation, tagged with the
/// router's IXP.
pub trait DeltaConsumer {
    /// One applied event's delta.
    fn on_delta(&mut self, ixp: IxpId, delta: &RouteDelta<'_>);
}

/// The no-op consumer: `()` discards deltas, making the plain
/// [`RouterState::apply`]/[`RouterState::ingest`] path zero-cost.
impl DeltaConsumer for () {
    fn on_delta(&mut self, _ixp: IxpId, _delta: &RouteDelta<'_>) {}
}

/// A member's session state as observed on the feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerSession {
    /// IPv4 session present.
    pub ipv4: bool,
    /// IPv6 session present.
    pub ipv6: bool,
}

impl PeerSession {
    /// Session presence for one family.
    pub fn has(&self, afi: Afi) -> bool {
        match afi {
            Afi::Ipv4 => self.ipv4,
            Afi::Ipv6 => self.ipv6,
        }
    }
}

/// Monotonic per-router stream accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events applied to the store (post-dedup).
    pub applied: u64,
    /// Replayed frames skipped by sequence-number dedup.
    pub dupes_dropped: u64,
    /// Session resyncs observed (reset + replay).
    pub resyncs: u64,
    /// Withdraws synthesized by peer-down events.
    pub synth_withdraws: u64,
}

impl StreamStats {
    /// Component-wise sum.
    pub fn add(&mut self, other: &StreamStats) {
        self.applied += other.applied;
        self.dupes_dropped += other.dupes_dropped;
        self.resyncs += other.resyncs;
        self.synth_withdraws += other.synth_withdraws;
    }
}

/// The live state of one monitored route server.
#[derive(Debug, Clone)]
pub struct RouterState {
    ixp: IxpId,
    /// Session generation last confirmed by the server (0 = never polled).
    pub(crate) session: u64,
    /// Applied high-water mark: the largest frame seq ever ingested, which
    /// doubles as the poll cursor (the feed is served contiguously).
    pub(crate) cursor: u64,
    peers: BTreeMap<Asn, PeerSession>,
    routes: BTreeMap<Asn, BTreeMap<Prefix, Route>>,
    stats: StreamStats,
}

impl RouterState {
    /// Empty state for one router.
    pub fn new(ixp: IxpId) -> Self {
        RouterState {
            ixp,
            session: 0,
            cursor: 0,
            peers: BTreeMap::new(),
            routes: BTreeMap::new(),
            stats: StreamStats::default(),
        }
    }

    /// The router's IXP.
    pub fn ixp(&self) -> IxpId {
        self.ixp
    }

    /// The session generation last seen from the server.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The applied/poll high-water mark.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Stream accounting so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Count one observed session resync.
    pub fn note_resync(&mut self) {
        self.stats.resyncs += 1;
    }

    /// Ingest one frame. With `dedup` on (the defended default), a frame
    /// at or below the applied high-water mark is a replayed duplicate
    /// and is skipped; returns whether the event was applied.
    pub fn ingest(&mut self, frame: &StreamFrame, dedup: bool) -> bool {
        self.ingest_with(frame, dedup, &mut ())
    }

    /// [`RouterState::ingest`], forwarding each applied event's delta to
    /// `consumer`. Deduped replays emit no delta — the store did not
    /// change, so neither does any derived state.
    pub fn ingest_with(
        &mut self,
        frame: &StreamFrame,
        dedup: bool,
        consumer: &mut dyn DeltaConsumer,
    ) -> bool {
        if dedup && frame.seq <= self.cursor {
            self.stats.dupes_dropped += 1;
            return false;
        }
        self.cursor = self.cursor.max(frame.seq);
        self.apply_with(&frame.event, consumer);
        true
    }

    /// Apply one event unconditionally (the raw event path; dedup and
    /// cursor bookkeeping are [`RouterState::ingest`]'s job).
    pub fn apply(&mut self, event: &RibEvent) {
        self.apply_with(event, &mut ())
    }

    /// [`RouterState::apply`], forwarding the mutation's [`RouteDelta`]
    /// to `consumer` after the store has changed.
    pub fn apply_with(&mut self, event: &RibEvent, consumer: &mut dyn DeltaConsumer) {
        self.stats.applied += 1;
        match event {
            RibEvent::PeerUp { peer, ipv4, ipv6 } => {
                let now = PeerSession {
                    ipv4: *ipv4,
                    ipv6: *ipv6,
                };
                let prev = self.peers.insert(*peer, now);
                let empty = BTreeMap::new();
                let routes = self.routes.get(peer).unwrap_or(&empty);
                consumer.on_delta(
                    self.ixp,
                    &RouteDelta::PeerUp {
                        peer: *peer,
                        prev,
                        now,
                        routes,
                    },
                );
            }
            RibEvent::PeerDown { peer } => {
                let prev = self.peers.remove(peer);
                let removed = self.routes.remove(peer);
                let empty = BTreeMap::new();
                let routes = removed.as_ref().unwrap_or(&empty);
                self.stats.synth_withdraws += routes.len() as u64;
                consumer.on_delta(
                    self.ixp,
                    &RouteDelta::PeerDown {
                        peer: *peer,
                        prev,
                        routes,
                    },
                );
            }
            RibEvent::Announce { peer, route } => {
                let old = self
                    .routes
                    .entry(*peer)
                    .or_default()
                    .insert(route.prefix, route.clone());
                consumer.on_delta(
                    self.ixp,
                    &RouteDelta::Announce {
                        peer: *peer,
                        session: self.peers.get(peer).copied(),
                        old: old.as_ref(),
                        new: route,
                    },
                );
            }
            RibEvent::Withdraw { peer, prefix } => {
                let old = self
                    .routes
                    .get_mut(peer)
                    .and_then(|table| table.remove(prefix));
                if let Some(old) = old {
                    consumer.on_delta(
                        self.ixp,
                        &RouteDelta::Withdraw {
                            peer: *peer,
                            session: self.peers.get(peer).copied(),
                            old: &old,
                        },
                    );
                }
            }
        }
    }

    /// Members with a session for `afi`, in ASN order.
    pub fn members_for(&self, afi: Afi) -> impl Iterator<Item = Asn> + '_ {
        self.peers
            .iter()
            .filter(move |(_, s)| s.has(afi))
            .map(|(asn, _)| *asn)
    }

    /// Routes currently held, across peers and families.
    pub fn route_count(&self) -> usize {
        self.routes.values().map(BTreeMap::len).sum()
    }

    /// Members currently up (any family).
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Synthesize the end-of-day snapshot for one family: exactly what
    /// the polled collector assembles from a clean collection — members
    /// in ASN order, routes grouped per announcing member in prefix
    /// order, `partial = false` and no failed peers (a drained feed has
    /// no notion of an unreachable peer).
    pub fn to_snapshot(&self, afi: Afi, day: u32) -> Snapshot {
        let members: Vec<Asn> = self.members_for(afi).collect();
        let mut routes: Vec<(Asn, Route)> = Vec::new();
        for &asn in &members {
            if let Some(table) = self.routes.get(&asn) {
                routes.extend(
                    table
                        .values()
                        .filter(|r| r.afi() == afi)
                        .map(|r| (asn, r.clone())),
                );
            }
        }
        Snapshot {
            ixp: self.ixp,
            day,
            afi,
            members,
            routes,
            partial: false,
            failed_peers: Vec::new(),
        }
    }
}

/// The collector-side store: one [`RouterState`] per monitored router.
#[derive(Debug, Clone, Default)]
pub struct StateStore {
    routers: BTreeMap<IxpId, RouterState>,
}

impl StateStore {
    /// Empty store.
    pub fn new() -> Self {
        StateStore::default()
    }

    /// The state for one router, created empty on first access.
    pub fn router(&mut self, ixp: IxpId) -> &mut RouterState {
        self.routers
            .entry(ixp)
            .or_insert_with(|| RouterState::new(ixp))
    }

    /// The state for one router, if it has ever been polled.
    pub fn get(&self, ixp: IxpId) -> Option<&RouterState> {
        self.routers.get(&ixp)
    }

    /// All router states, in IXP order.
    pub fn routers(&self) -> impl Iterator<Item = &RouterState> {
        self.routers.values()
    }

    /// Accounting summed over every router.
    pub fn stats(&self) -> StreamStats {
        let mut total = StreamStats::default();
        for r in self.routers.values() {
            total.add(&r.stats());
        }
        total
    }
}
