//! Stream-collector telemetry. The state store itself records nothing —
//! the event path stays allocation- and registry-free — so the collector
//! mirrors [`crate::state::StreamStats`] deltas onto these handles after
//! each drain. Handles are minted once from [`obs::global()`] with names
//! from the `obs::names` registry only.

use std::sync::OnceLock;

use obs::{names, Counter};

pub(crate) struct StreamMetrics {
    /// Update events applied to the state store (post-dedup).
    pub updates: Counter,
    /// Monitoring-session resyncs the collector performed.
    pub resyncs: Counter,
    /// Withdraws synthesized on peer-down events.
    pub synth_withdraws: Counter,
    /// Replayed frames skipped by sequence-number dedup.
    pub dupes_dropped: Counter,
    /// Poll requests issued (retries included).
    pub polls: Counter,
}

pub(crate) fn handles() -> &'static StreamMetrics {
    static HANDLES: OnceLock<StreamMetrics> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let registry = obs::global();
        StreamMetrics {
            updates: registry.counter(names::STREAM_UPDATES),
            resyncs: registry.counter(names::STREAM_RESYNCS),
            synth_withdraws: registry.counter(names::STREAM_SYNTH_WITHDRAWS),
            dupes_dropped: registry.counter(names::STREAM_DUPES_DROPPED),
            polls: registry.counter(names::STREAM_POLLS),
        }
    })
}
