//! The streaming collector: polls a router's monitoring feed through any
//! [`LgTransport`] until quiescent, maintaining a [`RouterState`].
//!
//! The poll loop mirrors the snapshot collector's discipline — paced
//! requests, bounded retries with backoff, every wait routed through the
//! [`Clock`] trait — so the same chaos transports and virtual-clock
//! campaigns drive both paths. `TraceContext` propagation comes with the
//! transport: a poll is an ordinary [`LgRequest`], so the TCP framing
//! wraps it in a `TracedRequest` and the server adopts the caller's span
//! exactly as it does for summary/routes requests.

use looking_glass::api::{LgError, LgRequest, LgResponse};
use looking_glass::client::LgTransport;
use looking_glass::clock::{Clock, SystemClock, VirtualClock};

use crate::metrics;
use crate::state::RouterState;

/// Stream-collector pacing, retry, and dedup configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Milliseconds between consecutive polls (pacing).
    pub poll_interval_ms: u64,
    /// Retries per failed poll.
    pub max_retries: u32,
    /// Backoff after a failure or rate-limit response.
    pub retry_backoff_ms: u64,
    /// Skip replayed frames at or below the applied high-water mark.
    /// The defended default; disable only to demonstrate the duplicate
    /// application the chaos update-conservation oracle catches.
    pub dedup_replays: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            poll_interval_ms: 60,
            max_retries: 3,
            retry_backoff_ms: 500,
            dedup_replays: true,
        }
    }
}

/// Result of draining one feed to quiescence.
#[derive(Debug, Clone, Copy, Default)]
pub struct DrainReport {
    /// Poll requests issued (retries included).
    pub polls: u64,
    /// Polls that failed (transient or final).
    pub failures: u64,
    /// Frames received (before dedup).
    pub frames: u64,
    /// Events applied to the state store.
    pub applied: u64,
    /// Session resyncs observed during this drain.
    pub resyncs: u64,
    /// Simulated duration of the drain, ms.
    pub duration_ms: u64,
}

/// The streaming collector.
#[derive(Debug, Clone, Default)]
pub struct StreamCollector {
    config: StreamConfig,
}

impl StreamCollector {
    /// Collector with explicit configuration.
    pub fn new(config: StreamConfig) -> Self {
        StreamCollector { config }
    }

    /// Drain `state`'s feed through `transport` until the server reports
    /// an empty backlog. Picks the clock from the transport, like the
    /// snapshot collector does.
    pub fn drain<T: LgTransport>(
        &self,
        state: &mut RouterState,
        transport: &mut T,
        start_ms: u64,
    ) -> Result<DrainReport, LgError> {
        if transport.is_real_time() {
            self.drain_with_clock(state, transport, &SystemClock::starting_at(start_ms))
        } else {
            self.drain_with_clock(state, transport, &VirtualClock::new(start_ms))
        }
    }

    /// Drain the feed with every wait routed through `clock`.
    pub fn drain_with_clock<T: LgTransport>(
        &self,
        state: &mut RouterState,
        transport: &mut T,
        clock: &dyn Clock,
    ) -> Result<DrainReport, LgError> {
        self.drain_with_clock_into(state, transport, clock, &mut ())
    }

    /// [`StreamCollector::drain_with_clock`], forwarding every applied
    /// event's [`crate::state::RouteDelta`] to `consumer` — the hook an
    /// incremental analysis attaches to so derived aggregates advance in
    /// lockstep with the store.
    pub fn drain_with_clock_into<T: LgTransport>(
        &self,
        state: &mut RouterState,
        transport: &mut T,
        clock: &dyn Clock,
        consumer: &mut dyn crate::state::DeltaConsumer,
    ) -> Result<DrainReport, LgError> {
        let _span = obs::span!(obs::names::STREAM_DRAIN);
        let start_ms = clock.now_ms();
        let before = state.stats();
        let mut report = DrainReport::default();
        loop {
            let req = LgRequest::StreamPoll {
                session: state.session(),
                after: state.cursor(),
            };
            let resp = self.request_with_retry(transport, &req, clock, &mut report)?;
            let LgResponse::StreamEvents {
                session,
                frames,
                backlog,
                resync,
            } = resp
            else {
                return Err(LgError::Transport("stream: wrong response type".into()));
            };
            if resync && state.session() != 0 {
                // the server reset the monitoring session and is replaying
                // the feed; dedup (by original seq) absorbs the replay
                state.note_resync();
            }
            state.session = session;
            report.frames += frames.len() as u64;
            for frame in &frames {
                state.ingest_with(frame, self.config.dedup_replays, consumer);
            }
            if backlog == 0 {
                break;
            }
        }
        report.duration_ms = clock.now_ms().saturating_sub(start_ms);
        let after = state.stats();
        let m = metrics::handles();
        m.updates.add(after.applied - before.applied);
        m.dupes_dropped
            .add(after.dupes_dropped - before.dupes_dropped);
        m.synth_withdraws
            .add(after.synth_withdraws - before.synth_withdraws);
        m.resyncs.add(after.resyncs - before.resyncs);
        report.applied = after.applied - before.applied;
        report.resyncs = after.resyncs - before.resyncs;
        Ok(report)
    }

    fn request_with_retry<T: LgTransport>(
        &self,
        transport: &mut T,
        req: &LgRequest,
        clock: &dyn Clock,
        report: &mut DrainReport,
    ) -> Result<LgResponse, LgError> {
        let m = metrics::handles();
        let mut last_err = LgError::ServerError;
        for _attempt in 0..=self.config.max_retries {
            clock.sleep_ms(self.config.poll_interval_ms);
            report.polls += 1;
            m.polls.inc();
            match transport.request(req, clock.now_ms()) {
                Ok(resp) => return Ok(resp),
                Err(e @ (LgError::RateLimited | LgError::ServerError | LgError::Transport(_))) => {
                    report.failures += 1;
                    clock.sleep_ms(self.config.retry_backoff_ms);
                    last_err = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }
}
