//! `StateStore` convergence properties, driven by the chaos crate's own
//! property framework: any protocol-legal delivery of a monitoring feed —
//! pagination into chunks, session resets replaying from arbitrary
//! earlier cursors, replay pages overshooting into fresh frames —
//! converges to exactly the state and accounting of one deduped
//! sequential application. A failure shrinks to a minimal (event log,
//! delivery schedule) pair and replays from the recorded choice stream.

use bgp_model::asn::Asn;
use bgp_model::prefix::{Afi, Prefix};
use bgp_model::route::Route;
use chaos::prelude::*;
use community_dict::ixp::IxpId;
use looking_glass::api::StreamFrame;
use route_server::events::RibEvent;
use stream::state::RouterState;

fn gen_prefix(c: &mut Choices) -> Prefix {
    // a small pool so announces overwrite and withdraws actually hit
    format!("10.0.{}.0/24", c.draw(7))
        .parse()
        .expect("pool prefix is valid")
}

fn gen_route(c: &mut Choices, peer: Asn) -> Route {
    let prefix = gen_prefix(c);
    let next_hop = "192.0.2.1".parse().expect("valid next hop");
    Route::builder(prefix, next_hop)
        .path([peer.0, 65_000 + c.draw(3) as u32])
        .build()
}

fn gen_event(c: &mut Choices) -> RibEvent {
    let peer = Asn(1 + c.draw(3) as u32);
    match c.draw(7) {
        0 => RibEvent::PeerUp {
            peer,
            ipv4: true,
            ipv6: c.draw_bool(500),
        },
        1 => RibEvent::PeerDown { peer },
        2 => RibEvent::Withdraw {
            peer,
            prefix: gen_prefix(c),
        },
        _ => RibEvent::Announce {
            peer,
            route: gen_route(c, peer),
        },
    }
}

/// One delivery scenario: a frame log plus the chunk schedule the
/// "server" serves it in. Chunks starting below the current position
/// model session-reset replays (their frames are duplicates the store
/// must dedup); chunks may also overshoot into fresh frames, like a
/// replay page that runs past the old cursor.
#[derive(Debug, Clone, PartialEq)]
struct Scenario {
    frames: Vec<StreamFrame>,
    chunks: Vec<(usize, usize)>,
}

fn gen_scenario_with_replays(c: &mut Choices, replay_per_mille: u64) -> Scenario {
    // continue-flag event list (not count-prefixed): deleting one
    // frame's aligned draws keeps everything after it aligned, which is
    // what lets the shrinker remove whole frames
    let mut events = vec![gen_event(c)];
    while events.len() < 40 && c.draw_bool(900) {
        events.push(gen_event(c));
    }
    let n = events.len();
    let frames = events
        .into_iter()
        .enumerate()
        .map(|(i, event)| StreamFrame {
            seq: i as u64 + 1,
            event,
        })
        .collect();
    let mut chunks = Vec::new();
    let mut pos = 0usize;
    let mut replays = 0u32;
    while pos < n {
        if replays < 8 && pos > 0 && c.draw_bool(replay_per_mille) {
            // a reset mid-delivery: the server replays from an earlier
            // point; the page may even overshoot past the old cursor
            let start = c.draw(pos as u64 - 1) as usize;
            let len = 1 + c.draw(6) as usize;
            chunks.push((start, (start + len).min(n)));
            replays += 1;
        }
        let len = 1 + c.draw(6) as usize;
        chunks.push((pos, (pos + len).min(n)));
        pos = (pos + len).min(n);
    }
    // trailing resets: replays arriving after the log is fully delivered
    while replays < 8 && c.draw_bool(replay_per_mille) {
        let start = c.draw(n as u64 - 1) as usize;
        let len = 1 + c.draw(6) as usize;
        chunks.push((start, (start + len).min(n)));
        replays += 1;
    }
    Scenario { frames, chunks }
}

fn gen_scenario(c: &mut Choices) -> Scenario {
    gen_scenario_with_replays(c, 350)
}

fn deliver(scenario: &Scenario, dedup: bool) -> RouterState {
    let mut state = RouterState::new(IxpId::Linx);
    for &(start, end) in &scenario.chunks {
        for frame in &scenario.frames[start..end] {
            state.ingest(frame, dedup);
        }
    }
    state
}

fn sequential(scenario: &Scenario) -> RouterState {
    let mut state = RouterState::new(IxpId::Linx);
    for frame in &scenario.frames {
        state.ingest(frame, true);
    }
    state
}

fn snapshots_equal(a: &RouterState, b: &RouterState) -> bool {
    [Afi::Ipv4, Afi::Ipv6].iter().all(|&afi| {
        let left = serde_json::to_string(&a.to_snapshot(afi, 0)).expect("snapshot serializes");
        let right = serde_json::to_string(&b.to_snapshot(afi, 0)).expect("snapshot serializes");
        left == right
    })
}

/// The headline property: deduped ingestion of any chunked, replayed
/// delivery is indistinguishable — state and accounting — from applying
/// the log once, in order.
#[test]
fn any_replayed_delivery_converges_to_sequential_application() {
    let config = CheckConfig {
        seed: 0x57AE0,
        iterations: 160,
        ..CheckConfig::default()
    };
    let prop = |s: &Scenario| {
        let interleaved = deliver(s, true);
        let reference = sequential(s);
        snapshots_equal(&interleaved, &reference)
            && interleaved.stats().applied == s.frames.len() as u64
            && reference.stats().applied == s.frames.len() as u64
            && interleaved.stats().synth_withdraws == reference.stats().synth_withdraws
            && interleaved.cursor() == s.frames.len() as u64
    };
    if let Err(ce) = check(&config, gen_scenario, prop) {
        panic!(
            "delivery does not converge (shrunk over {} step(s)):\n  {:?}\n  replay choices: {:?}",
            ce.shrink_steps, ce.value, ce.choices
        );
    }
}

/// Without replays there is nothing to dedup: a plain paginated delivery
/// applies every frame exactly once and drops nothing.
#[test]
fn paginated_delivery_without_replays_drops_nothing() {
    let config = CheckConfig {
        seed: 0x57AE1,
        iterations: 96,
        ..CheckConfig::default()
    };
    let prop = |s: &Scenario| {
        let state = deliver(s, true);
        state.stats().dupes_dropped == 0 && state.stats().applied == s.frames.len() as u64
    };
    if let Err(ce) = check(&config, |c| gen_scenario_with_replays(c, 0), prop) {
        panic!(
            "replay-free delivery misbehaved (shrunk over {} step(s)):\n  {:?}",
            ce.shrink_steps, ce.value
        );
    }
}

/// The shrinking demonstration: turn dedup off and the conservation
/// property (applied == frames) must fail on any scenario with a real
/// replay — and the framework shrinks it to one frame delivered twice.
#[test]
fn shrinking_minimizes_to_a_single_replayed_frame() {
    let config = CheckConfig {
        seed: 0x57AE2,
        iterations: 300,
        max_shrink_attempts: 4_000,
    };
    let result = check(&config, gen_scenario, |s: &Scenario| {
        deliver(s, false).stats().applied == s.frames.len() as u64
    });
    let ce = result.expect_err("replayed scenarios are reachable by the generator");
    let s = &ce.value;
    assert_eq!(s.frames.len(), 1, "frame log did not shrink: {s:?}");
    let delivered: usize = s.chunks.iter().map(|&(a, b)| b - a).sum();
    assert_eq!(delivered, 2, "delivery did not shrink: {s:?}");
    // and the counterexample replays from its recorded choices
    let mut replay = Choices::replay(ce.choices.clone());
    assert_eq!(&gen_scenario(&mut replay), s);
}
