//! Algebraic properties of the incremental report engine, driven by the
//! chaos crate's property framework: retraction is the exact inverse of
//! application (perturb a live state and undo the perturbation — the
//! report serializes byte-identically to before), and shard merging is
//! associative and commutative (any merge order of per-peer shards
//! equals the single-engine run). A failure shrinks to a minimal
//! workload and replays from the recorded choice stream.

use analysis::incremental::IncrementalReport;
use bgp_model::asn::Asn;
use bgp_model::community::StandardCommunity;
use bgp_model::prefix::{Afi, Prefix};
use bgp_model::route::Route;
use chaos::prelude::*;
use community_dict::ixp::IxpId;
use community_dict::schemes;
use route_server::events::RibEvent;
use stream::state::RouterState;

const IXP: IxpId = IxpId::Linx;

fn dicts() -> Vec<(IxpId, community_dict::dictionary::Dictionary)> {
    vec![(IXP, schemes::dictionary(IXP))]
}

fn gen_base_prefix(c: &mut Choices) -> Prefix {
    // a small pool so announces overwrite and withdraws actually hit
    format!("10.0.{}.0/24", c.draw(7))
        .parse()
        .expect("pool prefix is valid")
}

/// A route from `peer` with 0..=2 action communities (avoid-announce
/// targets drawn from the small peer/member pool) and occasionally an
/// out-of-scheme community the dictionary classifies as unknown.
fn gen_route(c: &mut Choices, peer: Asn, prefix: Prefix) -> Route {
    let next_hop = "198.32.0.7".parse().expect("valid next hop");
    let mut b = Route::builder(prefix, next_hop).path([peer.0, 15169]);
    for _ in 0..c.draw(2) {
        b = b.standard(schemes::avoid_community(IXP, Asn(1 + c.draw(5) as u32)));
    }
    if c.draw_bool(200) {
        b = b.standard(StandardCommunity(0xFFEE_0000 | c.draw(9) as u32));
    }
    b.build()
}

fn gen_event(c: &mut Choices) -> RibEvent {
    let peer = Asn(1 + c.draw(3) as u32);
    match c.draw(7) {
        0 => RibEvent::PeerUp {
            peer,
            ipv4: true,
            ipv6: c.draw_bool(500),
        },
        1 => RibEvent::PeerDown { peer },
        2 => RibEvent::Withdraw {
            peer,
            prefix: gen_base_prefix(c),
        },
        _ => {
            let prefix = gen_base_prefix(c);
            RibEvent::Announce {
                peer,
                route: gen_route(c, peer, prefix),
            }
        }
    }
}

/// Continue-flag event list (not count-prefixed), so the shrinker can
/// delete whole trailing events without misaligning later draws.
fn gen_log(c: &mut Choices) -> Vec<RibEvent> {
    let mut events = vec![gen_event(c)];
    while events.len() < 24 && c.draw_bool(850) {
        events.push(gen_event(c));
    }
    events
}

/// A perturbation announce on the `172.16/16` pool — disjoint from the
/// base pool, so withdrawing it restores the exact pre-perturbation
/// state (nothing from the base log is ever replaced by it).
fn gen_perturb(c: &mut Choices) -> RibEvent {
    let peer = Asn(1 + c.draw(3) as u32);
    let prefix: Prefix = format!("172.16.{}.0/24", c.draw(7))
        .parse()
        .expect("pool prefix is valid");
    RibEvent::Announce {
        peer,
        route: gen_route(c, peer, prefix),
    }
}

/// A base history plus a perturbation to apply and then undo.
#[derive(Debug, Clone, PartialEq)]
struct Workload {
    base: Vec<RibEvent>,
    perturb: Vec<RibEvent>,
}

fn gen_workload(c: &mut Choices) -> Workload {
    let base = gen_log(c);
    let mut perturb = vec![gen_perturb(c)];
    while perturb.len() < 8 && c.draw_bool(700) {
        perturb.push(gen_perturb(c));
    }
    Workload { base, perturb }
}

/// The withdraws that undo a perturbation, newest first. Duplicate
/// (peer, prefix) announces within the perturbation need only the one
/// withdraw; the extras are no-ops the engine must also survive.
fn undo_of(perturb: &[RibEvent]) -> Vec<RibEvent> {
    perturb
        .iter()
        .rev()
        .filter_map(|ev| match ev {
            RibEvent::Announce { peer, route } => Some(RibEvent::Withdraw {
                peer: *peer,
                prefix: route.prefix,
            }),
            _ => None,
        })
        .collect()
}

fn report_json(inc: &IncrementalReport) -> String {
    let units = [(IXP, Afi::Ipv4), (IXP, Afi::Ipv6)];
    serde_json::to_string(&inc.report_units(&units, 0)).expect("report serializes")
}

/// Drive `events` through a fresh `RouterState` with the incremental
/// report attached, exactly as the streaming pipeline does.
fn run<'a, I: IntoIterator<Item = &'a RibEvent>>(events: I) -> (RouterState, IncrementalReport) {
    let mut state = RouterState::new(IXP);
    let mut inc = IncrementalReport::new(&dicts());
    for ev in events {
        state.apply_with(ev, &mut inc);
    }
    (state, inc)
}

/// The headline inverse property: applying a perturbation and then
/// retracting it leaves the report byte-identical to before — every
/// counter, histogram, sketch and float derived from them.
#[test]
fn retract_is_the_exact_inverse_of_apply() {
    let config = CheckConfig {
        seed: 0x1F5E0,
        iterations: 128,
        ..CheckConfig::default()
    };
    let prop = |w: &Workload| {
        let (mut state, mut inc) = run(&w.base);
        let before = report_json(&inc);
        for ev in &w.perturb {
            state.apply_with(ev, &mut inc);
        }
        for ev in undo_of(&w.perturb) {
            state.apply_with(&ev, &mut inc);
        }
        report_json(&inc) == before
    };
    if let Err(ce) = check(&config, gen_workload, prop) {
        panic!(
            "retract did not invert apply (shrunk over {} step(s)):\n  {:?}\n  choices: {:?}",
            ce.shrink_steps, ce.value, ce.choices
        );
    }
}

/// Merging per-peer shards is associative and commutative: every merge
/// order of three disjoint shards serializes identically to the single
/// engine that saw the whole log.
#[test]
fn shard_merge_is_associative_and_commutative() {
    let config = CheckConfig {
        seed: 0x1F5E1,
        iterations: 96,
        ..CheckConfig::default()
    };
    let shard_of = |ev: &RibEvent| -> usize {
        let peer = match ev {
            RibEvent::PeerUp { peer, .. }
            | RibEvent::PeerDown { peer }
            | RibEvent::Withdraw { peer, .. }
            | RibEvent::Announce { peer, .. } => *peer,
        };
        peer.0 as usize % 3
    };
    let prop = |events: &Vec<RibEvent>| {
        let (_, whole) = run(events.iter());
        let shards: Vec<IncrementalReport> = (0..3)
            .map(|s| run(events.iter().filter(|ev| shard_of(ev) == s)).1)
            .collect();
        let expected = report_json(&whole);
        // ((a ⊔ b) ⊔ c), ((c ⊔ a) ⊔ b), ((b ⊔ c) ⊔ a): any association
        // and order of the same shards must rebuild the same report
        [[0, 1, 2], [2, 0, 1], [1, 2, 0]].iter().all(|order| {
            let mut merged = shards[order[0]].clone();
            merged.merge(&shards[order[1]]);
            merged.merge(&shards[order[2]]);
            report_json(&merged) == expected
        })
    };
    if let Err(ce) = check(&config, gen_log, prop) {
        panic!(
            "shard merge is order-sensitive (shrunk over {} step(s)):\n  {:?}\n  choices: {:?}",
            ce.shrink_steps, ce.value, ce.choices
        );
    }
}

/// The shrinking demonstration: disable retraction and the inverse
/// property must fail — and the framework shrinks the failure to one
/// visible announce perturbing a one-event base history.
#[test]
fn shrinking_minimizes_to_a_single_unretracted_announce() {
    let config = CheckConfig {
        seed: 0x1F5E2,
        iterations: 200,
        max_shrink_attempts: 4_000,
    };
    let result = check(&config, gen_workload, |w: &Workload| {
        let (mut state, mut inc) = run(&w.base);
        inc.set_retraction_enabled(false);
        let before = report_json(&inc);
        for ev in &w.perturb {
            state.apply_with(ev, &mut inc);
        }
        for ev in undo_of(&w.perturb) {
            state.apply_with(&ev, &mut inc);
        }
        report_json(&inc) == before
    });
    let ce = result.expect_err("visible perturbations are reachable by the generator");
    let w = &ce.value;
    assert_eq!(w.perturb.len(), 1, "perturbation did not shrink: {w:?}");
    assert_eq!(w.base.len(), 1, "base history did not shrink: {w:?}");
    // the counterexample replays from its recorded choices
    let mut replay = Choices::replay(ce.choices.clone());
    assert_eq!(&gen_workload(&mut replay), w);
}
