//! The chaos suite: the 32-seed CI corpus, one oracle-sensitivity
//! fixture per fault class, the replay entry point, and the wall-time
//! regression that proves the whole campaign runs on the virtual clock.
//!
//! Every failure printed by this suite includes a replay command; run it
//! to re-execute the exact `(seed, fault_plan)` campaign that failed.

use chaos::prelude::*;
use looking_glass::client::CollectorConfig;

fn corpus_seeds() -> Vec<u64> {
    // the CI chaos stage pins CHAOS_SEEDS=32 on the release binary; a
    // plain debug `cargo test` keeps a smaller default so tier-1 stays
    // quick on small machines
    let default = if cfg!(debug_assertions) { 8 } else { 32 };
    let n: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default);
    (0..n).collect()
}

fn replay_hint(seed: u64, plan: &FaultPlan) -> String {
    format!(
        "replay with: CHAOS_REPLAY='{{\"seed\":{seed},\"plan\":{}}}' \
         cargo test -p chaos --test chaos_suite replay_from_env -- --nocapture --ignored",
        plan.to_json()
    )
}

/// Run the full (baseline, faulted, rerun) triple for one seed — plus
/// the stream path's dual campaign and its determinism rerun — and
/// return any violations.
fn run_seed(seed: u64, plan: &FaultPlan, cfg: &CampaignConfig) -> Vec<Violation> {
    let baseline = run_campaign(seed, &FaultPlan::none(), cfg);
    let outcome = run_campaign(seed, plan, cfg);
    let mut violations = check_campaign(&outcome, &baseline, plan, cfg);
    let rerun = run_campaign(seed, plan, cfg);
    violations.extend(check_determinism(&outcome, &rerun));
    let streamed = run_stream_campaign(seed, plan, cfg);
    violations.extend(check_stream_campaign(&streamed, plan, cfg));
    let stream_rerun = run_stream_campaign(seed, plan, cfg);
    if streamed.dataset_hash != stream_rerun.dataset_hash {
        violations.push(Violation::NonDeterministic {
            first: streamed.dataset_hash,
            second: stream_rerun.dataset_hash,
        });
    }
    violations
}

#[test]
fn corpus_all_seeds_green_and_deterministic() {
    let cfg = CampaignConfig::default();
    for seed in corpus_seeds() {
        let plan = FaultPlan::from_seed(seed, cfg.days);
        let violations = run_seed(seed, &plan, &cfg);
        assert!(
            violations.is_empty(),
            "seed {seed}: {} violation(s):\n  {}\n{}",
            violations.len(),
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n  "),
            replay_hint(seed, &plan)
        );
    }
}

#[test]
fn corpus_plans_cover_every_fault_class() {
    // the fixed CI corpus must actually exercise all eleven classes
    let cfg = CampaignConfig::default();
    let mut seen = std::collections::BTreeSet::new();
    for seed in corpus_seeds() {
        let plan = FaultPlan::from_seed(seed, cfg.days);
        for class in FaultClass::ALL {
            let covered = match class {
                FaultClass::Drop => plan.drop_per_mille > 0,
                FaultClass::Duplicate => plan.dup_per_mille > 0,
                FaultClass::Delay => plan.delay_per_mille > 0 && plan.delay_ms > 0,
                FaultClass::Garbage => plan.garbage_per_mille > 0,
                FaultClass::Reorder => plan.reorder_per_mille > 0,
                FaultClass::Truncate => !plan.truncate_days.is_empty(),
                FaultClass::Storm => !plan.storm_days.is_empty(),
                FaultClass::Flap => !plan.flap_days.is_empty(),
                FaultClass::Churn => !plan.churn_days.is_empty(),
                FaultClass::Reset => plan.reset_per_mille > 0,
                FaultClass::LostPeerDown => plan.lost_down_per_mille > 0,
            };
            if covered {
                seen.insert(class.name());
            }
        }
    }
    for class in FaultClass::ALL {
        assert!(
            seen.contains(class.name()),
            "corpus never schedules fault class {:?}",
            class
        );
    }
}

/// Property: any plan the generator can derive, at any world seed, runs
/// green. A failure shrinks to a minimal `(seed, plan)` pair.
#[test]
fn property_random_plans_preserve_all_invariants() {
    let cfg = CampaignConfig::default();
    let days = cfg.days;
    let gen = move |c: &mut Choices| {
        let seed = c.draw(0xFFFF);
        let plan = FaultPlan::from_choices(c, days);
        (seed, plan)
    };
    let result = chaos::prop::check(
        &CheckConfig {
            seed: 0x5EED_CA5E,
            iterations: 6,
            max_shrink_attempts: 60,
        },
        gen,
        |(seed, plan)| run_seed(*seed, plan, &cfg).is_empty(),
    );
    if let Err(ce) = result {
        let (seed, plan) = &ce.value;
        let violations = run_seed(*seed, plan, &cfg);
        panic!(
            "shrunk counterexample after {} step(s) (iteration seed {:#x}):\n  \
             seed={seed} plan={}\n  violations:\n  {}\n{}",
            ce.shrink_steps,
            ce.seed,
            plan.to_json(),
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n  "),
            replay_hint(*seed, plan)
        );
    }
}

/// Replay entry point: run `(seed, plan)` from the CHAOS_REPLAY env var
/// (a JSON object `{"seed": N, "plan": {...}}`) and report the oracles'
/// verdict. Ignored unless invoked explicitly by the printed hint.
#[test]
#[ignore = "replay entry point; set CHAOS_REPLAY and run with --ignored"]
fn replay_from_env() {
    let Ok(raw) = std::env::var("CHAOS_REPLAY") else {
        eprintln!("CHAOS_REPLAY not set; nothing to replay");
        return;
    };
    #[derive(serde::Deserialize)]
    struct Replay {
        seed: u64,
        plan: FaultPlan,
    }
    let replay: Replay = serde_json::from_str(&raw).expect("CHAOS_REPLAY must be valid JSON");
    let cfg = CampaignConfig::default();
    let violations = run_seed(replay.seed, &replay.plan, &cfg);
    assert!(
        violations.is_empty(),
        "replayed seed {}: {} violation(s):\n  {}",
        replay.seed,
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n  ")
    );
    eprintln!("replayed seed {}: green", replay.seed);
}

/// Satellite: the whole chaotic campaign — pacing, backoff, day spacing,
/// injected latency — runs on the virtual clock, so a multi-day campaign
/// with hundreds of waits finishes in well under a second of wall time.
#[test]
fn chaotic_campaign_runs_in_virtual_time() {
    let wall_start = std::time::Instant::now();
    let cfg = CampaignConfig::default();
    let plan = FaultPlan::from_seed(1, cfg.days);
    let outcome = run_campaign(1, &plan, &cfg);
    let wall = wall_start.elapsed();
    assert!(
        outcome.virtual_ms >= u64::from(cfg.days - 1) * DAY_MS,
        "campaign must span its days in logical time: {}ms",
        outcome.virtual_ms
    );
    assert!(
        wall < std::time::Duration::from_secs(1),
        "virtual-clock campaign took {wall:?} wall time — a real sleep leaked in"
    );
}

// ---------------------------------------------------------------------
// Oracle-sensitivity fixtures: one per fault class. Each injects a fault
// variant the defended pipeline cannot absorb and asserts the expected
// oracle actually fires — proving the invariants are live checks, not
// tautologies.
// ---------------------------------------------------------------------

fn undefended() -> CampaignConfig {
    // no retries: transient faults become data loss the oracles must see
    CampaignConfig {
        collector: CollectorConfig {
            max_retries: 0,
            ..CollectorConfig::default()
        },
        ..CampaignConfig::default()
    }
}

fn fixture_violations(seed: u64, plan: &FaultPlan, cfg: &CampaignConfig) -> Vec<Violation> {
    let baseline = run_campaign(seed, &FaultPlan::none(), cfg);
    let outcome = run_campaign(seed, plan, cfg);
    check_campaign(&outcome, &baseline, plan, cfg)
}

fn assert_fires(violations: &[Violation], pred: impl Fn(&Violation) -> bool, what: &str) {
    assert!(
        violations.iter().any(pred),
        "expected a {what} violation; got: {:?}",
        violations
    );
}

#[test]
fn fixture_drop_storm_of_losses_breaks_completeness() {
    let plan = FaultPlan {
        drop_per_mille: 300,
        ..FaultPlan::none()
    };
    let v = fixture_violations(0xD0, &plan, &undefended());
    assert_fires(
        &v,
        |v| matches!(v, Violation::CompletenessViolated { .. }),
        "CompletenessViolated",
    );
}

#[test]
fn fixture_duplicate_pages_corrupt_the_snapshot() {
    let plan = FaultPlan {
        dup_per_mille: 800,
        ..FaultPlan::none()
    };
    let cfg = CampaignConfig {
        collector: CollectorConfig {
            validate_pages: false,
            ..CollectorConfig::default()
        },
        ..CampaignConfig::default()
    };
    let v = fixture_violations(0xD1, &plan, &cfg);
    assert_fires(
        &v,
        |v| {
            matches!(
                v,
                Violation::DuplicateRoute { .. } | Violation::SummaryMismatch { .. }
            )
        },
        "DuplicateRoute/SummaryMismatch",
    );
}

#[test]
fn fixture_injected_delay_overruns_the_day_budget() {
    let plan = FaultPlan {
        delay_per_mille: 1000,
        delay_ms: 300_000,
        ..FaultPlan::none()
    };
    let v = fixture_violations(0xD2, &plan, &CampaignConfig::default());
    assert_fires(
        &v,
        |v| matches!(v, Violation::DayOverran { .. }),
        "DayOverran",
    );
}

#[test]
fn fixture_garbage_frames_break_completeness() {
    let plan = FaultPlan {
        garbage_per_mille: 400,
        ..FaultPlan::none()
    };
    let v = fixture_violations(0xD3, &plan, &undefended());
    assert_fires(
        &v,
        |v| matches!(v, Violation::CompletenessViolated { .. }),
        "CompletenessViolated",
    );
}

#[test]
fn fixture_reordered_pages_corrupt_the_snapshot() {
    let plan = FaultPlan {
        reorder_per_mille: 800,
        ..FaultPlan::none()
    };
    let cfg = CampaignConfig {
        collector: CollectorConfig {
            validate_pages: false,
            ..CollectorConfig::default()
        },
        ..CampaignConfig::default()
    };
    let v = fixture_violations(0xD4, &plan, &cfg);
    assert_fires(
        &v,
        |v| matches!(v, Violation::DuplicateRoute { .. }),
        "DuplicateRoute",
    );
}

#[test]
fn fixture_final_day_truncation_is_silent_corruption() {
    // an interior truncated day is a recoverable valley; truncating the
    // FINAL day leaves no recovery, so sanitation keeps the corrupt
    // snapshot — and the summary oracle must flag it
    let cfg = CampaignConfig::default();
    let plan = FaultPlan {
        truncate_days: vec![cfg.days - 1],
        ..FaultPlan::none()
    };
    let v = fixture_violations(0xD5, &plan, &cfg);
    assert_fires(
        &v,
        |v| matches!(v, Violation::SummaryMismatch { .. }),
        "SummaryMismatch",
    );
}

#[test]
fn fixture_rate_limit_storm_breaks_completeness() {
    let plan = FaultPlan {
        storm_days: vec![2],
        ..FaultPlan::none()
    };
    let v = fixture_violations(0xD6, &plan, &undefended());
    assert_fires(
        &v,
        |v| matches!(v, Violation::CompletenessViolated { .. }),
        "CompletenessViolated",
    );
}

#[test]
fn fixture_mid_collection_flap_contradicts_the_summary() {
    let plan = FaultPlan {
        flap_days: vec![2],
        mid_collection_flap: true,
        ..FaultPlan::none()
    };
    let v = fixture_violations(0xD7, &plan, &CampaignConfig::default());
    assert_fires(
        &v,
        |v| matches!(v, Violation::SummaryMismatch { .. }),
        "SummaryMismatch",
    );
}

#[test]
fn fixture_head_insert_churn_shifts_pagination() {
    let plan = FaultPlan {
        churn_days: vec![2],
        churn_events_per_day: 3,
        churn_head_insert: true,
        ..FaultPlan::none()
    };
    let v = fixture_violations(0xD8, &plan, &CampaignConfig::default());
    assert_fires(
        &v,
        |v| {
            matches!(
                v,
                Violation::DuplicateRoute { .. } | Violation::SummaryMismatch { .. }
            )
        },
        "DuplicateRoute/SummaryMismatch",
    );
}

#[test]
fn fixture_replayed_reset_without_dedup_breaks_conservation() {
    // a monitoring-session reset replays the feed from the start; a
    // collector that does not dedup by sequence number double-applies
    // the replayed frames, and the update-conservation oracle (events
    // applied vs frames minted) must catch it
    let cfg = CampaignConfig::default();
    let plan = FaultPlan {
        reset_per_mille: 500,
        replay_without_dedup: true,
        ..FaultPlan::none()
    };
    let outcome = run_stream_campaign(0xDA, &plan, &cfg);
    let v = check_stream_campaign(&outcome, &plan, &cfg);
    assert_fires(
        &v,
        |v| matches!(v, Violation::StreamConservationBroken { applied, minted } if applied > minted),
        "StreamConservationBroken (double application)",
    );
}

#[test]
fn fixture_silently_lost_peer_down_diverges_the_stream() {
    // the peer goes down for good but its teardown frame is masked on
    // the feed: the store keeps advertising the dead peer's routes, and
    // the end-of-day equivalence oracle must flag the divergence
    let cfg = CampaignConfig::default();
    let plan = FaultPlan {
        flap_days: vec![2],
        lose_peer_down_silent: true,
        ..FaultPlan::none()
    };
    let outcome = run_stream_campaign(0xDB, &plan, &cfg);
    let v = check_stream_campaign(&outcome, &plan, &cfg);
    assert_fires(
        &v,
        |v| matches!(v, Violation::StreamDivergence { .. }),
        "StreamDivergence",
    );
}

#[test]
fn fixture_disabled_retraction_diverges_the_incremental_report() {
    // with retraction disabled the incremental engine never subtracts a
    // withdrawn (or replaced) route's contribution, so churn makes its
    // aggregates drift above the batch recompute of the very same
    // streamed state — the incremental-divergence oracle must catch it
    let cfg = CampaignConfig::default();
    let plan = FaultPlan {
        churn_days: vec![1, 2, 3],
        churn_events_per_day: 3,
        disable_retraction: true,
        ..FaultPlan::none()
    };
    let outcome = run_stream_campaign(0xDF, &plan, &cfg);
    let v = check_stream_campaign(&outcome, &plan, &cfg);
    assert_fires(
        &v,
        |v| matches!(v, Violation::IncrementalDivergence { .. }),
        "IncrementalDivergence",
    );
    // the drift is one-directional and report-level only: the streamed
    // *store* still matches the polled reference every day
    for rec in &outcome.days {
        assert_eq!(
            rec.streamed_hash, rec.reference_hash,
            "day {}: the store itself must stay equivalent",
            rec.day
        );
    }
}

#[test]
fn session_resets_are_absorbed_by_dedup() {
    // the defended pipeline: heavy reset pressure forces replays, but
    // sequence-number dedup keeps conservation and equivalence intact
    let cfg = CampaignConfig::default();
    let plan = FaultPlan {
        reset_per_mille: 500,
        ..FaultPlan::none()
    };
    let outcome = run_stream_campaign(0xDC, &plan, &cfg);
    let v = check_stream_campaign(&outcome, &plan, &cfg);
    assert!(v.is_empty(), "expected clean absorption; got {v:?}");
    assert!(
        outcome.stats.faults.get("reset").copied().unwrap_or(0) > 0,
        "the fixture must actually inject resets"
    );
    assert!(
        outcome.stream_stats.dupes_dropped > 0,
        "replays must have been deduped"
    );
}

#[test]
fn cut_peer_down_pages_are_absorbed_by_the_cursor() {
    // the defended variant of the lost-peer-down fault: the page is cut
    // before the teardown frame, the reported backlog grows, and the
    // cursor re-serves the tail — nothing is lost
    let cfg = CampaignConfig::default();
    let plan = FaultPlan {
        flap_days: vec![2],
        lost_down_per_mille: 900,
        ..FaultPlan::none()
    };
    let outcome = run_stream_campaign(0xDE, &plan, &cfg);
    let v = check_stream_campaign(&outcome, &plan, &cfg);
    assert!(v.is_empty(), "expected clean absorption; got {v:?}");
    assert!(
        outcome
            .stats
            .faults
            .get("lost_peer_down")
            .copied()
            .unwrap_or(0)
            > 0,
        "the fixture must actually cut a peer-down page"
    );
}

#[test]
fn interior_truncation_is_absorbed_by_sanitation() {
    // the defended pipeline: an interior outage day is collected, then
    // removed by valley sanitation — no oracle fires
    let cfg = CampaignConfig::default();
    let plan = FaultPlan {
        truncate_days: vec![2],
        ..FaultPlan::none()
    };
    let baseline = run_campaign(0xD9, &FaultPlan::none(), &cfg);
    let outcome = run_campaign(0xD9, &plan, &cfg);
    let v = check_campaign(&outcome, &baseline, &plan, &cfg);
    assert!(v.is_empty(), "expected clean absorption; got {v:?}");
    assert!(
        outcome.sanitized.iter().all(|s| s.day != 2),
        "sanitation must drop the truncated day"
    );
    assert_eq!(outcome.store.len(), cfg.days as usize);
}
