//! UPDATE encode/decode round-trips driven by the chaos crate's own
//! property framework — unlike the vendored-`proptest` suite in
//! `bgp-wire`, a failure here shrinks to a minimal route via the
//! recorded choice stream, and the counterexample is replayable.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bgp_model::asn::Asn;
use bgp_model::community::{well_known, ExtendedCommunity, LargeCommunity, StandardCommunity};
use bgp_model::prefix::Prefix;
use bgp_model::route::{Origin, Route};
use bgp_wire::convert::{routes_to_update, routes_to_updates, update_to_routes};
use bgp_wire::message::Message;
use bytes::BytesMut;
use chaos::prelude::*;
use community_dict::ixp::IxpId;
use community_dict::schemes;

fn gen_v4_prefix(c: &mut Choices) -> Prefix {
    let len = c.draw(32) as u8;
    let bits = (c.draw(u64::from(u32::MAX)) as u32) & prefix_mask_v4(len);
    Prefix::new(IpAddr::V4(Ipv4Addr::from(bits)), len).expect("masked v4 prefix is valid")
}

fn prefix_mask_v4(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

fn gen_v6_prefix(c: &mut Choices) -> Prefix {
    let len = c.draw(128) as u8;
    let hi = u128::from(c.draw(u64::MAX)) << 64;
    let bits = (hi | u128::from(c.draw(u64::MAX))) & prefix_mask_v6(len);
    Prefix::new(IpAddr::V6(Ipv6Addr::from(bits)), len).expect("masked v6 prefix is valid")
}

fn prefix_mask_v6(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - u32::from(len))
    }
}

/// A standard community: mostly arbitrary values, with the interesting
/// corners — action communities (avoid / only / prepend), BLACKHOLE and
/// the other well-known values — drawn explicitly so every run covers
/// them.
fn gen_standard(c: &mut Choices) -> StandardCommunity {
    match c.draw(5) {
        0 => StandardCommunity::from_parts(c.draw(0xFFFF) as u16, c.draw(0xFFFF) as u16),
        1 => schemes::avoid_community(IxpId::DeCixFra, Asn(c.draw(0xFFFF) as u32)),
        2 => schemes::only_community(IxpId::Linx, Asn(c.draw(0xFFFF) as u32)),
        3 => schemes::prepend_community(IxpId::DeCixFra, Asn(c.draw(0xFFFF) as u32), 2)
            .unwrap_or(well_known::NO_EXPORT),
        4 => well_known::BLACKHOLE,
        _ => well_known::GRACEFUL_SHUTDOWN,
    }
}

fn gen_large(c: &mut Choices) -> LargeCommunity {
    LargeCommunity::new(
        c.draw(u64::from(u32::MAX)) as u32,
        c.draw(u64::from(u32::MAX)) as u32,
        c.draw(u64::from(u32::MAX)) as u32,
    )
}

fn gen_extended(c: &mut Choices) -> ExtendedCommunity {
    ExtendedCommunity::two_octet_as(
        c.draw(0xFF) as u8,
        c.draw(0xFFFF) as u16,
        c.draw(u64::from(u32::MAX)) as u32,
    )
}

fn gen_path(c: &mut Choices) -> Vec<u32> {
    let len = 1 + c.draw(5) as usize;
    (0..len).map(|_| 1 + c.draw(3_999_999) as u32).collect()
}

fn gen_route(c: &mut Choices, v6: bool) -> Route {
    let (prefix, next_hop) = if v6 {
        let hi = u128::from(c.draw(u64::MAX)) << 64;
        let nh = hi | u128::from(c.draw(u64::MAX));
        (gen_v6_prefix(c), IpAddr::V6(Ipv6Addr::from(nh)))
    } else {
        (
            gen_v4_prefix(c),
            IpAddr::V4(Ipv4Addr::from(c.draw(u64::from(u32::MAX)) as u32)),
        )
    };
    let path = gen_path(c);
    let origin = Origin::from_code(c.draw(2) as u8).expect("0..=2 is a valid origin");
    // continue-flag lists (not count-prefixed): deleting one element's
    // draws from the choice stream keeps everything after it aligned,
    // which is what lets the shrinker remove whole communities
    let mut standards = Vec::new();
    while standards.len() < 11 && c.draw_bool(700) {
        standards.push(gen_standard(c));
    }
    let mut route = Route::builder(prefix, next_hop)
        .path(path)
        .origin(origin)
        .standards(standards)
        .build();
    if !v6 {
        // extended communities ride the v4 attribute path in this codec
        while route.extended_communities.len() < 3 && c.draw_bool(400) {
            route.extended_communities.push(gen_extended(c));
        }
    }
    while route.large_communities.len() < 3 && c.draw_bool(400) {
        route.large_communities.push(gen_large(c));
    }
    if c.draw(1) == 1 {
        route.med = Some(c.draw(u64::from(u32::MAX)) as u32);
    }
    route
}

fn wire_roundtrip(route: &Route) -> Route {
    let update = routes_to_update(std::slice::from_ref(route));
    let wire = Message::Update(update).encode().expect("route encodes");
    let mut buf = BytesMut::from(&wire[..]);
    let Some(Message::Update(decoded)) = Message::decode(&mut buf).expect("frame decodes") else {
        panic!("decoded message is not an UPDATE");
    };
    assert!(buf.is_empty(), "decoder left trailing bytes");
    update_to_routes(&decoded)
        .expect("decoded update is valid")
        .announced
        .remove(0)
}

fn fail(ce: &CounterExample<Route>, afi: &str) -> ! {
    panic!(
        "{afi} route does not survive the wire (shrunk over {} step(s)):\n  {:?}\n  \
         replay choices: {:?}",
        ce.shrink_steps, ce.value, ce.choices
    );
}

#[test]
fn v4_routes_survive_update_roundtrip() {
    let config = CheckConfig {
        seed: 0x4117E,
        iterations: 192,
        ..CheckConfig::default()
    };
    if let Err(ce) = check(
        &config,
        |c| gen_route(c, false),
        |r| wire_roundtrip(r) == *r,
    ) {
        fail(&ce, "v4");
    }
}

#[test]
fn v6_routes_survive_update_roundtrip() {
    let config = CheckConfig {
        seed: 0x6117E,
        iterations: 192,
        ..CheckConfig::default()
    };
    if let Err(ce) = check(&config, |c| gen_route(c, true), |r| wire_roundtrip(r) == *r) {
        fail(&ce, "v6");
    }
}

#[test]
fn route_batches_survive_update_batching() {
    let config = CheckConfig {
        seed: 0xBA7C4,
        iterations: 64,
        ..CheckConfig::default()
    };
    let gen = |c: &mut Choices| {
        let n = 1 + c.draw(24) as usize;
        (0..n).map(|_| gen_route(c, false)).collect::<Vec<Route>>()
    };
    let prop = |routes: &Vec<Route>| {
        let updates = routes_to_updates(routes);
        let mut recovered: Vec<Route> = updates
            .iter()
            .flat_map(|u| update_to_routes(u).expect("valid update").announced)
            .collect();
        let mut expected = routes.clone();
        // batching regroups by shared attributes; compare as multisets
        recovered.sort_by_key(|r| (r.prefix, format!("{:?}", r.as_path)));
        expected.sort_by_key(|r| (r.prefix, format!("{:?}", r.as_path)));
        recovered == expected
    };
    if let Err(ce) = check(&config, gen, prop) {
        panic!(
            "batch of {} route(s) does not survive batching (shrunk over {} step(s)):\n  {:?}",
            ce.value.len(),
            ce.shrink_steps,
            ce.value
        );
    }
}

/// The shrinking demonstration: force a failure on any route carrying a
/// BLACKHOLE community and confirm the framework minimizes the whole
/// route down to the single load-bearing draw.
#[test]
fn shrinking_minimizes_to_the_load_bearing_community() {
    let config = CheckConfig {
        seed: 0x5412,
        iterations: 400,
        max_shrink_attempts: 4_000,
    };
    let result = check(
        &config,
        |c| gen_route(c, false),
        |r| !r.standard_communities.iter().any(|s| s.is_blackhole()),
    );
    let ce = result.expect_err("blackhole communities are reachable by the generator");
    let route = &ce.value;
    // everything incidental has shrunk away...
    assert_eq!(
        route.prefix.len(),
        0,
        "prefix length did not shrink: {route:?}"
    );
    assert!(route.large_communities.is_empty());
    assert!(route.extended_communities.is_empty());
    assert_eq!(route.med, None);
    // ...leaving exactly one community: the one that fails the property
    let standards = &route.standard_communities;
    assert_eq!(
        standards.len(),
        1,
        "community list did not shrink: {standards:?}"
    );
    assert!(standards[0].is_blackhole());
    // and the counterexample replays
    let mut replay = Choices::replay(ce.choices.clone());
    assert_eq!(&gen_route(&mut replay, false), route);
}
