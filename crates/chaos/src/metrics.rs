//! Chaos-harness telemetry: campaign counts and spans, fault-injection
//! counters (total and per class), oracle violations, and the logical
//! time a campaign consumed. Handles are minted from [`obs::global()`]
//! with names from the `obs::names` registry only.

use std::sync::OnceLock;

use obs::{names, Counter, Histogram};

pub(crate) struct ChaosMetrics {
    /// Chaotic campaigns run to completion.
    pub campaigns: Counter,
    /// Faults injected, all classes.
    pub faults: Counter,
    /// Invariant-oracle violations detected.
    pub oracle_violations: Counter,
    /// Logical milliseconds consumed per campaign.
    pub virtual_ms: Histogram,
}

pub(crate) fn handles() -> &'static ChaosMetrics {
    static HANDLES: OnceLock<ChaosMetrics> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let registry = obs::global();
        ChaosMetrics {
            campaigns: registry.counter(names::CHAOS_CAMPAIGNS),
            faults: registry.counter(names::CHAOS_FAULTS_INJECTED),
            oracle_violations: registry.counter(names::CHAOS_ORACLE_VIOLATIONS),
            virtual_ms: registry.histogram(names::CHAOS_VIRTUAL_MS),
        }
    })
}

/// Count one injected fault of `class` (total + per-class family).
pub(crate) fn count_fault(class: &'static str) {
    handles().faults.inc();
    obs::global().counter(&names::chaos_fault(class)).inc();
}
