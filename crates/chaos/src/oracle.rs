//! Invariant oracles: the properties a chaotic campaign must preserve no
//! matter what the fault plan injected. Each check explains exactly which
//! corruption it guards against; the fixture tests in the chaos suite
//! prove every oracle catches a real injected violation.

use std::collections::BTreeMap;
use std::fmt;

use bgp_model::asn::Asn;
use bgp_model::prefix::Prefix;

use crate::campaign::{CampaignConfig, CampaignOutcome, DAY_BUDGET_MS};
use crate::plan::FaultPlan;

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `partial` flag, `failed_peers`, and snapshot contents disagree:
    /// either a clean snapshot claims failures, a partial one names none,
    /// a failed peer is not a member, or a failed peer still has routes.
    InconsistentPartialFlag {
        /// Day of the offending snapshot.
        day: u32,
        /// What disagreed.
        detail: String,
    },
    /// The campaign lost data the plan cannot explain: a day produced no
    /// snapshot or a peer was flagged failed even though the collector's
    /// retry budget dominates the plan's fault rates.
    CompletenessViolated {
        /// Day of the loss.
        day: u32,
        /// What was lost.
        detail: String,
    },
    /// A snapshot's per-peer route count disagrees with what the summary
    /// declared for that peer on that day.
    SummaryMismatch {
        /// Day of the snapshot.
        day: u32,
        /// The disagreeing peer.
        peer: Asn,
        /// Routes the summary declared.
        declared: usize,
        /// Routes the snapshot holds.
        fetched: usize,
    },
    /// The same (peer, prefix) appears more than once in one snapshot —
    /// pagination served overlapping pages.
    DuplicateRoute {
        /// Day of the snapshot.
        day: u32,
        /// The duplicated peer.
        peer: Asn,
        /// The duplicated prefix.
        prefix: Prefix,
    },
    /// Route totals diverge from the fault-free baseline beyond what the
    /// plan's churn can explain: the pipeline invented or lost routes.
    ConservationBroken {
        /// Day of the divergence.
        day: u32,
        /// What diverged.
        detail: String,
    },
    /// Running sanitation a second time removed more snapshots — it is
    /// not idempotent on this dataset.
    SanitationNotIdempotent {
        /// Snapshots the second pass removed.
        second_pass_removed: usize,
    },
    /// A day with silently truncated pages survived sanitation.
    SanitationMissedOutage {
        /// The truncated day still present in the sanitized store.
        day: u32,
    },
    /// The wire saw more consecutive identical requests than the
    /// collector's configured retry budget allows.
    RetryBoundExceeded {
        /// Longest observed run of identical requests.
        observed: u64,
        /// The configured ceiling.
        bound: u64,
    },
    /// One day's collection consumed more logical time than its budget.
    DayOverran {
        /// The slow day.
        day: u32,
        /// Logical milliseconds it consumed.
        virtual_ms: u64,
    },
    /// Two runs of the same `(seed, plan)` produced different datasets.
    NonDeterministic {
        /// First run's dataset hash.
        first: u64,
        /// Second run's dataset hash.
        second: u64,
    },
    /// The snapshot synthesized from the streamed state at the quiescent
    /// end of a day is not byte-identical to the reference snapshot
    /// polled from the same server at the same point.
    StreamDivergence {
        /// Day of the divergence.
        day: u32,
        /// Fingerprint of the streamed snapshot.
        streamed: u64,
        /// Fingerprint of the polled reference snapshot.
        reference: u64,
    },
    /// The stream collector's applied-update count disagrees with the
    /// frames the feed minted: replayed frames were double-applied
    /// (applied > minted — the dedup failure) or updates were silently
    /// lost (applied < minted).
    StreamConservationBroken {
        /// Events the collector applied.
        applied: u64,
        /// Frames the feed ever minted.
        minted: u64,
    },
    /// The day's report finalized by the incremental engine (O(churn))
    /// is not byte-identical to the batch report recomputed from scratch
    /// over the streamed end-of-day snapshot (O(world)) — the
    /// apply/retract/merge algebra lost or invented aggregate state.
    IncrementalDivergence {
        /// Day of the divergence.
        day: u32,
        /// Fingerprint of the incremental engine's report.
        incremental: u64,
        /// Fingerprint of the recomputed batch report.
        batch: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::InconsistentPartialFlag { day, detail } => {
                write!(f, "day {day}: inconsistent partial flag: {detail}")
            }
            Violation::CompletenessViolated { day, detail } => {
                write!(f, "day {day}: completeness violated: {detail}")
            }
            Violation::SummaryMismatch {
                day,
                peer,
                declared,
                fetched,
            } => write!(
                f,
                "day {day}: AS{} summary declared {declared} routes, snapshot has {fetched}",
                peer.0
            ),
            Violation::DuplicateRoute { day, peer, prefix } => {
                write!(f, "day {day}: AS{} announces {prefix} twice", peer.0)
            }
            Violation::ConservationBroken { day, detail } => {
                write!(f, "day {day}: conservation broken: {detail}")
            }
            Violation::SanitationNotIdempotent {
                second_pass_removed,
            } => write!(
                f,
                "sanitation not idempotent: second pass removed {second_pass_removed}"
            ),
            Violation::SanitationMissedOutage { day } => {
                write!(f, "truncated day {day} survived sanitation")
            }
            Violation::RetryBoundExceeded { observed, bound } => {
                write!(
                    f,
                    "retry bound exceeded: {observed} identical requests (bound {bound})"
                )
            }
            Violation::DayOverran { day, virtual_ms } => {
                write!(f, "day {day} overran its budget: {virtual_ms}ms logical")
            }
            Violation::NonDeterministic { first, second } => {
                write!(f, "non-deterministic: {first:#018x} != {second:#018x}")
            }
            Violation::StreamDivergence {
                day,
                streamed,
                reference,
            } => write!(
                f,
                "day {day}: streamed state diverged: {streamed:#018x} != reference {reference:#018x}"
            ),
            Violation::StreamConservationBroken { applied, minted } => {
                write!(
                    f,
                    "stream conservation broken: {applied} events applied vs {minted} frames minted"
                )
            }
            Violation::IncrementalDivergence {
                day,
                incremental,
                batch,
            } => write!(
                f,
                "day {day}: incremental report diverged: {incremental:#018x} != batch {batch:#018x}"
            ),
        }
    }
}

/// Per-snapshot route counts by peer.
fn per_peer_counts(snap: &looking_glass::snapshot::Snapshot) -> BTreeMap<Asn, usize> {
    let mut counts = BTreeMap::new();
    for (peer, _) in &snap.routes {
        *counts.entry(*peer).or_insert(0) += 1;
    }
    counts
}

fn churn_bound(plan: &FaultPlan, stats: &crate::inject::InjectStats, day: u32, peer: Asn) -> usize {
    if plan.churn_days.contains(&day) {
        stats.churned.get(&(day, peer)).copied().unwrap_or(0) as usize
    } else {
        0
    }
}

/// Check every invariant against a finished campaign.
///
/// `baseline` is the same `(seed, cfg)` campaign run with the empty
/// plan — the conservation reference. Returns all violations found (and
/// counts them on the `chaos.oracle_violations` metric).
pub fn check_campaign(
    outcome: &CampaignOutcome,
    baseline: &CampaignOutcome,
    plan: &FaultPlan,
    cfg: &CampaignConfig,
) -> Vec<Violation> {
    let mut violations = Vec::new();

    // 1. snapshot self-consistency + completeness
    for rec in &outcome.days {
        if rec.result.is_err() {
            violations.push(Violation::CompletenessViolated {
                day: rec.day,
                detail: format!("day lost entirely: {:?}", rec.result),
            });
        }
        if rec.virtual_ms > DAY_BUDGET_MS {
            violations.push(Violation::DayOverran {
                day: rec.day,
                virtual_ms: rec.virtual_ms,
            });
        }
    }

    for snap in outcome.store.iter() {
        let day = snap.day;
        if snap.partial == snap.failed_peers.is_empty() {
            violations.push(Violation::InconsistentPartialFlag {
                day,
                detail: format!(
                    "partial={} but {} failed peers",
                    snap.partial,
                    snap.failed_peers.len()
                ),
            });
        }
        for peer in &snap.failed_peers {
            if !snap.members.contains(peer) {
                violations.push(Violation::InconsistentPartialFlag {
                    day,
                    detail: format!("failed peer AS{} is not a member", peer.0),
                });
            }
            if snap.routes.iter().any(|(p, _)| p == peer) {
                violations.push(Violation::InconsistentPartialFlag {
                    day,
                    detail: format!("failed peer AS{} still has routes", peer.0),
                });
            }
            violations.push(Violation::CompletenessViolated {
                day,
                detail: format!("peer AS{} lost despite the retry budget", peer.0),
            });
        }

        // 2. pagination integrity: no duplicated (peer, prefix)
        let mut seen = std::collections::BTreeSet::new();
        for (peer, route) in &snap.routes {
            if !seen.insert((*peer, route.prefix)) {
                violations.push(Violation::DuplicateRoute {
                    day,
                    peer: *peer,
                    prefix: route.prefix,
                });
            }
        }

        // 3. snapshot vs summary: the collector must deliver exactly what
        // the server declared (modulo explained faults). A truncated
        // day's raw snapshot legitimately disagrees — but only while
        // sanitation removes it; a truncated day that *survives* into
        // the cleaned dataset is silent corruption and must be flagged.
        let truncated_day = plan.truncate_days.contains(&day);
        let absorbed = truncated_day
            && !outcome
                .sanitized
                .iter()
                .any(|s| s.day == day && s.ixp == snap.ixp && s.afi == snap.afi);
        if !absorbed {
            let counts = per_peer_counts(snap);
            for (&(d, peer), &declared) in &outcome.stats.declared {
                if d != day || snap.failed_peers.contains(&peer) {
                    continue;
                }
                if plan.flap_days.contains(&day)
                    && !plan.mid_collection_flap
                    && outcome.stats.flapped.get(&day) == Some(&peer)
                {
                    continue;
                }
                let fetched = counts.get(&peer).copied().unwrap_or(0);
                if declared == 0 {
                    continue; // session without routes: nothing fetched
                }
                let churn = churn_bound(plan, &outcome.stats, day, peer);
                if fetched < declared || fetched > declared + churn {
                    violations.push(Violation::SummaryMismatch {
                        day,
                        peer,
                        declared,
                        fetched,
                    });
                }
            }
        }

        // 4. conservation vs the fault-free baseline
        if let Some(base) = baseline.store.iter().find(|b| b.day == day) {
            if !absorbed {
                let counts = per_peer_counts(snap);
                let base_counts = per_peer_counts(base);
                let flapped_today = outcome.stats.flapped.get(&day);
                for (peer, &base_count) in &base_counts {
                    if snap.failed_peers.contains(peer) || flapped_today == Some(peer) {
                        continue;
                    }
                    let got = counts.get(peer).copied().unwrap_or(0);
                    let churn = churn_bound(plan, &outcome.stats, day, *peer);
                    if got < base_count || got > base_count + churn {
                        violations.push(Violation::ConservationBroken {
                            day,
                            detail: format!(
                                "AS{}: {got} routes vs baseline {base_count} (churn bound {churn})",
                                peer.0
                            ),
                        });
                    }
                }
                // community instances only grow by what churn can carry
                // (each churned route brings its route plus info tags);
                // a flapped peer takes its communities with it, so flap
                // days are covered by the per-peer check above instead
                if flapped_today.is_some() {
                    continue;
                }
                let churn_total: usize = outcome
                    .stats
                    .churned
                    .iter()
                    .filter(|(&(d, _), _)| d == day)
                    .map(|(_, &n)| n as usize)
                    .sum();
                let base_comm = base.community_instances();
                let got_comm = snap.community_instances();
                let slack = churn_total * 8;
                if got_comm + slack < base_comm || got_comm > base_comm + slack {
                    violations.push(Violation::ConservationBroken {
                        day,
                        detail: format!(
                            "community instances {got_comm} vs baseline {base_comm} (slack {slack})"
                        ),
                    });
                }
            }
        }
    }

    // 5. sanitation: idempotent, and truncated interior days must go
    let mut twice = outcome.sanitized.clone();
    let second = looking_glass::sanitize::sanitize_store(
        &mut twice,
        &looking_glass::sanitize::SanitizeConfig::default(),
    );
    if !second.removed.is_empty() {
        violations.push(Violation::SanitationNotIdempotent {
            second_pass_removed: second.removed.len(),
        });
    }
    for &day in &plan.truncate_days {
        // interior truncated days are recoverable valleys; sanitation
        // must have dropped them from the cleaned dataset
        if day > 0
            && day + 1 < cfg.days
            && outcome.store.iter().any(|s| s.day == day)
            && outcome.sanitized.iter().any(|s| s.day == day)
        {
            violations.push(Violation::SanitationMissedOutage { day });
        }
    }

    // 6. retries stay within configuration
    let per_page = u64::from(cfg.collector.max_retries) + 1;
    let bound = if cfg.collector.validate_pages {
        // echo-mismatch retries can interleave with transient retries
        per_page * per_page
    } else {
        per_page
    };
    if outcome.stats.max_consecutive_identical > bound {
        violations.push(Violation::RetryBoundExceeded {
            observed: outcome.stats.max_consecutive_identical,
            bound,
        });
    }

    if !violations.is_empty() {
        let m = crate::metrics::handles();
        for _ in &violations {
            m.oracle_violations.inc();
        }
    }
    violations
}

/// Check the stream invariants against a finished dual campaign: both
/// collection paths complete within budget, the streamed end-of-day
/// snapshot is byte-identical to the polled reference every day, and
/// update conservation holds (every minted frame applied exactly once —
/// replays deduped, nothing lost).
pub fn check_stream_campaign(
    outcome: &crate::campaign::StreamCampaignOutcome,
    _plan: &FaultPlan,
    _cfg: &CampaignConfig,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for rec in &outcome.days {
        if let Err(e) = &rec.snapshot {
            violations.push(Violation::CompletenessViolated {
                day: rec.day,
                detail: format!("polled day lost entirely: {e:?}"),
            });
        }
        if let Err(e) = &rec.drain {
            violations.push(Violation::CompletenessViolated {
                day: rec.day,
                detail: format!("stream drain failed: {e:?}"),
            });
        }
        if let Err(e) = &rec.reference {
            violations.push(Violation::CompletenessViolated {
                day: rec.day,
                detail: format!("reference collection failed: {e:?}"),
            });
        }
        if rec.virtual_ms > DAY_BUDGET_MS {
            violations.push(Violation::DayOverran {
                day: rec.day,
                virtual_ms: rec.virtual_ms,
            });
        }
        if rec.reference.is_ok() && rec.streamed_hash != rec.reference_hash {
            violations.push(Violation::StreamDivergence {
                day: rec.day,
                streamed: rec.streamed_hash,
                reference: rec.reference_hash,
            });
        }
        // the incremental report must match the batch recompute of the
        // very same streamed state — unconditionally: even when faults
        // corrupted the store, the engine tracks the store, so any
        // disagreement here is the engine's own algebra going wrong
        if rec.incremental_hash != rec.batch_hash {
            violations.push(Violation::IncrementalDivergence {
                day: rec.day,
                incremental: rec.incremental_hash,
                batch: rec.batch_hash,
            });
        }
    }
    let applied = outcome.stream_stats.applied;
    let minted = outcome.frames_minted;
    if applied != minted {
        violations.push(Violation::StreamConservationBroken { applied, minted });
    }
    if !violations.is_empty() {
        let m = crate::metrics::handles();
        for _ in &violations {
            m.oracle_violations.inc();
        }
    }
    violations
}

/// The determinism oracle: both outcomes came from the same `(seed,
/// plan)` — their fingerprints must agree bit for bit.
pub fn check_determinism(a: &CampaignOutcome, b: &CampaignOutcome) -> Option<Violation> {
    (a.dataset_hash != b.dataset_hash).then_some(Violation::NonDeterministic {
        first: a.dataset_hash,
        second: b.dataset_hash,
    })
}
