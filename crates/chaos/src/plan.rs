//! Fault plans: the declarative description of everything a chaotic
//! campaign will inject. A plan is derived from a choice stream (and
//! therefore from a seed), serializes to JSON, and together with the
//! world seed fully determines a campaign — `(seed, plan)` is the replay
//! token every failing test prints.

use serde::{Deserialize, Serialize};

use crate::prop::Choices;

/// The fault classes the harness injects, one per injection mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// Response lost in transit (client retries).
    Drop,
    /// A stale cached page served instead of the requested one.
    Duplicate,
    /// Injected latency on the virtual clock.
    Delay,
    /// An undecodable frame on the transport.
    Garbage,
    /// The first page served again for a later-page request.
    Reorder,
    /// Silently truncated route pages for a whole day (an outage the
    /// valley sanitation must catch).
    Truncate,
    /// A rate-limit storm: the server's bucket collapses for a day.
    Storm,
    /// A peer session flapping during the campaign.
    Flap,
    /// RIB churn between route pages of one collection.
    Churn,
    /// A monitoring-session reset: the server forgets the client's
    /// cursor and replays the whole feed (the stream collector's dedup
    /// must absorb it).
    Reset,
    /// An event feed page cut at a peer-down frame — the BMP hazard of
    /// losing the session teardown notification.
    LostPeerDown,
}

impl FaultClass {
    /// All classes, in injection order.
    pub const ALL: [FaultClass; 11] = [
        FaultClass::Drop,
        FaultClass::Duplicate,
        FaultClass::Delay,
        FaultClass::Garbage,
        FaultClass::Reorder,
        FaultClass::Truncate,
        FaultClass::Storm,
        FaultClass::Flap,
        FaultClass::Churn,
        FaultClass::Reset,
        FaultClass::LostPeerDown,
    ];

    /// Stable lowercase name (used for `chaos.faults_injected.<class>`).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Drop => "drop",
            FaultClass::Duplicate => "duplicate",
            FaultClass::Delay => "delay",
            FaultClass::Garbage => "garbage",
            FaultClass::Reorder => "reorder",
            FaultClass::Truncate => "truncate",
            FaultClass::Storm => "storm",
            FaultClass::Flap => "flap",
            FaultClass::Churn => "churn",
            FaultClass::Reset => "reset",
            FaultClass::LostPeerDown => "lost_peer_down",
        }
    }
}

/// Everything a chaotic campaign injects, as data.
///
/// Request-level faults are per-mille probabilities evaluated per
/// request from the plan's own seeded RNG; day-level faults list the
/// campaign days they strike. The two fixture-only switches
/// (`churn_head_insert`, `mid_collection_flap`) select the corrupting
/// variants of churn and flap that the defended pipeline cannot absorb —
/// the oracle-sensitivity fixtures use them to prove detection.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-mille probability a response is dropped.
    pub drop_per_mille: u64,
    /// Per-mille probability a routes response is replaced by the cached
    /// previous page (a duplicated response).
    pub dup_per_mille: u64,
    /// Per-mille probability a later-page response is replaced by the
    /// cached first page (out-of-order pages).
    pub reorder_per_mille: u64,
    /// Per-mille probability a request suffers injected latency.
    pub delay_per_mille: u64,
    /// The injected latency, virtual milliseconds.
    pub delay_ms: u64,
    /// Per-mille probability a response arrives as an undecodable frame.
    pub garbage_per_mille: u64,
    /// Days on which route pages are silently truncated (an outage).
    pub truncate_days: Vec<u32>,
    /// Days on which the server's rate limiter collapses to a trickle.
    pub storm_days: Vec<u32>,
    /// Days on which one peer's session is down for the whole collection.
    pub flap_days: Vec<u32>,
    /// Days with RIB churn injected between route pages.
    pub churn_days: Vec<u32>,
    /// Churn events injected per churn day.
    pub churn_events_per_day: u32,
    /// Fixture switch: churned prefixes sort *before* the existing RIB,
    /// shifting later pages and corrupting pagination.
    pub churn_head_insert: bool,
    /// Fixture switch: the flap happens *between the summary and the
    /// route fetch* and silently drops one route on re-announce.
    pub mid_collection_flap: bool,
    /// Per-mille probability a stream poll forces a monitoring-session
    /// reset first (the server forgets the cursor and replays the feed).
    pub reset_per_mille: u64,
    /// Per-mille probability a stream-events response is cut just before
    /// a peer-down frame (the cursor re-serves the tail on the next
    /// poll, so a defended collector loses nothing).
    pub lost_down_per_mille: u64,
    /// Fixture switch: peer-down frames are *masked* on the feed (served
    /// as a peer-up glitch with the cursor advancing past them) and the
    /// day's flap is permanent — the streamed state keeps advertising a
    /// dead peer's routes, which the stream-divergence oracle must catch.
    pub lose_peer_down_silent: bool,
    /// Fixture switch: the stream collector applies replayed frames
    /// without sequence-number dedup, so a session reset double-applies
    /// the feed — the update-conservation oracle must catch it.
    pub replay_without_dedup: bool,
    /// Fixture switch: the incremental report engine skips every
    /// retraction (withdraws, replaced announces, peer-downs leave the
    /// aggregates untouched), breaking the apply/retract inverse — the
    /// incremental-divergence oracle must catch the drift.
    pub disable_retraction: bool,
}

impl FaultPlan {
    /// The empty plan: a fault-free baseline campaign.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Derive a plan from a choice stream for a campaign of `days` days.
    ///
    /// The all-zero stream yields the empty plan; every draw maps
    /// monotonically from choice to fault intensity, so shrinking a
    /// failing `(seed, plan)` removes faults rather than mutating them
    /// into different ones. Day-level faults only strike interior days
    /// (`1..days-1`): day 0 anchors the series and the final day is the
    /// paper's headline snapshot, which sanitation must keep clean.
    pub fn from_choices(c: &mut Choices, days: u32) -> Self {
        let mut plan = FaultPlan {
            drop_per_mille: c.draw(80),
            dup_per_mille: c.draw(60),
            reorder_per_mille: c.draw(60),
            delay_per_mille: c.draw(200),
            delay_ms: c.draw(2_000),
            garbage_per_mille: c.draw(40),
            churn_events_per_day: 1 + c.draw(2) as u32,
            reset_per_mille: c.draw(40),
            lost_down_per_mille: c.draw(60),
            ..FaultPlan::default()
        };
        for day in 1..days.saturating_sub(1) {
            if c.draw_bool(150) {
                plan.truncate_days.push(day);
            }
            if c.draw_bool(150) {
                plan.storm_days.push(day);
            }
            if c.draw_bool(100) {
                plan.flap_days.push(day);
            }
            if c.draw_bool(150) {
                plan.churn_days.push(day);
            }
        }
        plan
    }

    /// Derive the corpus plan for one seed (the CI sweep's unit).
    pub fn from_seed(seed: u64, days: u32) -> Self {
        let mut c = Choices::from_seed(seed ^ 0xFA17_F1A9);
        FaultPlan::from_choices(&mut c, days)
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::none() || {
            self.drop_per_mille == 0
                && self.dup_per_mille == 0
                && self.reorder_per_mille == 0
                && self.delay_per_mille == 0
                && self.garbage_per_mille == 0
                && self.reset_per_mille == 0
                && self.lost_down_per_mille == 0
                && self.truncate_days.is_empty()
                && self.storm_days.is_empty()
                && self.flap_days.is_empty()
                && self.churn_days.is_empty()
        }
    }

    /// The plan as JSON, for replay instructions printed on failure.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "<unserializable plan>".into())
    }

    /// Parse a plan printed by [`FaultPlan::to_json`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad fault plan JSON: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_choices_yield_empty_plan() {
        let mut c = Choices::replay(vec![]);
        let plan = FaultPlan::from_choices(&mut c, 6);
        assert!(plan.is_empty(), "{plan:?}");
    }

    #[test]
    fn seed_derivation_is_deterministic_and_varied() {
        let a = FaultPlan::from_seed(11, 6);
        let b = FaultPlan::from_seed(11, 6);
        assert_eq!(a, b);
        // across a small corpus, every fault class fires somewhere
        let corpus: Vec<FaultPlan> = (0..64).map(|s| FaultPlan::from_seed(s, 6)).collect();
        assert!(corpus.iter().any(|p| p.drop_per_mille > 0));
        assert!(corpus.iter().any(|p| p.dup_per_mille > 0));
        assert!(corpus.iter().any(|p| p.reorder_per_mille > 0));
        assert!(corpus.iter().any(|p| p.delay_per_mille > 0));
        assert!(corpus.iter().any(|p| p.garbage_per_mille > 0));
        assert!(corpus.iter().any(|p| p.reset_per_mille > 0));
        assert!(corpus.iter().any(|p| p.lost_down_per_mille > 0));
        assert!(corpus.iter().any(|p| !p.truncate_days.is_empty()));
        assert!(corpus.iter().any(|p| !p.storm_days.is_empty()));
        assert!(corpus.iter().any(|p| !p.flap_days.is_empty()));
        assert!(corpus.iter().any(|p| !p.churn_days.is_empty()));
        assert!(corpus.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn day_faults_stay_off_the_anchor_days() {
        for seed in 0..64 {
            let p = FaultPlan::from_seed(seed, 6);
            for day in p
                .truncate_days
                .iter()
                .chain(&p.storm_days)
                .chain(&p.flap_days)
                .chain(&p.churn_days)
            {
                assert!((1..5).contains(day), "seed {seed}: day {day} out of range");
            }
        }
    }

    #[test]
    fn json_roundtrip() {
        let plan = FaultPlan::from_seed(42, 6);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
    }
}
