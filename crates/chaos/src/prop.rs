//! In-tree property-testing mini-framework with integrated shrinking.
//!
//! Hypothesis-style choice streams: a generator is any function of
//! [`Choices`], drawing bounded `u64`s that are recorded as they are
//! produced. Shrinking never touches the generated value directly — it
//! mutates the *recorded choice stream* (truncate the tail, delete
//! aligned chunks, zero an element, halve, decrement) and re-runs the
//! generator, so it composes
//! through arbitrary generator code with no per-type shrinker. A shrunk
//! counterexample is therefore always replayable: re-running the same
//! generator over [`Choices::replay`] with the reported stream rebuilds
//! the exact failing value. The chaos suite uses this to make every
//! counterexample a `(seed, fault_plan)` pair.
//!
//! The vendored `proptest` stand-in deliberately has no shrinking; this
//! module is the workspace's real minimization engine.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A recorded stream of bounded choices: the single source of randomness
/// for a generator, and the unit shrinking operates on.
#[derive(Debug)]
pub struct Choices {
    recorded: Vec<u64>,
    index: usize,
    rng: Option<StdRng>,
}

impl Choices {
    /// A fresh random stream seeded by `seed`; every draw is recorded.
    pub fn from_seed(seed: u64) -> Self {
        Choices {
            recorded: Vec::new(),
            index: 0,
            rng: Some(StdRng::seed_from_u64(seed)),
        }
    }

    /// Replay a previously recorded stream. Draws beyond the end of the
    /// stream return 0 (the minimal choice), which is what lets a
    /// truncated stream still generate a (smaller) value.
    pub fn replay(recorded: Vec<u64>) -> Self {
        Choices {
            recorded,
            index: 0,
            rng: None,
        }
    }

    /// Draw one choice in `0..=bound`. Replayed values are clamped to the
    /// bound (monotone: a shrunk stream can only shrink the value).
    pub fn draw(&mut self, bound: u64) -> u64 {
        let v = if self.index < self.recorded.len() {
            self.recorded[self.index].min(bound)
        } else {
            match &mut self.rng {
                Some(rng) => {
                    if bound == u64::MAX {
                        rng.random::<u64>()
                    } else {
                        rng.random_range(0..=bound)
                    }
                }
                None => 0,
            }
        };
        if self.index < self.recorded.len() {
            self.recorded[self.index] = v;
        } else {
            self.recorded.push(v);
        }
        self.index += 1;
        v
    }

    /// Draw a uniform `f64` in `[0, 1]` (2⁵³ buckets, shrinks toward 0).
    pub fn draw_f64(&mut self) -> f64 {
        const BUCKETS: u64 = (1 << 53) - 1;
        self.draw(BUCKETS) as f64 / BUCKETS as f64
    }

    /// Draw a weighted boolean: true with probability `per_mille`/1000.
    /// Shrinks toward `false` (choice 0 maps to false).
    pub fn draw_bool(&mut self, per_mille: u64) -> bool {
        // invert so that choice 0 => false for any weight
        self.draw(999) >= 1000 - per_mille.min(1000)
    }

    /// The recorded stream so far, truncated to what was consumed.
    pub fn into_recorded(mut self) -> Vec<u64> {
        self.recorded.truncate(self.index);
        self.recorded
    }
}

/// A shrunk failing input: the value, the choice stream that rebuilds it,
/// and how many successful shrink steps led here.
#[derive(Debug)]
pub struct CounterExample<T> {
    /// The (shrunk) failing value.
    pub value: T,
    /// The choice stream: `gen(&mut Choices::replay(choices))` == value.
    pub choices: Vec<u64>,
    /// The seed of the iteration that first failed.
    pub seed: u64,
    /// Accepted shrink steps between the original failure and `value`.
    pub shrink_steps: usize,
}

/// Property-check configuration.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Master seed; iteration `i` uses a seed derived from it.
    pub seed: u64,
    /// Number of random inputs to try.
    pub iterations: usize,
    /// Total candidate budget for the shrinking loop.
    pub max_shrink_attempts: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            seed: 0xC4A05,
            iterations: 64,
            max_shrink_attempts: 2_000,
        }
    }
}

/// The seed used for iteration `i` of a check — exposed so a failing
/// iteration printed by CI can be replayed directly.
pub fn iteration_seed(master: u64, i: usize) -> u64 {
    master.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run `prop` against `iterations` generated values. On failure, shrink
/// the choice stream to a (locally) minimal failing input and return it.
pub fn check<T, G, P>(config: &CheckConfig, gen: G, prop: P) -> Result<(), CounterExample<T>>
where
    G: Fn(&mut Choices) -> T,
    P: Fn(&T) -> bool,
{
    for i in 0..config.iterations {
        let seed = iteration_seed(config.seed, i);
        let mut c = Choices::from_seed(seed);
        let value = gen(&mut c);
        if !prop(&value) {
            let recorded = c.into_recorded();
            return Err(shrink(
                recorded,
                seed,
                &gen,
                &prop,
                config.max_shrink_attempts,
            ));
        }
    }
    Ok(())
}

/// Total order on choice streams: shorter is smaller, ties broken
/// lexicographically. Shrinking only accepts strictly smaller streams,
/// which guarantees termination.
fn stream_less(a: &[u64], b: &[u64]) -> bool {
    a.len() < b.len() || (a.len() == b.len() && a < b)
}

fn shrink<T, G, P>(
    initial: Vec<u64>,
    seed: u64,
    gen: &G,
    prop: &P,
    budget: usize,
) -> CounterExample<T>
where
    G: Fn(&mut Choices) -> T,
    P: Fn(&T) -> bool,
{
    // Re-run a candidate stream; if it still fails the property, return
    // the (possibly clamped and truncated) stream it actually consumed.
    let try_fail = |candidate: Vec<u64>| -> Option<Vec<u64>> {
        let mut c = Choices::replay(candidate);
        let value = gen(&mut c);
        if prop(&value) {
            None
        } else {
            Some(c.into_recorded())
        }
    };

    let mut best = initial;
    let mut attempts = 0usize;
    let mut steps = 0usize;
    loop {
        let mut improved = false;

        // Pass 1: chop suffixes (large to small) — deletes whole trailing
        // structure at once.
        let mut chop = best.len();
        while chop > 0 && attempts < budget {
            if chop <= best.len() {
                let candidate: Vec<u64> = best[..best.len() - chop].to_vec();
                attempts += 1;
                if let Some(rec) = try_fail(candidate) {
                    if stream_less(&rec, &best) {
                        best = rec;
                        steps += 1;
                        improved = true;
                        chop = best.len();
                        continue;
                    }
                }
            }
            chop /= 2;
        }

        // Pass 2: delete interior chunks (large to small). A chunk that
        // covers one complete generated element — e.g. a continue-flag
        // plus the element's draws — removes it while keeping every
        // later draw aligned, which count-prefix lowering cannot do.
        let mut chunk = 16usize.min(best.len());
        while chunk > 0 && attempts < budget {
            let mut i = 0;
            let mut deleted_any = false;
            while i + chunk <= best.len() && attempts < budget {
                let mut candidate = best.clone();
                candidate.drain(i..i + chunk);
                attempts += 1;
                if let Some(rec) = try_fail(candidate) {
                    if stream_less(&rec, &best) {
                        best = rec;
                        steps += 1;
                        improved = true;
                        deleted_any = true;
                        continue; // same position now holds the next chunk
                    }
                }
                i += 1;
            }
            if !deleted_any {
                chunk /= 2;
            }
        }

        // Pass 3: per-element lowering — zero, then halve, then decrement.
        let mut i = 0;
        while i < best.len() && attempts < budget {
            let original = best[i];
            for lowered in [0, original / 2, original.saturating_sub(1)] {
                if lowered >= original {
                    continue;
                }
                let mut candidate = best.clone();
                candidate[i] = lowered;
                attempts += 1;
                if let Some(rec) = try_fail(candidate) {
                    if stream_less(&rec, &best) {
                        best = rec;
                        steps += 1;
                        improved = true;
                        break;
                    }
                }
            }
            i += 1;
        }

        if !improved || attempts >= budget {
            break;
        }
    }

    let mut c = Choices::replay(best.clone());
    let value = gen(&mut c);
    CounterExample {
        value,
        choices: best,
        seed,
        shrink_steps: steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorded_stream_replays_identically() {
        let gen = |c: &mut Choices| (0..8).map(|_| c.draw(100)).collect::<Vec<u64>>();
        let mut c = Choices::from_seed(7);
        let v = gen(&mut c);
        let rec = c.into_recorded();
        let mut r = Choices::replay(rec);
        assert_eq!(gen(&mut r), v);
    }

    #[test]
    fn draws_beyond_replay_are_minimal() {
        let mut c = Choices::replay(vec![5]);
        assert_eq!(c.draw(10), 5);
        assert_eq!(c.draw(10), 0);
        assert_eq!(c.draw(10), 0);
    }

    #[test]
    fn replay_clamps_to_bound() {
        let mut c = Choices::replay(vec![999]);
        assert_eq!(c.draw(10), 10);
    }

    #[test]
    fn shrinks_scalar_to_boundary() {
        // property: value < 1000. Failing inputs shrink to exactly 1000.
        let result = check(
            &CheckConfig {
                seed: 1,
                iterations: 200,
                max_shrink_attempts: 10_000,
            },
            |c| c.draw(1_000_000),
            |v| *v < 1000,
        );
        let ce = result.expect_err("large draws must fail the property");
        assert_eq!(ce.value, 1000, "shrinker should find the exact boundary");
    }

    #[test]
    fn shrinks_vec_by_deleting_structure() {
        // property: the sum of a generated vector stays under 100
        let gen = |c: &mut Choices| {
            let len = c.draw(20) as usize;
            (0..len).map(|_| c.draw(50)).collect::<Vec<u64>>()
        };
        let result = check(
            &CheckConfig {
                seed: 2,
                iterations: 100,
                max_shrink_attempts: 10_000,
            },
            gen,
            |v| v.iter().sum::<u64>() < 100,
        );
        let ce = result.expect_err("long vectors overflow the bound");
        let sum: u64 = ce.value.iter().sum();
        assert!(sum >= 100, "counterexample must still fail: sum {sum}");
        // minimal failing shape: every element is load-bearing
        for i in 0..ce.value.len() {
            let mut smaller = ce.value.clone();
            smaller.remove(i);
            assert!(
                smaller.iter().sum::<u64>() < 100 || ce.value[i] == 0,
                "element {i} of {:?} is removable — not minimal",
                ce.value
            );
        }
    }

    #[test]
    fn counterexample_is_replayable() {
        let gen = |c: &mut Choices| c.draw(u64::MAX);
        let result = check(
            &CheckConfig {
                seed: 3,
                iterations: 50,
                max_shrink_attempts: 1_000,
            },
            gen,
            |v| *v < 42,
        );
        let ce = result.expect_err("must fail");
        let mut replay = Choices::replay(ce.choices.clone());
        assert_eq!(gen(&mut replay), ce.value);
    }

    #[test]
    fn passing_property_returns_ok() {
        let result = check(&CheckConfig::default(), |c| c.draw(10), |v| *v <= 10);
        assert!(result.is_ok());
    }

    #[test]
    fn draw_bool_shrinks_toward_false() {
        let mut c = Choices::replay(vec![0]);
        assert!(!c.draw_bool(999), "minimal choice must map to false");
        let mut c = Choices::replay(vec![999]);
        assert!(c.draw_bool(1), "maximal choice must map to true");
    }
}
