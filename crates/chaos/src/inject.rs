//! The injecting transport: wraps an in-process [`LgServer`] and applies
//! a [`FaultPlan`] to every request/response that crosses it, on the
//! campaign's shared [`VirtualClock`]. All randomness comes from one
//! seeded RNG, so an identical `(seed, plan)` injects an identical fault
//! sequence.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use bgp_model::asn::Asn;
use bgp_model::prefix::Prefix;
use bgp_model::route::Route;
use looking_glass::api::{LgError, LgRequest, LgResponse};
use looking_glass::client::LgTransport;
use looking_glass::clock::{Clock, VirtualClock};
use looking_glass::server::LgServer;
use route_server::events::RibEvent;
use route_server::server::RouteServer;

use crate::plan::{FaultClass, FaultPlan};

/// What the injector observed and did, accumulated across a campaign.
/// The oracles read this to know which corruptions are *explained*.
#[derive(Debug, Clone, Default)]
pub struct InjectStats {
    /// Faults injected per class name.
    pub faults: BTreeMap<&'static str, u64>,
    /// Longest run of consecutive identical requests seen on the wire —
    /// the observable upper bound on the client's retry behaviour.
    pub max_consecutive_identical: u64,
    /// Per-(day, peer) accepted-route counts declared by the summary
    /// response that the injector saw pass through.
    pub declared: BTreeMap<(u32, Asn), usize>,
    /// Churn events actually applied, per (day, peer).
    pub churned: BTreeMap<(u32, Asn), u32>,
    /// The peer whose session flapped, per day (either variant).
    pub flapped: BTreeMap<u32, Asn>,
    /// Requests forwarded to the server.
    pub forwarded: u64,
}

impl InjectStats {
    /// Total injected faults across classes.
    pub fn total_faults(&self) -> u64 {
        self.faults.values().sum()
    }

    fn count(&mut self, class: FaultClass) {
        *self.faults.entry(class.name()).or_insert(0) += 1;
        crate::metrics::count_fault(class.name());
    }
}

/// A fault-injecting [`LgTransport`] for one campaign day.
pub struct ChaosTransport<'a> {
    lg: &'a LgServer,
    clock: &'a VirtualClock,
    plan: &'a FaultPlan,
    rs: Arc<RwLock<RouteServer>>,
    day: u32,
    rng: StdRng,
    stats: &'a mut InjectStats,
    // dup/reorder caches: the last and the first routes response per peer
    prev_page: BTreeMap<Asn, LgResponse>,
    first_page: BTreeMap<Asn, LgResponse>,
    last_request: Option<String>,
    identical_run: u64,
    churn_budget: u32,
    /// Churned (peer, prefix) announcements to withdraw at day end.
    pub churned_routes: Vec<(Asn, Prefix)>,
    /// Routes silently dropped by a mid-collection flap, to restore at
    /// day end (fixture mode).
    pub flap_dropped: Vec<(Asn, Route)>,
    mid_flap_done: bool,
}

impl<'a> ChaosTransport<'a> {
    /// A transport for `day` of the campaign. `seed` plus the day index
    /// derive the injection RNG, so each day's fault sequence is
    /// independent but fully determined.
    pub fn new(
        lg: &'a LgServer,
        clock: &'a VirtualClock,
        plan: &'a FaultPlan,
        rs: Arc<RwLock<RouteServer>>,
        day: u32,
        seed: u64,
        stats: &'a mut InjectStats,
    ) -> Self {
        let churn_budget = if plan.churn_days.contains(&day) {
            plan.churn_events_per_day
        } else {
            0
        };
        ChaosTransport {
            lg,
            clock,
            plan,
            rs,
            day,
            rng: StdRng::seed_from_u64(seed ^ ((day as u64) << 32) ^ 0x1A13C7),
            stats,
            prev_page: BTreeMap::new(),
            first_page: BTreeMap::new(),
            last_request: None,
            identical_run: 0,
            churn_budget,
            churned_routes: Vec::new(),
            flap_dropped: Vec::new(),
            mid_flap_done: false,
        }
    }

    fn chance(&mut self, per_mille: u64) -> bool {
        per_mille > 0 && self.rng.random_range(0..1000u64) < per_mille
    }

    fn track_identical(&mut self, req: &LgRequest) {
        let key = serde_json::to_string(req).unwrap_or_default();
        if self.last_request.as_deref() == Some(key.as_str()) {
            self.identical_run += 1;
        } else {
            self.identical_run = 1;
            self.last_request = Some(key);
        }
        if self.identical_run > self.stats.max_consecutive_identical {
            self.stats.max_consecutive_identical = self.identical_run;
        }
    }

    /// Announce one synthetic churn route to `peer`. Corpus churn appends
    /// at the tail of the peer's RIB (high prefixes: later pages only
    /// grow); the fixture's head-insert variant prepends (low prefixes),
    /// shifting every subsequent page — the pagination corruption the
    /// oracle must catch.
    fn apply_churn(&mut self, peer: Asn) {
        let i = self.churned_routes.len() as u32;
        let prefix: Result<Prefix, _> = if self.plan.churn_head_insert {
            format!("1.0.{}.0/24", i % 256).parse()
        } else {
            format!("196.0.{}.0/24", i % 256).parse()
        };
        let Ok(prefix) = prefix else { return };
        let Ok(next_hop) = "198.32.0.9".parse() else {
            return;
        };
        let route = Route::builder(prefix, next_hop)
            .path([peer.0, 3356])
            .build();
        let outcome = self.rs.write().announce(peer, route);
        if matches!(outcome, route_server::server::IngestOutcome::Accepted) {
            self.churned_routes.push((peer, prefix));
            *self.stats.churned.entry((self.day, peer)).or_insert(0) += 1;
            self.stats.count(FaultClass::Churn);
        }
        self.churn_budget = self.churn_budget.saturating_sub(1);
    }

    /// The fixture-only mid-collection flap: after the summary has been
    /// served, bounce a peer's session and silently lose one route on
    /// re-announce. The snapshot then disagrees with the summary without
    /// any flag being raised — exactly what the oracle must detect.
    fn apply_mid_flap(&mut self, requested: Asn) {
        let Some((&(_, target), _)) = self
            .stats
            .declared
            .iter()
            .find(|(&(d, peer), &count)| d == self.day && peer != requested && count > 1)
        else {
            return;
        };
        let mut rs = self.rs.write();
        let (v4, v6) = match rs.members().find(|m| m.asn == target) {
            Some(m) => (m.ipv4, m.ipv6),
            None => return,
        };
        let mut routes: Vec<Route> = Vec::new();
        if let Some(table) = rs.accepted().peer(target) {
            for afi in [bgp_model::prefix::Afi::Ipv4, bgp_model::prefix::Afi::Ipv6] {
                routes.extend(table.iter_afi(afi).cloned());
            }
        }
        if routes.is_empty() {
            return;
        }
        rs.remove_member(target);
        rs.add_member(target, v4, v6);
        let dropped = routes.pop();
        for r in routes {
            rs.announce(target, r);
        }
        if let Some(r) = dropped {
            self.flap_dropped.push((target, r));
        }
        self.mid_flap_done = true;
        self.stats.flapped.insert(self.day, target);
        self.stats.count(FaultClass::Flap);
    }

    /// Serve a realistically garbled frame: serialize the authentic
    /// response, truncate it mid-JSON, and surface the decode error the
    /// TCP transport would produce.
    fn garbage_error(&mut self, resp: &LgResponse) -> LgError {
        self.stats.count(FaultClass::Garbage);
        let framed = serde_json::to_string::<Result<&LgResponse, LgError>>(&Ok(resp))
            .unwrap_or_else(|_| String::from("{}"));
        let cut = framed.len() / 2;
        let mangled = framed.get(..cut).unwrap_or("");
        match serde_json::from_str::<Result<LgResponse, LgError>>(mangled) {
            Err(e) => LgError::Transport(format!("chaos: garbage frame: decode: {e}")),
            Ok(_) => LgError::Transport("chaos: garbage frame".into()),
        }
    }
}

impl LgTransport for ChaosTransport<'_> {
    fn request(&mut self, req: &LgRequest, now_ms: u64) -> Result<LgResponse, LgError> {
        self.track_identical(req);

        // injected latency: logical time passes, nothing blocks
        if self.plan.delay_ms > 0 {
            let per_mille = self.plan.delay_per_mille;
            if self.chance(per_mille) {
                self.clock.advance(self.plan.delay_ms);
                self.stats.count(FaultClass::Delay);
            }
        }
        // dropped response
        let drop_per_mille = self.plan.drop_per_mille;
        if self.chance(drop_per_mille) {
            self.stats.count(FaultClass::Drop);
            return Err(LgError::Transport("chaos: response dropped".into()));
        }
        // RIB churn between route pages
        if let LgRequest::Routes { peer, page, .. } = req {
            if *page >= 1 && self.churn_budget > 0 {
                self.apply_churn(*peer);
            }
            // fixture-only: flap a peer between summary and its fetch
            if self.plan.mid_collection_flap
                && !self.mid_flap_done
                && self.plan.flap_days.contains(&self.day)
            {
                self.apply_mid_flap(*peer);
            }
        }
        // monitoring-session reset: the server forgets the cursor and
        // replays the feed (frames keep their original seq numbers)
        if matches!(req, LgRequest::StreamPoll { .. }) {
            let reset_per_mille = self.plan.reset_per_mille;
            if self.chance(reset_per_mille) {
                self.lg.reset_stream();
                self.stats.count(FaultClass::Reset);
            }
        }

        // use the campaign clock, not the caller's idea of it, so
        // injected delays are visible to the server's rate limiter
        let now = now_ms.max(self.clock.now_ms());
        self.stats.forwarded += 1;
        let mut resp = self.lg.handle(req, now)?;

        if let LgResponse::Summary { members, .. } = &resp {
            for m in members {
                self.stats
                    .declared
                    .insert((self.day, m.asn), m.accepted_routes);
            }
        }

        // garbage frame: the response existed but cannot be decoded
        let garbage_per_mille = self.plan.garbage_per_mille;
        if self.chance(garbage_per_mille) {
            return Err(self.garbage_error(&resp));
        }

        // lost peer-down on the event feed
        if let LgResponse::StreamEvents {
            frames, backlog, ..
        } = &mut resp
        {
            if self.plan.lose_peer_down_silent {
                // fixture-only: the teardown is *masked* — served as a
                // peer-up glitch with the same seq, so the cursor moves
                // past it and the store keeps the dead peer's routes
                for frame in frames.iter_mut() {
                    if let RibEvent::PeerDown { peer } = frame.event {
                        frame.event = RibEvent::PeerUp {
                            peer,
                            ipv4: true,
                            ipv6: true,
                        };
                        self.stats.count(FaultClass::LostPeerDown);
                    }
                }
            } else if let Some(cut) = frames
                .iter()
                .position(|f| matches!(f.event, RibEvent::PeerDown { .. }))
            {
                // defended variant: the page is cut just before the
                // peer-down, as if the session died mid-transfer; the
                // reported backlog grows by the cut, so the collector
                // re-polls and the cursor re-serves the tail intact
                let lost_down_per_mille = self.plan.lost_down_per_mille;
                if self.chance(lost_down_per_mille) {
                    let dropped = (frames.len() - cut) as u64;
                    frames.truncate(cut);
                    *backlog += dropped;
                    self.stats.count(FaultClass::LostPeerDown);
                }
            }
        }

        // duplicated / reordered route pages
        if let LgRequest::Routes { peer, page, .. } = req {
            let reorder = self.plan.reorder_per_mille;
            let dup = self.plan.dup_per_mille;
            let out = if *page >= 1 && self.chance(reorder) {
                match self.first_page.get(peer) {
                    Some(first) => {
                        self.stats.count(FaultClass::Reorder);
                        first.clone()
                    }
                    None => resp.clone(),
                }
            } else if *page >= 1 && self.chance(dup) {
                match self.prev_page.get(peer) {
                    Some(prev) => {
                        self.stats.count(FaultClass::Duplicate);
                        prev.clone()
                    }
                    None => resp.clone(),
                }
            } else {
                resp.clone()
            };
            if *page == 0 {
                self.first_page.insert(*peer, resp.clone());
            }
            self.prev_page.insert(*peer, resp);
            return Ok(out);
        }
        Ok(resp)
    }
}
