//! The chaotic campaign driver: build one IXP world, then run a
//! multi-day collect→sanitize pipeline entirely on a virtual clock with
//! a [`FaultPlan`] injected at the transport and server layers. Equal
//! `(seed, plan)` pairs produce byte-identical outcomes — the
//! determinism the oracles verify by hashing.

use std::sync::Arc;

use parking_lot::RwLock;

use bgp_model::asn::Asn;
use bgp_model::prefix::Afi;
use bgp_model::route::Route;
use community_dict::ixp::IxpId;
use ixp_sim::world::{build_ixp, WorldConfig};
use looking_glass::api::LgError;
use looking_glass::client::{Collector, CollectorConfig};
use looking_glass::clock::{Clock, VirtualClock};
use looking_glass::sanitize::{sanitize_store, SanitationReport, SanitizeConfig};
use looking_glass::server::{FailureModel, LgServer, RateLimiter};
use looking_glass::snapshot::SnapshotStore;
use route_server::server::Member;

use crate::inject::{ChaosTransport, InjectStats};
use crate::plan::FaultPlan;

/// Virtual milliseconds between campaign days. Collections are minutes
/// long on the virtual clock, so an hour of logical spacing keeps days
/// disjoint while staying readable in traces.
pub const DAY_MS: u64 = 3_600_000;

/// The logical-time budget one day's collection may consume before the
/// `DayOverran` oracle fires (half the day spacing).
pub const DAY_BUDGET_MS: u64 = DAY_MS / 2;

/// Campaign shape: which world, how many days, which family.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The IXP to build and collect from.
    pub ixp: IxpId,
    /// World scale factor (0.01 keeps a campaign day around a hundred
    /// requests).
    pub scale: f64,
    /// Number of daily snapshots to collect.
    pub days: u32,
    /// Address family collected.
    pub afi: Afi,
    /// Collector tuning for the campaign.
    pub collector: CollectorConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            ixp: IxpId::Netnod,
            scale: 0.01,
            days: 6,
            afi: Afi::Ipv4,
            // Deep retries: with the corpus fault rates capped well below
            // ten percent per request, nine attempts make a lost peer a
            // (deterministic) non-event, so the corpus expects complete
            // snapshots and CompletenessViolated stays a real signal.
            collector: CollectorConfig {
                max_retries: 8,
                ..CollectorConfig::default()
            },
        }
    }
}

/// One day of the campaign.
#[derive(Debug, Clone)]
pub struct DayRecord {
    /// Day index.
    pub day: u32,
    /// Whether the day's collection produced a snapshot.
    pub result: Result<(), LgError>,
    /// Logical milliseconds the day's collection consumed.
    pub virtual_ms: u64,
}

/// Everything a finished campaign exposes to the oracles.
pub struct CampaignOutcome {
    /// The raw collected snapshots.
    pub store: SnapshotStore,
    /// The snapshots after valley sanitation.
    pub sanitized: SnapshotStore,
    /// What sanitation removed.
    pub sanitation: SanitationReport,
    /// Per-day collection records.
    pub days: Vec<DayRecord>,
    /// What the injector did.
    pub stats: InjectStats,
    /// Total logical time the campaign consumed.
    pub virtual_ms: u64,
    /// FNV-1a hash over both datasets — the determinism fingerprint.
    pub dataset_hash: u64,
}

/// FNV-1a, 64 bit: the dataset fingerprint. Stable across runs and
/// platforms; collisions are irrelevant because the oracle only compares
/// hashes of runs that must be *identical*.
pub fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn hash_store(store: &SnapshotStore, mut hash: u64) -> u64 {
    for snap in store.iter() {
        match serde_json::to_vec(snap) {
            Ok(bytes) => hash = fnv1a(&bytes, hash),
            Err(_) => hash = fnv1a(b"<unserializable>", hash),
        }
    }
    hash
}

/// Hash the raw and sanitized datasets into one fingerprint.
pub fn dataset_hash(raw: &SnapshotStore, sanitized: &SnapshotStore) -> u64 {
    hash_store(sanitized, hash_store(raw, FNV_OFFSET))
}

/// FNV-1a fingerprint of one snapshot store on its own (the equivalence
/// tests compare streamed and polled datasets by this).
pub fn store_fingerprint(store: &SnapshotStore) -> u64 {
    hash_store(store, FNV_OFFSET)
}

/// FNV-1a fingerprint of one serialized snapshot.
pub fn snapshot_fingerprint(snap: &looking_glass::snapshot::Snapshot) -> u64 {
    match serde_json::to_vec(snap) {
        Ok(bytes) => fnv1a(&bytes, FNV_OFFSET),
        Err(_) => fnv1a(b"<unserializable>", FNV_OFFSET),
    }
}

fn default_limiter() -> RateLimiter {
    // LgServer's construction-time default (capacity 40, 20/s); there is
    // no getter, so the restore after a storm day re-states it.
    RateLimiter::new(40, 20.0)
}

fn storm_limiter() -> RateLimiter {
    RateLimiter::new(2, 2.0)
}

/// The member the between-day flap targets: the peer with the fewest
/// (but nonzero) accepted routes in `afi` — small enough that its
/// disappearance never looks like a sanitation valley.
fn flap_target(rs: &route_server::server::RouteServer, afi: Afi) -> Option<Member> {
    rs.members()
        .filter(|m| m.has_session(afi))
        .filter_map(|m| {
            let count = rs.accepted().peer(m.asn)?.iter_afi(afi).count();
            (count > 0).then_some((count, *m))
        })
        .min_by_key(|(count, m)| (*count, m.asn))
        .map(|(_, m)| m)
}

fn saved_routes(rs: &route_server::server::RouteServer, peer: Asn) -> Vec<Route> {
    let mut routes = Vec::new();
    if let Some(table) = rs.accepted().peer(peer) {
        routes.extend(table.iter().cloned());
    }
    routes
}

/// Run one chaotic campaign. Identical `(seed, plan, cfg)` triples give
/// identical outcomes; `plan = FaultPlan::none()` is the fault-free
/// baseline the conservation oracle compares against.
pub fn run_campaign(seed: u64, plan: &FaultPlan, cfg: &CampaignConfig) -> CampaignOutcome {
    let _span = obs::span!(obs::names::CHAOS_CAMPAIGN);
    let world = build_ixp(
        cfg.ixp,
        &WorldConfig {
            seed,
            scale: cfg.scale,
        },
    );
    let rs = Arc::new(RwLock::new(world.rs));
    let lg = LgServer::new(Arc::clone(&rs), seed ^ 0x16_5EED);
    let clock = VirtualClock::new(0);
    let collector = Collector::new(cfg.collector.clone());

    let mut store = SnapshotStore::new();
    let mut stats = InjectStats::default();
    let mut days = Vec::with_capacity(cfg.days as usize);

    for day in 0..cfg.days {
        clock.advance_to(u64::from(day) * DAY_MS);
        let day_start = clock.now_ms();

        // day-level server faults
        let truncating = plan.truncate_days.contains(&day);
        if truncating {
            // rate 1.0: every page halved, so the day's loss is ≥50% —
            // deterministically past the 30% valley threshold sanitation
            // keys on (a marginal rate would make the oracle flaky)
            lg.set_failures(FailureModel {
                error_rate: 0.0,
                truncate_rate: 1.0,
            });
        }
        let storming = plan.storm_days.contains(&day);
        if storming {
            lg.set_limiter(storm_limiter());
        }

        // between-day flap: the peer's session is down for the whole day
        let mut flapped: Option<(Member, Vec<Route>)> = None;
        if plan.flap_days.contains(&day) && !plan.mid_collection_flap {
            let target = flap_target(&rs.read(), cfg.afi);
            if let Some(member) = target {
                let routes = saved_routes(&rs.read(), member.asn);
                rs.write().remove_member(member.asn);
                stats.flapped.insert(day, member.asn);
                flapped = Some((member, routes));
            }
        }

        let (result, churned, flap_dropped) = {
            let mut transport =
                ChaosTransport::new(&lg, &clock, plan, Arc::clone(&rs), day, seed, &mut stats);
            let outcome = collector.collect_with_clock(&mut transport, cfg.afi, day, &clock);
            let churned = std::mem::take(&mut transport.churned_routes);
            let flap_dropped = std::mem::take(&mut transport.flap_dropped);
            (outcome, churned, flap_dropped)
        };

        // undo the day's world mutations so the next day starts clean
        {
            let mut rs = rs.write();
            for (peer, prefix) in churned {
                rs.withdraw(peer, &prefix);
            }
            for (peer, route) in flap_dropped {
                rs.announce(peer, route);
            }
            if let Some((member, routes)) = flapped {
                rs.add_member(member.asn, member.ipv4, member.ipv6);
                for route in routes {
                    rs.announce(member.asn, route);
                }
            }
        }
        if truncating {
            lg.set_failures(FailureModel::NONE);
        }
        if storming {
            lg.set_limiter(default_limiter());
        }

        let virtual_ms = clock.now_ms().saturating_sub(day_start);
        let result = match result {
            Ok(report) => {
                store.insert(report.snapshot);
                Ok(())
            }
            Err(e) => Err(e),
        };
        days.push(DayRecord {
            day,
            result,
            virtual_ms,
        });
    }

    let mut sanitized = store.clone();
    let sanitation = sanitize_store(&mut sanitized, &SanitizeConfig::default());
    let virtual_ms = clock.now_ms();
    let hash = dataset_hash(&store, &sanitized);

    let m = crate::metrics::handles();
    m.campaigns.inc();
    m.virtual_ms.record(virtual_ms);

    CampaignOutcome {
        store,
        sanitized,
        sanitation,
        days,
        stats,
        virtual_ms,
        dataset_hash: hash,
    }
}

/// One day of a dual (snapshot + stream) campaign.
#[derive(Debug, Clone)]
pub struct StreamDayRecord {
    /// Day index.
    pub day: u32,
    /// Whether the chaotic polled collection produced a snapshot.
    pub snapshot: Result<(), LgError>,
    /// Whether the chaotic mid-day stream drain reached quiescence.
    pub drain: Result<(), LgError>,
    /// Whether the fault-free end-of-day reference collection succeeded.
    pub reference: Result<(), LgError>,
    /// Logical milliseconds the whole day consumed (both paths).
    pub virtual_ms: u64,
    /// Fingerprint of the snapshot synthesized from the streamed state at
    /// the quiescent end of the day.
    pub streamed_hash: u64,
    /// Fingerprint of the reference snapshot polled at the same point.
    pub reference_hash: u64,
    /// Fingerprint of the day's report finalized by the incremental
    /// engine (O(churn) path).
    pub incremental_hash: u64,
    /// Fingerprint of the day's report recomputed from scratch over the
    /// streamed end-of-day snapshot (O(world) oracle path).
    pub batch_hash: u64,
    /// The two serialized reports, kept only when they disagree so a
    /// failing test can dump the divergence.
    pub report_divergence: Option<(String, String)>,
    /// Wall-clock nanoseconds the incremental finalize took. Timing
    /// only — never folded into a fingerprint or oracle verdict.
    pub incremental_ns: u64,
    /// Wall-clock nanoseconds the batch recompute took.
    pub batch_ns: u64,
}

/// Everything a finished dual campaign exposes to the stream oracles.
pub struct StreamCampaignOutcome {
    /// Per-day records, both paths.
    pub days: Vec<StreamDayRecord>,
    /// Snapshots synthesized from the streamed state, one per day.
    pub streamed: SnapshotStore,
    /// Fault-free reference snapshots polled at end of day, one per day.
    pub reference: SnapshotStore,
    /// What the injector did (both paths share the transport).
    pub stats: InjectStats,
    /// The stream collector's cumulative accounting.
    pub stream_stats: stream::state::StreamStats,
    /// Store deltas the incremental report engine consumed.
    pub incremental_deltas: u64,
    /// Frames the feed ever minted (replays re-serve, they do not mint).
    pub frames_minted: u64,
    /// Total logical time the campaign consumed.
    pub virtual_ms: u64,
    /// FNV-1a hash over streamed + reference datasets — the determinism
    /// fingerprint of the dual campaign.
    pub dataset_hash: u64,
}

/// Run one dual campaign: each day does the chaotic polled collection
/// *and* a chaotic stream drain through the same fault-injecting
/// transport, then — after the day's world mutations are undone and the
/// remaining events drained fault-free — synthesizes the streamed
/// end-of-day snapshot and polls a fault-free reference snapshot from
/// the very same server. The headline contract is byte identity between
/// the two, checked per day by [`crate::oracle::check_stream_campaign`].
pub fn run_stream_campaign(
    seed: u64,
    plan: &FaultPlan,
    cfg: &CampaignConfig,
) -> StreamCampaignOutcome {
    let _span = obs::span!(obs::names::CHAOS_CAMPAIGN);
    let world = build_ixp(
        cfg.ixp,
        &WorldConfig {
            seed,
            scale: cfg.scale,
        },
    );
    let rs = Arc::new(RwLock::new(world.rs));
    let lg = LgServer::new(Arc::clone(&rs), seed ^ 0x16_5EED);
    let clock = VirtualClock::new(0);
    let collector = Collector::new(cfg.collector.clone());
    // retry depth matches the polled collector's: at corpus fault rates a
    // lost poll is a deterministic non-event, so drain errors stay a
    // real oracle signal
    let stream_collector =
        stream::collector::StreamCollector::new(stream::collector::StreamConfig {
            max_retries: 8,
            dedup_replays: !plan.replay_without_dedup,
            ..stream::collector::StreamConfig::default()
        });
    let mut state = stream::state::RouterState::new(cfg.ixp);
    // the incremental report engine rides the delta feed; every day the
    // batch report recomputed from the streamed snapshot serves as its
    // correctness oracle (the IncrementalDivergence check)
    let dicts = vec![(cfg.ixp, community_dict::schemes::dictionary(cfg.ixp))];
    let mut inc = analysis::incremental::IncrementalReport::new(&dicts);
    if plan.disable_retraction {
        inc.set_retraction_enabled(false);
    }

    let mut streamed = SnapshotStore::new();
    let mut reference = SnapshotStore::new();
    let mut stats = InjectStats::default();
    let mut days = Vec::with_capacity(cfg.days as usize);

    for day in 0..cfg.days {
        clock.advance_to(u64::from(day) * DAY_MS);
        let day_start = clock.now_ms();

        let truncating = plan.truncate_days.contains(&day);
        if truncating {
            lg.set_failures(FailureModel {
                error_rate: 0.0,
                truncate_rate: 1.0,
            });
        }
        let storming = plan.storm_days.contains(&day);
        if storming {
            lg.set_limiter(storm_limiter());
        }

        // between-day flap; with the silent-loss fixture switch the peer
        // goes down for good (its teardown is the event the feed loses)
        let mut flapped: Option<(Member, Vec<Route>)> = None;
        if plan.flap_days.contains(&day) && !plan.mid_collection_flap {
            let target = flap_target(&rs.read(), cfg.afi);
            if let Some(member) = target {
                let routes = saved_routes(&rs.read(), member.asn);
                rs.write().remove_member(member.asn);
                stats.flapped.insert(day, member.asn);
                if !plan.lose_peer_down_silent {
                    flapped = Some((member, routes));
                }
            }
        }

        let (snap_result, drain_result, churned, flap_dropped) = {
            let mut transport =
                ChaosTransport::new(&lg, &clock, plan, Arc::clone(&rs), day, seed, &mut stats);
            let snap = collector.collect_with_clock(&mut transport, cfg.afi, day, &clock);
            let drain = stream_collector.drain_with_clock_into(
                &mut state,
                &mut transport,
                &clock,
                &mut inc,
            );
            let churned = std::mem::take(&mut transport.churned_routes);
            let flap_dropped = std::mem::take(&mut transport.flap_dropped);
            (snap, drain, churned, flap_dropped)
        };

        // undo the day's world mutations so the next day starts clean
        {
            let mut rs = rs.write();
            for (peer, prefix) in churned {
                rs.withdraw(peer, &prefix);
            }
            for (peer, route) in flap_dropped {
                rs.announce(peer, route);
            }
            if let Some((member, routes)) = flapped {
                rs.add_member(member.asn, member.ipv4, member.ipv6);
                for route in routes {
                    rs.announce(member.asn, route);
                }
            }
        }
        if truncating {
            lg.set_failures(FailureModel::NONE);
        }
        if storming {
            lg.set_limiter(default_limiter());
        }

        // quiescent point: drain the undo events fault-free, then poll
        // the reference snapshot from the same server
        let final_drain = {
            let mut plain = &lg;
            stream_collector.drain_with_clock_into(&mut state, &mut plain, &clock, &mut inc)
        };
        let drain_result = drain_result.and(final_drain).map(|_| ());
        let reference_result = {
            let mut plain = &lg;
            collector.collect_with_clock(&mut plain, cfg.afi, day, &clock)
        };

        let streamed_snap = state.to_snapshot(cfg.afi, day);
        let streamed_hash = snapshot_fingerprint(&streamed_snap);

        // incremental vs batch: finalize the engine's O(churn) report and
        // recompute the same unit from scratch over the streamed snapshot,
        // timing both paths (wall clock; never part of any fingerprint)
        let timer = obs::global()
            .histogram(obs::names::ANALYSIS_INCREMENTAL_DAY_NS)
            .start();
        let day_report = inc.report_units(&[(cfg.ixp, cfg.afi)], day);
        let incremental_ns = timer.stop().as_nanos().min(u64::MAX as u128) as u64;
        let mut day_store = SnapshotStore::new();
        day_store.insert(streamed_snap.clone());
        let timer = obs::global()
            .histogram(obs::names::ANALYSIS_BATCH_DAY_NS)
            .start();
        let batch_report = analysis::summary::full_report(&day_store, &dicts);
        let batch_ns = timer.stop().as_nanos().min(u64::MAX as u128) as u64;
        let inc_json =
            serde_json::to_string(&day_report).unwrap_or_else(|_| "<unserializable>".into());
        let batch_json =
            serde_json::to_string(&batch_report).unwrap_or_else(|_| "<unserializable>".into());
        let incremental_hash = fnv1a(inc_json.as_bytes(), FNV_OFFSET);
        let batch_hash = fnv1a(batch_json.as_bytes(), FNV_OFFSET);
        let report_divergence = (incremental_hash != batch_hash).then_some((inc_json, batch_json));

        streamed.insert(streamed_snap);
        let (reference_result, reference_hash) = match reference_result {
            Ok(report) => {
                let hash = snapshot_fingerprint(&report.snapshot);
                reference.insert(report.snapshot);
                (Ok(()), hash)
            }
            Err(e) => (Err(e), 0),
        };

        days.push(StreamDayRecord {
            day,
            snapshot: snap_result.map(|_| ()),
            drain: drain_result,
            reference: reference_result,
            virtual_ms: clock.now_ms().saturating_sub(day_start),
            streamed_hash,
            reference_hash,
            incremental_hash,
            batch_hash,
            report_divergence,
            incremental_ns,
            batch_ns,
        });
    }

    let virtual_ms = clock.now_ms();
    let hash = hash_store(&reference, hash_store(&streamed, FNV_OFFSET));

    let m = crate::metrics::handles();
    m.campaigns.inc();
    m.virtual_ms.record(virtual_ms);

    StreamCampaignOutcome {
        days,
        streamed,
        reference,
        stats,
        stream_stats: state.stats(),
        incremental_deltas: inc.deltas_applied(),
        frames_minted: lg.stream_frames_minted(),
        virtual_ms,
        dataset_hash: hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_campaign_is_complete() {
        let cfg = CampaignConfig::default();
        let outcome = run_campaign(0xBA5E, &FaultPlan::none(), &cfg);
        assert_eq!(outcome.store.len(), cfg.days as usize);
        assert_eq!(outcome.stats.total_faults(), 0);
        for rec in &outcome.days {
            assert!(rec.result.is_ok(), "day {}: {:?}", rec.day, rec.result);
            assert!(rec.virtual_ms <= DAY_BUDGET_MS);
        }
        for snap in outcome.store.iter() {
            assert!(!snap.partial);
            assert!(snap.failed_peers.is_empty());
        }
    }

    #[test]
    fn equal_seed_and_plan_reproduce_the_dataset_hash() {
        let cfg = CampaignConfig::default();
        let plan = FaultPlan::from_seed(3, cfg.days);
        let a = run_campaign(3, &plan, &cfg);
        let b = run_campaign(3, &plan, &cfg);
        assert_eq!(a.dataset_hash, b.dataset_hash);
        assert_eq!(a.virtual_ms, b.virtual_ms);
        assert_eq!(
            a.stats.faults, b.stats.faults,
            "fault injection must be deterministic"
        );
    }

    #[test]
    fn fault_free_stream_campaign_matches_the_polled_reference() {
        let cfg = CampaignConfig::default();
        let outcome = run_stream_campaign(0xBA5E, &FaultPlan::none(), &cfg);
        assert_eq!(outcome.streamed.len(), cfg.days as usize);
        assert_eq!(outcome.reference.len(), cfg.days as usize);
        for rec in &outcome.days {
            assert!(rec.snapshot.is_ok(), "day {}: {:?}", rec.day, rec.snapshot);
            assert!(rec.drain.is_ok(), "day {}: {:?}", rec.day, rec.drain);
            assert!(
                rec.reference.is_ok(),
                "day {}: {:?}",
                rec.day,
                rec.reference
            );
            assert_eq!(
                rec.streamed_hash, rec.reference_hash,
                "day {}: streamed state must match the polled snapshot",
                rec.day
            );
            assert!(rec.virtual_ms <= DAY_BUDGET_MS);
        }
        // update conservation: every minted frame applied exactly once
        assert_eq!(outcome.stream_stats.applied, outcome.frames_minted);
        assert_eq!(outcome.stream_stats.dupes_dropped, 0);
    }

    #[test]
    fn chaotic_stream_campaign_still_converges() {
        let cfg = CampaignConfig::default();
        let plan = FaultPlan::from_seed(5, cfg.days);
        let outcome = run_stream_campaign(5, &plan, &cfg);
        for rec in &outcome.days {
            assert!(rec.drain.is_ok(), "day {}: {:?}", rec.day, rec.drain);
            assert_eq!(
                rec.streamed_hash, rec.reference_hash,
                "day {}: defended faults must not corrupt the streamed state",
                rec.day
            );
        }
        assert_eq!(outcome.stream_stats.applied, outcome.frames_minted);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // standard FNV-1a test vectors
        assert_eq!(fnv1a(b"", FNV_OFFSET), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a", FNV_OFFSET), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar", FNV_OFFSET), 0x85944171F73967E8);
    }
}
