//! # chaos
//!
//! Deterministic simulation testing for the collect→sanitize→analyze
//! pipeline, in the FoundationDB mould: every campaign runs on a
//! virtual clock ([`looking_glass::clock::VirtualClock`]), every fault
//! comes from a seed-derived [`plan::FaultPlan`], and every failure is
//! replayable from the `(seed, fault_plan)` pair the harness prints.
//!
//! The pieces:
//!
//! - [`prop`] — an in-tree property-testing mini-framework with
//!   Hypothesis-style integrated shrinking over recorded choice streams
//!   (the vendored `proptest` stand-in deliberately has none);
//! - [`plan`] — fault plans: dropped/duplicated/delayed responses,
//!   garbage frames, out-of-order and truncated route pages, rate-limit
//!   storms, flapping peers, RIB churn between pages, monitoring-session
//!   resets, and lost peer-down events on the stream feed — as data;
//! - [`inject`] — the [`inject::ChaosTransport`] wrapper that applies a
//!   plan to an in-process Looking Glass server;
//! - [`campaign`] — the multi-day campaign driver, fingerprinting its
//!   dataset with FNV-1a for the determinism oracle;
//! - [`oracle`] — the invariant oracles: completeness, summary
//!   agreement, pagination integrity, conservation vs the fault-free
//!   baseline, sanitation idempotence, retry bounds, time budgets,
//!   determinism — plus the stream path's end-of-day equivalence and
//!   update-conservation oracles.
//!
//! ```
//! use chaos::prelude::*;
//!
//! let cfg = CampaignConfig::default();
//! let plan = FaultPlan::from_seed(7, cfg.days);
//! let baseline = run_campaign(7, &FaultPlan::none(), &cfg);
//! let outcome = run_campaign(7, &plan, &cfg);
//! let violations = check_campaign(&outcome, &baseline, &plan, &cfg);
//! assert!(violations.is_empty(), "replay: (seed=7, plan={})", plan.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod inject;
mod metrics;
pub mod oracle;
pub mod plan;
pub mod prop;

/// Common imports for chaos tests.
pub mod prelude {
    pub use crate::campaign::{
        dataset_hash, run_campaign, run_stream_campaign, snapshot_fingerprint, store_fingerprint,
        CampaignConfig, CampaignOutcome, DayRecord, StreamCampaignOutcome, StreamDayRecord,
        DAY_BUDGET_MS, DAY_MS,
    };
    pub use crate::corpus::{run_corpus, SeedOutcome};
    pub use crate::inject::{ChaosTransport, InjectStats};
    pub use crate::oracle::{check_campaign, check_determinism, check_stream_campaign, Violation};
    pub use crate::plan::{FaultClass, FaultPlan};
    pub use crate::prop::{check, iteration_seed, CheckConfig, Choices, CounterExample};
}
