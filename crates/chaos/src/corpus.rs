//! Multi-seed chaos corpus driver.
//!
//! A corpus is N campaigns at consecutive seeds, each fully
//! self-contained (own world, own virtual clock, own fault plan), which
//! makes the corpus embarrassingly parallel: [`run_corpus`] fans the
//! seeds out over the `par` pool and joins the per-seed outcomes in
//! seed order, so the corpus verdict — and every dataset fingerprint in
//! it — is identical under any `PAR_THREADS`.

use crate::campaign::{run_campaign, run_stream_campaign, CampaignConfig};
use crate::oracle::{check_campaign, check_determinism, check_stream_campaign, Violation};
use crate::plan::FaultPlan;

/// Everything one seed's campaign triple produced: the fault-plan run,
/// its fault-free baseline comparison, and a same-seed determinism
/// rerun.
#[derive(Debug)]
pub struct SeedOutcome {
    /// The campaign seed.
    pub seed: u64,
    /// Faults the plan injected (all classes).
    pub faults: u64,
    /// FNV-1a fingerprint of the faulted run's raw+sanitized datasets.
    pub dataset_hash: u64,
    /// FNV-1a fingerprint of the dual campaign's streamed+reference
    /// datasets.
    pub stream_hash: u64,
    /// Faults the stream path's dual campaign injected.
    pub stream_faults: u64,
    /// Oracle violations, including any determinism violation from the
    /// rerun. Empty means the seed is green.
    pub violations: Vec<Violation>,
    /// The serialized fault plan, for replay instructions.
    pub plan_json: String,
}

/// Run `seeds` campaigns at `master_seed`, `master_seed + 1`, … and
/// return one [`SeedOutcome`] per seed, in seed order.
pub fn run_corpus(master_seed: u64, seeds: u64, cfg: &CampaignConfig) -> Vec<SeedOutcome> {
    let _span = obs::span!(obs::names::CHAOS_CORPUS);
    let seed_list: Vec<u64> = (0..seeds).map(|i| master_seed.wrapping_add(i)).collect();
    par::map_indexed(&seed_list, |_, &seed| {
        let _span = obs::global()
            .histogram(&obs::names::chaos_seed_span(seed))
            .start();
        let plan = FaultPlan::from_seed(seed, cfg.days);
        let baseline = run_campaign(seed, &FaultPlan::none(), cfg);
        let faulted = run_campaign(seed, &plan, cfg);
        let mut violations = check_campaign(&faulted, &baseline, &plan, cfg);
        let rerun = run_campaign(seed, &plan, cfg);
        if let Some(v) = check_determinism(&faulted, &rerun) {
            violations.push(v);
        }
        // the stream path: same plan drives a dual campaign whose
        // equivalence + conservation oracles must stay green, and whose
        // fingerprint must reproduce exactly
        let streamed = run_stream_campaign(seed, &plan, cfg);
        violations.extend(check_stream_campaign(&streamed, &plan, cfg));
        let stream_rerun = run_stream_campaign(seed, &plan, cfg);
        if streamed.dataset_hash != stream_rerun.dataset_hash {
            violations.push(Violation::NonDeterministic {
                first: streamed.dataset_hash,
                second: stream_rerun.dataset_hash,
            });
        }
        SeedOutcome {
            seed,
            faults: faulted.stats.total_faults(),
            dataset_hash: faulted.dataset_hash,
            stream_hash: streamed.dataset_hash,
            stream_faults: streamed.stats.total_faults(),
            violations,
            plan_json: plan.to_json(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> CampaignConfig {
        CampaignConfig {
            days: 2,
            scale: 0.01,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn corpus_covers_every_seed_in_order() {
        let outcomes = run_corpus(100, 3, &tiny_cfg());
        let seeds: Vec<u64> = outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(seeds, vec![100, 101, 102]);
        for o in &outcomes {
            assert!(
                o.violations.is_empty(),
                "seed {}: {:?}",
                o.seed,
                o.violations
            );
        }
    }

    #[test]
    fn corpus_fingerprints_are_thread_count_independent() {
        let cfg = tiny_cfg();
        par::set_threads_override(Some(1));
        let serial: Vec<u64> = run_corpus(7, 3, &cfg)
            .iter()
            .map(|o| o.dataset_hash)
            .collect();
        par::set_threads_override(Some(4));
        let parallel: Vec<u64> = run_corpus(7, 3, &cfg)
            .iter()
            .map(|o| o.dataset_hash)
            .collect();
        par::set_threads_override(None);
        assert_eq!(serial, parallel);
    }
}
