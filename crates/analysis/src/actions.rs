//! §5.3: ASes' favourite actions.
//!
//! Table 2 — how many ASes use each action type;
//! type counts — how many instances of each type occur.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;
use bgp_model::prefix::Afi;
use community_dict::action::ActionGroup;
use community_dict::ixp::IxpId;

use crate::core::{pct, View};

/// Table 2 result for one (IXP, family): per action group, the ASes
/// tagging at least one route with it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// Members at the RS (the percentage denominator).
    pub members_at_rs: usize,
    /// AS counts per group, in [`ActionGroup::ALL`] order.
    pub ases_per_group: BTreeMap<ActionGroup, usize>,
}

impl Table2 {
    /// Derive the table from accumulated per-group AS counts. Groups
    /// with zero users must be absent (the batch scan only ever creates
    /// an entry on occurrence) — the filter here keeps the incremental
    /// path's serialization identical.
    pub fn from_counts(
        ixp: IxpId,
        afi: Afi,
        members_at_rs: usize,
        ases_per_group: BTreeMap<ActionGroup, usize>,
    ) -> Self {
        Table2 {
            ixp,
            afi,
            members_at_rs,
            ases_per_group: ases_per_group.into_iter().filter(|(_, n)| *n > 0).collect(),
        }
    }

    /// AS count for one group.
    pub fn count(&self, group: ActionGroup) -> usize {
        self.ases_per_group.get(&group).copied().unwrap_or(0)
    }

    /// Percentage of RS members using one group.
    pub fn pct(&self, group: ActionGroup) -> f64 {
        pct(self.count(group) as u64, self.members_at_rs as u64)
    }
}

/// Compute Table 2.
pub fn table2(view: &View<'_>) -> Table2 {
    let mut users: BTreeMap<ActionGroup, BTreeSet<Asn>> = BTreeMap::new();
    for (asn, _, _, action) in view.action_instances() {
        users.entry(action.kind.group()).or_default().insert(asn);
    }
    Table2::from_counts(
        view.snap.ixp,
        view.snap.afi,
        view.member_count(),
        users.into_iter().map(|(g, s)| (g, s.len())).collect(),
    )
}

/// §5.3 "Number of action communities per type": instance counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypeCounts {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// Total action instances.
    pub total: u64,
    /// Instance counts per group.
    pub per_group: BTreeMap<ActionGroup, u64>,
}

impl TypeCounts {
    /// Derive the counts from accumulated per-group instance totals,
    /// filtering zero-count groups exactly like the batch scan (which
    /// only creates entries on occurrence).
    pub fn from_counts(ixp: IxpId, afi: Afi, per_group: BTreeMap<ActionGroup, u64>) -> Self {
        let per_group: BTreeMap<ActionGroup, u64> =
            per_group.into_iter().filter(|(_, n)| *n > 0).collect();
        TypeCounts {
            ixp,
            afi,
            total: per_group.values().sum(),
            per_group,
        }
    }

    /// Instance count for one group.
    pub fn count(&self, group: ActionGroup) -> u64 {
        self.per_group.get(&group).copied().unwrap_or(0)
    }

    /// Percentage of action instances in one group (paper: do-not-announce
    /// 66.6–92.0%, announce-only 17.7–31.4%, prepend <1.9%, blackhole
    /// <0.4% for IPv4).
    pub fn pct(&self, group: ActionGroup) -> f64 {
        pct(self.count(group), self.total)
    }
}

/// Compute the §5.3 per-type instance counts.
pub fn type_counts(view: &View<'_>) -> TypeCounts {
    let mut per_group: BTreeMap<ActionGroup, u64> = BTreeMap::new();
    for (_, _, _, action) in view.action_instances() {
        *per_group.entry(action.kind.group()).or_insert(0) += 1;
    }
    TypeCounts::from_counts(view.snap.ixp, view.snap.afi, per_group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::community::well_known;
    use bgp_model::route::Route;
    use community_dict::schemes;
    use looking_glass::snapshot::Snapshot;

    fn snapshot() -> Snapshot {
        let ixp = IxpId::DeCixFra;
        let mk = |pfx: &str, tagger: u32, cs: Vec<bgp_model::community::StandardCommunity>| {
            (
                Asn(tagger),
                Route::builder(pfx.parse().unwrap(), "198.32.0.7".parse().unwrap())
                    .path([tagger])
                    .standards(cs)
                    .build(),
            )
        };
        Snapshot {
            ixp,
            day: 0,
            afi: Afi::Ipv4,
            members: vec![Asn(39120), Asn(6939), Asn(13335), Asn(20940)],
            routes: vec![
                mk(
                    "193.0.10.0/24",
                    39120,
                    vec![
                        schemes::avoid_community(ixp, Asn(6939)),
                        schemes::avoid_community(ixp, Asn(15169)),
                        schemes::only_community(ixp, Asn(13335)),
                    ],
                ),
                mk(
                    "193.0.11.0/24",
                    6939,
                    vec![
                        schemes::avoid_community(ixp, Asn(15169)),
                        schemes::prepend_community(ixp, Asn(13335), 2).unwrap(),
                    ],
                ),
                mk("193.0.12.66/32", 13335, vec![well_known::BLACKHOLE]),
            ],
            partial: false,
            failed_peers: vec![],
        }
    }

    #[test]
    fn table2_counts_ases_per_group() {
        let snap = snapshot();
        let dict = schemes::dictionary(snap.ixp);
        let view = View::new(&snap, &dict);
        let t = table2(&view);
        assert_eq!(t.count(ActionGroup::DoNotAnnounceTo), 2);
        assert_eq!(t.count(ActionGroup::AnnounceOnlyTo), 1);
        assert_eq!(t.count(ActionGroup::PrependTo), 1);
        assert_eq!(t.count(ActionGroup::Blackhole), 1);
        assert_eq!(t.pct(ActionGroup::DoNotAnnounceTo), 50.0);
    }

    #[test]
    fn type_counts_instances() {
        let snap = snapshot();
        let dict = schemes::dictionary(snap.ixp);
        let view = View::new(&snap, &dict);
        let t = type_counts(&view);
        assert_eq!(t.total, 6);
        assert_eq!(t.count(ActionGroup::DoNotAnnounceTo), 3);
        assert_eq!(t.count(ActionGroup::AnnounceOnlyTo), 1);
        assert_eq!(t.count(ActionGroup::PrependTo), 1);
        assert_eq!(t.count(ActionGroup::Blackhole), 1);
        assert!((t.pct(ActionGroup::DoNotAnnounceTo) - 50.0).abs() < 1e-9);
    }
}
