//! The incremental report engine: every aggregate behind the paper's
//! tables and figures maintained as *mergeable, decrementable* counter
//! state, updated per applied [`RibEvent`](route_server::events::RibEvent)
//! as the stream path mutates its [`stream::state::RouterState`] — so day
//! N+1's report costs O(churn) instead of O(world).
//!
//! # Design
//!
//! Every aggregate is a commutative-monoid counter with an exact inverse:
//!
//! - `apply(delta)` — add an announced route's contribution;
//! - `retract(delta)` — subtract a withdrawn route's contribution, the
//!   exact inverse of `apply`;
//! - `merge(other)` — combine two partial states built over *disjoint
//!   peer sets* (associative and commutative, so per-IXP shards compose
//!   at an ordered [`par`] join in any grouping).
//!
//! The engine consumes [`RouteDelta`]s from
//! [`RouterState::apply_with`](stream::state::RouterState::apply_with):
//! each delta carries both sides of the store mutation plus the session
//! context that decides visibility, so no shadow copy of the peer table
//! is kept here. Announces retract the replaced route and apply the new
//! one; withdraws and synthesized peer-down withdraws retract; session
//! flag changes re-scope a peer's stored routes per family.
//!
//! # Bit-identical finalization
//!
//! [`IncrementalReport::report`] produces a [`FullReport`] that is
//! byte-identical to [`full_report`](crate::summary::full_report) over a
//! snapshot of the same state, *by construction*: finalization rebuilds
//! the exact count maps the batch scan accumulates (zero-count entries
//! absent, `BTreeMap` order) and hands them to the same shared
//! `from_counts` derivations, so every float division, sort and
//! tie-break runs in one place for both paths. The golden equivalence
//! suite (`tests/incremental_equivalence.rs`) and the chaos
//! `IncrementalDivergence` oracle hold the two paths equal under faults.
//!
//! # Interning
//!
//! The hot delta path never scans the dictionary: community values and
//! ASNs are interned to dense `u32` ids on first sight (paying one
//! dictionary classification), and every repeat is a `Vec` index into the
//! ID-indexed classification table. The intern maps are lookup-only —
//! nothing iterates them, all serialized output is rebuilt through
//! `BTreeMap`s at finalize.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use bgp_model::asn::Asn;
use bgp_model::community::StandardCommunity;
use bgp_model::prefix::Afi;
use bgp_model::route::Route;
use community_dict::action::{Action, ActionGroup};
use community_dict::classify::{classify_extended, classify_large};
use community_dict::dictionary::Dictionary;
use community_dict::ixp::IxpId;
use community_dict::semantics::{Classification, Semantics};
use stream::prelude::{DeltaConsumer, RouteDelta};

use crate::actions::{Table2, TypeCounts};
use crate::fig4::{Fig4a, Fig4b, Fig4c};
use crate::figs_overview::{Fig1, Fig2, Fig3};
use crate::overlap::target_overlap_from_tops;
use crate::summary::{FullReport, SnapshotReport};
use crate::tops::{Fig7, Ineffective, TopCommunities};

/// Direction of a route update: the two halves of the monoid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Add the route's contribution.
    Apply,
    /// Subtract it (exact inverse of [`Dir::Apply`]).
    Retract,
}

/// Step a counter in `dir`. Saturating on both edges: a correct
/// apply/retract pairing never saturates (retract only ever follows the
/// matching apply), and under a deliberately broken pairing (the chaos
/// `disable_retraction` fixture) clamping at zero keeps the engine
/// panic-free while the divergence oracle reports the corruption.
fn step(counter: &mut u64, dir: Dir) {
    *counter = match dir {
        Dir::Apply => counter.saturating_add(1),
        Dir::Retract => counter.saturating_sub(1),
    };
}

/// Position of `group` in [`ActionGroup::ALL`] — the fixed index used by
/// the per-AS and per-unit group counter arrays.
fn group_idx(group: ActionGroup) -> usize {
    ActionGroup::ALL
        .iter()
        .position(|g| *g == group)
        .unwrap_or(0)
}

/// §5.5's membership test, evaluated at finalize time against the live
/// member set (identical to [`View::is_ineffective`](crate::core::View::is_ineffective)).
fn is_ineffective(action: &Action, members: &BTreeSet<Asn>) -> bool {
    match action.target.peer_asn() {
        Some(asn) => !members.contains(&asn),
        None => false,
    }
}

/// Cached classification of one interned community value.
#[derive(Debug, Clone, Copy)]
enum CommMeta {
    /// No IXP meaning.
    Unknown,
    /// IXP-defined, informational.
    Info,
    /// IXP-defined action.
    Action(Action),
}

impl From<Classification> for CommMeta {
    fn from(c: Classification) -> Self {
        match c {
            Classification::Unknown => CommMeta::Unknown,
            Classification::IxpDefined(Semantics::Informational(_)) => CommMeta::Info,
            Classification::IxpDefined(Semantics::Action(a)) => CommMeta::Action(a),
        }
    }
}

/// Interner for standard community values: value → dense id, with the
/// classification paid once at intern time. The `ids` map is lookup-only;
/// iteration happens over the dense `Vec`s (or not at all).
#[derive(Debug, Clone, Default)]
struct CommTable {
    ids: HashMap<u32, u32>,
    values: Vec<u32>,
    meta: Vec<CommMeta>,
}

impl CommTable {
    fn intern(&mut self, dict: &Dictionary, c: StandardCommunity) -> u32 {
        if let Some(&id) = self.ids.get(&c.0) {
            return id;
        }
        self.push(c.0, CommMeta::from(dict.classify(c)))
    }

    /// Intern with a known classification (merge path: the other shard
    /// already paid the dictionary lookup).
    fn intern_with_meta(&mut self, value: u32, meta: CommMeta) -> u32 {
        if let Some(&id) = self.ids.get(&value) {
            return id;
        }
        self.push(value, meta)
    }

    fn push(&mut self, value: u32, meta: CommMeta) -> u32 {
        let id = self.values.len() as u32;
        self.ids.insert(value, id);
        self.values.push(value);
        self.meta.push(meta);
        id
    }

    fn meta(&self, id: u32) -> CommMeta {
        self.meta
            .get(id as usize)
            .copied()
            .unwrap_or(CommMeta::Unknown)
    }

    fn value(&self, id: u32) -> u32 {
        self.values.get(id as usize).copied().unwrap_or(0)
    }
}

/// Interner for ASNs: ASN → dense id indexing the per-AS counter table.
#[derive(Debug, Clone, Default)]
struct AsnTable {
    ids: HashMap<u32, u32>,
    values: Vec<Asn>,
}

impl AsnTable {
    fn intern(&mut self, asn: Asn) -> u32 {
        if let Some(&id) = self.ids.get(&asn.value()) {
            return id;
        }
        let id = self.values.len() as u32;
        self.ids.insert(asn.value(), id);
        self.values.push(asn);
        id
    }

    fn value(&self, id: u32) -> Asn {
        self.values.get(id as usize).copied().unwrap_or(Asn(0))
    }
}

/// Per-AS decrementable counters (indexed by interned ASN id).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PerAs {
    /// Visible routes announced by this AS.
    routes: u64,
    /// Visible routes carrying at least one action community.
    tagged: u64,
    /// Action instances across this AS's visible routes.
    instances: u64,
    /// Action instances per [`ActionGroup::ALL`] position.
    groups: [u64; 4],
}

impl PerAs {
    fn is_zero(&self) -> bool {
        *self == PerAs::default()
    }

    fn add(&mut self, other: &PerAs) {
        self.routes = self.routes.saturating_add(other.routes);
        self.tagged = self.tagged.saturating_add(other.tagged);
        self.instances = self.instances.saturating_add(other.instances);
        for (s, o) in self.groups.iter_mut().zip(other.groups.iter()) {
            *s = s.saturating_add(*o);
        }
    }
}

/// All decrementable aggregate state for one (IXP, family) unit — the
/// counters behind every figure and table of one [`SnapshotReport`].
#[derive(Debug, Clone, Default)]
struct UnitAgg {
    /// Peers holding a session for this family (Table/figure denominators
    /// and the §5.5 membership test).
    members: BTreeSet<Asn>,
    /// Community instances with no IXP meaning, all three types (Fig. 1).
    unknown: u64,
    /// IXP-defined extended instances (Figs. 1–2).
    ext_defined: u64,
    /// IXP-defined large instances (Figs. 1–2).
    large_defined: u64,
    /// Standard IXP-defined action instances (Figs. 3–7, Table 2, §5.5).
    std_action: u64,
    /// Standard IXP-defined informational instances (Figs. 1–3).
    std_info: u64,
    /// Visible routes (Fig. 4a).
    routes_total: u64,
    /// Per-AS counters, indexed by interned ASN id.
    per_as: Vec<PerAs>,
    /// Action instances per interned community id (Figs. 5–6).
    per_comm: Vec<u64>,
    /// Action instances per (ASN id, community id) — Fig. 7's
    /// tagger×community matrix. Entries are removed when they retract to
    /// zero, keeping the map churn-bounded.
    per_as_comm: BTreeMap<(u32, u32), u64>,
    /// Action instances per [`ActionGroup::ALL`] position (§5.3).
    insts_per_group: [u64; 4],
}

impl UnitAgg {
    /// Fold `other` (built over a disjoint peer set) into `self`,
    /// re-keying `other`'s dense ids through the id maps.
    fn merge_from(&mut self, other: &UnitAgg, asn_map: &[u32], comm_map: &[u32]) {
        self.members.extend(other.members.iter().copied());
        self.unknown = self.unknown.saturating_add(other.unknown);
        self.ext_defined = self.ext_defined.saturating_add(other.ext_defined);
        self.large_defined = self.large_defined.saturating_add(other.large_defined);
        self.std_action = self.std_action.saturating_add(other.std_action);
        self.std_info = self.std_info.saturating_add(other.std_info);
        self.routes_total = self.routes_total.saturating_add(other.routes_total);
        for (i, p) in other.per_as.iter().enumerate() {
            if p.is_zero() {
                continue;
            }
            let sid = asn_map.get(i).copied().unwrap_or(0) as usize;
            if sid >= self.per_as.len() {
                self.per_as.resize(sid + 1, PerAs::default());
            }
            if let Some(sp) = self.per_as.get_mut(sid) {
                sp.add(p);
            }
        }
        for (i, &n) in other.per_comm.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let sid = comm_map.get(i).copied().unwrap_or(0) as usize;
            if sid >= self.per_comm.len() {
                self.per_comm.resize(sid + 1, 0);
            }
            if let Some(slot) = self.per_comm.get_mut(sid) {
                *slot = slot.saturating_add(n);
            }
        }
        for (&(aid, cid), &n) in &other.per_as_comm {
            if n == 0 {
                continue;
            }
            let key = (
                asn_map.get(aid as usize).copied().unwrap_or(0),
                comm_map.get(cid as usize).copied().unwrap_or(0),
            );
            let slot = self.per_as_comm.entry(key).or_insert(0);
            *slot = slot.saturating_add(n);
        }
        for (s, o) in self
            .insts_per_group
            .iter_mut()
            .zip(other.insts_per_group.iter())
        {
            *s = s.saturating_add(*o);
        }
    }
}

/// One route's full contribution, applied or retracted. The caller has
/// already established visibility (family match + live session).
fn update_route(
    comms: &mut CommTable,
    asns: &mut AsnTable,
    unit: &mut UnitAgg,
    dict: &Dictionary,
    peer: Asn,
    route: &Route,
    dir: Dir,
) {
    let aid = asns.intern(peer);
    if aid as usize >= unit.per_as.len() {
        unit.per_as.resize(aid as usize + 1, PerAs::default());
    }
    step(&mut unit.routes_total, dir);
    let mut has_action = false;
    for c in &route.standard_communities {
        let cid = comms.intern(dict, *c);
        match comms.meta(cid) {
            CommMeta::Unknown => step(&mut unit.unknown, dir),
            CommMeta::Info => step(&mut unit.std_info, dir),
            CommMeta::Action(action) => {
                has_action = true;
                step(&mut unit.std_action, dir);
                let gi = group_idx(action.kind.group());
                if let Some(slot) = unit.insts_per_group.get_mut(gi) {
                    step(slot, dir);
                }
                if cid as usize >= unit.per_comm.len() {
                    unit.per_comm.resize(cid as usize + 1, 0);
                }
                if let Some(slot) = unit.per_comm.get_mut(cid as usize) {
                    step(slot, dir);
                }
                if let Some(p) = unit.per_as.get_mut(aid as usize) {
                    step(&mut p.instances, dir);
                    if let Some(g) = p.groups.get_mut(gi) {
                        step(g, dir);
                    }
                }
                let e = unit.per_as_comm.entry((aid, cid)).or_insert(0);
                step(e, dir);
                if *e == 0 {
                    unit.per_as_comm.remove(&(aid, cid));
                }
            }
        }
    }
    for lc in &route.large_communities {
        match classify_large(dict.ixp(), *lc) {
            Classification::IxpDefined(_) => step(&mut unit.large_defined, dir),
            Classification::Unknown => step(&mut unit.unknown, dir),
        }
    }
    for ec in &route.extended_communities {
        match classify_extended(dict.ixp(), *ec) {
            Classification::IxpDefined(_) => step(&mut unit.ext_defined, dir),
            Classification::Unknown => step(&mut unit.unknown, dir),
        }
    }
    if let Some(p) = unit.per_as.get_mut(aid as usize) {
        step(&mut p.routes, dir);
        if has_action {
            step(&mut p.tagged, dir);
        }
    }
}

/// The per-IXP incremental engine: both family units plus the shared
/// community/ASN interners (the dictionary is behind an [`Arc`], so
/// cloning an engine — e.g. for a benchmark baseline — shares it).
#[derive(Clone)]
pub struct IxpEngine {
    ixp: IxpId,
    dict: Arc<Dictionary>,
    comms: CommTable,
    asns: AsnTable,
    v4: UnitAgg,
    v6: UnitAgg,
}

impl IxpEngine {
    /// An empty engine for one IXP.
    pub fn new(ixp: IxpId, dict: Arc<Dictionary>) -> Self {
        IxpEngine {
            ixp,
            dict,
            comms: CommTable::default(),
            asns: AsnTable::default(),
            v4: UnitAgg::default(),
            v6: UnitAgg::default(),
        }
    }

    fn unit(&self, afi: Afi) -> &UnitAgg {
        match afi {
            Afi::Ipv4 => &self.v4,
            Afi::Ipv6 => &self.v6,
        }
    }

    /// Route one visible-route update to the family's unit. No-op when
    /// the route is not of family `afi` (a v6 route never contributes to
    /// the v4 unit, matching the snapshot filter).
    fn route_update(&mut self, afi: Afi, peer: Asn, route: &Route, dir: Dir) {
        if route.afi() != afi {
            return;
        }
        let dict = &self.dict;
        let (comms, asns, unit) = match afi {
            Afi::Ipv4 => (&mut self.comms, &mut self.asns, &mut self.v4),
            Afi::Ipv6 => (&mut self.comms, &mut self.asns, &mut self.v6),
        };
        update_route(comms, asns, unit, dict, peer, route, dir);
    }

    /// Apply one store delta. `retraction_enabled` is the chaos switch:
    /// when off, every `Retract`-direction route update is skipped
    /// (membership still tracks), deliberately corrupting the aggregates
    /// so the `IncrementalDivergence` oracle can prove it notices.
    fn apply_delta(&mut self, delta: &RouteDelta<'_>, retraction_enabled: bool) {
        match delta {
            RouteDelta::PeerUp {
                peer,
                prev,
                now,
                routes,
            } => {
                for afi in [Afi::Ipv4, Afi::Ipv6] {
                    let had = prev.map(|s| s.has(afi)).unwrap_or(false);
                    let has = now.has(afi);
                    if had == has {
                        continue;
                    }
                    if has {
                        match afi {
                            Afi::Ipv4 => self.v4.members.insert(*peer),
                            Afi::Ipv6 => self.v6.members.insert(*peer),
                        };
                        for route in routes.values() {
                            self.route_update(afi, *peer, route, Dir::Apply);
                        }
                    } else {
                        match afi {
                            Afi::Ipv4 => self.v4.members.remove(peer),
                            Afi::Ipv6 => self.v6.members.remove(peer),
                        };
                        if retraction_enabled {
                            for route in routes.values() {
                                self.route_update(afi, *peer, route, Dir::Retract);
                            }
                        }
                    }
                }
            }
            RouteDelta::PeerDown { peer, prev, routes } => {
                for afi in [Afi::Ipv4, Afi::Ipv6] {
                    if !prev.map(|s| s.has(afi)).unwrap_or(false) {
                        continue;
                    }
                    match afi {
                        Afi::Ipv4 => self.v4.members.remove(peer),
                        Afi::Ipv6 => self.v6.members.remove(peer),
                    };
                    if retraction_enabled {
                        for route in routes.values() {
                            self.route_update(afi, *peer, route, Dir::Retract);
                        }
                    }
                }
            }
            RouteDelta::Announce {
                peer,
                session,
                old,
                new,
            } => {
                let Some(session) = session else { return };
                if let Some(old) = old {
                    if session.has(old.afi()) && retraction_enabled {
                        self.route_update(old.afi(), *peer, old, Dir::Retract);
                    }
                }
                if session.has(new.afi()) {
                    self.route_update(new.afi(), *peer, new, Dir::Apply);
                }
            }
            RouteDelta::Withdraw { peer, session, old } => {
                let Some(session) = session else { return };
                if session.has(old.afi()) && retraction_enabled {
                    self.route_update(old.afi(), *peer, old, Dir::Retract);
                }
            }
        }
    }

    /// Fold `other` into `self`. Correct (equal to having fed both
    /// shards' deltas into one engine) when the shards saw *disjoint
    /// peers* — the per-IXP sharding [`par`] composition uses. The fold
    /// is associative and commutative: every counter is a sum, members a
    /// set union, and `other`'s dense ids are re-keyed through `self`'s
    /// interners (classifications are carried over, not re-derived).
    pub fn merge(&mut self, other: &IxpEngine) {
        let comm_map: Vec<u32> = other
            .comms
            .values
            .iter()
            .zip(other.comms.meta.iter())
            .map(|(&v, &m)| self.comms.intern_with_meta(v, m))
            .collect();
        let asn_map: Vec<u32> = other
            .asns
            .values
            .iter()
            .map(|&a| self.asns.intern(a))
            .collect();
        self.v4.merge_from(&other.v4, &asn_map, &comm_map);
        self.v6.merge_from(&other.v6, &asn_map, &comm_map);
    }

    /// Finalize one family's [`SnapshotReport`]: rebuild the exact count
    /// maps the batch scan accumulates (zero entries absent, `BTreeMap`
    /// order) and derive every figure through the shared `from_counts`
    /// constructors — identical bytes by construction.
    pub fn unit_report(&self, afi: Afi, day: u32) -> SnapshotReport {
        let unit = self.unit(afi);
        let members_at_rs = unit.members.len();

        // Per-AS maps, keyed back from dense ids; entries exist only
        // where the batch scan would have created them (count > 0).
        let mut per_as_routes: BTreeMap<Asn, u64> = BTreeMap::new();
        let mut per_as_insts: BTreeMap<Asn, u64> = BTreeMap::new();
        let mut ases_using_actions = 0usize;
        let mut routes_with_actions = 0u64;
        for (i, p) in unit.per_as.iter().enumerate() {
            let asn = self.asns.value(i as u32);
            if p.routes > 0 {
                per_as_routes.insert(asn, p.routes);
            }
            if p.instances > 0 {
                per_as_insts.insert(asn, p.instances);
            }
            if p.tagged > 0 {
                ases_using_actions += 1;
                routes_with_actions = routes_with_actions.saturating_add(p.tagged);
            }
        }

        // §5.3: AS counts per group (distinct ASes with ≥1 instance) and
        // instance counts per group.
        let mut ases_per_group: BTreeMap<ActionGroup, usize> = BTreeMap::new();
        let mut insts_per_group: BTreeMap<ActionGroup, u64> = BTreeMap::new();
        for (gi, group) in ActionGroup::ALL.iter().enumerate() {
            let ases = unit
                .per_as
                .iter()
                .filter(|p| p.groups.get(gi).copied().unwrap_or(0) > 0)
                .count();
            if ases > 0 {
                ases_per_group.insert(*group, ases);
            }
            let insts = unit.insts_per_group.get(gi).copied().unwrap_or(0);
            if insts > 0 {
                insts_per_group.insert(*group, insts);
            }
        }

        // Figs. 5–6 / §5.5: per-community counts, the Fig. 6 subset
        // filtered by the finalize-time membership test.
        let mut fig5_counts: BTreeMap<StandardCommunity, (Action, u64)> = BTreeMap::new();
        let mut fig6_counts: BTreeMap<StandardCommunity, (Action, u64)> = BTreeMap::new();
        let mut ineffective_count = 0u64;
        for (i, &n) in unit.per_comm.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let CommMeta::Action(action) = self.comms.meta(i as u32) else {
                continue;
            };
            let community = StandardCommunity(self.comms.value(i as u32));
            fig5_counts.insert(community, (action, n));
            if is_ineffective(&action, &unit.members) {
                fig6_counts.insert(community, (action, n));
                ineffective_count = ineffective_count.saturating_add(n);
            }
        }

        // Fig. 7: ineffective instances per tagging AS.
        let mut fig7_per_as: BTreeMap<Asn, u64> = BTreeMap::new();
        for (&(aid, cid), &n) in &unit.per_as_comm {
            if n == 0 {
                continue;
            }
            let CommMeta::Action(action) = self.comms.meta(cid) else {
                continue;
            };
            if !is_ineffective(&action, &unit.members) {
                continue;
            }
            let slot = fig7_per_as.entry(self.asns.value(aid)).or_insert(0);
            *slot = slot.saturating_add(n);
        }

        let std_defined = unit.std_info.saturating_add(unit.std_action);
        let fig4b = Fig4b::from_per_as(self.ixp, afi, per_as_insts.clone(), members_at_rs);
        let fig4c = Fig4c::from_counts(self.ixp, afi, &per_as_routes, &per_as_insts);
        let fig5 = TopCommunities::from_counts(self.ixp, afi, fig5_counts, unit.std_action, 20);
        let top20_nonmember_count = fig5
            .top
            .iter()
            .filter(|r| is_ineffective(&r.action, &unit.members))
            .count();

        SnapshotReport {
            ixp: self.ixp,
            afi,
            day,
            fig1: Fig1::from_counts(
                self.ixp,
                afi,
                std_defined
                    .saturating_add(unit.ext_defined)
                    .saturating_add(unit.large_defined),
                unit.unknown,
            ),
            fig2: Fig2::from_counts(
                self.ixp,
                afi,
                std_defined,
                unit.ext_defined,
                unit.large_defined,
            ),
            fig3: Fig3::from_counts(self.ixp, afi, unit.std_action, unit.std_info),
            fig4a: Fig4a {
                ixp: self.ixp,
                afi,
                members_at_rs,
                ases_using_actions,
                routes_total: unit.routes_total as usize,
                routes_with_actions: routes_with_actions as usize,
            },
            fig4b_top1pct: fig4b.share_of_top(0.01),
            fig4b_top10pct: fig4b.share_of_top(0.10),
            fig4c_log_correlation: fig4c.log_correlation(),
            fig4c_asymmetry: fig4c.asymmetry(),
            table2: Table2::from_counts(self.ixp, afi, members_at_rs, ases_per_group),
            type_counts: TypeCounts::from_counts(self.ixp, afi, insts_per_group),
            fig6: TopCommunities::from_counts(self.ixp, afi, fig6_counts, unit.std_action, 20),
            ineffective: Ineffective {
                ixp: self.ixp,
                afi,
                total_actions: unit.std_action,
                ineffective: ineffective_count,
                top20_nonmember_count,
            },
            fig7: Fig7::from_per_as(self.ixp, afi, fig7_per_as, 10),
            fig5,
        }
    }
}

/// The stream-attached incremental report: one [`IxpEngine`] per
/// monitored IXP, fed as a [`DeltaConsumer`] by
/// [`RouterState::apply_with`](stream::state::RouterState::apply_with) /
/// [`StreamCollector::drain_with_clock_into`](stream::collector::StreamCollector::drain_with_clock_into),
/// finalized into a [`FullReport`] on demand.
#[derive(Clone)]
pub struct IncrementalReport {
    engines: BTreeMap<IxpId, IxpEngine>,
    retraction_enabled: bool,
    deltas: u64,
}

impl IncrementalReport {
    /// An empty report over the given IXPs (each dictionary is wrapped in
    /// an [`Arc`] and shared immutably with the engines).
    pub fn new(dicts: &[(IxpId, Dictionary)]) -> Self {
        IncrementalReport {
            engines: dicts
                .iter()
                .map(|(ixp, dict)| (*ixp, IxpEngine::new(*ixp, Arc::new(dict.clone()))))
                .collect(),
            retraction_enabled: true,
            deltas: 0,
        }
    }

    /// Toggle retraction. **Chaos-only:** turning this off makes every
    /// withdraw/replace a no-op on the aggregates, deliberately breaking
    /// the apply/retract inverse so the `IncrementalDivergence` oracle
    /// can demonstrate it fires.
    pub fn set_retraction_enabled(&mut self, on: bool) {
        self.retraction_enabled = on;
    }

    /// Deltas consumed so far (the `analysis.incremental.deltas` metric's
    /// source of truth; callers fold it into the registry at day ends).
    pub fn deltas_applied(&self) -> u64 {
        self.deltas
    }

    /// The engine for one IXP.
    pub fn engine(&self, ixp: IxpId) -> Option<&IxpEngine> {
        self.engines.get(&ixp)
    }

    /// Fold another report's partial state into this one (see
    /// [`IxpEngine::merge`]; shards must have seen disjoint peers).
    pub fn merge(&mut self, other: &IncrementalReport) {
        for (ixp, engine) in &other.engines {
            match self.engines.get_mut(ixp) {
                Some(mine) => mine.merge(engine),
                None => {
                    self.engines.insert(*ixp, engine.clone());
                }
            }
        }
        self.deltas = self.deltas.saturating_add(other.deltas);
    }

    /// Finalize the report for an explicit unit list, fanned out with
    /// [`par::map_indexed`] (each unit reads `&self` only; the ordered
    /// join keeps the output deterministic at any thread count).
    pub fn report_units(&self, units: &[(IxpId, Afi)], day: u32) -> FullReport {
        let _span = obs::span!(obs::names::ANALYSIS_INCREMENTAL_REPORT);
        let computed = par::map_indexed(units, |_, &(ixp, afi)| {
            self.engines.get(&ixp).map(|e| e.unit_report(afi, day))
        });
        let mut report = FullReport::default();
        report.snapshots.extend(computed.into_iter().flatten());
        let v4_tops: Vec<&TopCommunities> = report
            .snapshots
            .iter()
            .filter(|s| s.afi == Afi::Ipv4)
            .map(|s| &s.fig5)
            .collect();
        if v4_tops.len() >= 2 {
            report.overlap_v4 = Some(target_overlap_from_tops(&v4_tops));
        }
        report
    }

    /// Finalize every (IXP, family) unit — the batch
    /// [`full_report`](crate::summary::full_report)'s unit order (IXP
    /// construction order × family) when engines were constructed from
    /// the same dictionary slice.
    pub fn report(&self, day: u32) -> FullReport {
        let units: Vec<(IxpId, Afi)> = self
            .engines
            .keys()
            .flat_map(|&ixp| [(ixp, Afi::Ipv4), (ixp, Afi::Ipv6)])
            .collect();
        self.report_units(&units, day)
    }
}

impl DeltaConsumer for IncrementalReport {
    fn on_delta(&mut self, ixp: IxpId, delta: &RouteDelta<'_>) {
        let Some(engine) = self.engines.get_mut(&ixp) else {
            return;
        };
        self.deltas = self.deltas.saturating_add(1);
        engine.apply_delta(delta, self.retraction_enabled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::route::Route;
    use community_dict::schemes;
    use looking_glass::snapshot::SnapshotStore;
    use route_server::events::RibEvent;
    use stream::prelude::RouterState;

    use crate::summary::full_report;

    const IXP: IxpId = IxpId::Linx;

    fn dicts() -> Vec<(IxpId, Dictionary)> {
        vec![(IXP, schemes::dictionary(IXP))]
    }

    fn route(pfx: &str, tagger: u32, targets: &[u32]) -> Route {
        let mut b = Route::builder(pfx.parse().unwrap(), "198.32.0.7".parse().unwrap())
            .path([tagger, 15169]);
        for t in targets {
            b = b.standard(schemes::avoid_community(IXP, Asn(*t)));
        }
        b.build()
    }

    /// Drive events through a real `RouterState` with the report attached
    /// and return both the streamed batch report and the incremental one.
    fn dual_run(events: &[RibEvent]) -> (FullReport, FullReport) {
        let mut state = RouterState::new(IXP);
        let mut inc = IncrementalReport::new(&dicts());
        for ev in events {
            state.apply_with(ev, &mut inc);
        }
        let mut store = SnapshotStore::new();
        store.insert(state.to_snapshot(Afi::Ipv4, 7));
        store.insert(state.to_snapshot(Afi::Ipv6, 7));
        let batch = full_report(&store, &dicts());
        let units = [(IXP, Afi::Ipv4), (IXP, Afi::Ipv6)];
        (batch, inc.report_units(&units, 7))
    }

    fn assert_equal(events: &[RibEvent]) {
        let (batch, inc) = dual_run(events);
        assert_eq!(
            serde_json::to_string(&batch).unwrap(),
            serde_json::to_string(&inc).unwrap()
        );
    }

    #[test]
    fn announce_withdraw_matches_batch() {
        assert_equal(&[
            RibEvent::PeerUp {
                peer: Asn(39120),
                ipv4: true,
                ipv6: false,
            },
            RibEvent::PeerUp {
                peer: Asn(6939),
                ipv4: true,
                ipv6: true,
            },
            RibEvent::Announce {
                peer: Asn(39120),
                route: route("193.0.10.0/24", 39120, &[6939, 16276]),
            },
            RibEvent::Announce {
                peer: Asn(39120),
                route: route("193.0.11.0/24", 39120, &[6939]),
            },
            RibEvent::Announce {
                peer: Asn(6939),
                route: route("81.0.0.0/24", 6939, &[15169]),
            },
            RibEvent::Withdraw {
                peer: Asn(39120),
                prefix: "193.0.11.0/24".parse().unwrap(),
            },
        ]);
    }

    #[test]
    fn replacement_retracts_old_contribution() {
        assert_equal(&[
            RibEvent::PeerUp {
                peer: Asn(39120),
                ipv4: true,
                ipv6: false,
            },
            RibEvent::Announce {
                peer: Asn(39120),
                route: route("193.0.10.0/24", 39120, &[6939, 16276]),
            },
            // same prefix, different tag set: old instances must vanish
            RibEvent::Announce {
                peer: Asn(39120),
                route: route("193.0.10.0/24", 39120, &[15169]),
            },
        ]);
    }

    #[test]
    fn peer_down_synthesizes_retractions() {
        assert_equal(&[
            RibEvent::PeerUp {
                peer: Asn(39120),
                ipv4: true,
                ipv6: false,
            },
            RibEvent::Announce {
                peer: Asn(39120),
                route: route("193.0.10.0/24", 39120, &[6939]),
            },
            RibEvent::PeerDown { peer: Asn(39120) },
        ]);
    }

    #[test]
    fn session_rescope_toggles_visibility() {
        assert_equal(&[
            RibEvent::PeerUp {
                peer: Asn(39120),
                ipv4: false,
                ipv6: false,
            },
            // invisible while no session holds the family
            RibEvent::Announce {
                peer: Asn(39120),
                route: route("193.0.10.0/24", 39120, &[6939]),
            },
            // v4 session appears: the stored route becomes visible
            RibEvent::PeerUp {
                peer: Asn(39120),
                ipv4: true,
                ipv6: false,
            },
        ]);
    }

    #[test]
    fn retract_is_exact_inverse_of_apply() {
        let mut state = RouterState::new(IXP);
        let mut inc = IncrementalReport::new(&dicts());
        state.apply_with(
            &RibEvent::PeerUp {
                peer: Asn(39120),
                ipv4: true,
                ipv6: false,
            },
            &mut inc,
        );
        let units = [(IXP, Afi::Ipv4), (IXP, Afi::Ipv6)];
        let before = serde_json::to_string(&inc.report_units(&units, 0)).unwrap();
        state.apply_with(
            &RibEvent::Announce {
                peer: Asn(39120),
                route: route("193.0.10.0/24", 39120, &[6939, 16276]),
            },
            &mut inc,
        );
        state.apply_with(
            &RibEvent::Withdraw {
                peer: Asn(39120),
                prefix: "193.0.10.0/24".parse().unwrap(),
            },
            &mut inc,
        );
        let after = serde_json::to_string(&inc.report_units(&units, 0)).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn merge_of_disjoint_peer_shards_equals_single_engine() {
        let up = |peer: u32| RibEvent::PeerUp {
            peer: Asn(peer),
            ipv4: true,
            ipv6: false,
        };
        let ann = |peer: u32, pfx: &str, targets: &[u32]| RibEvent::Announce {
            peer: Asn(peer),
            route: route(pfx, peer, targets),
        };
        let shard_a = [up(39120), ann(39120, "193.0.10.0/24", &[6939, 16276])];
        let shard_b = [up(6939), ann(6939, "81.0.0.0/24", &[15169])];

        let run = |events: &[RibEvent]| {
            let mut state = RouterState::new(IXP);
            let mut inc = IncrementalReport::new(&dicts());
            for ev in events {
                state.apply_with(ev, &mut inc);
            }
            inc
        };
        let mut all: Vec<RibEvent> = Vec::new();
        all.extend_from_slice(&shard_a);
        all.extend_from_slice(&shard_b);
        let whole = run(&all);

        let a = run(&shard_a);
        let b = run(&shard_b);
        let units = [(IXP, Afi::Ipv4), (IXP, Afi::Ipv6)];
        let expect = serde_json::to_string(&whole.report_units(&units, 0)).unwrap();

        // a ⊔ b and b ⊔ a both equal the single-engine run.
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(
            serde_json::to_string(&ab.report_units(&units, 0)).unwrap(),
            expect
        );
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(
            serde_json::to_string(&ba.report_units(&units, 0)).unwrap(),
            expect
        );
    }

    #[test]
    fn disabled_retraction_diverges() {
        let mut state = RouterState::new(IXP);
        let mut inc = IncrementalReport::new(&dicts());
        inc.set_retraction_enabled(false);
        for ev in [
            RibEvent::PeerUp {
                peer: Asn(39120),
                ipv4: true,
                ipv6: false,
            },
            RibEvent::Announce {
                peer: Asn(39120),
                route: route("193.0.10.0/24", 39120, &[6939]),
            },
            RibEvent::Withdraw {
                peer: Asn(39120),
                prefix: "193.0.10.0/24".parse().unwrap(),
            },
        ] {
            state.apply_with(&ev, &mut inc);
        }
        let mut store = SnapshotStore::new();
        store.insert(state.to_snapshot(Afi::Ipv4, 0));
        store.insert(state.to_snapshot(Afi::Ipv6, 0));
        let batch = full_report(&store, &dicts());
        let units = [(IXP, Afi::Ipv4), (IXP, Afi::Ipv6)];
        assert_ne!(
            serde_json::to_string(&batch).unwrap(),
            serde_json::to_string(&inc.report_units(&units, 0)).unwrap()
        );
    }

    #[test]
    fn unknown_ixp_deltas_are_ignored() {
        let mut state = RouterState::new(IxpId::Bcix);
        let mut inc = IncrementalReport::new(&dicts());
        state.apply_with(
            &RibEvent::PeerUp {
                peer: Asn(39120),
                ipv4: true,
                ipv6: false,
            },
            &mut inc,
        );
        assert_eq!(inc.deltas_applied(), 0);
    }
}
