//! Figure 4: who uses action communities.
//!
//! 4a — members using actions and routes carrying them;
//! 4b — the cumulative skew of action instances over ASes;
//! 4c — per-AS correlation of route share vs action-instance share.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;
use bgp_model::prefix::Afi;
use community_dict::ixp::IxpId;

use crate::core::{pct, View};

/// Fig. 4a result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4a {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// Members at the RS.
    pub members_at_rs: usize,
    /// Members with at least one route carrying an action community.
    pub ases_using_actions: usize,
    /// Total routes in the snapshot.
    pub routes_total: usize,
    /// Routes carrying at least one action community.
    pub routes_with_actions: usize,
}

impl Fig4a {
    /// Fraction of members using actions (the 35.5–54% headline).
    pub fn ases_pct(&self) -> f64 {
        pct(self.ases_using_actions as u64, self.members_at_rs as u64)
    }

    /// Fraction of routes carrying actions (61.7–76.6% for IPv4).
    pub fn routes_pct(&self) -> f64 {
        pct(self.routes_with_actions as u64, self.routes_total as u64)
    }
}

/// Compute Fig. 4a.
pub fn fig4a(view: &View<'_>) -> Fig4a {
    let mut users = std::collections::BTreeSet::new();
    let mut tagged_routes = 0usize;
    for (asn, route) in view.routes() {
        let has_action = route
            .standard_communities
            .iter()
            .any(|c| view.classify(*c).action().is_some());
        if has_action {
            users.insert(asn);
            tagged_routes += 1;
        }
    }
    Fig4a {
        ixp: view.snap.ixp,
        afi: view.snap.afi,
        members_at_rs: view.member_count(),
        ases_using_actions: users.len(),
        routes_total: view.snap.route_count(),
        routes_with_actions: tagged_routes,
    }
}

/// Fig. 4b result: the distribution of action instances over ASes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4b {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// Total action instances (the figure's per-IXP totals, e.g. 2.98M).
    pub total_instances: u64,
    /// Per-AS instance counts, descending.
    pub per_as_desc: Vec<(Asn, u64)>,
    /// Members at the RS (the x-axis denominator).
    pub members_at_rs: usize,
}

impl Fig4b {
    /// Derive the figure from accumulated per-AS action-instance counts —
    /// the single ranking path shared by the batch scan and the
    /// incremental engine (identical sort and tie-break, so identical
    /// bytes).
    pub fn from_per_as(
        ixp: IxpId,
        afi: Afi,
        per_as: BTreeMap<Asn, u64>,
        members_at_rs: usize,
    ) -> Self {
        let total: u64 = per_as.values().sum();
        let mut per_as_desc: Vec<(Asn, u64)> = per_as.into_iter().collect();
        per_as_desc.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Fig4b {
            ixp,
            afi,
            total_instances: total,
            per_as_desc,
            members_at_rs,
        }
    }

    /// Share of all action instances held by the top `fraction` of RS
    /// members (paper: top 1% hold 50–60% at the European IXPs, 86% at
    /// IX.br-SP).
    pub fn share_of_top(&self, fraction: f64) -> f64 {
        let k = ((self.members_at_rs as f64 * fraction).ceil() as usize).max(1);
        let top: u64 = self.per_as_desc.iter().take(k).map(|(_, n)| n).sum();
        pct(top, self.total_instances) / 100.0
    }

    /// The cumulative curve as (fraction_of_ases, fraction_of_instances)
    /// points, one per AS.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(self.per_as_desc.len());
        let mut cum = 0u64;
        for (i, (_, n)) in self.per_as_desc.iter().enumerate() {
            cum += n;
            out.push((
                (i + 1) as f64 / self.members_at_rs.max(1) as f64,
                cum as f64 / self.total_instances.max(1) as f64,
            ));
        }
        out
    }
}

/// Compute Fig. 4b.
pub fn fig4b(view: &View<'_>) -> Fig4b {
    let mut per_as: BTreeMap<Asn, u64> = BTreeMap::new();
    for (asn, _, _, _) in view.action_instances() {
        *per_as.entry(asn).or_insert(0) += 1;
    }
    Fig4b::from_per_as(view.snap.ixp, view.snap.afi, per_as, view.member_count())
}

/// Fig. 4c result: one point per AS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4c {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// Per AS: (fraction of action instances, fraction of announced
    /// prefixes), both in (0, 1].
    pub points: Vec<(Asn, f64, f64)>,
}

impl Fig4c {
    /// Pearson correlation between log-fractions (the figure is log-log;
    /// paper: points hug the diagonal).
    pub fn log_correlation(&self) -> f64 {
        let pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|(_, x, y)| *x > 0.0 && *y > 0.0)
            .map(|(_, x, y)| (x.ln(), y.ln()))
            .collect();
        if pts.len() < 2 {
            return 0.0;
        }
        let n = pts.len() as f64;
        let (mx, my) = (
            pts.iter().map(|p| p.0).sum::<f64>() / n,
            pts.iter().map(|p| p.1).sum::<f64>() / n,
        );
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (x, y) in &pts {
            cov += (x - mx) * (y - my);
            vx += (x - mx).powi(2);
            vy += (y - my).powi(2);
        }
        if vx == 0.0 || vy == 0.0 {
            0.0
        } else {
            cov / (vx.sqrt() * vy.sqrt())
        }
    }

    /// The paper's asymmetry: ASes announcing many routes but tagging few
    /// communities exist ("upper left"), the reverse does not ("bottom
    /// right"). Returns (upper_left_count, bottom_right_count) with a
    /// 10× disparity threshold.
    pub fn asymmetry(&self) -> (usize, usize) {
        let mut upper_left = 0;
        let mut bottom_right = 0;
        for (_, frac_comm, frac_routes) in &self.points {
            if *frac_routes > frac_comm * 10.0 && *frac_routes > 1e-4 {
                upper_left += 1;
            }
            if *frac_comm > frac_routes * 10.0 && *frac_comm > 1e-4 {
                bottom_right += 1;
            }
        }
        (upper_left, bottom_right)
    }
}

impl Fig4c {
    /// Derive the figure from accumulated per-AS route and
    /// action-instance counts (shared by the batch scan and the
    /// incremental engine; the float divisions happen here and only
    /// here, so both paths produce bit-identical points).
    pub fn from_counts(
        ixp: IxpId,
        afi: Afi,
        routes: &BTreeMap<Asn, u64>,
        comm: &BTreeMap<Asn, u64>,
    ) -> Self {
        let total_routes: u64 = routes.values().sum();
        let total_comm: u64 = comm.values().sum();
        let points = routes
            .iter()
            .map(|(asn, r)| {
                let c = comm.get(asn).copied().unwrap_or(0);
                (
                    *asn,
                    c as f64 / total_comm.max(1) as f64,
                    *r as f64 / total_routes.max(1) as f64,
                )
            })
            .collect();
        Fig4c { ixp, afi, points }
    }
}

/// Compute Fig. 4c.
pub fn fig4c(view: &View<'_>) -> Fig4c {
    let mut comm: BTreeMap<Asn, u64> = BTreeMap::new();
    let mut routes: BTreeMap<Asn, u64> = BTreeMap::new();
    for (asn, _) in view.routes() {
        *routes.entry(asn).or_insert(0) += 1;
    }
    for (asn, _, _, _) in view.action_instances() {
        *comm.entry(asn).or_insert(0) += 1;
    }
    Fig4c::from_counts(view.snap.ixp, view.snap.afi, &routes, &comm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::route::Route;
    use community_dict::schemes;
    use looking_glass::snapshot::Snapshot;

    fn snapshot() -> Snapshot {
        let ixp = IxpId::AmsIx;
        let mut routes = Vec::new();
        // AS 39120: 8 routes, all tagged with 2 avoid communities
        for i in 0..8 {
            routes.push((
                Asn(39120),
                Route::builder(
                    format!("193.0.{i}.0/24").parse().unwrap(),
                    "198.32.0.7".parse().unwrap(),
                )
                .path([39120])
                .standards(vec![
                    schemes::avoid_community(ixp, Asn(16276)),
                    schemes::avoid_community(ixp, Asn(15169)),
                ])
                .build(),
            ));
        }
        // AS 6939: 8 routes, none tagged
        for i in 0..8 {
            routes.push((
                Asn(6939),
                Route::builder(
                    format!("81.0.{i}.0/24").parse().unwrap(),
                    "198.32.0.8".parse().unwrap(),
                )
                .path([6939])
                .build(),
            ));
        }
        Snapshot {
            ixp,
            day: 0,
            afi: Afi::Ipv4,
            members: vec![Asn(39120), Asn(6939), Asn(13335), Asn(20940)],
            routes,
            partial: false,
            failed_peers: vec![],
        }
    }

    #[test]
    fn fig4a_counts() {
        let snap = snapshot();
        let dict = schemes::dictionary(snap.ixp);
        let view = View::new(&snap, &dict);
        let f = fig4a(&view);
        assert_eq!(f.members_at_rs, 4);
        assert_eq!(f.ases_using_actions, 1);
        assert_eq!(f.routes_total, 16);
        assert_eq!(f.routes_with_actions, 8);
        assert_eq!(f.ases_pct(), 25.0);
        assert_eq!(f.routes_pct(), 50.0);
    }

    #[test]
    fn fig4b_skew() {
        let snap = snapshot();
        let dict = schemes::dictionary(snap.ixp);
        let view = View::new(&snap, &dict);
        let f = fig4b(&view);
        assert_eq!(f.total_instances, 16);
        assert_eq!(f.per_as_desc, vec![(Asn(39120), 16)]);
        // top 25% of 4 members = 1 AS = all instances
        assert!((f.share_of_top(0.25) - 1.0).abs() < 1e-12);
        let curve = f.curve();
        assert_eq!(curve.len(), 1);
        assert!((curve[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig4c_points_and_asymmetry() {
        let snap = snapshot();
        let dict = schemes::dictionary(snap.ixp);
        let view = View::new(&snap, &dict);
        let f = fig4c(&view);
        assert_eq!(f.points.len(), 2);
        // AS 6939: half the routes, zero communities → upper-left point
        let (ul, br) = f.asymmetry();
        assert_eq!(ul, 1);
        assert_eq!(br, 0);
    }

    #[test]
    fn correlation_on_diagonal_data() {
        // synthetic points exactly on the diagonal → correlation 1
        let f = Fig4c {
            ixp: IxpId::Linx,
            afi: Afi::Ipv4,
            points: (1..20)
                .map(|i| (Asn(i), i as f64 / 100.0, i as f64 / 100.0))
                .collect(),
        };
        assert!((f.log_correlation() - 1.0).abs() < 1e-9);
    }
}
