//! # analysis
//!
//! Every table and figure of the CoNEXT'22 paper, computed from the
//! artifacts the paper's pipeline holds: snapshots (member list +
//! accepted routes with communities) plus the per-IXP community
//! dictionary. One module per analysis:
//!
//! | Paper element | Module / function |
//! |---|---|
//! | Table 1 | [`tables::table1_row`] |
//! | Fig. 1 (defined vs unknown) | [`figs_overview::fig1`] |
//! | Fig. 2 (standard/extended/large) | [`figs_overview::fig2`] |
//! | Fig. 3 (action vs informational) | [`figs_overview::fig3`] |
//! | Fig. 4a (ASes & routes using actions) | [`fig4::fig4a`] |
//! | Fig. 4b (per-AS skew) | [`fig4::fig4b`] |
//! | Fig. 4c (routes/actions correlation) | [`fig4::fig4c`] |
//! | Table 2 (ASes per action type) | [`actions::table2`] |
//! | §5.3 instance mix | [`actions::type_counts`] |
//! | Fig. 5 (top-20 communities) | [`tops::fig5`] |
//! | Fig. 6 (top-20 non-member targets) | [`tops::fig6`] |
//! | §5.5 ineffective share | [`tops::ineffective`] |
//! | Fig. 7 (culprit ASes) | [`tops::fig7`] |
//! | Tables 3 & 4 (stability) | [`tables::StabilityRow`] |
//! | §5.4 cross-IXP target overlap | [`overlap::target_overlap`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod core;
pub mod fig4;
pub mod figs_overview;
pub mod incremental;
pub mod overlap;
pub mod report;
pub mod summary;
pub mod tables;
pub mod tops;

/// Common re-exports.
pub mod prelude {
    pub use crate::actions::{table2, type_counts, Table2, TypeCounts};
    pub use crate::core::{pct, View};
    pub use crate::fig4::{fig4a, fig4b, fig4c, Fig4a, Fig4b, Fig4c};
    pub use crate::figs_overview::{fig1, fig2, fig3, Fig1, Fig2, Fig3};
    pub use crate::incremental::{IncrementalReport, IxpEngine};
    pub use crate::overlap::{target_overlap, TargetOverlap};
    pub use crate::report::{human_count, pct1, TextTable};
    pub use crate::summary::{full_report, FullReport, SnapshotReport};
    pub use crate::tables::{table1_row, StabilityRow, Table1Row, Variation};
    pub use crate::tops::{fig5, fig6, fig7, ineffective, Fig7, Ineffective, TopCommunities};
}

pub use prelude::*;
