//! Figures 1–3: the overview breakdowns.
//!
//! Fig. 1 — IXP-defined vs unknown communities (all three types).
//! Fig. 2 — standard vs extended vs large, among the IXP-defined.
//! Fig. 3 — action vs informational, among the standard IXP-defined.

use serde::{Deserialize, Serialize};

use bgp_model::community::CommunityType;
use bgp_model::prefix::Afi;
use community_dict::ixp::IxpId;
use community_dict::semantics::{Classification, Semantics};

use crate::core::{pct, View};

/// Fig. 1 result for one (IXP, family).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1 {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// All community instances (standard + extended + large).
    pub total: u64,
    /// Instances the IXP dictionary defines.
    pub ixp_defined: u64,
    /// Instances with no IXP meaning.
    pub unknown: u64,
}

impl Fig1 {
    /// Derive the figure from accumulated counts — the single
    /// construction path shared by the batch scan and the incremental
    /// engine, so both produce identical structs by construction.
    pub fn from_counts(ixp: IxpId, afi: Afi, ixp_defined: u64, unknown: u64) -> Self {
        Fig1 {
            ixp,
            afi,
            total: ixp_defined + unknown,
            ixp_defined,
            unknown,
        }
    }

    /// Percentage defined (the paper's ">80%" headline).
    pub fn defined_pct(&self) -> f64 {
        pct(self.ixp_defined, self.total)
    }

    /// Percentage unknown.
    pub fn unknown_pct(&self) -> f64 {
        pct(self.unknown, self.total)
    }
}

/// Compute Fig. 1 for one view.
pub fn fig1(view: &View<'_>) -> Fig1 {
    let mut defined = 0u64;
    let mut unknown = 0u64;
    for (_, route) in view.routes() {
        for c in route.communities() {
            match view.classify_full(&c) {
                Classification::IxpDefined(_) => defined += 1,
                Classification::Unknown => unknown += 1,
            }
        }
    }
    Fig1::from_counts(view.snap.ixp, view.snap.afi, defined, unknown)
}

/// Fig. 2 result: IXP-defined instances by structural type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2 {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// IXP-defined instances (Fig. 1's defined count).
    pub total_defined: u64,
    /// RFC 1997 standard.
    pub standard: u64,
    /// RFC 4360 extended.
    pub extended: u64,
    /// RFC 8092 large.
    pub large: u64,
}

impl Fig2 {
    /// Derive the figure from accumulated per-type defined counts
    /// (shared by the batch scan and the incremental engine).
    pub fn from_counts(ixp: IxpId, afi: Afi, standard: u64, extended: u64, large: u64) -> Self {
        Fig2 {
            ixp,
            afi,
            total_defined: standard + extended + large,
            standard,
            extended,
            large,
        }
    }

    /// Percentage standard (the paper: consistently >80%).
    pub fn standard_pct(&self) -> f64 {
        pct(self.standard, self.total_defined)
    }

    /// Percentage extended.
    pub fn extended_pct(&self) -> f64 {
        pct(self.extended, self.total_defined)
    }

    /// Percentage large.
    pub fn large_pct(&self) -> f64 {
        pct(self.large, self.total_defined)
    }
}

/// Compute Fig. 2 for one view.
pub fn fig2(view: &View<'_>) -> Fig2 {
    let (mut standard, mut extended, mut large) = (0u64, 0u64, 0u64);
    for (_, route) in view.routes() {
        for c in route.communities() {
            if view.classify_full(&c).is_ixp_defined() {
                match c.community_type() {
                    CommunityType::Standard => standard += 1,
                    CommunityType::Extended => extended += 1,
                    CommunityType::Large => large += 1,
                }
            }
        }
    }
    Fig2::from_counts(view.snap.ixp, view.snap.afi, standard, extended, large)
}

/// Fig. 3 result: standard IXP-defined split into action/informational.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3 {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// Standard IXP-defined instances.
    pub total: u64,
    /// Action instances.
    pub action: u64,
    /// Informational instances.
    pub informational: u64,
}

impl Fig3 {
    /// Derive the figure from accumulated action/informational counts
    /// (shared by the batch scan and the incremental engine).
    pub fn from_counts(ixp: IxpId, afi: Afi, action: u64, informational: u64) -> Self {
        Fig3 {
            ixp,
            afi,
            total: action + informational,
            action,
            informational,
        }
    }

    /// Percentage action — the paper's "at least 66.6%".
    pub fn action_pct(&self) -> f64 {
        pct(self.action, self.total)
    }

    /// Percentage informational.
    pub fn informational_pct(&self) -> f64 {
        pct(self.informational, self.total)
    }
}

/// Compute Fig. 3 for one view.
pub fn fig3(view: &View<'_>) -> Fig3 {
    let mut action = 0u64;
    let mut info = 0u64;
    for (_, _, _, cl) in view.standard_instances() {
        match cl {
            Classification::IxpDefined(Semantics::Action(_)) => action += 1,
            Classification::IxpDefined(Semantics::Informational(_)) => info += 1,
            Classification::Unknown => {}
        }
    }
    Fig3::from_counts(view.snap.ixp, view.snap.afi, action, info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::asn::Asn;
    use bgp_model::community::{LargeCommunity, StandardCommunity};
    use bgp_model::route::Route;
    use community_dict::classify::large_fn;
    use community_dict::schemes;
    use looking_glass::snapshot::Snapshot;

    fn snapshot() -> Snapshot {
        let ixp = IxpId::IxBrSp;
        let rs = ixp.rs_asn().value();
        let mut r1 = Route::builder(
            "193.0.10.0/24".parse().unwrap(),
            "198.32.0.7".parse().unwrap(),
        )
        .path([39120])
        .standards(vec![
            schemes::avoid_community(ixp, Asn(6939)), // action
            schemes::info_community(ixp, 1),          // info
            StandardCommunity::from_parts(3356, 70),  // unknown
        ])
        .build();
        r1.large_communities = vec![
            LargeCommunity::new(rs, large_fn::AVOID, 6939), // defined large
            LargeCommunity::new(3356, 1, 2),                // unknown large
        ];
        Snapshot {
            ixp,
            day: 0,
            afi: Afi::Ipv4,
            members: vec![Asn(39120)],
            routes: vec![(Asn(39120), r1)],
            partial: false,
            failed_peers: vec![],
        }
    }

    #[test]
    fn fig1_counts_all_types() {
        let snap = snapshot();
        let dict = schemes::dictionary(snap.ixp);
        let view = View::new(&snap, &dict);
        let f = fig1(&view);
        assert_eq!(f.total, 5);
        assert_eq!(f.ixp_defined, 3);
        assert_eq!(f.unknown, 2);
        assert!((f.defined_pct() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn fig2_splits_by_type() {
        let snap = snapshot();
        let dict = schemes::dictionary(snap.ixp);
        let view = View::new(&snap, &dict);
        let f = fig2(&view);
        assert_eq!(f.total_defined, 3);
        assert_eq!(f.standard, 2);
        assert_eq!(f.large, 1);
        assert_eq!(f.extended, 0);
    }

    #[test]
    fn fig3_splits_standard_defined() {
        let snap = snapshot();
        let dict = schemes::dictionary(snap.ixp);
        let view = View::new(&snap, &dict);
        let f = fig3(&view);
        assert_eq!(f.total, 2);
        assert_eq!(f.action, 1);
        assert_eq!(f.informational, 1);
        assert_eq!(f.action_pct(), 50.0);
    }
}
