//! §5.4–§5.5: the most-used communities, the ineffective ones, and the
//! ASes responsible.
//!
//! Fig. 5 — top-20 action communities per IXP;
//! Fig. 6 — top-20 action communities targeting non-RS members;
//! §5.5   — the ineffective share;
//! Fig. 7 — top-10 ASes tagging non-member targets ("culprits").

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;
use bgp_model::community::StandardCommunity;
use bgp_model::prefix::Afi;
use community_dict::action::{Action, ActionGroup};
use community_dict::ixp::IxpId;
use community_dict::known;

use crate::core::{pct, View};

/// One ranked community.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedCommunity {
    /// The community value.
    pub community: StandardCommunity,
    /// Its resolved action.
    pub action: Action,
    /// Occurrences in routes.
    pub count: u64,
    /// Share of all action instances (percent).
    pub share_pct: f64,
    /// Human-readable meaning ("do not announce to Google").
    pub label: String,
}

/// Fig. 5 / Fig. 6 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopCommunities {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// Total action instances in scope (all for Fig. 5; non-member-target
    /// only for Fig. 6).
    pub total_in_scope: u64,
    /// The ranked communities, descending.
    pub top: Vec<RankedCommunity>,
}

impl TopCommunities {
    /// Rank accumulated per-community counts — the single ranking and
    /// labelling path shared by the batch scan and the incremental
    /// engine. `counts` holds only the in-scope communities (already
    /// filtered for Fig. 6); `total_all` is the count of *all* action
    /// instances, the paper's share denominator for both figures.
    pub fn from_counts(
        ixp: IxpId,
        afi: Afi,
        counts: BTreeMap<StandardCommunity, (Action, u64)>,
        total_all: u64,
        limit: usize,
    ) -> Self {
        let total_scope: u64 = counts.values().map(|(_, n)| n).sum();
        let mut ranked: Vec<(StandardCommunity, Action, u64)> =
            counts.into_iter().map(|(c, (a, n))| (c, a, n)).collect();
        ranked.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        ranked.truncate(limit);
        let top = ranked
            .into_iter()
            .map(|(community, action, count)| {
                let target_name = action
                    .target
                    .peer_asn()
                    .map(known::name_of)
                    .unwrap_or_else(|| action.target.to_string());
                let verb = match action.kind.group() {
                    ActionGroup::DoNotAnnounceTo => "do not announce to",
                    ActionGroup::AnnounceOnlyTo => "announce only to",
                    ActionGroup::PrependTo => "prepend to",
                    ActionGroup::Blackhole => "blackhole",
                };
                RankedCommunity {
                    community,
                    action,
                    count,
                    // Fig. 5's shares are relative to ALL action instances
                    share_pct: pct(count, total_all),
                    label: if action.kind.group() == ActionGroup::Blackhole {
                        verb.to_string()
                    } else {
                        format!("{verb} {target_name}")
                    },
                }
            })
            .collect();
        TopCommunities {
            ixp,
            afi,
            total_in_scope: total_scope,
            top,
        }
    }
}

fn rank_communities(view: &View<'_>, limit: usize, only_nonmember_targets: bool) -> TopCommunities {
    let mut counts: BTreeMap<StandardCommunity, (Action, u64)> = BTreeMap::new();
    let mut total_all = 0u64;
    for (_, _, community, action) in view.action_instances() {
        total_all += 1;
        if only_nonmember_targets && !view.is_ineffective(&action) {
            continue;
        }
        counts.entry(community).or_insert((action, 0)).1 += 1;
    }
    TopCommunities::from_counts(view.snap.ixp, view.snap.afi, counts, total_all, limit)
}

/// Fig. 5: the top-20 action communities.
pub fn fig5(view: &View<'_>) -> TopCommunities {
    rank_communities(view, 20, false)
}

/// Fig. 6: the top-20 action communities targeting non-RS members.
pub fn fig6(view: &View<'_>) -> TopCommunities {
    rank_communities(view, 20, true)
}

/// §5.5 headline: the ineffective share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ineffective {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// All action instances.
    pub total_actions: u64,
    /// Action instances targeting a single AS not at the RS.
    pub ineffective: u64,
    /// How many of Fig. 5's top-20 communities target non-members
    /// (paper: six at IX.br-SP, four at DE-CIX, ten at LINX, eight at
    /// AMS-IX for IPv4).
    pub top20_nonmember_count: usize,
}

impl Ineffective {
    /// The ineffective percentage (31.8–64.3% for IPv4 in the paper).
    pub fn pct(&self) -> f64 {
        pct(self.ineffective, self.total_actions)
    }
}

/// Compute the §5.5 shares.
pub fn ineffective(view: &View<'_>) -> Ineffective {
    let mut total = 0u64;
    let mut bad = 0u64;
    for (_, _, _, action) in view.action_instances() {
        total += 1;
        if view.is_ineffective(&action) {
            bad += 1;
        }
    }
    let top20 = fig5(view);
    let top20_nonmember = top20
        .top
        .iter()
        .filter(|r| view.is_ineffective(&r.action))
        .count();
    Ineffective {
        ixp: view.snap.ixp,
        afi: view.snap.afi,
        total_actions: total,
        ineffective: bad,
        top20_nonmember_count: top20_nonmember,
    }
}

/// One Fig. 7 culprit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Culprit {
    /// The tagging AS.
    pub asn: Asn,
    /// Its name, when known.
    pub name: String,
    /// Ineffective instances it is responsible for.
    pub count: u64,
    /// Share of all ineffective instances (percent).
    pub share_pct: f64,
}

/// Fig. 7 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7 {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// Total ineffective instances.
    pub total_ineffective: u64,
    /// The top taggers, descending.
    pub top: Vec<Culprit>,
}

impl Fig7 {
    /// Rank accumulated per-AS ineffective-instance counts (shared by
    /// the batch scan and the incremental engine — one sort, one
    /// labelling, one `pct`, identical bytes).
    pub fn from_per_as(ixp: IxpId, afi: Afi, per_as: BTreeMap<Asn, u64>, limit: usize) -> Self {
        let total: u64 = per_as.values().sum();
        let mut ranked: Vec<(Asn, u64)> = per_as.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(limit);
        Fig7 {
            ixp,
            afi,
            total_ineffective: total,
            top: ranked
                .into_iter()
                .map(|(asn, count)| Culprit {
                    asn,
                    name: known::name_of(asn),
                    count,
                    share_pct: pct(count, total),
                })
                .collect(),
        }
    }
}

/// Compute Fig. 7 (top `limit` culprits).
pub fn fig7(view: &View<'_>, limit: usize) -> Fig7 {
    let mut per_as: BTreeMap<Asn, u64> = BTreeMap::new();
    for (asn, _, _, action) in view.action_instances() {
        if view.is_ineffective(&action) {
            *per_as.entry(asn).or_insert(0) += 1;
        }
    }
    Fig7::from_per_as(view.snap.ixp, view.snap.afi, per_as, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::route::Route;
    use community_dict::schemes;
    use looking_glass::snapshot::Snapshot;

    /// Two members; AS 39120 tags avoid-HE (member) on two routes and
    /// avoid-OVH (non-member) on one; AS 6939 tags avoid-Google
    /// (non-member) on one.
    fn snapshot() -> Snapshot {
        let ixp = IxpId::Linx;
        let mk = |pfx: &str, tagger: u32, cs: Vec<StandardCommunity>| {
            (
                Asn(tagger),
                Route::builder(pfx.parse().unwrap(), "198.32.0.7".parse().unwrap())
                    .path([tagger])
                    .standards(cs)
                    .build(),
            )
        };
        Snapshot {
            ixp,
            day: 0,
            afi: Afi::Ipv4,
            members: vec![Asn(39120), Asn(6939)],
            routes: vec![
                mk(
                    "193.0.10.0/24",
                    39120,
                    vec![
                        schemes::avoid_community(ixp, Asn(6939)),
                        schemes::avoid_community(ixp, Asn(16276)),
                    ],
                ),
                mk(
                    "193.0.11.0/24",
                    39120,
                    vec![schemes::avoid_community(ixp, Asn(6939))],
                ),
                mk(
                    "81.0.0.0/24",
                    6939,
                    vec![schemes::avoid_community(ixp, Asn(15169))],
                ),
            ],
            partial: false,
            failed_peers: vec![],
        }
    }

    #[test]
    fn fig5_ranks_by_count() {
        let snap = snapshot();
        let dict = schemes::dictionary(snap.ixp);
        let view = View::new(&snap, &dict);
        let f = fig5(&view);
        assert_eq!(f.total_in_scope, 4);
        assert_eq!(f.top.len(), 3);
        assert_eq!(f.top[0].count, 2);
        assert_eq!(f.top[0].label, "do not announce to Hurricane Electric");
        assert!((f.top[0].share_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fig6_restricts_to_nonmembers() {
        let snap = snapshot();
        let dict = schemes::dictionary(snap.ixp);
        let view = View::new(&snap, &dict);
        let f = fig6(&view);
        assert_eq!(f.total_in_scope, 2); // OVH + Google instances
        assert_eq!(f.top.len(), 2);
        for r in &f.top {
            assert!(view.is_ineffective(&r.action));
        }
        // shares remain relative to ALL action instances
        assert!((f.top[0].share_pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn ineffective_share() {
        let snap = snapshot();
        let dict = schemes::dictionary(snap.ixp);
        let view = View::new(&snap, &dict);
        let i = ineffective(&view);
        assert_eq!(i.total_actions, 4);
        assert_eq!(i.ineffective, 2);
        assert_eq!(i.pct(), 50.0);
        assert_eq!(i.top20_nonmember_count, 2);
    }

    #[test]
    fn fig7_culprits() {
        let snap = snapshot();
        let dict = schemes::dictionary(snap.ixp);
        let view = View::new(&snap, &dict);
        let f = fig7(&view, 10);
        assert_eq!(f.total_ineffective, 2);
        assert_eq!(f.top.len(), 2);
        // both culprits have one instance each; ties break by ASN
        assert_eq!(f.top[0].asn, Asn(6939));
        assert_eq!(f.top[0].name, "Hurricane Electric");
        assert!((f.top[0].share_pct - 50.0).abs() < 1e-9);
    }
}
