//! The whole evaluation as one serializable report: every per-snapshot
//! analysis for every (IXP, family) in a store. This is the
//! machine-readable counterpart of the `repro` binary's tables, meant for
//! downstream tooling (plotting, regression tracking).

use serde::{Deserialize, Serialize};

use bgp_model::prefix::Afi;
use community_dict::dictionary::Dictionary;
use community_dict::ixp::IxpId;
use looking_glass::snapshot::SnapshotStore;

use crate::actions::{table2, type_counts, Table2, TypeCounts};
use crate::core::View;
use crate::fig4::{fig4a, fig4b, fig4c, Fig4a};
use crate::figs_overview::{fig1, fig2, fig3, Fig1, Fig2, Fig3};
use crate::overlap::{target_overlap_from_tops, TargetOverlap};
use crate::tops::{fig5, fig6, fig7, ineffective, Fig7, Ineffective, TopCommunities};

/// Everything computed for one (IXP, family) snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotReport {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// Day index of the snapshot analysed.
    pub day: u32,
    /// Fig. 1.
    pub fig1: Fig1,
    /// Fig. 2.
    pub fig2: Fig2,
    /// Fig. 3.
    pub fig3: Fig3,
    /// Fig. 4a.
    pub fig4a: Fig4a,
    /// Fig. 4b reduced to the headline shares (the full curve is large).
    pub fig4b_top1pct: f64,
    /// Fig. 4b: share of the top 10% of ASes.
    pub fig4b_top10pct: f64,
    /// Fig. 4c reduced to the correlation and asymmetry.
    pub fig4c_log_correlation: f64,
    /// Fig. 4c: (upper-left, bottom-right) outlier counts.
    pub fig4c_asymmetry: (usize, usize),
    /// Table 2.
    pub table2: Table2,
    /// §5.3 instance mix.
    pub type_counts: TypeCounts,
    /// Fig. 5.
    pub fig5: TopCommunities,
    /// Fig. 6.
    pub fig6: TopCommunities,
    /// §5.5.
    pub ineffective: Ineffective,
    /// Fig. 7.
    pub fig7: Fig7,
}

/// The full evaluation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FullReport {
    /// One report per (IXP, family) present in the store.
    pub snapshots: Vec<SnapshotReport>,
    /// §5.4 cross-IXP overlap (IPv4).
    pub overlap_v4: Option<TargetOverlap>,
}

/// Compute the full report for the latest snapshot of every (IXP, family)
/// in the store. `dicts` must contain the dictionary for every IXP
/// present.
pub fn full_report(store: &SnapshotStore, dicts: &[(IxpId, Dictionary)]) -> FullReport {
    let _span = obs::span!(obs::names::ANALYSIS_FULL_REPORT);
    let mut report = FullReport::default();
    // Fan out per (IXP, family) snapshot: each task builds its own View
    // (with its own classification memo) and computes every figure and
    // table for it. The ordered join keeps `report.snapshots` in the
    // same (dict order × family) order as the serial loop.
    let units: Vec<(usize, Afi)> = (0..dicts.len())
        .flat_map(|i| [(i, Afi::Ipv4), (i, Afi::Ipv6)])
        .collect();
    let computed = par::map_indexed(&units, |_, &(i, afi)| {
        let _span = obs::span!(obs::names::ANALYSIS_REPORT_UNIT);
        let (ixp, dict) = &dicts[i];
        let snap = store.latest(*ixp, afi)?;
        let view = View::new(snap, dict);
        let b = fig4b(&view);
        let c = fig4c(&view);
        Some(SnapshotReport {
            ixp: *ixp,
            afi,
            day: snap.day,
            fig1: fig1(&view),
            fig2: fig2(&view),
            fig3: fig3(&view),
            fig4a: fig4a(&view),
            fig4b_top1pct: b.share_of_top(0.01),
            fig4b_top10pct: b.share_of_top(0.10),
            fig4c_log_correlation: c.log_correlation(),
            fig4c_asymmetry: c.asymmetry(),
            table2: table2(&view),
            type_counts: type_counts(&view),
            fig5: fig5(&view),
            fig6: fig6(&view),
            ineffective: ineffective(&view),
            fig7: fig7(&view, 10),
        })
    });
    report.snapshots.extend(computed.into_iter().flatten());
    // §5.4 overlap: reuse the Fig. 5 rankings already computed per unit
    // instead of rebuilding every IPv4 view (and its classification
    // memo) a second time.
    let v4_tops: Vec<&crate::tops::TopCommunities> = report
        .snapshots
        .iter()
        .filter(|s| s.afi == Afi::Ipv4)
        .map(|s| &s.fig5)
        .collect();
    if v4_tops.len() >= 2 {
        report.overlap_v4 = Some(target_overlap_from_tops(&v4_tops));
    }
    report
}

impl FullReport {
    /// The report for one (IXP, family).
    pub fn get(&self, ixp: IxpId, afi: Afi) -> Option<&SnapshotReport> {
        self.snapshots.iter().find(|r| r.ixp == ixp && r.afi == afi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::asn::Asn;
    use bgp_model::route::Route;
    use community_dict::schemes;
    use looking_glass::snapshot::Snapshot;

    fn store() -> (SnapshotStore, Vec<(IxpId, Dictionary)>) {
        let mut store = SnapshotStore::new();
        for ixp in [IxpId::Linx, IxpId::Bcix] {
            for afi in [Afi::Ipv4, Afi::Ipv6] {
                let (pfx, nh) = match afi {
                    Afi::Ipv4 => ("193.0.10.0/24", "198.32.0.7"),
                    Afi::Ipv6 => ("2a00:1450::/32", "2001:7f8::1"),
                };
                let route = Route::builder(pfx.parse().unwrap(), nh.parse().unwrap())
                    .path([39120])
                    .standard(schemes::avoid_community(ixp, Asn(6939)))
                    .standard(schemes::avoid_community(ixp, Asn(16276)))
                    .build();
                store.insert(Snapshot {
                    ixp,
                    day: 83,
                    afi,
                    members: vec![Asn(39120), Asn(6939)],
                    routes: vec![(Asn(39120), route)],
                    partial: false,
                    failed_peers: vec![],
                });
            }
        }
        let dicts = [IxpId::Linx, IxpId::Bcix]
            .iter()
            .map(|i| (*i, schemes::dictionary(*i)))
            .collect();
        (store, dicts)
    }

    #[test]
    fn full_report_covers_everything_and_serializes() {
        let (store, dicts) = store();
        let report = full_report(&store, &dicts);
        assert_eq!(report.snapshots.len(), 4);
        let linx_v4 = report.get(IxpId::Linx, Afi::Ipv4).unwrap();
        assert_eq!(linx_v4.ineffective.total_actions, 2);
        assert_eq!(linx_v4.ineffective.ineffective, 1); // OVH not a member
        assert_eq!(linx_v4.fig4a.ases_using_actions, 1);
        let overlap = report.overlap_v4.as_ref().unwrap();
        // HE and OVH are targeted at both IXPs
        assert_eq!(overlap.common().len(), 2);

        // JSON round trip
        let js = serde_json::to_string(&report).unwrap();
        let back: FullReport = serde_json::from_str(&js).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn missing_ixp_is_skipped() {
        let (store, _) = store();
        let dicts = vec![(IxpId::AmsIx, schemes::dictionary(IxpId::AmsIx))];
        let report = full_report(&store, &dicts);
        assert!(report.snapshots.is_empty());
        assert!(report.overlap_v4.is_none());
    }
}
