//! Plain-text table rendering for the `repro` binary: the same rows the
//! paper prints, aligned for terminals.

use std::fmt::Write as _;

/// A renderable table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    /// Title line printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (converting anything displayable).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let pad = w - cell.chars().count();
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Format a count like the paper's figures: `2.98M`, `67K`, `412`.
pub fn human_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Format a percentage with one decimal: `35.7%`.
pub fn pct1(p: f64) -> String {
    format!("{p:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Demo", &["IXP", "Value"]);
        t.row(["IX.br-SP", "123"]);
        t.row(["LINX", "4"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // the separator is as wide as the widest row
        assert!(lines[2].chars().all(|c| c == '-'));
        // columns aligned: "Value" starts at the same offset in all rows
        let col = lines[1].find("Value").unwrap();
        assert_eq!(&lines[3][col..col + 3], "123");
    }

    #[test]
    fn human_counts() {
        assert_eq!(human_count(2_980_000), "2.98M");
        assert_eq!(human_count(16_470_000), "16.5M");
        assert_eq!(human_count(67_000), "67.0K");
        assert_eq!(human_count(412), "412");
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct1(35.68), "35.7%");
    }
}
