//! Shared iteration and counting primitives used by every analysis.

use std::collections::BTreeSet;

use bgp_model::asn::Asn;
use bgp_model::community::{Community, StandardCommunity};
use bgp_model::route::Route;
use community_dict::action::Action;
use community_dict::classify::{classify_extended, classify_large};
use community_dict::dictionary::Dictionary;
use community_dict::semantics::{Classification, Semantics};
use looking_glass::snapshot::Snapshot;

/// A snapshot paired with the dictionary of its IXP — the unit every
/// analysis consumes (exactly the artifacts the paper's pipeline holds).
pub struct View<'a> {
    /// The snapshot.
    pub snap: &'a Snapshot,
    /// The IXP's community dictionary.
    pub dict: &'a Dictionary,
    members: BTreeSet<Asn>,
    /// Classification table: distinct community value → classification,
    /// sorted for binary search. Distinct values repeat across millions
    /// of instances (the corpus has ~3k of them), so each pays the
    /// dictionary lookup exactly once — precomputed in [`View::new`]
    /// over the snapshot's value set. Immutable after construction, so
    /// a `View` is freely shared across `par` tasks (and staticheck's
    /// SC109 passes waiver-free).
    table: Vec<(u32, Classification)>,
}

impl<'a> View<'a> {
    /// Pair a snapshot with its dictionary, classifying each distinct
    /// community value in the snapshot exactly once up front.
    pub fn new(snap: &'a Snapshot, dict: &'a Dictionary) -> Self {
        debug_assert_eq!(snap.ixp, dict.ixp());
        let distinct: BTreeSet<u32> = snap
            .routes
            .iter()
            .flat_map(|(_, r)| r.standard_communities.iter().map(|c| c.0))
            .collect();
        let table = distinct
            .into_iter()
            .map(|v| (v, dict.classify(StandardCommunity(v))))
            .collect();
        View {
            snap,
            dict,
            members: snap.members.iter().copied().collect(),
            table,
        }
    }

    /// Classify a standard community against the dictionary via the
    /// precomputed table; values outside the snapshot fall back to a
    /// direct dictionary lookup.
    pub fn classify(&self, c: StandardCommunity) -> Classification {
        match self.table.binary_search_by_key(&c.0, |&(v, _)| v) {
            Ok(i) => self.table[i].1,
            Err(_) => self.dict.classify(c),
        }
    }

    /// Classify any community type: standard values go through the
    /// precomputed ID-indexed table, large and extended through the
    /// rule-based schemes (already O(1) — no dictionary scan exists for
    /// them to amortize). Figures 1–2 use this instead of re-deriving
    /// every instance against the dictionary.
    pub fn classify_full(&self, c: &Community) -> Classification {
        match c {
            Community::Standard(sc) => self.classify(*sc),
            Community::Large(lc) => classify_large(self.dict.ixp(), *lc),
            Community::Extended(ec) => classify_extended(self.dict.ixp(), *ec),
        }
    }

    /// Is `asn` connected to the RS (the §5.5 membership test)?
    pub fn is_member(&self, asn: Asn) -> bool {
        self.members.contains(&asn)
    }

    /// Number of members with sessions.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Iterate `(announcer, route)` pairs.
    pub fn routes(&self) -> impl Iterator<Item = (Asn, &'a Route)> + '_ {
        self.snap.routes.iter().map(|(a, r)| (*a, r))
    }

    /// Iterate every *standard* community instance with its
    /// classification: `(announcer, route, community, classification)`.
    /// Figures 3–7 and Table 2 work on standard communities only (§4).
    pub fn standard_instances(
        &self,
    ) -> impl Iterator<Item = (Asn, &'a Route, StandardCommunity, Classification)> + '_ {
        self.routes().flat_map(move |(asn, route)| {
            route
                .standard_communities
                .iter()
                .map(move |c| (asn, route, *c, self.classify(*c)))
        })
    }

    /// Iterate every IXP-defined *action* instance (standard only):
    /// `(announcer, route, community, action)`.
    pub fn action_instances(
        &self,
    ) -> impl Iterator<Item = (Asn, &'a Route, StandardCommunity, Action)> + '_ {
        self.standard_instances()
            .filter_map(|(asn, route, c, cl)| cl.action().map(|a| (asn, route, c, a)))
    }

    /// An action instance is *ineffective* when it targets a single AS
    /// that has no session at this RS (§5.5).
    pub fn is_ineffective(&self, action: &Action) -> bool {
        match action.target.peer_asn() {
            Some(asn) => !self.is_member(asn),
            None => false,
        }
    }

    /// Total standard IXP-defined instances split into
    /// (informational, action).
    pub fn standard_defined_split(&self) -> (u64, u64) {
        let mut info = 0u64;
        let mut action = 0u64;
        for (_, _, _, cl) in self.standard_instances() {
            match cl {
                Classification::IxpDefined(Semantics::Informational(_)) => info += 1,
                Classification::IxpDefined(Semantics::Action(_)) => action += 1,
                Classification::Unknown => {}
            }
        }
        (info, action)
    }
}

/// Percentage helper: `part / whole * 100`, 0 when whole is 0.
pub fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::prefix::Afi;
    use community_dict::ixp::IxpId;
    use community_dict::schemes;

    fn snapshot() -> Snapshot {
        let ixp = IxpId::Linx;
        let mk = |pfx: &str, tagger: u32, cs: Vec<StandardCommunity>| {
            (
                Asn(tagger),
                Route::builder(pfx.parse().unwrap(), "198.32.0.7".parse().unwrap())
                    .path([tagger, 15169])
                    .standards(cs)
                    .build(),
            )
        };
        Snapshot {
            ixp,
            day: 0,
            afi: Afi::Ipv4,
            members: vec![Asn(39120), Asn(6939)],
            routes: vec![
                mk(
                    "193.0.10.0/24",
                    39120,
                    vec![
                        schemes::avoid_community(ixp, Asn(6939)),  // member target
                        schemes::avoid_community(ixp, Asn(16276)), // non-member
                        schemes::info_community(ixp, 0),
                        StandardCommunity::from_parts(3356, 70), // unknown
                    ],
                ),
                mk("193.0.11.0/24", 6939, vec![]),
            ],
            partial: false,
            failed_peers: vec![],
        }
    }

    #[test]
    fn instance_iteration_and_classification() {
        let snap = snapshot();
        let dict = schemes::dictionary(IxpId::Linx);
        let view = View::new(&snap, &dict);
        assert_eq!(view.standard_instances().count(), 4);
        let actions: Vec<_> = view.action_instances().collect();
        assert_eq!(actions.len(), 2);
        let ineffective = actions
            .iter()
            .filter(|(_, _, _, a)| view.is_ineffective(a))
            .count();
        assert_eq!(ineffective, 1); // OVH is not a member
        let (info, action) = view.standard_defined_split();
        assert_eq!((info, action), (1, 2));
    }

    #[test]
    fn membership() {
        let snap = snapshot();
        let dict = schemes::dictionary(IxpId::Linx);
        let view = View::new(&snap, &dict);
        assert!(view.is_member(Asn(6939)));
        assert!(!view.is_member(Asn(16276)));
        assert_eq!(view.member_count(), 2);
    }

    #[test]
    fn pct_helper() {
        assert_eq!(pct(1, 4), 25.0);
        assert_eq!(pct(0, 0), 0.0);
    }
}
