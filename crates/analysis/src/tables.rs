//! Table 1 (the IXPs in numbers) and the Appendix A stability tables
//! (Table 3: seven daily snapshots; Table 4: twelve weekly snapshots),
//! plus the §3 sanitation summary.

use serde::{Deserialize, Serialize};

use bgp_model::prefix::Afi;
use community_dict::ixp::IxpId;
use looking_glass::sanitize::SeriesPoint;
use looking_glass::snapshot::Snapshot;

/// Table 1 row computed from the collected snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// IXP.
    pub ixp: IxpId,
    /// Location string.
    pub location: String,
    /// Members at the RS, IPv4 / IPv6.
    pub members_rs: (usize, usize),
    /// Observed distinct prefixes, IPv4 / IPv6.
    pub prefixes: (usize, usize),
    /// Observed routes, IPv4 / IPv6.
    pub routes: (usize, usize),
}

/// Compute a Table 1 row from the v4 and v6 snapshots of one IXP.
pub fn table1_row(v4: &Snapshot, v6: &Snapshot) -> Table1Row {
    debug_assert_eq!(v4.ixp, v6.ixp);
    Table1Row {
        ixp: v4.ixp,
        location: v4.ixp.location().to_string(),
        members_rs: (v4.member_count(), v6.member_count()),
        prefixes: (v4.prefix_count(), v6.prefix_count()),
        routes: (v4.route_count(), v6.route_count()),
    }
}

/// One metric's min/max/diff% over a window (the Appendix A cell format).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Variation {
    /// Minimum value in the window.
    pub min: u64,
    /// Maximum value in the window.
    pub max: u64,
}

impl Variation {
    /// Percentage difference between max and min, relative to min
    /// (the paper's "Diff%" column).
    pub fn diff_pct(&self) -> f64 {
        if self.min == 0 {
            0.0
        } else {
            (self.max - self.min) as f64 / self.min as f64 * 100.0
        }
    }

    fn of(values: impl Iterator<Item = u64>) -> Variation {
        let mut min = u64::MAX;
        let mut max = 0;
        for v in values {
            min = min.min(v);
            max = max.max(v);
        }
        if min == u64::MAX {
            min = 0;
        }
        Variation { min, max }
    }
}

/// One Appendix A row: variation of all four metrics over a window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityRow {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// Members variation.
    pub members: Variation,
    /// Prefixes variation.
    pub prefixes: Variation,
    /// Routes variation.
    pub routes: Variation,
    /// Community-instances variation.
    pub communities: Variation,
}

impl StabilityRow {
    /// Build from a window of series points.
    pub fn from_points(ixp: IxpId, afi: Afi, points: &[SeriesPoint]) -> StabilityRow {
        StabilityRow {
            ixp,
            afi,
            members: Variation::of(points.iter().map(|p| p.members as u64)),
            prefixes: Variation::of(points.iter().map(|p| p.prefixes as u64)),
            routes: Variation::of(points.iter().map(|p| p.routes as u64)),
            communities: Variation::of(points.iter().map(|p| p.communities as u64)),
        }
    }

    /// The largest diff% across the four metrics.
    pub fn max_diff_pct(&self) -> f64 {
        [
            self.members.diff_pct(),
            self.prefixes.diff_pct(),
            self.routes.diff_pct(),
            self.communities.diff_pct(),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::asn::Asn;

    #[test]
    fn variation_diff_pct() {
        let v = Variation { min: 100, max: 104 };
        assert!((v.diff_pct() - 4.0).abs() < 1e-12);
        assert_eq!(Variation { min: 0, max: 5 }.diff_pct(), 0.0);
    }

    #[test]
    fn stability_row_from_points() {
        let points: Vec<SeriesPoint> = (0..7)
            .map(|d| SeriesPoint {
                day: d,
                members: 100 + d as usize,
                prefixes: 1000,
                routes: 2000 + (d as usize % 2) * 40,
                communities: 50_000,
            })
            .collect();
        let row = StabilityRow::from_points(IxpId::Bcix, Afi::Ipv4, &points);
        assert_eq!(row.members, Variation { min: 100, max: 106 });
        assert_eq!(row.prefixes.diff_pct(), 0.0);
        assert!((row.routes.diff_pct() - 2.0).abs() < 1e-12);
        assert!((row.max_diff_pct() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn table1_row_from_snapshots() {
        let mk = |afi: Afi, n: usize| Snapshot {
            ixp: IxpId::Netnod,
            day: 0,
            afi,
            members: (0..n).map(|i| Asn(39_000 + i as u32)).collect(),
            routes: vec![],
            partial: false,
            failed_peers: vec![],
        };
        let row = table1_row(&mk(Afi::Ipv4, 10), &mk(Afi::Ipv6, 6));
        assert_eq!(row.members_rs, (10, 6));
        assert_eq!(row.routes, (0, 0));
        assert_eq!(row.location, "Stockholm, Sweden");
    }
}
