//! §5.4's cross-IXP intersection analysis.
//!
//! "There is a considerable intersection among the ASes targeted by
//! action communities in the top 20 of all IXPs. LINX and IX.br, for
//! example, have 14 of the most popular communities aiming to avoid the
//! same ASes. [...] When considering the intersection between the four
//! largest IXPs regarding IPv4, we observe communities to avoid the same
//! six ASes."

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;
use bgp_model::prefix::Afi;
use community_dict::action::ActionGroup;
use community_dict::ixp::IxpId;
use community_dict::known;

use crate::core::View;
use crate::tops::{fig5, TopCommunities};

/// The avoided-AS sets behind each IXP's top-20 communities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetOverlap {
    /// Family analysed.
    pub afi: Afi,
    /// Per IXP: the single-AS avoid targets among its top-20 communities.
    pub per_ixp: Vec<(IxpId, BTreeSet<Asn>)>,
}

impl TargetOverlap {
    /// The targets shared between two IXPs' top-20 sets.
    pub fn pairwise(&self, a: IxpId, b: IxpId) -> BTreeSet<Asn> {
        let find = |ixp| {
            self.per_ixp
                .iter()
                .find(|(i, _)| *i == ixp)
                .map(|(_, s)| s.clone())
                .unwrap_or_default()
        };
        find(a).intersection(&find(b)).copied().collect()
    }

    /// The targets shared by every analysed IXP (the paper: six ASes for
    /// IPv4, nine for IPv6, among them Google, LeaseWeb, Akamai and
    /// OVHcloud).
    pub fn common(&self) -> BTreeSet<Asn> {
        let mut iter = self.per_ixp.iter().map(|(_, s)| s.clone());
        let Some(mut acc) = iter.next() else {
            return BTreeSet::new();
        };
        for s in iter {
            acc = acc.intersection(&s).copied().collect();
        }
        acc
    }

    /// Names of the common targets.
    pub fn common_names(&self) -> Vec<String> {
        self.common().into_iter().map(known::name_of).collect()
    }
}

/// Compute the overlap from already-ranked Fig. 5 results (one per IXP,
/// same family) — the zero-recompute path [`crate::summary::full_report`]
/// and the incremental engine use, since both have the per-IXP top-20 in
/// hand by the time the overlap is needed.
pub fn target_overlap_from_tops(tops: &[&TopCommunities]) -> TargetOverlap {
    let afi = tops.first().map(|t| t.afi).unwrap_or(Afi::Ipv4);
    let per_ixp = tops
        .iter()
        .map(|top20| {
            let targets: BTreeSet<Asn> = top20
                .top
                .iter()
                .filter(|r| r.action.kind.group() == ActionGroup::DoNotAnnounceTo)
                .filter_map(|r| r.action.target.peer_asn())
                .collect();
            (top20.ixp, targets)
        })
        .collect();
    TargetOverlap { afi, per_ixp }
}

/// Compute the overlap across a set of views (one per IXP, same family).
pub fn target_overlap(views: &[View<'_>]) -> TargetOverlap {
    let tops: Vec<TopCommunities> = views.iter().map(fig5).collect();
    target_overlap_from_tops(&tops.iter().collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::route::Route;
    use community_dict::schemes;
    use looking_glass::snapshot::Snapshot;

    fn snap(ixp: IxpId, targets: &[u32]) -> Snapshot {
        let routes = targets
            .iter()
            .enumerate()
            .map(|(i, t)| {
                (
                    Asn(39120),
                    Route::builder(
                        format!("193.0.{i}.0/24").parse().unwrap(),
                        "198.32.0.7".parse().unwrap(),
                    )
                    .path([39120])
                    .standard(schemes::avoid_community(ixp, Asn(*t)))
                    .build(),
                )
            })
            .collect();
        Snapshot {
            ixp,
            day: 0,
            afi: Afi::Ipv4,
            members: vec![Asn(39120)],
            routes,
            partial: false,
            failed_peers: vec![],
        }
    }

    #[test]
    fn overlap_computation() {
        let d_linx = schemes::dictionary(IxpId::Linx);
        let d_ams = schemes::dictionary(IxpId::AmsIx);
        let s_linx = snap(IxpId::Linx, &[15169, 16276, 20940]);
        let s_ams = snap(IxpId::AmsIx, &[16276, 20940, 13335]);
        let views = vec![View::new(&s_linx, &d_linx), View::new(&s_ams, &d_ams)];
        let ov = target_overlap(&views);
        let shared = ov.pairwise(IxpId::Linx, IxpId::AmsIx);
        assert_eq!(
            shared,
            [Asn(16276), Asn(20940)]
                .into_iter()
                .collect::<BTreeSet<_>>()
        );
        assert_eq!(ov.common().len(), 2);
        let names = ov.common_names();
        assert!(names.contains(&"OVHcloud".to_string()));
        assert!(names.contains(&"Akamai".to_string()));
    }

    #[test]
    fn empty_views() {
        let ov = target_overlap(&[]);
        assert!(ov.common().is_empty());
        assert!(ov.pairwise(IxpId::Linx, IxpId::AmsIx).is_empty());
    }
}
