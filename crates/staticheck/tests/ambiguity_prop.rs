//! Property test for SC004: whenever two dictionary entries with
//! *different* action semantics can match the same concrete community
//! value — established with the production `Pattern::matches`, not the
//! verifier's own interval math — the verifier must flag the pair.

use std::collections::BTreeSet;

use bgp_model::asn::Asn;
use bgp_model::community::StandardCommunity;
use community_dict::action::Action;
use community_dict::dictionary::Dictionary;
use community_dict::entry::DictionaryEntry;
use community_dict::ixp::IxpId;
use community_dict::pattern::Pattern;
use community_dict::semantics::Semantics;
use proptest::prelude::*;

use route_server::config::RsConfig;
use staticheck::policy;
use staticheck::Severity;

/// Arbitrary pattern over a tiny high-bit space so overlaps are common.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (0u16..4, any::<u16>())
            .prop_map(|(h, l)| Pattern::Exact(StandardCommunity::from_parts(h, l))),
        (0u16..4).prop_map(|high| Pattern::PeerAsnLow { high }),
        (0u16..4, any::<u16>(), any::<u16>()).prop_map(|(high, a, b)| Pattern::LowRange {
            high,
            lo: a.min(b),
            hi: a.max(b),
        }),
    ]
}

/// Patterns whose `resolve` is the identity for non-Region action
/// semantics: everything but the `PeerAsnLow` target template.
fn arb_plain_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (0u16..4, any::<u16>())
            .prop_map(|(h, l)| Pattern::Exact(StandardCommunity::from_parts(h, l))),
        (0u16..4, any::<u16>(), any::<u16>()).prop_map(|(high, a, b)| Pattern::LowRange {
            high,
            lo: a.min(b),
            hi: a.max(b),
        }),
    ]
}

/// Candidate community values where two patterns could both match:
/// interval endpoints of each, probed with the real matcher.
fn common_match(p1: &Pattern, p2: &Pattern) -> Option<StandardCommunity> {
    let endpoints = |p: &Pattern| -> Vec<StandardCommunity> {
        match *p {
            Pattern::Exact(c) => vec![c],
            Pattern::PeerAsnLow { high } => vec![
                StandardCommunity::from_parts(high, 0),
                StandardCommunity::from_parts(high, u16::MAX),
            ],
            Pattern::LowRange { high, lo, hi } => vec![
                StandardCommunity::from_parts(high, lo),
                StandardCommunity::from_parts(high, hi),
            ],
        }
    };
    let mut candidates: BTreeSet<StandardCommunity> = BTreeSet::new();
    candidates.extend(endpoints(p1));
    candidates.extend(endpoints(p2));
    candidates
        .into_iter()
        .find(|&c| p1.matches(c) && p2.matches(c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Two entries with distinct action groups that share any matching
    /// community value must produce an SC004 finding.
    #[test]
    fn overlapping_distinct_actions_are_flagged(p1 in arb_pattern(), p2 in arb_pattern()) {
        // identical patterns are merged by Dictionary::new (sources union,
        // first semantics wins) before the verifier ever sees them
        if p1 == p2 {
            continue;
        }
        // avoid/blackhole resolve differently at every witness value, so
        // any common match is genuine ambiguity
        let e1 = DictionaryEntry::new(p1, Semantics::Action(Action::avoid(Asn(64500))), "avoid");
        let e2 = DictionaryEntry::new(p2, Semantics::Action(Action::blackhole()), "blackhole");
        let dict = Dictionary::new(IxpId::DeCixFra, vec![e1, e2]);
        let config = RsConfig::for_ixp(IxpId::DeCixFra);
        let diags = policy::verify(&config, &dict, None);
        let flagged = diags.iter().filter(|d| d.code == "SC004").count();
        match common_match(&p1, &p2) {
            Some(c) => prop_assert!(
                flagged > 0,
                "patterns {:?} / {:?} share {} but were not flagged",
                p1, p2, c
            ),
            None => prop_assert!(
                flagged == 0,
                "patterns {:?} / {:?} are disjoint but were flagged: {:?}",
                p1, p2, diags
            ),
        }
    }

    /// Identical semantics never count as ambiguity, whatever the
    /// overlap — for patterns that don't rewrite their semantics per
    /// matched value. (A `PeerAsnLow` template rewrites the action
    /// target to the matched low bits, so even identical *stored*
    /// semantics resolve differently under it; blackhole's TaggedPrefix
    /// target is untouched by Exact and LowRange.)
    #[test]
    fn agreeing_semantics_are_never_flagged(p1 in arb_plain_pattern(), p2 in arb_plain_pattern()) {
        let sem = Semantics::Action(Action::blackhole());
        let e1 = DictionaryEntry::new(p1, sem, "bh a");
        let e2 = DictionaryEntry::new(p2, sem, "bh b");
        let dict = Dictionary::new(IxpId::DeCixFra, vec![e1, e2]);
        let config = RsConfig::for_ixp(IxpId::DeCixFra);
        let diags = policy::verify(&config, &dict, None);
        prop_assert!(
            diags.iter().all(|d| d.code != "SC004"),
            "{diags:?}"
        );
    }

    /// Severity calibration: strict containment warns (precedence picks a
    /// winner), while partial or equal overlap errors.
    #[test]
    fn containment_warns_partial_overlap_errors(high in 0u16..4, a in any::<u16>(), b in any::<u16>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        let outer = Pattern::PeerAsnLow { high };
        let inner = Pattern::LowRange { high, lo, hi };
        let e1 = DictionaryEntry::new(outer, Semantics::Action(Action::avoid(Asn(64500))), "avoid");
        let e2 = DictionaryEntry::new(inner, Semantics::Action(Action::blackhole()), "blackhole");
        let dict = Dictionary::new(IxpId::DeCixFra, vec![e1, e2]);
        let diags = policy::verify(&RsConfig::for_ixp(IxpId::DeCixFra), &dict, None);
        let sc004: Vec<_> = diags.iter().filter(|d| d.code == "SC004").collect();
        prop_assert_eq!(sc004.len(), 1);
        // full-range LowRange equals the template's match set: error;
        // anything narrower is strict containment: warning
        let expected = if (lo, hi) == (0, u16::MAX) {
            Severity::Error
        } else {
            Severity::Warning
        };
        prop_assert_eq!(sc004[0].severity, expected);
    }
}
