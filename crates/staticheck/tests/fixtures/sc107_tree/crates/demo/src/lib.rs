//! Seeded SC107: hash-map iteration order escapes into a `Vec` and then
//! reaches a serializing sink (`format!`) through a call chain — the
//! dataflow pass must report it interprocedurally.

use std::collections::HashMap;

fn render_row(k: u32) -> String {
    format!("row {k}")
}

fn emit_rows(ks: Vec<u32>) -> String {
    ks.iter().map(|k| render_row(*k)).collect::<String>()
}

pub fn table(m: &HashMap<u32, u32>) -> String {
    emit_rows(m.keys().copied().collect::<Vec<u32>>())
}
