//! Seeded SC109: interior mutability meets a par-task closure two ways.
//! `tally` captures a `RefCell` local of its enclosing function;
//! `run` hands `par::map_indexed` a closure that reaches a `RefCell`
//! field through a call chain (`analyze_unit` -> `classify`). Both are
//! errors (unsynchronized interior mutability inside a parallel task).

use std::cell::RefCell;

pub struct View {
    memo: RefCell<u32>,
}

impl View {
    pub fn classify(&self) -> u32 {
        *self.memo.borrow()
    }
}

fn analyze_unit(v: &View) -> u32 {
    v.classify()
}

pub fn tally(units: &[u32]) -> Vec<u32> {
    let acc = RefCell::new(0u32);
    map_indexed(units, |i, u| {
        *acc.borrow_mut() += u;
        i as u32
    })
}

pub fn run(v: &View, units: &[u32]) -> Vec<u32> {
    map_indexed(units, |_i, _u| analyze_unit(v))
}
