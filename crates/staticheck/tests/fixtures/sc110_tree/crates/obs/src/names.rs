//! Minimal `obs::names` registry: keeps SC104 satisfied so the tree
//! isolates the seeded SC110 violation.

pub const DEMO_COUNT: &str = "demo.count";

pub const ALL: [&str; 1] = [
    DEMO_COUNT,
];
