//! Seeded SC110: two paths acquire the same pair of mutexes in
//! opposite orders — `forward` takes `a` then (via `grab_b`) `b`,
//! while `backward` takes `b` then `a`. Concurrent execution can
//! deadlock; the check must name both witness chains.

use std::sync::Mutex;

pub struct Shared {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

fn grab_b(s: &Shared) -> u32 {
    let g = s.b.lock();
    drop(g);
    0
}

pub fn forward(s: &Shared) -> u32 {
    let ga = s.a.lock();
    let r = grab_b(s);
    drop(ga);
    r
}

pub fn backward(s: &Shared) -> u32 {
    let gb = s.b.lock();
    let ga = s.a.lock();
    drop(ga);
    drop(gb);
    1
}
