//! Seeded SC108: the public entry point `api` reaches a panic two calls
//! deep. SC101 flags the panicking construct itself; SC108 must report
//! the full call chain from the public surface.

fn deep(x: Option<u8>) -> u8 {
    x.unwrap()
}

fn middle(x: Option<u8>) -> u8 {
    deep(x)
}

pub fn api(x: Option<u8>) -> u8 {
    middle(x)
}
