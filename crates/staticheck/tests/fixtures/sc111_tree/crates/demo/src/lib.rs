//! Seeded SC111: the value of an `Ordering::Relaxed` atomic load is
//! bound to a local and flows into a serializing sink (`format!`)
//! through `render_count` — with no acquire/release edge, the observed
//! value is schedule-dependent and so is the serialized output.

use std::sync::atomic::{AtomicU64, Ordering};

fn render_count(n: u64) -> String {
    format!("count={n}")
}

pub fn emit(counter: &AtomicU64) -> String {
    let n = counter.load(Ordering::Relaxed);
    render_count(n)
}
