//! Seeded SC112: a par-task closure reaches a blocking `sleep` through
//! `throttle` with no timeout or deadline anywhere on the chain — one
//! straggling task serializes the whole pool behind the ordered join.

fn throttle() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}

pub fn run(units: &[u32]) -> Vec<u32> {
    map_indexed(units, |i, _u| {
        throttle();
        i as u32
    })
}
