//! Seeded-violation fixtures: each JSON file under `tests/fixtures/`
//! plants one known defect class and the verifier must report exactly
//! the expected stable diagnostic codes, with a nonzero exit.

use std::path::PathBuf;

use staticheck::cli::run_captured;
use staticheck::{Report, Severity};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Run `staticheck policy --fixture <name>` hermetically (no repo
/// allowlist, so waivers can never mask a seeded violation).
fn run_fixture(name: &str) -> Report {
    let args: Vec<String> = [
        "policy",
        "--fixture",
        fixture_path(name).to_str().expect("utf-8 path"),
        "--allowlist",
        "/nonexistent/staticheck.toml",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (report, _) = run_captured(&args).expect("fixture runs");
    report
}

fn codes(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|d| d.code.as_str()).collect()
}

#[test]
fn shadowed_fixture_reports_sc001_and_fails() {
    let report = run_fixture("shadowed.json");
    assert_eq!(codes(&report), vec!["SC001"]);
    assert!(report.findings[0].location.contains("reject-long-v4"));
    assert_ne!(report.exit_code(), 0);
}

#[test]
fn contradictory_fixture_reports_sc002_and_fails() {
    let report = run_fixture("contradictory.json");
    assert_eq!(codes(&report), vec!["SC002"]);
    assert!(report.findings[0].location.contains("only-to-he-on-v4"));
    assert!(report.findings[0]
        .location
        .contains("avoid-he-on-host-routes"));
    assert_ne!(report.exit_code(), 0);
}

#[test]
fn ineffective_fixture_reports_sc003_rule_error_and_entry_warning() {
    let report = run_fixture("ineffective.json");
    assert_eq!(codes(&report), vec!["SC003", "SC003"]);
    let rule_finding = report
        .findings
        .iter()
        .find(|d| d.location.contains("avoid-ovh"))
        .expect("rule finding");
    assert_eq!(rule_finding.severity, Severity::Error);
    assert!(rule_finding.message.contains("16276"));
    let entry_finding = report
        .findings
        .iter()
        .find(|d| d.location.starts_with("dict("))
        .expect("entry finding");
    assert_eq!(entry_finding.severity, Severity::Warning);
    assert!(entry_finding.message.contains("49999"));
    // the error-grade rule finding alone fails the gate
    assert_ne!(report.exit_code(), 0);
}

#[test]
fn ambiguous_fixture_reports_sc004_and_fails() {
    let report = run_fixture("ambiguous.json");
    assert_eq!(codes(&report), vec!["SC004"]);
    assert_eq!(report.findings[0].severity, Severity::Error);
    // the message names a concrete witness community in the overlap
    assert!(report.findings[0].message.contains("65100:"));
    assert_ne!(report.exit_code(), 0);
}

#[test]
fn composed_fixture_reports_sc005_and_fails() {
    let report = run_fixture("composed.json");
    assert_eq!(codes(&report), vec!["SC005", "SC005"]);
    // the redundant avoid: dictionary semantics already do what the
    // rule applies, so composition changes nothing
    let redundant = &report.findings[0];
    assert!(redundant.location.contains("avoid-he-redundantly"));
    assert!(
        redundant.message.contains("witness community 65001:100"),
        "{redundant:?}"
    );
    // the blackhole request at an IXP that does not honor blackholes
    let blackhole = &report.findings[1];
    assert!(blackhole.location.contains("blackhole-on-request"));
    assert!(
        blackhole.message.contains("does not honor blackhole"),
        "{blackhole:?}"
    );
    assert_ne!(report.exit_code(), 0);
}

#[test]
fn drift_fixture_reports_sc006_conflict_and_fails() {
    let report = run_fixture("drift.json");
    assert_eq!(codes(&report), vec!["SC006"]);
    let d = &report.findings[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("conflicting actions"), "{d:?}");
    // the message names the concrete witness community
    assert!(d.message.contains("65010:200"), "{d:?}");
    assert!(d.location.contains("DeCixFra") && d.location.contains("Linx"));
    assert_ne!(report.exit_code(), 0);
}

/// Run `staticheck lints --root tests/fixtures/<tree>` hermetically.
fn run_tree(tree: &str) -> Report {
    let args: Vec<String> = [
        "lints",
        "--root",
        fixture_path(tree).to_str().expect("utf-8 path"),
        "--allowlist",
        "/nonexistent/staticheck.toml",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (report, _) = run_captured(&args).expect("tree runs");
    report
}

#[test]
fn sc107_tree_reports_hash_order_flow_with_chain() {
    let report = run_tree("sc107_tree");
    assert_eq!(codes(&report), vec!["SC107"]);
    let d = &report.findings[0];
    assert_eq!(d.severity, Severity::Error);
    // the diagnostic names the call chain the ordered data travels
    assert!(d.message.contains("emit_rows"), "{d:?}");
    assert!(d.location.contains("crates/demo/src/lib.rs"), "{d:?}");
    assert_ne!(report.exit_code(), 0);
}

#[test]
fn sc108_tree_reports_panic_reachability_chain() {
    let report = run_tree("sc108_tree");
    let mut found = codes(&report);
    found.sort_unstable();
    // SC101 flags the raw unwrap; SC108 adds the interprocedural chain
    assert_eq!(found, vec!["SC101", "SC108"]);
    let d = report
        .findings
        .iter()
        .find(|d| d.code == "SC108")
        .expect("SC108 finding");
    assert!(d.message.contains("api` -> `middle` -> `deep"), "{d:?}");
    assert!(d.message.contains("unwrap"), "{d:?}");
    assert_ne!(report.exit_code(), 0);
}

#[test]
fn sc109_tree_reports_captured_and_reached_interior_mutability() {
    let report = run_tree("sc109_tree");
    assert_eq!(codes(&report), vec!["SC109", "SC109"]);
    // flavor 1: the closure captures a RefCell local of its enclosing fn
    let captured = report
        .findings
        .iter()
        .find(|d| d.message.contains("captures"))
        .expect("capture-flavor finding");
    assert_eq!(captured.severity, Severity::Error);
    assert!(captured.message.contains("captures `acc`"), "{captured:?}");
    assert!(
        captured.message.contains("local of `tally`"),
        "{captured:?}"
    );
    assert!(
        captured.message.contains("determinism argument"),
        "{captured:?}"
    );
    // flavor 2: the closure reaches a RefCell field through a call chain
    let reached = report
        .findings
        .iter()
        .find(|d| d.message.contains("reaches interior mutability"))
        .expect("reach-flavor finding");
    assert_eq!(reached.severity, Severity::Error);
    assert!(
        reached.message.contains("analyze_unit` -> `classify"),
        "{reached:?}"
    );
    assert!(reached.message.contains("references `memo`"), "{reached:?}");
    assert!(
        reached.location.contains("crates/demo/src/lib.rs"),
        "{reached:?}"
    );
    assert_ne!(report.exit_code(), 0);
}

#[test]
fn sc110_tree_reports_lock_order_inversion_with_both_witnesses() {
    let report = run_tree("sc110_tree");
    assert_eq!(codes(&report), vec!["SC110"]);
    let d = &report.findings[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains("inconsistent lock-acquisition order"),
        "{d:?}"
    );
    // both witness chains are named: the transitive one through grab_b
    // and the direct inverted acquisition in backward
    assert!(d.message.contains("`forward`"), "{d:?}");
    assert!(d.message.contains("`grab_b`"), "{d:?}");
    assert!(d.message.contains("`backward`"), "{d:?}");
    assert!(d.message.contains("deadlock"), "{d:?}");
    assert_ne!(report.exit_code(), 0);
}

#[test]
fn sc111_tree_reports_relaxed_value_flowing_into_sink() {
    let report = run_tree("sc111_tree");
    assert_eq!(codes(&report), vec!["SC111"]);
    let d = &report.findings[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("counter.load(Relaxed)"), "{d:?}");
    assert!(d.message.contains("flows into"), "{d:?}");
    assert!(d.message.contains("schedule-dependent"), "{d:?}");
    assert!(d.location.contains("crates/demo/src/lib.rs"), "{d:?}");
    assert_ne!(report.exit_code(), 0);
}

#[test]
fn sc112_tree_reports_blocking_call_in_par_task_with_chain() {
    let report = run_tree("sc112_tree");
    assert_eq!(codes(&report), vec!["SC112"]);
    let d = &report.findings[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("reaches blocking `sleep`"), "{d:?}");
    assert!(d.message.contains("no timeout/deadline"), "{d:?}");
    // the chain names the intermediate hop
    assert!(d.message.contains("throttle"), "{d:?}");
    assert!(d.location.contains("crates/demo/src/lib.rs"), "{d:?}");
    assert_ne!(report.exit_code(), 0);
}

#[test]
fn lints_engine_reports_seeded_violations() {
    // build a tiny fake workspace root with one violation per lint
    let root = std::env::temp_dir().join(format!("staticheck-lint-{}", std::process::id()));
    let src = root.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        src.join("lib.rs"),
        concat!(
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
            "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n",
            "pub fn m(r: &obs::Registry) { r.counter(\"demo.count\"); }\n",
            "#[cfg(test)]\nmod tests {\n    fn fine() { None::<u8>.unwrap(); }\n}\n",
        ),
    )
    .expect("write");

    let args: Vec<String> = [
        "lints",
        "--root",
        root.to_str().expect("utf-8 path"),
        "--allowlist",
        "/nonexistent/staticheck.toml",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (report, _) = run_captured(&args).expect("lints run");
    std::fs::remove_dir_all(&root).ok();

    let mut found = codes(&report);
    found.sort_unstable();
    // SC104 fires too: the fake root has no obs::names registry at all
    assert_eq!(found, vec!["SC101", "SC102", "SC103", "SC104"]);
    assert!(report
        .findings
        .iter()
        .all(|d| d.severity == Severity::Error));
    assert_ne!(report.exit_code(), 0);
}

#[test]
fn allowlist_waives_fixture_findings() {
    // same seeded violation, but an allowlist that waives SC001 by path
    let allow = std::env::temp_dir().join(format!("staticheck-allow-{}.toml", std::process::id()));
    std::fs::write(
        &allow,
        "[[allow]]\ncode = \"SC001\"\nreason = \"fixture waiver for the allowlist test\"\n",
    )
    .expect("write allowlist");
    let args: Vec<String> = [
        "policy",
        "--fixture",
        fixture_path("shadowed.json").to_str().expect("utf-8 path"),
        "--allowlist",
        allow.to_str().expect("utf-8 path"),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (report, _) = run_captured(&args).expect("run");
    std::fs::remove_file(&allow).ok();
    assert!(report.findings.is_empty());
    assert_eq!(report.allowed.len(), 1);
    assert_eq!(report.exit_code(), 0);
}
