//! Property test for the incremental cache: across randomized
//! touch-and-recheck sequences over a mutating workspace, a run with
//! `--cache` must be byte-identical (text and JSON renderings) to a
//! cacheless run over the same tree. The sequence mixes fingerprint-only
//! touches (comments), finding toggles (seeded violations appearing and
//! disappearing), and interface changes (a helper rename that rewires
//! the cross-file call graph and must invalidate the whole flow pass).

use std::fs;
use std::path::{Path, PathBuf};

use staticheck::cli::run_captured;

/// Deterministic 64-bit LCG (Knuth MMIX constants) so the 64-step
/// sequence is reproducible without any external rand dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The mutable shape of the synthetic workspace.
struct World {
    root: PathBuf,
    /// Seeded SC109: a par-task closure reaching a RefCell field.
    demo_bad: bool,
    /// Seeded SC111: a Relaxed load flowing into `format!`.
    util_relaxed: bool,
    /// Which name the cross-crate helper currently has (0 or 1); a
    /// toggle renames the fn and its call site — an interface change.
    util_name: usize,
    /// Per-file touch counters rendered into comments.
    touches: [u32; 3],
}

const HELPER_NAMES: [&str; 2] = ["step_fast", "step_slow"];

impl World {
    fn demo_src(&self) -> String {
        let helper = HELPER_NAMES[self.util_name];
        let bad = if self.demo_bad {
            "pub fn run(v: &View, units: &[u32]) -> Vec<u32> {\n    map_indexed(units, |_i, _u| analyze(v))\n}\n"
        } else {
            "pub fn run(v: &View, units: &[u32]) -> Vec<u32> {\n    let _ = units;\n    vec![analyze(v)]\n}\n"
        };
        format!(
            "//! demo crate (touch {t}).\n\n\
             pub struct View {{\n    memo: std::cell::RefCell<u32>,\n}}\n\n\
             impl View {{\n    pub fn classify(&self) -> u32 {{\n        *self.memo.borrow()\n    }}\n}}\n\n\
             fn analyze(v: &View) -> u32 {{\n    v.classify()\n}}\n\n\
             {bad}\n\
             pub fn sum(units: &[u32]) -> u32 {{\n    units.iter().map(|u| {helper}(*u)).sum()\n}}\n",
            t = self.touches[0],
        )
    }

    fn util_src(&self) -> String {
        let helper = HELPER_NAMES[self.util_name];
        let relaxed = if self.util_relaxed {
            "use std::sync::atomic::{AtomicU64, Ordering};\n\n\
             pub fn emit(c: &AtomicU64) -> String {\n    let n = c.load(Ordering::Relaxed);\n    format!(\"n={n}\")\n}\n"
        } else {
            ""
        };
        format!(
            "//! util crate (touch {t}).\n\n\
             pub fn {helper}(u: u32) -> u32 {{\n    u.wrapping_add(1)\n}}\n\n{relaxed}",
            t = self.touches[1],
        )
    }

    fn names_src(&self) -> String {
        format!(
            "//! obs names registry (touch {t}).\n\n\
             pub const DEMO_COUNT: &str = \"demo.count\";\n\n\
             pub const ALL: [&str; 1] = [\n    DEMO_COUNT,\n];\n",
            t = self.touches[2],
        )
    }

    fn write_all(&self) {
        write(&self.root.join("crates/demo/src/lib.rs"), &self.demo_src());
        write(&self.root.join("crates/util/src/lib.rs"), &self.util_src());
        write(
            &self.root.join("crates/obs/src/names.rs"),
            &self.names_src(),
        );
    }
}

fn write(path: &Path, contents: &str) {
    fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    fs::write(path, contents).expect("write");
}

fn run(root: &Path, cache: Option<&Path>) -> (String, String) {
    let mut args: Vec<String> = [
        "lints",
        "--root",
        root.to_str().expect("utf-8 path"),
        "--allowlist",
        "/nonexistent/staticheck.toml",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    if let Some(c) = cache {
        args.push("--cache".to_string());
        args.push(c.to_str().expect("utf-8 path").to_string());
    }
    let (report, _) = run_captured(&args).expect("staticheck runs");
    (report.render_text_with(true), report.render_json())
}

#[test]
fn cached_runs_are_byte_identical_across_randomized_sequences() {
    let root = std::env::temp_dir().join(format!("staticheck-prop-{}", std::process::id()));
    fs::remove_dir_all(&root).ok();
    let cache = root.join("target/staticheck.cache");

    let mut world = World {
        root: root.clone(),
        demo_bad: true,
        util_relaxed: false,
        util_name: 0,
        touches: [0; 3],
    };
    world.write_all();

    let mut rng = Lcg(0x5eed_cafe_f00d_0001);
    // coverage bookkeeping: the sequence must visit both finding-full
    // and finding-free states, or the property is vacuous
    let mut saw_sc109 = false;
    let mut saw_clean_demo = false;

    for step in 0..64 {
        match rng.pick(6) {
            f @ 0..=2 => {
                // fingerprint-only touch: comment churn in one file
                world.touches[f] += 1;
            }
            3 => world.demo_bad = !world.demo_bad,
            4 => world.util_relaxed = !world.util_relaxed,
            _ => {
                // interface change: rename the cross-crate helper and
                // its call site — must invalidate the flow pass wholesale
                world.util_name ^= 1;
            }
        }
        world.write_all();

        let (cold_text, cold_json) = run(&root, None);
        let (warm_text, warm_json) = run(&root, Some(&cache));
        assert_eq!(cold_text, warm_text, "text diverged at step {step}");
        assert_eq!(cold_json, warm_json, "json diverged at step {step}");

        saw_sc109 |= cold_text.contains("SC109");
        saw_clean_demo |= !cold_text.contains("SC109");
    }

    fs::remove_dir_all(&root).ok();
    assert!(saw_sc109, "sequence never produced an SC109 finding");
    assert!(saw_clean_demo, "sequence never produced an SC109-free tree");
}
