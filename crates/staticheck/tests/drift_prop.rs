//! Property test for SC006: the cross-dictionary drift verdicts must
//! agree with the production `Pattern::resolve` at the witness value
//! the diagnostic reports — the verifier's interval math can never
//! flag a pair the real resolver considers equivalent, nor stay silent
//! on a pair it considers conflicting.

use std::collections::BTreeSet;

use bgp_model::asn::Asn;
use bgp_model::community::StandardCommunity;
use community_dict::action::Action;
use community_dict::dictionary::Dictionary;
use community_dict::entry::DictionaryEntry;
use community_dict::ixp::IxpId;
use community_dict::pattern::Pattern;
use community_dict::semantics::Semantics;
use proptest::prelude::*;

use staticheck::policy;
use staticheck::Severity;

/// Arbitrary pattern over a tiny high-bit space so overlaps are common.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (0u16..4, any::<u16>())
            .prop_map(|(h, l)| Pattern::Exact(StandardCommunity::from_parts(h, l))),
        (0u16..4).prop_map(|high| Pattern::PeerAsnLow { high }),
        (0u16..4, any::<u16>(), any::<u16>()).prop_map(|(high, a, b)| Pattern::LowRange {
            high,
            lo: a.min(b),
            hi: a.max(b),
        }),
    ]
}

/// A community value both patterns match, probed with the production
/// matcher over the patterns' interval endpoints.
fn common_match(p1: &Pattern, p2: &Pattern) -> Option<StandardCommunity> {
    let endpoints = |p: &Pattern| -> Vec<StandardCommunity> {
        match *p {
            Pattern::Exact(c) => vec![c],
            Pattern::PeerAsnLow { high } => vec![
                StandardCommunity::from_parts(high, 0),
                StandardCommunity::from_parts(high, u16::MAX),
            ],
            Pattern::LowRange { high, lo, hi } => vec![
                StandardCommunity::from_parts(high, lo),
                StandardCommunity::from_parts(high, hi),
            ],
        }
    };
    let mut candidates: BTreeSet<StandardCommunity> = BTreeSet::new();
    candidates.extend(endpoints(p1));
    candidates.extend(endpoints(p2));
    candidates
        .into_iter()
        .find(|&c| p1.matches(c) && p2.matches(c))
}

/// Two single-entry dictionaries at different IXPs.
fn dicts(e1: DictionaryEntry, e2: DictionaryEntry) -> [Dictionary; 2] {
    [
        Dictionary::new(IxpId::DeCixFra, vec![e1]),
        Dictionary::new(IxpId::Linx, vec![e2]),
    ]
}

/// Parse the "community H:V" witness out of an SC006 message.
fn witness_of(message: &str) -> Option<StandardCommunity> {
    let rest = message.split("community ").nth(1)?;
    let (pair, _) = rest.split_once(' ')?;
    let (h, v) = pair.split_once(':')?;
    Some(StandardCommunity::from_parts(
        h.parse().ok()?,
        v.parse().ok()?,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Avoid vs blackhole resolve to different action kinds at *every*
    /// value, so SC006 must fire exactly when a common match exists —
    /// error-grade — and the reported witness must disagree under the
    /// production resolver.
    #[test]
    fn cross_group_conflicts_agree_with_resolve(p1 in arb_pattern(), p2 in arb_pattern()) {
        let e1 = DictionaryEntry::new(p1, Semantics::Action(Action::avoid(Asn(64500))), "avoid");
        let e2 = DictionaryEntry::new(p2, Semantics::Action(Action::blackhole()), "blackhole");
        let diags = policy::verify_cross_dictionaries(&dicts(e1.clone(), e2.clone()));
        match common_match(&p1, &p2) {
            Some(c) => {
                prop_assert_eq!(
                    diags.len(), 1,
                    "patterns {:?} / {:?} share {} but were not flagged", p1, p2, c
                );
                prop_assert_eq!(diags[0].severity, Severity::Error);
                let w = witness_of(&diags[0].message).expect("witness in message");
                prop_assert!(p1.matches(w) && p2.matches(w), "witness {} matches neither", w);
                let a1 = e1.pattern.resolve(e1.semantics, w).action();
                let a2 = e2.pattern.resolve(e2.semantics, w).action();
                prop_assert!(
                    a1.is_some() && a2.is_some() && a1 != a2,
                    "witness {} does not disagree under resolve: {:?} vs {:?}", w, a1, a2
                );
            }
            None => prop_assert!(diags.is_empty(), "disjoint but flagged: {diags:?}"),
        }
    }

    /// The same stored avoid action on both sides can differ only in
    /// resolved *scope* (a `PeerAsnLow` template rewrites the target per
    /// value): findings stay warning-grade, and every reported witness
    /// resolves to two same-group actions that genuinely differ.
    #[test]
    fn same_group_drift_is_warning_grade(p1 in arb_pattern(), p2 in arb_pattern()) {
        let sem = Semantics::Action(Action::avoid(Asn(64500)));
        let e1 = DictionaryEntry::new(p1, sem, "avoid a");
        let e2 = DictionaryEntry::new(p2, sem, "avoid b");
        let diags = policy::verify_cross_dictionaries(&dicts(e1.clone(), e2.clone()));
        for d in &diags {
            prop_assert_eq!(d.severity, Severity::Warning, "{:?}", d);
            let w = witness_of(&d.message).expect("witness in message");
            let a1 = e1.pattern.resolve(e1.semantics, w).action().expect("action");
            let a2 = e2.pattern.resolve(e2.semantics, w).action().expect("action");
            prop_assert!(a1 != a2, "witness {} resolves equal under resolve", w);
            prop_assert_eq!(a1.kind.group(), a2.kind.group());
        }
    }

    /// One dictionary is never in drift with itself: same-IXP pairs are
    /// skipped entirely, whatever the entries.
    #[test]
    fn same_ixp_pairs_are_skipped(p1 in arb_pattern(), p2 in arb_pattern()) {
        let e1 = DictionaryEntry::new(p1, Semantics::Action(Action::avoid(Asn(64500))), "avoid");
        let e2 = DictionaryEntry::new(p2, Semantics::Action(Action::blackhole()), "blackhole");
        let ds = [
            Dictionary::new(IxpId::AmsIx, vec![e1]),
            Dictionary::new(IxpId::AmsIx, vec![e2]),
        ];
        prop_assert!(policy::verify_cross_dictionaries(&ds).is_empty());
    }
}
