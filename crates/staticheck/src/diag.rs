//! Diagnostics: stable codes, severities, locations, and rendering.
//!
//! Exit-code contract (enforced by [`crate::cli::run`], consumed by
//! `repro check` and `scripts/ci.sh`): **0** = clean (no non-allowlisted
//! error-grade findings), **1** = error-grade findings remain, **2** =
//! internal/IO error (bad arguments, unreadable fixture, malformed
//! allowlist) — the analysis itself did not run to completion.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Every stable diagnostic code, in catalog order (SC0xx = policy
/// verifier, SC1xx = workspace linter + dataflow).
pub const CODES: [&str; 14] = [
    "SC001", "SC002", "SC003", "SC004", "SC005", "SC006", "SC101", "SC102", "SC103", "SC104",
    "SC105", "SC106", "SC107", "SC108",
];

/// One-line description of a diagnostic code (the SARIF rule catalog).
pub fn describe(code: &str) -> &'static str {
    match code {
        "SC001" => "shadowed import rule: can never match",
        "SC002" => "contradictory actions on intersecting rule matchers",
        "SC003" => "action target has no session at the route server",
        "SC004" => "one community value parses under two semantics",
        "SC005" => "applied action can never take effect (import→action→export)",
        "SC006" => "cross-dictionary drift: one pattern, conflicting actions across IXPs",
        "SC101" => "panicking construct in library code",
        "SC102" => "raw clock read outside the obs crate",
        "SC103" => "metric/span name minted outside the obs::names registry",
        "SC104" => "obs::names registry is inconsistent",
        "SC105" => "raw thread creation outside the par pool",
        "SC106" => "trace-context plumbing outside its sanctioned crates",
        "SC107" => "hash-map iteration order can reach serialized output",
        "SC108" => "public function can reach a panic (interprocedural)",
        _ => "unknown diagnostic code",
    }
}

/// How bad a finding is. Only non-allowlisted [`Severity::Error`]
/// findings fail the build; warnings are reported but never gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Worth knowing; does not fail CI.
    Warning,
    /// A real defect; fails CI unless allowlisted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding. `code` is stable across releases (SC0xx = policy
/// verifier, SC1xx = workspace linter) so allowlists and CI greps
/// never chase renames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable diagnostic code (`SC001`, `SC101`, ...).
    pub code: String,
    /// Error or warning.
    pub severity: Severity,
    /// Where: `path:line` for lints, rule/entry descriptor for policy.
    pub location: String,
    /// What and why, one line.
    pub message: String,
}

impl Diagnostic {
    /// Construct a finding.
    pub fn new(
        code: &str,
        severity: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code: code.to_string(),
            severity,
            location: location.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity, self.code, self.message, self.location
        )
    }
}

/// A finished run: every finding plus which ones the allowlist waived.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    /// Findings that count (not allowlisted).
    pub findings: Vec<Diagnostic>,
    /// Findings waived by `staticheck.toml`.
    pub allowed: Vec<Diagnostic>,
}

impl Report {
    /// Number of gating (error-severity, non-allowlisted) findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Exit code for a CI gate: zero only when no errors remain.
    pub fn exit_code(&self) -> i32 {
        if self.error_count() == 0 {
            0
        } else {
            1
        }
    }

    /// Human-readable rendering, one finding per line, summary last.
    pub fn render_text(&self) -> String {
        self.render_text_with(true)
    }

    /// Text rendering with warnings optionally elided (the summary line
    /// always carries the counts; `--json` always carries everything).
    pub fn render_text_with(&self, show_warnings: bool) -> String {
        let mut out = String::new();
        for d in &self.findings {
            if show_warnings || d.severity == Severity::Error {
                out.push_str(&d.to_string());
                out.push('\n');
            }
        }
        let warnings = self.findings.len() - self.error_count();
        if !show_warnings && warnings > 0 {
            out.push_str("(warnings elided; pass --warnings or --json to see them)\n");
        }
        let counts = self.counts_by_code();
        if !counts.is_empty() {
            let parts: Vec<String> = counts
                .iter()
                .map(|(code, n)| format!("{code}={n}"))
                .collect();
            out.push_str(&format!("per-check: {}\n", parts.join(" ")));
        }
        out.push_str(&format!(
            "staticheck: {} error(s), {} warning(s), {} allowlisted\n",
            self.error_count(),
            warnings,
            self.allowed.len()
        ));
        out
    }

    /// Finding counts per diagnostic code (allowlisted ones excluded),
    /// sorted by code — the `per-check:` summary line CI parses.
    pub fn counts_by_code(&self) -> BTreeMap<&str, usize> {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for d in &self.findings {
            *counts.entry(d.code.as_str()).or_default() += 1;
        }
        counts
    }

    /// JSON rendering (machine-readable CI artifact).
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.allowed.extend(other.allowed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_code_gates_on_errors_only() {
        let mut r = Report::default();
        r.findings
            .push(Diagnostic::new("SC004", Severity::Warning, "x", "warn"));
        assert_eq!(r.exit_code(), 0);
        r.findings
            .push(Diagnostic::new("SC001", Severity::Error, "y", "err"));
        assert_eq!(r.exit_code(), 1);
        assert_eq!(r.error_count(), 1);
    }

    #[test]
    fn text_rendering_mentions_code_and_location() {
        let mut r = Report::default();
        r.findings.push(Diagnostic::new(
            "SC002",
            Severity::Error,
            "rule 'a' vs rule 'b'",
            "contradictory actions",
        ));
        let text = r.render_text();
        assert!(text.contains("SC002"));
        assert!(text.contains("rule 'a' vs rule 'b'"));
        assert!(text.contains("1 error(s)"));
    }

    #[test]
    fn json_round_trips() {
        let mut r = Report::default();
        r.findings
            .push(Diagnostic::new("SC003", Severity::Error, "loc", "msg"));
        let parsed: Report = serde_json::from_str(&r.render_json()).unwrap();
        assert_eq!(parsed.findings, r.findings);
    }
}
