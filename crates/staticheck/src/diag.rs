//! Diagnostics: stable codes, severities, locations, and rendering.
//!
//! Exit-code contract (enforced by [`crate::cli::run`], consumed by
//! `repro check` and `scripts/ci.sh`): **0** = clean (no non-allowlisted
//! error-grade findings), **1** = error-grade findings remain, **2** =
//! internal/IO error (bad arguments, unreadable fixture, malformed
//! allowlist) — the analysis itself did not run to completion.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Every stable diagnostic code, in catalog order (SC0xx = policy
/// verifier, SC1xx = workspace linter + dataflow).
pub const CODES: [&str; 18] = [
    "SC001", "SC002", "SC003", "SC004", "SC005", "SC006", "SC101", "SC102", "SC103", "SC104",
    "SC105", "SC106", "SC107", "SC108", "SC109", "SC110", "SC111", "SC112",
];

/// One-line description of a diagnostic code (the SARIF rule catalog).
pub fn describe(code: &str) -> &'static str {
    match code {
        "SC001" => "shadowed import rule: can never match",
        "SC002" => "contradictory actions on intersecting rule matchers",
        "SC003" => "action target has no session at the route server",
        "SC004" => "one community value parses under two semantics",
        "SC005" => "applied action can never take effect (import→action→export)",
        "SC006" => "cross-dictionary drift: one pattern, conflicting actions across IXPs",
        "SC101" => "panicking construct in library code",
        "SC102" => "raw clock read outside the obs crate",
        "SC103" => "metric/span name minted outside the obs::names registry",
        "SC104" => "obs::names registry is inconsistent",
        "SC105" => "raw thread creation outside the par pool",
        "SC106" => "trace-context plumbing outside its sanctioned crates",
        "SC107" => "hash-map iteration order can reach serialized output",
        "SC108" => "public function can reach a panic (interprocedural)",
        "SC109" => "par-task closure captures or reaches interior mutability",
        "SC110" => "inconsistent lock-acquisition order across call chains",
        "SC111" => "Ordering::Relaxed atomic value flows into serialized output",
        "SC112" => "blocking call inside a par-task closure with no deadline",
        _ => "unknown diagnostic code",
    }
}

/// Full catalog entry for `staticheck --explain SCxxx`: rationale and
/// waiver policy, a few lines each. `None` for unknown codes (exit 2).
pub fn explain(code: &str) -> Option<String> {
    let (rationale, waiver) = match code {
        "SC001" => (
            "An import rule is dead when earlier rules jointly cover every\n\
             input it could match (exact interval arithmetic over AFI, prefix\n\
             length, peer, and community). Dead rules mislead operators about\n\
             what the route server actually does.",
            "Waive only for rules kept deliberately as documentation; say so.",
        ),
        "SC002" => (
            "Two rules whose matchers intersect apply contradictory actions to\n\
             the shared inputs; which one wins depends on evaluation order.",
            "Waive only when order-dependence is the documented intent.",
        ),
        "SC003" => (
            "An action community targeting an AS with no session at the route\n\
             server can never influence export — the paper's §5.5 static half.",
            "Waive for members expected to connect soon; name the member.",
        ),
        "SC004" => (
            "Two dictionary patterns give one community value two meanings;\n\
             resolution would depend on entry order, not semantics.",
            "Waive only when specificity precedence provably disambiguates.",
        ),
        "SC005" => (
            "An applied import-rule action that no export path consults is\n\
             configuration noise and usually a typo'd community value.",
            "Waive for staged rollouts where the export half lands later.",
        ),
        "SC006" => (
            "The same pattern maps to conflicting actions in different IXP\n\
             dictionaries, so cross-IXP comparisons silently disagree.",
            "Waive only with a citation for each IXP's documented semantics.",
        ),
        "SC101" => (
            "unwrap/expect/panic! in library code turns recoverable situations\n\
             into aborts, and SC108 treats each site as a reachability seed.",
            "Waive with an argument why the panic is unreachable (totality,\n\
             checked invariant); SC108 trusts that argument.",
        ),
        "SC102" => (
            "Raw clock reads outside obs make runs time-dependent and break\n\
             byte-identical replay; obs::clock is the one sanctioned source.",
            "Waive only in transport/timing code that never feeds analysis\n\
             output.",
        ),
        "SC103" => (
            "Metric/span names minted ad hoc drift from the obs::names\n\
             registry, breaking dashboards and the SC104 consistency check.",
            "No waivers: add the name to obs::names instead.",
        ),
        "SC104" => (
            "The obs::names registry must stay sorted, duplicate-free, and\n\
             referenced; an inconsistent registry invalidates SC103.",
            "No waivers: fix the registry.",
        ),
        "SC105" => (
            "Raw std::thread spawns bypass the par pool's determinism story\n\
             (ordered join, accounted metrics) and its PAR_THREADS override.",
            "Waive only for long-lived service threads (e.g. the looking-glass\n\
             accept loop) that never touch analysis state.",
        ),
        "SC106" => (
            "Trace-context plumbing outside its sanctioned crates duplicates\n\
             propagation logic and breaks causal trace reconstruction.",
            "No waivers: route through the sanctioned API.",
        ),
        "SC107" => (
            "HashMap/HashSet iteration order differs across processes; one\n\
             unsorted path into serialized output breaks every byte-identical\n\
             oracle (par equivalence, trace digests, golden fixtures).",
            "Waive only when the consumer is provably order-insensitive and a\n\
             BTree/sort rewrite is impractical; explain both.",
        ),
        "SC108" => (
            "A public function that can transitively reach a panic gives\n\
             callers an abort surface no signature warns about.",
            "Waive the underlying SC101 site with an unreachability argument;\n\
             SC108 inherits it.",
        ),
        "SC109" => (
            "A par-task closure (passed to par::map_indexed, thread::scope, or\n\
             a spawned handler) that captures or transitively reaches interior\n\
             mutability (RefCell, Cell, Mutex, RwLock, Atomic*, static mut,\n\
             thread_local!) makes task outcomes depend on scheduling. RefCell\n\
             and friends additionally panic on cross-thread borrow collisions.\n\
             Unsynchronized types are errors; lock/atomic types are warnings\n\
             (safe, but still a determinism hazard worth a look).",
            "Waiverable only via staticheck.toml with a determinism argument:\n\
             the reason must explain why every interleaving produces identical\n\
             output (e.g. commutative monotonic counters merged post-join).",
        ),
        "SC110" => (
            "Two call chains that acquire the same pair of locks in opposite\n\
             orders can deadlock under concurrent execution — the classic\n\
             hazard for the multi-client looking-glass serving path. The check\n\
             collects per-function lock sequences (strict `let guard = ..`\n\
             bindings only) and propagates them through the call graph.",
            "Waive only when the two chains provably never run concurrently;\n\
             name the serialization mechanism.",
        ),
        "SC111" => (
            "An atomic read with Ordering::Relaxed carries no happens-before\n\
             edge: the value observed depends on the CPU and the scheduler.\n\
             Letting it flow into serialized output, metrics asserted by\n\
             tests, or trace digests makes byte-identity runs flaky.",
            "Waive with an output-invariance argument: the value must be\n\
             provably identical at the read point in every execution (e.g.\n\
             read after all writers joined).",
        ),
        "SC112" => (
            "A blocking call (stream read/write, sleep, pace, recv) inside a\n\
             par-task closure with no timeout/deadline anywhere on the chain\n\
             lets one straggler serialize the whole pool: the ordered join\n\
             waits for every task.",
            "Waive with the bound: why the blocking call terminates promptly\n\
             (bounded input, local socket) or why stalling is acceptable.",
        ),
        _ => return None,
    };
    Some(format!(
        "{code}: {}\n\nrationale:\n{rationale}\n\nwaiver policy:\n{waiver}\n",
        describe(code)
    ))
}

/// How bad a finding is. Only non-allowlisted [`Severity::Error`]
/// findings fail the build; warnings are reported but never gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Worth knowing; does not fail CI.
    Warning,
    /// A real defect; fails CI unless allowlisted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding. `code` is stable across releases (SC0xx = policy
/// verifier, SC1xx = workspace linter) so allowlists and CI greps
/// never chase renames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable diagnostic code (`SC001`, `SC101`, ...).
    pub code: String,
    /// Error or warning.
    pub severity: Severity,
    /// Where: `path:line` for lints, rule/entry descriptor for policy.
    pub location: String,
    /// What and why, one line.
    pub message: String,
}

impl Diagnostic {
    /// Construct a finding.
    pub fn new(
        code: &str,
        severity: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code: code.to_string(),
            severity,
            location: location.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity, self.code, self.message, self.location
        )
    }
}

/// A finished run: every finding plus which ones the allowlist waived.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    /// Findings that count (not allowlisted).
    pub findings: Vec<Diagnostic>,
    /// Findings waived by `staticheck.toml`.
    pub allowed: Vec<Diagnostic>,
}

impl Report {
    /// Number of gating (error-severity, non-allowlisted) findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Exit code for a CI gate: zero only when no errors remain.
    pub fn exit_code(&self) -> i32 {
        if self.error_count() == 0 {
            0
        } else {
            1
        }
    }

    /// Human-readable rendering, one finding per line, summary last.
    pub fn render_text(&self) -> String {
        self.render_text_with(true)
    }

    /// Text rendering with warnings optionally elided (the summary line
    /// always carries the counts; `--json` always carries everything).
    pub fn render_text_with(&self, show_warnings: bool) -> String {
        let mut out = String::new();
        for d in &self.findings {
            if show_warnings || d.severity == Severity::Error {
                out.push_str(&d.to_string());
                out.push('\n');
            }
        }
        let warnings = self.findings.len() - self.error_count();
        if !show_warnings && warnings > 0 {
            out.push_str("(warnings elided; pass --warnings or --json to see them)\n");
        }
        let counts = self.counts_by_code();
        if !counts.is_empty() {
            let parts: Vec<String> = counts
                .iter()
                .map(|(code, n)| format!("{code}={n}"))
                .collect();
            out.push_str(&format!("per-check: {}\n", parts.join(" ")));
        }
        out.push_str(&format!(
            "staticheck: {} error(s), {} warning(s), {} allowlisted\n",
            self.error_count(),
            warnings,
            self.allowed.len()
        ));
        out
    }

    /// Finding counts per diagnostic code (allowlisted ones excluded),
    /// sorted by code — the `per-check:` summary line CI parses.
    pub fn counts_by_code(&self) -> BTreeMap<&str, usize> {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for d in &self.findings {
            *counts.entry(d.code.as_str()).or_default() += 1;
        }
        counts
    }

    /// JSON rendering (machine-readable CI artifact).
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.allowed.extend(other.allowed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_code_gates_on_errors_only() {
        let mut r = Report::default();
        r.findings
            .push(Diagnostic::new("SC004", Severity::Warning, "x", "warn"));
        assert_eq!(r.exit_code(), 0);
        r.findings
            .push(Diagnostic::new("SC001", Severity::Error, "y", "err"));
        assert_eq!(r.exit_code(), 1);
        assert_eq!(r.error_count(), 1);
    }

    #[test]
    fn text_rendering_mentions_code_and_location() {
        let mut r = Report::default();
        r.findings.push(Diagnostic::new(
            "SC002",
            Severity::Error,
            "rule 'a' vs rule 'b'",
            "contradictory actions",
        ));
        let text = r.render_text();
        assert!(text.contains("SC002"));
        assert!(text.contains("rule 'a' vs rule 'b'"));
        assert!(text.contains("1 error(s)"));
    }

    #[test]
    fn json_round_trips() {
        let mut r = Report::default();
        r.findings
            .push(Diagnostic::new("SC003", Severity::Error, "loc", "msg"));
        let parsed: Report = serde_json::from_str(&r.render_json()).unwrap();
        assert_eq!(parsed.findings, r.findings);
    }
}
