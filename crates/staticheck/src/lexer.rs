//! A small Rust lexer: turns source text into a line-numbered token
//! stream for the structural passes ([`crate::callgraph`],
//! [`crate::dataflow`]).
//!
//! No `syn`, no proc-macro expansion — the container is offline. The
//! lexer understands exactly what those passes need: identifiers,
//! punctuation, literals, and lifetimes, with comments discarded and
//! string/char contents opaque. Multi-character operators are left as
//! single punctuation tokens; the parser peeks at adjacent tokens when
//! it needs `::` or `->`.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident,
    /// One punctuation character (`{`, `.`, `<`, ...).
    Punct,
    /// String / byte-string literal. The text is kept (so the dataflow
    /// pass can see inline format captures like `"{ks:?}"`) but the
    /// token is structure-opaque: braces inside never nest.
    Str,
    /// Char literal (contents dropped).
    Char,
    /// Numeric literal (text kept, suffix included).
    Num,
    /// Lifetime (`'a`, text without the quote).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (literal contents for [`TokKind::Str`], empty for
    /// [`TokKind::Char`]).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] as char == c
    }
}

/// Lex `src` into tokens. Comments vanish; strings and chars survive as
/// opaque placeholder tokens so expression structure is preserved.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::with_capacity(n / 4);
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($from:expr, $to:expr) => {
            line += chars[$from..$to].iter().filter(|&&c| c == '\n').count() as u32
        };
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // line comment (also doc comments)
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // block comment, nested
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let mut level = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    level += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    level -= 1;
                    i += 2;
                    if level == 0 {
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            bump_lines!(start, i.min(n));
            continue;
        }
        // raw / byte strings: r"..", r#".."#, b"..", br#".."#
        if (c == 'r' || c == 'b') && raw_or_byte_string(&chars, i) {
            let start = i;
            // skip prefix letters
            while i < n && (chars[i] == 'r' || chars[i] == 'b') {
                i += 1;
            }
            let mut hashes = 0usize;
            while i < n && chars[i] == '#' {
                hashes += 1;
                i += 1;
            }
            i += 1; // opening quote
            while i < n {
                if chars[i] == '"' {
                    let mut k = i + 1;
                    let mut h = 0usize;
                    while k < n && chars[k] == '#' && h < hashes {
                        h += 1;
                        k += 1;
                    }
                    if h == hashes {
                        i = k;
                        break;
                    }
                }
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: chars[start..i.min(n)].iter().collect(),
                line,
            });
            bump_lines!(start, i.min(n));
            continue;
        }
        // plain string
        if c == '"' {
            let start = i;
            i += 1;
            while i < n {
                if chars[i] == '\\' {
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: chars[start..i.min(n)].iter().collect(),
                line,
            });
            bump_lines!(start, i.min(n));
            continue;
        }
        // char literal vs lifetime
        if c == '\'' {
            let is_char = if i + 1 < n && chars[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && chars[i + 2] == '\''
            };
            if is_char {
                i += 1;
                while i < n && chars[i] != '\'' {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1; // closing quote
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                continue;
            }
            // lifetime
            let mut j = i + 1;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Lifetime,
                text: chars[i + 1..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // number (suffixes and hex digits ride along; `..` stays punct)
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            if j < n && chars[j] == '.' && j + 1 < n && chars[j + 1].is_ascii_digit() {
                j += 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // identifier / keyword
        if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // single punctuation char
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// Does a raw/byte-string literal start at `i`? (`r"`, `r#`, `b"`,
/// `br"`, `br#`, `rb` is not a thing). Avoids eating identifiers that
/// merely start with `r`/`b`.
fn raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    let mut j = i;
    // at most `br` / `rb`-style two-letter prefix
    let mut letters = 0;
    while j < n && (chars[j] == 'r' || chars[j] == 'b') && letters < 2 {
        j += 1;
        letters += 1;
    }
    // identifier continues? then it's just an ident like `raw` or `buf`
    if j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
        return false;
    }
    let mut k = j;
    while k < n && chars[k] == '#' {
        k += 1;
    }
    k < n && chars[k] == '"' && (k > j || j > i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = "let x = \"a.unwrap()\"; // .unwrap()\n/* panic!() */ let y = 1;\n";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "let s = \"a\nb\nc\";\nfn f() {}\n";
        let toks = lex(src);
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("fn f<'a>(c: char) -> bool { c == '}' }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
        // the brace inside the char literal must not look like structure
        let opens = toks.iter().filter(|t| t.is_punct('{')).count();
        let closes = toks.iter().filter(|t| t.is_punct('}')).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn raw_strings_do_not_leak_tokens() {
        let ids = idents("let s = r#\"fn fake() { panic!() }\"#; let t = 2;");
        assert_eq!(ids, vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn numbers_keep_suffixes_and_ranges_split() {
        let toks = lex("for i in 0..10u32 {}");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10u32"]);
    }
}
