//! The `staticheck.toml` allowlist.
//!
//! Sanctioned exceptions live in one file at the repository root. The
//! container is offline and the workspace has no `toml` crate, so this
//! module parses the small TOML subset the allowlist needs:
//!
//! ```toml
//! [[allow]]
//! code = "SC101"
//! path = "crates/bgp-model/src/prefix.rs"
//! reason = "static bogon tables; a typo fails every test"
//! ```
//!
//! Keys: `code` (required), `path` (optional substring of the
//! diagnostic's location), `location` (optional second substring, e.g.
//! a line number), `reason` (required — undocumented waivers defeat
//! the point). Anything else in the file — comments, blank lines,
//! unrelated tables — is ignored.

use std::path::Path;

use crate::diag::Diagnostic;

/// One sanctioned exception.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// Diagnostic code this entry waives (exact match).
    pub code: String,
    /// Substring the diagnostic location must contain, if set.
    pub path: String,
    /// Second location substring (e.g. `:252`), if set.
    pub location: String,
    /// Why this exception is sanctioned.
    pub reason: String,
}

impl AllowEntry {
    /// Does this entry waive `d`?
    pub fn covers(&self, d: &Diagnostic) -> bool {
        if self.code != d.code {
            return false;
        }
        if !self.path.is_empty() && !d.location.contains(&self.path) {
            return false;
        }
        if !self.location.is_empty() && !d.location.contains(&self.location) {
            return false;
        }
        true
    }
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// All `[[allow]]` entries, in file order.
    pub entries: Vec<AllowEntry>,
}

/// A malformed allowlist file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AllowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "staticheck.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowError {}

impl Allowlist {
    /// Load from a file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Self, AllowError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(_) => Ok(Allowlist::default()),
        }
    }

    /// Parse allowlist text (the TOML subset described in the module doc).
    pub fn parse(text: &str) -> Result<Self, AllowError> {
        let mut entries = Vec::new();
        let mut current: Option<AllowEntry> = None;
        let mut in_allow = false;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line.starts_with("[[") || line.starts_with('[') {
                if let Some(e) = current.take() {
                    push_entry(e, lineno, &mut entries)?;
                }
                in_allow = line == "[[allow]]";
                if in_allow {
                    current = Some(AllowEntry::default());
                }
                continue;
            }
            if !in_allow {
                continue;
            }
            let Some((key, value)) = parse_kv(&line) else {
                return Err(AllowError {
                    line: lineno,
                    message: format!("expected `key = \"value\"`, got {line:?}"),
                });
            };
            let Some(e) = current.as_mut() else {
                continue;
            };
            match key.as_str() {
                "code" => e.code = value,
                "path" => e.path = value,
                "location" => e.location = value,
                "reason" => e.reason = value,
                other => {
                    return Err(AllowError {
                        line: lineno,
                        message: format!("unknown allowlist key {other:?}"),
                    });
                }
            }
        }
        if let Some(e) = current.take() {
            let last = text.lines().count();
            push_entry(e, last, &mut entries)?;
        }
        Ok(Allowlist { entries })
    }

    /// First entry covering `d`, if any.
    pub fn waiver(&self, d: &Diagnostic) -> Option<&AllowEntry> {
        self.entries.iter().find(|e| e.covers(d))
    }
}

fn push_entry(
    e: AllowEntry,
    lineno: usize,
    entries: &mut Vec<AllowEntry>,
) -> Result<(), AllowError> {
    if e.code.is_empty() {
        return Err(AllowError {
            line: lineno,
            message: "[[allow]] entry is missing `code`".to_string(),
        });
    }
    if e.reason.is_empty() {
        return Err(AllowError {
            line: lineno,
            message: format!("[[allow]] entry for {} is missing `reason`", e.code),
        });
    }
    // SC109 sanctions shared mutable state inside a parallel task; the
    // only acceptable justification is an argument that the final output
    // is deterministic anyway. Enforce at parse time so an undocumented
    // waiver cannot silently neuter the check.
    if e.code == "SC109" && !e.reason.to_ascii_lowercase().contains("determinis") {
        return Err(AllowError {
            line: lineno,
            message: format!(
                "[[allow]] entry for SC109 must make a determinism argument \
                 (reason {:?} never mentions determinism)",
                e.reason
            ),
        });
    }
    entries.push(e);
    Ok(())
}

/// Drop a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `key = "value"`.
fn parse_kv(line: &str) -> Option<(String, String)> {
    let (key, rest) = line.split_once('=')?;
    let value = rest.trim();
    let value = value.strip_prefix('"')?.strip_suffix('"')?;
    Some((key.trim().to_string(), value.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    const SAMPLE: &str = r#"
# staticheck allowlist
[[allow]]
code = "SC101"
path = "crates/bgp-model/src/prefix.rs"
reason = "static tables"   # trailing comment

[[allow]]
code = "SC102"
path = "crates/looking-glass/src/transport.rs"
location = ":40"
reason = "real-time transport"
"#;

    fn diag(code: &str, location: &str) -> Diagnostic {
        Diagnostic::new(code, Severity::Error, location, "m")
    }

    #[test]
    fn parses_and_matches() {
        let a = Allowlist::parse(SAMPLE).unwrap();
        assert_eq!(a.entries.len(), 2);
        assert!(a
            .waiver(&diag("SC101", "crates/bgp-model/src/prefix.rs:252"))
            .is_some());
        // wrong code
        assert!(a
            .waiver(&diag("SC103", "crates/bgp-model/src/prefix.rs:252"))
            .is_none());
        // wrong path
        assert!(a
            .waiver(&diag("SC101", "crates/obs/src/lib.rs:1"))
            .is_none());
        // location substring must match too
        assert!(a
            .waiver(&diag("SC102", "crates/looking-glass/src/transport.rs:40"))
            .is_some());
        assert!(a
            .waiver(&diag("SC102", "crates/looking-glass/src/transport.rs:99"))
            .is_none());
    }

    #[test]
    fn missing_reason_is_rejected() {
        let bad = "[[allow]]\ncode = \"SC101\"\n";
        assert!(Allowlist::parse(bad).is_err());
    }

    #[test]
    fn missing_code_is_rejected() {
        let bad = "[[allow]]\nreason = \"because\"\n";
        assert!(Allowlist::parse(bad).is_err());
    }

    #[test]
    fn missing_file_is_empty() {
        let a = Allowlist::load(Path::new("/nonexistent/staticheck.toml")).unwrap();
        assert!(a.entries.is_empty());
    }

    #[test]
    fn unknown_key_is_rejected() {
        let bad = "[[allow]]\ncode = \"SC101\"\nreason = \"r\"\nfoo = \"bar\"\n";
        assert!(Allowlist::parse(bad).is_err());
    }
}
