//! The `staticheck` command line: mode selection, fixture loading,
//! allowlist application, rendering, exit codes.
//!
//! ```text
//! staticheck [policy|lints|all] [--format text|json|sarif] [--json]
//!            [--warnings] [--root DIR] [--only PREFIX]
//!            [--fixture FILE.json] [--allowlist FILE.toml]
//!            [--no-allowlist]
//! ```
//!
//! Default mode is `all`. Without a fixture, `policy` verifies every
//! built-in IXP scheme (members unknown, so SC003 is skipped — the
//! per-scenario member set is checked by the `repro check` pre-flight)
//! and cross-checks the eight dictionaries against each other (SC006).
//! `lints` runs both the token-level linter (SC101–SC106) and the
//! dataflow pass (SC107/SC108).
//!
//! Exit codes: 0 = clean, 1 = non-allowlisted error-grade findings
//! remain, 2 = internal/IO error (the analysis did not complete).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;
use community_dict::dictionary::Dictionary;
use community_dict::entry::DictionaryEntry;
use community_dict::ixp::IxpId;
use route_server::config::RsConfig;
use route_server::rules::ImportRule;

use crate::allow::Allowlist;
use crate::diag::{Diagnostic, Report};
use crate::{cache, dataflow, diag, lints, policy, sarif};

/// A self-contained policy-verification scenario, loadable from JSON.
/// Used by the seeded-violation fixtures under `tests/fixtures/`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fixture {
    /// Which IXP's scheme to verify against.
    pub ixp: IxpId,
    /// Configured member ASNs; `None` skips SC003.
    #[serde(default)]
    pub members: Option<Vec<Asn>>,
    /// Import rules installed on the route server.
    #[serde(default)]
    pub rules: Vec<ImportRule>,
    /// Extra dictionary entries layered on top of the base.
    #[serde(default)]
    pub extra_entries: Vec<DictionaryEntry>,
    /// Verify against only `extra_entries` instead of the IXP's full
    /// scheme dictionary (keeps fixture expectations exact).
    #[serde(default)]
    pub empty_dict: bool,
    /// A second IXP whose dictionary (`drift_entries`) is cross-checked
    /// against this fixture's dictionary (SC006), when set.
    #[serde(default)]
    pub drift_ixp: Option<IxpId>,
    /// The second dictionary's entries for the SC006 cross-check.
    #[serde(default)]
    pub drift_entries: Vec<DictionaryEntry>,
}

impl Fixture {
    /// Run the policy verifier on this fixture.
    pub fn verify(&self) -> Vec<Diagnostic> {
        let config = RsConfig::for_ixp(self.ixp).with_import_rules(self.rules.clone());
        let mut entries = if self.empty_dict {
            Vec::new()
        } else {
            community_dict::schemes::dictionary(self.ixp)
                .entries()
                .to_vec()
        };
        entries.extend(self.extra_entries.iter().cloned());
        let dict = Dictionary::new(self.ixp, entries);
        let members: Option<BTreeSet<Asn>> =
            self.members.as_ref().map(|m| m.iter().copied().collect());
        let mut out = policy::verify(&config, &dict, members.as_ref());
        if let Some(other) = self.drift_ixp {
            let dicts = [dict, Dictionary::new(other, self.drift_entries.clone())];
            out.extend(policy::verify_cross_dictionaries(&dicts));
        }
        out
    }
}

/// Output format selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable, one finding per line.
    Text,
    /// The [`Report`] as JSON.
    Json,
    /// SARIF 2.1.0 (code-scanning artifact).
    Sarif,
}

/// Parsed command line.
#[derive(Debug, Clone)]
struct Options {
    mode: Mode,
    format: Format,
    warnings: bool,
    root: PathBuf,
    only: Option<String>,
    fixture: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    no_allowlist: bool,
    cache: Option<PathBuf>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Policy,
    Lints,
    All,
}

/// The workspace root baked in at compile time; `--root` overrides.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        mode: Mode::All,
        format: Format::Text,
        warnings: false,
        root: default_root(),
        only: None,
        fixture: None,
        allowlist: None,
        no_allowlist: false,
        cache: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "policy" => opts.mode = Mode::Policy,
            "lints" => opts.mode = Mode::Lints,
            "all" => opts.mode = Mode::All,
            "--json" => opts.format = Format::Json,
            "--format" => {
                let v = it.next().ok_or("--format needs text, json, or sarif")?;
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format {other:?}\n{USAGE}")),
                };
            }
            "--warnings" => opts.warnings = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(v);
            }
            "--only" => {
                let v = it.next().ok_or("--only needs a path prefix")?;
                opts.only = Some(v.clone());
            }
            "--fixture" => {
                let v = it.next().ok_or("--fixture needs a file")?;
                opts.fixture = Some(PathBuf::from(v));
            }
            "--allowlist" => {
                let v = it.next().ok_or("--allowlist needs a file")?;
                opts.allowlist = Some(PathBuf::from(v));
            }
            "--no-allowlist" => opts.no_allowlist = true,
            "--cache" => {
                let v = it.next().ok_or("--cache needs a file path")?;
                opts.cache = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

const USAGE: &str = "\
usage: staticheck [policy|lints|all] [options]

modes:
  policy           verify IXP schemes / a --fixture (SC001-SC006)
  lints            workspace lints + dataflow (SC101-SC108)
  all              both (default)

options:
  --format FMT     output format: text (default), json, or sarif
                   (SARIF 2.1.0, for CI artifacts and editors)
  --json           shorthand for --format json
  --warnings       include warning-grade findings in text output
  --root DIR       workspace root (default: this checkout)
  --only PREFIX    restrict lints/dataflow to files under PREFIX
                   (e.g. --only crates/staticheck/ for the self-lint)
  --fixture F.json verify a self-contained policy scenario
  --allowlist F    allowlist file (default: <root>/staticheck.toml)
  --no-allowlist   ignore the allowlist entirely
  --cache FILE     incremental cache (e.g. target/staticheck.cache):
                   unchanged files reuse cached findings, changed files
                   re-analyze with their reverse-callgraph cone; warm
                   output is byte-identical to a cold run
  --explain SCxxx  print the catalog entry for a diagnostic code
                   (rationale + waiver policy) and exit; unknown codes
                   exit 2

exit codes: 0 = clean, 1 = error-grade findings, 2 = internal error";

/// Policy findings for every built-in IXP scheme (members unknown),
/// plus the SC006 cross-dictionary drift check over all eight.
pub fn verify_builtin_schemes() -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut dicts = Vec::new();
    for ixp in IxpId::ALL {
        let config = RsConfig::for_ixp(ixp);
        let dict = community_dict::schemes::dictionary(ixp);
        out.extend(policy::verify(&config, &dict, None));
        dicts.push(dict);
    }
    out.extend(policy::verify_cross_dictionaries(&dicts));
    out
}

/// Run staticheck. Returns the process exit code; diagnostics go to
/// `stdout`, operational errors to `stderr`.
pub fn run(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return 0;
    }
    // `--explain SCxxx`: print the catalog entry and exit (2 on an
    // unknown code, so CI scripts notice typos)
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        let Some(code) = args.get(pos + 1) else {
            eprintln!("staticheck: --explain needs a diagnostic code (e.g. SC109)");
            return 2;
        };
        return match diag::explain(code) {
            Some(text) => {
                print!("{text}");
                0
            }
            None => {
                eprintln!("staticheck: unknown diagnostic code {code:?}");
                2
            }
        };
    }
    match run_captured(args) {
        Ok((report, output)) => {
            if let Some(stats) = &output.cache_stats {
                eprintln!("{stats}");
            }
            match output.format {
                Format::Json => println!("{}", report.render_json()),
                Format::Sarif => print!("{}", sarif::render_sarif(&report)),
                Format::Text => print!("{}", report.render_text_with(output.warnings)),
            }
            report.exit_code()
        }
        Err(msg) => {
            eprintln!("staticheck: {msg}");
            2
        }
    }
}

/// How [`run`] should print the report.
#[derive(Debug, Clone)]
pub struct OutputOpts {
    /// Selected output format.
    pub format: Format,
    /// Include warning-severity findings in text output.
    pub warnings: bool,
    /// Cache-hit statistics for stderr / the CI artifact, when the run
    /// used `--cache`.
    pub cache_stats: Option<String>,
}

/// The testable core of [`run`]: everything but printing and exiting.
pub fn run_captured(args: &[String]) -> Result<(Report, OutputOpts), String> {
    let opts = parse_args(args)?;

    // the allowlist loads before the engines: the dataflow pass treats
    // SC101-waived panic sites as sanctioned (they do not seed SC108)
    let allowlist = if opts.no_allowlist {
        Allowlist::default()
    } else {
        let path = opts
            .allowlist
            .clone()
            .unwrap_or_else(|| opts.root.join("staticheck.toml"));
        Allowlist::load(&path).map_err(|e| e.to_string())?
    };

    let mut findings = Vec::new();
    let mut cache_stats = None;
    if let (Some(cache_path), None) = (&opts.cache, &opts.fixture) {
        // the cached pipeline covers policy + lints + dataflow in one
        // pass; fixtures bypass it (their inputs live outside the tree)
        let allow_salt = if opts.no_allowlist {
            "no-allowlist".to_string()
        } else {
            cache::fnv_hex(format!("{:?}", allowlist.entries).as_bytes())
        };
        let shape = cache::RunShape {
            root: &opts.root,
            only: opts.only.as_deref(),
            run_policy: opts.mode != Mode::Lints,
            run_lints: opts.mode != Mode::Policy,
            allow_salt: &allow_salt,
        };
        let (cached, stats) =
            cache::analyze(&shape, &allowlist, cache_path, verify_builtin_schemes);
        findings = cached;
        cache_stats = Some(stats.render());
    } else {
        if opts.mode != Mode::Lints {
            match &opts.fixture {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read fixture {}: {e}", path.display()))?;
                    let fixture: Fixture = serde_json::from_str(&text)
                        .map_err(|e| format!("bad fixture {}: {e}", path.display()))?;
                    findings.extend(fixture.verify());
                }
                None => findings.extend(verify_builtin_schemes()),
            }
        }
        if opts.mode != Mode::Policy {
            let only = opts.only.as_deref();
            findings.extend(lints::lint_workspace(&opts.root, only));
            findings.extend(dataflow::analyze(&opts.root, &allowlist, only));
        }
    }

    let mut report = Report::default();
    for d in findings {
        if allowlist.waiver(&d).is_some() {
            report.allowed.push(d);
        } else {
            report.findings.push(d);
        }
    }
    Ok((
        report,
        OutputOpts {
            format: opts.format,
            warnings: opts.warnings,
            cache_stats,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn committed_tree_is_clean() {
        // the acceptance gate: `staticheck all` exits 0 on this repo
        let (report, _) = run_captured(&s(&["all"])).expect("run");
        assert_eq!(report.exit_code(), 0, "{}", report.render_text());
    }

    #[test]
    fn self_lint_is_clean_without_allowlist() {
        // the analyzer holds itself to its own rules, no waivers
        let (report, _) = run_captured(&s(&[
            "lints",
            "--only",
            "crates/staticheck/",
            "--no-allowlist",
        ]))
        .expect("run");
        assert_eq!(report.exit_code(), 0, "{}", report.render_text());
        assert!(report.allowed.is_empty());
    }

    #[test]
    fn unknown_argument_is_an_error() {
        assert!(run_captured(&s(&["--bogus"])).is_err());
        assert!(run_captured(&s(&["--format", "yaml"])).is_err());
    }

    #[test]
    fn output_flags_are_parsed() {
        let (_, out) = run_captured(&s(&["policy", "--json"])).expect("run");
        assert!(out.format == Format::Json && !out.warnings);
        let (_, out) = run_captured(&s(&["policy", "--warnings"])).expect("run");
        assert!(out.warnings && out.format == Format::Text);
        let (_, out) = run_captured(&s(&["policy", "--format", "sarif"])).expect("run");
        assert!(out.format == Format::Sarif);
    }

    #[test]
    fn sarif_output_renders_for_the_tree() {
        let (report, _) = run_captured(&s(&["policy", "--format", "sarif"])).expect("run");
        let doc = sarif::render_sarif(&report);
        serde_json::parse_value(&doc).expect("valid JSON");
        assert!(doc.contains("\"name\": \"staticheck\""));
    }

    #[test]
    fn fixture_round_trip() {
        let f = Fixture {
            ixp: IxpId::DeCixFra,
            members: Some(vec![Asn(64500)]),
            rules: Vec::new(),
            extra_entries: Vec::new(),
            empty_dict: true,
            drift_ixp: None,
            drift_entries: Vec::new(),
        };
        let text = serde_json::to_string(&f).expect("serialize");
        let back: Fixture = serde_json::from_str(&text).expect("parse");
        assert_eq!(back.ixp, IxpId::DeCixFra);
        assert!(back.empty_dict);
        assert!(back.verify().is_empty());
    }
}
