//! The `staticheck` command line: mode selection, fixture loading,
//! allowlist application, rendering, exit codes.
//!
//! ```text
//! staticheck [policy|lints|all] [--json] [--root DIR]
//!            [--fixture FILE.json] [--allowlist FILE.toml]
//! ```
//!
//! Default mode is `all`. Without a fixture, `policy` verifies every
//! built-in IXP scheme (members unknown, so SC003 is skipped — the
//! per-scenario member set is checked by the `repro check` pre-flight).
//! Exit code is nonzero iff any non-allowlisted error-severity finding
//! remains.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;
use community_dict::dictionary::Dictionary;
use community_dict::entry::DictionaryEntry;
use community_dict::ixp::IxpId;
use route_server::config::RsConfig;
use route_server::rules::ImportRule;

use crate::allow::Allowlist;
use crate::diag::{Diagnostic, Report};
use crate::{lints, policy};

/// A self-contained policy-verification scenario, loadable from JSON.
/// Used by the seeded-violation fixtures under `tests/fixtures/`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fixture {
    /// Which IXP's scheme to verify against.
    pub ixp: IxpId,
    /// Configured member ASNs; `None` skips SC003.
    #[serde(default)]
    pub members: Option<Vec<Asn>>,
    /// Import rules installed on the route server.
    #[serde(default)]
    pub rules: Vec<ImportRule>,
    /// Extra dictionary entries layered on top of the base.
    #[serde(default)]
    pub extra_entries: Vec<DictionaryEntry>,
    /// Verify against only `extra_entries` instead of the IXP's full
    /// scheme dictionary (keeps fixture expectations exact).
    #[serde(default)]
    pub empty_dict: bool,
}

impl Fixture {
    /// Run the policy verifier on this fixture.
    pub fn verify(&self) -> Vec<Diagnostic> {
        let config = RsConfig::for_ixp(self.ixp).with_import_rules(self.rules.clone());
        let mut entries = if self.empty_dict {
            Vec::new()
        } else {
            community_dict::schemes::dictionary(self.ixp)
                .entries()
                .to_vec()
        };
        entries.extend(self.extra_entries.iter().cloned());
        let dict = Dictionary::new(self.ixp, entries);
        let members: Option<BTreeSet<Asn>> =
            self.members.as_ref().map(|m| m.iter().copied().collect());
        policy::verify(&config, &dict, members.as_ref())
    }
}

/// Parsed command line.
#[derive(Debug, Clone)]
struct Options {
    mode: Mode,
    json: bool,
    warnings: bool,
    root: PathBuf,
    fixture: Option<PathBuf>,
    allowlist: Option<PathBuf>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Policy,
    Lints,
    All,
}

/// The workspace root baked in at compile time; `--root` overrides.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        mode: Mode::All,
        json: false,
        warnings: false,
        root: default_root(),
        fixture: None,
        allowlist: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "policy" => opts.mode = Mode::Policy,
            "lints" => opts.mode = Mode::Lints,
            "all" => opts.mode = Mode::All,
            "--json" => opts.json = true,
            "--warnings" => opts.warnings = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(v);
            }
            "--fixture" => {
                let v = it.next().ok_or("--fixture needs a file")?;
                opts.fixture = Some(PathBuf::from(v));
            }
            "--allowlist" => {
                let v = it.next().ok_or("--allowlist needs a file")?;
                opts.allowlist = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

const USAGE: &str = "usage: staticheck [policy|lints|all] [--json] \
[--warnings] [--root DIR] [--fixture FILE.json] [--allowlist FILE.toml]";

/// Policy findings for every built-in IXP scheme (members unknown).
pub fn verify_builtin_schemes() -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for ixp in IxpId::ALL {
        let config = RsConfig::for_ixp(ixp);
        let dict = community_dict::schemes::dictionary(ixp);
        out.extend(policy::verify(&config, &dict, None));
    }
    out
}

/// Run staticheck. Returns the process exit code; diagnostics go to
/// `stdout`, operational errors to `stderr`.
pub fn run(args: &[String]) -> i32 {
    match run_captured(args) {
        Ok((report, output)) => {
            if output.json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text_with(output.warnings));
            }
            report.exit_code()
        }
        Err(msg) => {
            eprintln!("staticheck: {msg}");
            2
        }
    }
}

/// How [`run`] should print the report.
#[derive(Debug, Clone, Copy)]
pub struct OutputOpts {
    /// Emit JSON instead of text.
    pub json: bool,
    /// Include warning-severity findings in text output.
    pub warnings: bool,
}

/// The testable core of [`run`]: everything but printing and exiting.
pub fn run_captured(args: &[String]) -> Result<(Report, OutputOpts), String> {
    let opts = parse_args(args)?;

    let mut findings = Vec::new();
    if opts.mode != Mode::Lints {
        match &opts.fixture {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read fixture {}: {e}", path.display()))?;
                let fixture: Fixture = serde_json::from_str(&text)
                    .map_err(|e| format!("bad fixture {}: {e}", path.display()))?;
                findings.extend(fixture.verify());
            }
            None => findings.extend(verify_builtin_schemes()),
        }
    }
    if opts.mode != Mode::Policy {
        findings.extend(lints::lint_workspace(&opts.root));
    }

    let allowlist_path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| opts.root.join("staticheck.toml"));
    let allowlist = Allowlist::load(&allowlist_path).map_err(|e| e.to_string())?;

    let mut report = Report::default();
    for d in findings {
        if allowlist.waiver(&d).is_some() {
            report.allowed.push(d);
        } else {
            report.findings.push(d);
        }
    }
    Ok((
        report,
        OutputOpts {
            json: opts.json,
            warnings: opts.warnings,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn committed_tree_is_clean() {
        // the acceptance gate: `staticheck all` exits 0 on this repo
        let (report, _) = run_captured(&s(&["all"])).expect("run");
        assert_eq!(report.exit_code(), 0, "{}", report.render_text());
    }

    #[test]
    fn unknown_argument_is_an_error() {
        assert!(run_captured(&s(&["--bogus"])).is_err());
    }

    #[test]
    fn output_flags_are_parsed() {
        let (_, out) = run_captured(&s(&["policy", "--json"])).expect("run");
        assert!(out.json && !out.warnings);
        let (_, out) = run_captured(&s(&["policy", "--warnings"])).expect("run");
        assert!(out.warnings && !out.json);
    }

    #[test]
    fn fixture_round_trip() {
        let f = Fixture {
            ixp: IxpId::DeCixFra,
            members: Some(vec![Asn(64500)]),
            rules: Vec::new(),
            extra_entries: Vec::new(),
            empty_dict: true,
        };
        let text = serde_json::to_string(&f).expect("serialize");
        let back: Fixture = serde_json::from_str(&text).expect("parse");
        assert_eq!(back.ixp, IxpId::DeCixFra);
        assert!(back.empty_dict);
        assert!(back.verify().is_empty());
    }
}
