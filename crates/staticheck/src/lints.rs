//! Engine 2: the workspace invariant linter.
//!
//! A deliberately lightweight line/token-level scanner over
//! `crates/*/src/**.rs` (plus the root crate's `src/`). No `syn`, no
//! network, no proc-macro expansion — the container is offline and the
//! invariants below are all visible at the token level once comments
//! and string contents are blanked out:
//!
//! * **SC101** — no `.unwrap()` / `.expect(` / `panic!` / `todo!` /
//!   `unimplemented!` in non-test library code (`src/bin/` and
//!   `#[cfg(test)]` regions are exempt);
//! * **SC102** — no `SystemTime::now` / `Instant::now` outside the
//!   `obs` crate (all clocks flow through instrumentation);
//! * **SC103** — no string-literal metric or span names outside `obs`:
//!   every minted name must come from the `obs::names` registry;
//! * **SC104** — the `obs::names` registry itself is self-consistent
//!   (every constant listed in `ALL`, no duplicate values, names follow
//!   the `dotted.lowercase` convention);
//! * **SC105** — no `std::thread::spawn` / `thread::scope` /
//!   `thread::Builder` outside the `par` executor and the looking-glass
//!   TCP transport: all data-parallel threading goes through the pool,
//!   whose ordered joins keep artifacts deterministic;
//! * **SC106** — no trace-context plumbing (`trace::capture` /
//!   `trace::attach_task` / `trace::adopt_wire`) outside `obs`, the
//!   `par` executor and the LG transport: task bodies get their trace
//!   parent from the pool, and hand-rolled attachment would fork the
//!   deterministic ID scheme the trace-equivalence oracle relies on.
//!
//! SC103/SC104 cover the trace names too: `obs::span!` mints both the
//! histogram and the trace span from the same `obs::names` constant,
//! and the registry check extends to dynamic families like
//! `par.task_ns/<site>` because those join existing registered names.
//!
//! The scanner first *cleans* each file: comment bodies and string
//! contents are replaced by spaces (quotes are kept so SC103 can still
//! see that a literal was passed), and `#[cfg(test)]` item bodies are
//! skipped via brace-depth tracking. This keeps every check a plain
//! substring scan on the cleaned text.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Severity};

/// Run every workspace lint rooted at the repository root. `only`
/// restricts scanning to files whose workspace-relative path starts
/// with it (the `--only` self-lint filter); the SC104 registry check
/// still runs against the full root.
pub fn lint_workspace(root: &Path, only: Option<&str>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let files = workspace_sources(root);
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        if only.is_some_and(|p| !rel.starts_with(p)) {
            continue;
        }
        lint_file(&rel, &text, &mut out);
    }
    check_names_registry(root, &mut out);
    out
}

/// All library sources under `crates/*/src/` and the root `src/`,
/// sorted for deterministic reports (shared with [`crate::dataflow`]).
pub(crate) fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for entry in crates.flatten() {
            collect_rs(&entry.path().join("src"), &mut files);
        }
    }
    collect_rs(&root.join("src"), &mut files);
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lint one cleaned file (shared with [`crate::cache`], which calls it
/// per changed file and reuses cached findings for the rest).
pub(crate) fn lint_file(rel: &str, text: &str, out: &mut Vec<Diagnostic>) {
    let cleaned = clean_source(text);
    let in_obs = rel.starts_with("crates/obs/");
    let in_bin = rel.contains("/src/bin/");
    // The only sanctioned thread-creation sites: the deterministic pool
    // itself, and the LG TCP transport's per-connection workers (request
    // serving is I/O concurrency, not data parallelism).
    let may_spawn =
        rel.starts_with("crates/par/") || rel == "crates/looking-glass/src/transport.rs";

    let mut depth: i32 = 0;
    let mut skip_above: Option<i32> = None; // inside #[cfg(test)] body
    let mut pending_test = false;

    for (i, line) in cleaned.lines().enumerate() {
        let lineno = i + 1;
        let lintable = skip_above.is_none() && !pending_test;
        if line.contains("#[cfg(test)]") {
            pending_test = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_test && skip_above.is_none() {
                        skip_above = Some(depth);
                        pending_test = false;
                    }
                }
                '}' => {
                    if skip_above == Some(depth) {
                        skip_above = None;
                    }
                    depth -= 1;
                }
                ';' if pending_test && skip_above.is_none() => {
                    // `#[cfg(test)] mod tests;` — body lives elsewhere
                    pending_test = false;
                }
                _ => {}
            }
        }
        if !lintable {
            continue;
        }
        if !in_bin {
            check_panic_free(rel, lineno, line, out);
        }
        if !in_obs {
            check_clock_free(rel, lineno, line, out);
            check_metric_names(rel, lineno, line, out);
        }
        if !may_spawn {
            check_thread_free(rel, lineno, line, out);
        }
        if !may_spawn && !in_obs {
            check_trace_context(rel, lineno, line, out);
        }
    }
}

/// SC101: panicking constructs in library code.
fn check_panic_free(rel: &str, lineno: usize, line: &str, out: &mut Vec<Diagnostic>) {
    // needles are split so staticheck's own source does not trip them
    const NEEDLES: [(&str, &str); 5] = [
        (".unwrap()", "unwrap"),
        (".expect(", "expect"),
        ("panic!(", "panic!"),
        ("todo!(", "todo!"),
        ("unimplemented!(", "unimplemented!"),
    ];
    for (needle, what) in NEEDLES {
        if let Some(col) = line.find(needle) {
            // `core::panic!` etc. still match; `#[should_panic(` must not
            if what == "panic!" && line[..col].ends_with("should_") {
                continue;
            }
            out.push(Diagnostic::new(
                "SC101",
                Severity::Error,
                format!("{rel}:{lineno}"),
                format!(
                    "`{what}` in library code: propagate the error or add an \
                     allowlist entry with a reason"
                ),
            ));
        }
    }
}

/// SC102: raw clock reads outside `obs`.
fn check_clock_free(rel: &str, lineno: usize, line: &str, out: &mut Vec<Diagnostic>) {
    for needle in ["SystemTime::now", "Instant::now"] {
        if line.contains(needle) {
            out.push(Diagnostic::new(
                "SC102",
                Severity::Error,
                format!("{rel}:{lineno}"),
                format!("`{needle}` outside the obs crate: time must flow through instrumentation"),
            ));
        }
    }
}

/// SC105: raw thread creation outside the `par` pool (and the LG TCP
/// transport). Ad-hoc threads bypass the ordered-join determinism
/// argument and the pool's telemetry.
fn check_thread_free(rel: &str, lineno: usize, line: &str, out: &mut Vec<Diagnostic>) {
    for needle in ["thread::spawn(", "thread::scope(", "thread::Builder"] {
        if line.contains(needle) {
            out.push(Diagnostic::new(
                "SC105",
                Severity::Error,
                format!("{rel}:{lineno}"),
                format!(
                    "`{needle}` outside crates/par: route data parallelism \
                     through par::map_indexed so joins stay ordered"
                ),
            ));
        }
    }
}

/// SC106: trace-context plumbing outside `obs`, the `par` pool and the
/// LG transport. `obs::span!` inside a task body already parents to the
/// submitting span via the context the pool attached; calling the
/// attachment API directly would graft spans onto the wrong parent and
/// break the byte-identical trace-tree oracle.
fn check_trace_context(rel: &str, lineno: usize, line: &str, out: &mut Vec<Diagnostic>) {
    for needle in [
        "trace::capture(",
        "trace::attach_task(",
        "trace::adopt_wire(",
    ] {
        if line.contains(needle) {
            out.push(Diagnostic::new(
                "SC106",
                Severity::Error,
                format!("{rel}:{lineno}"),
                format!(
                    "`{needle}` outside the trace plumbing: open spans with \
                     obs::span! and let par/looking-glass carry the context"
                ),
            ));
        }
    }
}

/// SC103: string-literal metric/span names outside `obs`.
fn check_metric_names(rel: &str, lineno: usize, line: &str, out: &mut Vec<Diagnostic>) {
    const MINTS: [&str; 5] = [".counter(", ".gauge(", ".histogram(", ".span(", "span!("];
    for mint in MINTS {
        let Some(pos) = line.find(mint) else {
            continue;
        };
        // a quote right after the call site means a literal name was
        // passed instead of an `obs::names` constant
        let rest = &line[pos + mint.len()..];
        let arg_is_literal = rest.trim_start().starts_with('"');
        if arg_is_literal {
            out.push(Diagnostic::new(
                "SC103",
                Severity::Error,
                format!("{rel}:{lineno}"),
                format!(
                    "string-literal metric name passed to `{}`: use a \
                     constant from obs::names",
                    mint.trim_start_matches('.').trim_end_matches('(')
                ),
            ));
        }
    }
}

/// SC104: the `obs::names` registry is self-consistent. Parses the raw
/// source of `crates/obs/src/names.rs` — the registry is the one place
/// literals are allowed, so it gets its own structural check.
pub(crate) fn check_names_registry(root: &Path, out: &mut Vec<Diagnostic>) {
    let path = root.join("crates/obs/src/names.rs");
    let rel = "crates/obs/src/names.rs";
    let Ok(text) = std::fs::read_to_string(&path) else {
        out.push(Diagnostic::new(
            "SC104",
            Severity::Error,
            rel,
            "obs::names registry source not found",
        ));
        return;
    };
    // `pub const NAME: &str = "value";`
    let mut consts: Vec<(usize, String, String)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix("pub const ") else {
            continue;
        };
        let Some((ident, tail)) = rest.split_once(':') else {
            continue;
        };
        let tail = tail.trim_start();
        let Some(value_part) = tail.strip_prefix("&str = \"") else {
            continue; // ALL / DYNAMIC_PREFIXES have other types
        };
        let Some(value) = value_part.split('"').next() else {
            continue;
        };
        consts.push((i + 1, ident.trim().to_string(), value.to_string()));
    }
    if consts.is_empty() {
        out.push(Diagnostic::new(
            "SC104",
            Severity::Error,
            rel,
            "no `pub const NAME: &str` entries found in obs::names",
        ));
        return;
    }
    // the ALL block: identifiers between `pub const ALL` and `];`
    let all_block: String = text
        .lines()
        .skip_while(|l| !l.contains("pub const ALL"))
        .take_while(|l| !l.trim_end().ends_with("];"))
        .collect::<Vec<_>>()
        .join("\n");
    for (lineno, ident, value) in &consts {
        if !all_block.contains(ident.as_str()) {
            out.push(Diagnostic::new(
                "SC104",
                Severity::Error,
                format!("{rel}:{lineno}"),
                format!("metric name constant `{ident}` is not listed in obs::names::ALL"),
            ));
        }
        let well_formed = !value.is_empty()
            && value
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
            && !value.starts_with('.')
            && !value.ends_with('.');
        if !well_formed {
            out.push(Diagnostic::new(
                "SC104",
                Severity::Error,
                format!("{rel}:{lineno}"),
                format!("metric name {value:?} violates the dotted.lowercase convention"),
            ));
        }
    }
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for (lineno, ident, value) in &consts {
        if let Some(first) = seen.insert(value.as_str(), *lineno) {
            out.push(Diagnostic::new(
                "SC104",
                Severity::Error,
                format!("{rel}:{lineno}"),
                format!(
                    "metric name {value:?} (`{ident}`) duplicates the constant \
                     on line {first}"
                ),
            ));
        }
    }
}

// --- source cleaning ----------------------------------------------------

/// Replace comment bodies and string contents with spaces, preserving
/// line structure and the quotes themselves. Handles line and block
/// comments (nested), plain and raw strings, and char literals vs
/// lifetimes.
pub fn clean_source(text: &str) -> String {
    let bytes: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    let n = bytes.len();

    let keep = |out: &mut String, c: char| out.push(c);
    let blank = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });

    while i < n {
        let c = bytes[i];
        // line comment
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            while i < n && bytes[i] != '\n' {
                blank(&mut out, bytes[i]);
                i += 1;
            }
            continue;
        }
        // block comment (nested)
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let mut level = 0usize;
            while i < n {
                if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    level += 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    level -= 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                    if level == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // raw string r"..." / r#"..."#
        if c == 'r' && i + 1 < n && (bytes[i + 1] == '"' || bytes[i + 1] == '#') {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while j < n && bytes[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && bytes[j] == '"' {
                keep(&mut out, 'r');
                for _ in 0..hashes {
                    keep(&mut out, '#');
                }
                keep(&mut out, '"');
                i = j + 1;
                // scan to closing `"###`
                'raw: while i < n {
                    if bytes[i] == '"' {
                        let mut k = i + 1;
                        let mut h = 0usize;
                        while k < n && bytes[k] == '#' && h < hashes {
                            h += 1;
                            k += 1;
                        }
                        if h == hashes {
                            keep(&mut out, '"');
                            for _ in 0..hashes {
                                keep(&mut out, '#');
                            }
                            i = k;
                            break 'raw;
                        }
                    }
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
                continue;
            }
            // not a raw string after all — fall through
        }
        // plain string
        if c == '"' {
            keep(&mut out, '"');
            i += 1;
            while i < n {
                if bytes[i] == '\\' && i + 1 < n {
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                    continue;
                }
                if bytes[i] == '"' {
                    keep(&mut out, '"');
                    i += 1;
                    break;
                }
                blank(&mut out, bytes[i]);
                i += 1;
            }
            continue;
        }
        // char literal vs lifetime
        if c == '\'' {
            let is_char = if i + 1 < n && bytes[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && bytes[i + 2] == '\''
            };
            if is_char {
                keep(&mut out, '\'');
                i += 1;
                while i < n && bytes[i] != '\'' {
                    if bytes[i] == '\\' {
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                    if i < n {
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                }
                if i < n {
                    keep(&mut out, '\'');
                    i += 1;
                }
                continue;
            }
            // lifetime: keep as-is
        }
        keep(&mut out, c);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_text(rel: &str, text: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        lint_file(rel, text, &mut out);
        out
    }

    #[test]
    fn clean_blanks_comments_and_strings() {
        let src = "let x = \"a.unwrap()\"; // .unwrap()\nlet y = 1;\n";
        let cleaned = clean_source(src);
        assert!(!cleaned.contains("unwrap"));
        assert!(cleaned.contains("let y = 1;"));
        assert_eq!(cleaned.lines().count(), src.lines().count());
    }

    #[test]
    fn clean_handles_char_literals_and_lifetimes() {
        let src = "fn f<'a>(c: char) -> bool { c == '\"' }\nlet s = \"x.unwrap()\";\n";
        let cleaned = clean_source(src);
        assert!(!cleaned.contains("unwrap"));
        assert!(cleaned.contains("fn f<'a>"));
    }

    #[test]
    fn clean_handles_raw_strings() {
        let src = "let s = r#\"no .unwrap() here\"#;\nlet t = 2;\n";
        let cleaned = clean_source(src);
        assert!(!cleaned.contains("unwrap"));
        assert!(cleaned.contains("let t = 2;"));
    }

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let diags = lint_text("crates/x/src/lib.rs", "fn f() { y.unwrap(); }\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SC101");
        assert_eq!(diags[0].location, "crates/x/src/lib.rs:1");
    }

    #[test]
    fn unwrap_in_cfg_test_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { y.unwrap(); }\n}\n";
        assert!(lint_text("crates/x/src/lib.rs", src).is_empty());
        // ...but code after the test module is linted again
        let src2 = format!("{src}fn h() {{ z.expect(\"boom\"); }}\n");
        let diags = lint_text("crates/x/src/lib.rs", &src2);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("expect"));
    }

    #[test]
    fn bins_are_exempt_from_sc101_only() {
        let src = "fn main() { y.unwrap(); let t = std::time::Instant::now(); }\n";
        let diags = lint_text("crates/x/src/bin/tool.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SC102");
    }

    #[test]
    fn should_panic_attr_is_not_flagged() {
        let src = "#[should_panic(expected = \"x\")]\nfn f() {}\n";
        assert!(lint_text("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn clock_reads_flagged_outside_obs_only() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let diags = lint_text("crates/route-server/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SC102");
        assert!(lint_text("crates/obs/src/clock.rs", src).is_empty());
    }

    #[test]
    fn literal_metric_names_flagged_outside_obs() {
        let src = "let c = registry.counter(\"rs.x\");\nlet s = obs::span!(\"sim.y\");\n";
        let diags = lint_text("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == "SC103"));
        // constants are fine
        let ok = "let c = registry.counter(obs::names::RS_X);\n";
        assert!(lint_text("crates/x/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn thread_spawn_flagged_outside_par() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let diags = lint_text("crates/analysis/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SC105");
        // sanctioned sites: the pool and the LG TCP transport
        assert!(lint_text("crates/par/src/lib.rs", src).is_empty());
        assert!(lint_text("crates/looking-glass/src/transport.rs", src).is_empty());
        // ...but the rest of looking-glass is not exempt
        assert_eq!(
            lint_text("crates/looking-glass/src/server.rs", src).len(),
            1
        );
        // scoped threads and builders count too
        let scoped = "fn f() { std::thread::scope(|s| {}); }\n";
        assert_eq!(lint_text("crates/x/src/lib.rs", scoped)[0].code, "SC105");
        // test code is exempt like the other lints
        let test_src = "#[cfg(test)]\nmod tests {\n fn g() { std::thread::spawn(|| {}); }\n}\n";
        assert!(lint_text("crates/x/src/lib.rs", test_src).is_empty());
    }

    #[test]
    fn trace_context_flagged_outside_plumbing() {
        let src = "fn f() { let p = obs::trace::capture(); }\n";
        let diags = lint_text("crates/analysis/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SC106");
        // sanctioned sites: obs itself, the pool, the LG transport
        assert!(lint_text("crates/obs/src/trace.rs", src).is_empty());
        assert!(lint_text("crates/par/src/lib.rs", src).is_empty());
        assert!(lint_text("crates/looking-glass/src/transport.rs", src).is_empty());
        // attach/adopt count too
        let attach = "fn f() { let _g = obs::trace::attach_task(None, 0); }\n";
        assert_eq!(lint_text("crates/x/src/lib.rs", attach)[0].code, "SC106");
        let adopt = "fn f() { let _g = obs::trace::adopt_wire(ctx); }\n";
        assert_eq!(lint_text("crates/x/src/lib.rs", adopt)[0].code, "SC106");
        // test modules are exempt like the other lints
        let test_src = "#[cfg(test)]\nmod tests {\n fn g() { let p = obs::trace::capture(); }\n}\n";
        assert!(lint_text("crates/x/src/lib.rs", test_src).is_empty());
    }

    #[test]
    fn registry_check_passes_on_this_workspace() {
        // walk up from the staticheck manifest to the workspace root
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let mut out = Vec::new();
        check_names_registry(root, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
