//! Static analysis for the IXP action-community workspace: a policy
//! verifier, a workspace invariant linter, and an interprocedural
//! dataflow pass behind one binary, wired into CI (`scripts/ci.sh`).
//!
//! ```text
//! cargo run -p staticheck -- [policy|lints|all] [--format text|json|sarif]
//! ```
//!
//! # Engine 1: the policy verifier ([`policy`])
//!
//! Consumes a [`route_server::config::RsConfig`] and a
//! [`community_dict::dictionary::Dictionary`] — configuration only, no
//! simulation — and reports defects a run would only surface late, if
//! at all:
//!
//! | code  | finding |
//! |-------|---------|
//! | SC001 | shadowed import rule: can never match |
//! | SC002 | contradictory actions on intersecting matchers |
//! | SC003 | action target has no session at the RS (statically ineffective) |
//! | SC004 | two dictionary patterns give one community value two meanings |
//! | SC005 | applied import-rule action that can never take effect |
//! | SC006 | cross-dictionary drift: one pattern, conflicting actions |
//!
//! # The range-intersection model behind SC001/SC004
//!
//! Both checks reduce "can these two matchers/patterns ever apply to the
//! same input?" to interval arithmetic, which makes them exact rather
//! than heuristic:
//!
//! * A community [`Pattern`](community_dict::pattern::Pattern) fixes its
//!   high 16 bits and constrains the low 16 bits to an interval:
//!   `Exact(h:l)` ↦ `[l, l]`, `h:<peer-as>` ↦ `[0, 65535]`, and
//!   `h:[lo..=hi]` ↦ `[lo, hi]`. Two patterns overlap iff their highs
//!   are equal and their low intervals intersect; pattern *A* covers
//!   pattern *B* iff additionally *B*'s interval is contained in *A*'s.
//!   SC004 walks all same-high entry pairs, intersects their intervals,
//!   and then — because overlap alone is not ambiguity — samples witness
//!   values from the overlap and compares what each entry *resolves* to
//!   there. Agreeing semantics (an exact entry documenting what a
//!   template already means) are redundancy, not ambiguity, and stay
//!   silent; disagreeing semantics are an error for partial/equal
//!   overlap and a warning for strict containment, where the
//!   specificity precedence (exact > range > template) already picks a
//!   deterministic winner.
//!
//! * An import rule matcher is a product of four independent dimensions
//!   (AFI, prefix length, peer, community), each either unconstrained
//!   or an exact value — except prefix length, which is an interval.
//!   Rule *i* covers rule *j* iff it covers it in every dimension, so a
//!   rule is dead (SC001) when a single earlier rule covers it, or when
//!   the earlier rules that cover it in all *other* dimensions have
//!   prefix-length intervals whose sorted, merged union contains its
//!   interval. The union step matters: `len 0–20` followed by
//!   `len 21–128` jointly shadow a later catch-all even though neither
//!   alone does.
//!
//! SC003 is the static half of the paper's §5.5 effectiveness question:
//! an action targeting an AS with no RS session can never influence
//! export. The same member-set intersection is exposed as
//! [`policy::ineffective_targets`] so the dynamic audit
//! (`examples/ineffective_audit.rs`) can cross-check its simulated
//! result against the static prediction — the two must agree exactly.
//!
//! # Engine 2: the workspace linter ([`lints`])
//!
//! A token-level scanner (no `syn`; the container is offline) over
//! `crates/*/src/**.rs` enforcing: SC101 no panicking constructs in
//! library code, SC102 no raw clock reads outside `obs`, SC103 every
//! minted metric/span name comes from the `obs::names` registry, SC104
//! the registry itself is consistent, SC105 no raw thread creation
//! outside the `par` pool (and the looking-glass TCP transport), SC106
//! no trace-context plumbing outside its sanctioned crates.
//!
//! # Engine 3: the dataflow pass ([`dataflow`])
//!
//! Interprocedural analyses over a workspace call graph built by the
//! zero-dependency [`lexer`] + [`callgraph`] layers: SC107 flags
//! `HashMap`/`HashSet` iteration order reaching serialized output
//! without an intervening sort (with the call chain named in the
//! diagnostic), SC108 reports public functions that can reach a panic
//! through the call graph. The call graph models closures as anonymous
//! functions with capture lists, which powers the concurrency-safety
//! engine ([`concurrency`]): SC109 interior mutability reachable from a
//! par-task closure, SC110 inconsistent lock-acquisition order, SC111
//! `Ordering::Relaxed` values flowing into serialized output, SC112
//! blocking calls in par tasks without a deadline. Design notes and
//! accepted blind spots live in the module docs and TESTING.md.
//!
//! Sanctioned exceptions live in `staticheck.toml` at the repo root
//! ([`allow`]); every entry needs a reason. Output renders as text,
//! JSON, or SARIF 2.1.0 ([`sarif`]). Exit status: 0 clean, 1
//! non-allowlisted error-grade findings, 2 internal error.

#![forbid(unsafe_code)]

pub mod allow;
pub mod cache;
pub mod callgraph;
pub mod cli;
pub mod concurrency;
pub mod dataflow;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod policy;
pub mod sarif;

pub use allow::{AllowEntry, Allowlist};
pub use diag::{Diagnostic, Report, Severity};
