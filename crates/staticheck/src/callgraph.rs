//! Item/brace-structure parsing and the workspace call graph.
//!
//! Built on [`crate::lexer`]: each file's token stream is walked once,
//! recognizing `fn` items (through `mod`/`impl`/`trait` nesting, with
//! `#[cfg(test)]` and `#[test]` regions dropped), recording per function
//! its visibility, parameter types, call sites, and panic sites, plus
//! per struct which fields hold `HashMap`/`HashSet` or an
//! interior-mutability type (`RefCell`, `Mutex`, `Atomic*`, ...). The
//! per-file symbol tables are then stitched into a [`CallGraph`] whose
//! edges resolve call sites to workspace functions **by name** — a
//! deliberate over-approximation (no type-directed method resolution
//! without `syn`), kept useful by a stoplist of ubiquitous std method
//! names that would otherwise wire everything to everything.
//!
//! # Closures are anonymous functions
//!
//! A closure literal (`|args| body`, `move || body`) is parsed into its
//! own [`FnDef`] named `{closure@<line>}`, with:
//! * a **capture list** — free identifiers in the closure body resolved
//!   against the enclosing function's parameters and `let`-bound locals
//!   (`self` included);
//! * a **`passed_to` edge** — the callee the closure literal is an
//!   argument of (`map_indexed`, `thread::scope(..)`, `spawn`, ...),
//!   found by walking back over unbalanced parens from the literal;
//! * a synthetic call edge *enclosing function → closure*, so every
//!   reachability query walks through closure bodies.
//!
//! The concurrency pass ([`crate::concurrency`]) keys off `passed_to`
//! to identify *par-task closures*: task bodies handed to the `par`
//! pool, a `thread::scope`, or a spawned handler thread.
//!
//! Accepted blind spots (documented in TESTING.md): captures that only
//! occur as method-call *receivers of path segments* (`a.b.c()` only
//! captures `a`), captures of function items passed as values, and
//! trait-object indirection (calls through `dyn Trait` resolve by bare
//! method name like every other method call).
//!
//! Reachability queries drive the dataflow lints:
//! * *sink-reaching* — can this function reach serialized output,
//!   digests, or metrics (SC107's interprocedural half, SC111's sinks);
//! * *panic-reaching* — can a public entry point reach a panic site
//!   (SC108), with the witness call chain;
//! * *IM-/blocking-reaching* — can a par-task closure reach interior
//!   mutability (SC109) or a blocking call (SC112).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Tok, TokKind};

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name; macros carry a trailing `!` (`writeln!`).
    pub callee: String,
    /// Last path segment before the name for `qual::name(...)` calls
    /// (`serde_json::to_string` → `Some("serde_json")`).
    pub qualifier: Option<String>,
    /// `recv.name(...)` rather than `name(...)`.
    pub is_method: bool,
    /// 1-based source line.
    pub line: u32,
}

/// One panic site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// What panics (`unwrap`, `expect`, `panic!`, ...).
    pub what: String,
    /// 1-based source line.
    pub line: u32,
}

/// One parsed function, method, or closure literal.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (no path; resolution is by name). Closures are named
    /// `{closure@<line>}` and never participate in name resolution.
    pub name: String,
    /// 1-based line of the `fn` keyword (or the closure's first `|`).
    pub line: u32,
    /// Unrestricted `pub` (not `pub(crate)` etc.).
    pub is_pub: bool,
    /// `Some(TypeName)` when defined inside `impl TypeName` (or
    /// `impl Trait for TypeName`).
    pub self_type: Option<String>,
    /// Token range of the body in the file stream: `(open, close)`
    /// indices of the braces; `open == close` means no body. The scan
    /// range is `body.0 + 1 .. body.1`; expression-bodied closures use
    /// synthetic indices keeping that convention.
    pub body: (usize, usize),
    /// All parameter names, `self` included when present.
    pub params: Vec<String>,
    /// Parameter names whose declared type mentions `HashMap`/`HashSet`.
    pub hash_params: Vec<String>,
    /// `let`-bound local names (simple bindings only; destructuring
    /// patterns and `match` arms are accepted blind spots).
    pub locals: Vec<String>,
    /// Everything this body calls (nested closure regions excluded —
    /// those calls belong to the closure's own def).
    pub calls: Vec<CallSite>,
    /// Panicking constructs in this body (SC101's needles, token-exact).
    pub panics: Vec<PanicSite>,
    /// True for closure literals parsed as anonymous functions.
    pub is_closure: bool,
    /// For closures: the callee this literal is an argument of
    /// (`map_indexed`, `scope`, `spawn`, ...), found by walking back
    /// over unbalanced parens to the enclosing call.
    pub passed_to: Option<String>,
    /// For closures: free identifiers in the body resolved against the
    /// enclosing scope (params + locals visible at the closure site).
    pub captures: Vec<String>,
    /// For closures: local index (into the file's `fns`) of the
    /// enclosing named function. Nested closures attach flat to it.
    pub encl: Option<usize>,
}

/// The symbol table of one source file.
#[derive(Debug, Default)]
pub struct FileSyms {
    /// Workspace-relative path (`crates/x/src/lib.rs`).
    pub rel: String,
    /// The full token stream (bodies index into it).
    pub toks: Vec<Tok>,
    /// Functions found (test regions excluded).
    pub fns: Vec<FnDef>,
    /// `(struct, field)` pairs whose type mentions `HashMap`/`HashSet`.
    pub hash_fields: BTreeSet<(String, String)>,
    /// `(struct, field, type)` triples whose field type is an
    /// interior-mutability container (`RefCell`, `Mutex`, `Atomic*`, ...).
    pub im_fields: BTreeSet<(String, String, String)>,
    /// `(name, type)` for module-level interior-mutability statics:
    /// `static mut` items (type `"static mut"`), IM-typed statics, and
    /// `thread_local!` inner statics (type `"thread_local"`).
    pub im_statics: BTreeSet<(String, String)>,
}

/// Interior-mutability type names — SC109's seeds. `static mut` and
/// `thread_local!` are recognized structurally, not by type name.
pub fn im_type(id: &str) -> bool {
    matches!(
        id,
        "RefCell" | "Cell" | "UnsafeCell" | "Mutex" | "RwLock" | "Condvar"
    ) || id.starts_with("Atomic")
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: [&str; 11] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "fn",
];

/// Ubiquitous std method/function names excluded from call-graph edges:
/// resolving `x.get(...)` to some workspace `get` would wire unrelated
/// code together and drown both reachability queries in noise.
const EDGE_STOPLIST: [&str; 58] = [
    "new",
    "default",
    "clone",
    "insert",
    "get",
    "get_mut",
    "get_or_insert_with",
    "push",
    "pop",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "extend",
    "contains",
    "contains_key",
    "remove",
    "entry",
    "or_default",
    "or_insert",
    "or_insert_with",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "min",
    "max",
    "cmp",
    "eq",
    "ne",
    "fmt",
    "from",
    "into",
    "to_owned",
    "as_str",
    "as_ref",
    "as_bytes",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "filter",
    "fold",
    "any",
    "all",
    "find",
    "position",
    "keys",
    "values",
    "drain",
    "clear",
    "with_capacity",
];

/// Parse one file into its symbol table.
pub fn parse_file(rel: &str, src: &str) -> FileSyms {
    let toks = lex(src);
    let mut syms = FileSyms {
        rel: rel.to_string(),
        toks,
        ..FileSyms::default()
    };
    let end = syms.toks.len();
    let mut p = Parser { syms: &mut syms };
    p.items(0, end, None);
    syms
}

struct Parser<'a> {
    syms: &'a mut FileSyms,
}

impl Parser<'_> {
    fn tok(&self, i: usize) -> Option<&Tok> {
        self.syms.toks.get(i)
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.tok(i).is_some_and(|t| t.is_ident(s))
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(c))
    }

    fn ident_text(&self, i: usize) -> Option<&str> {
        self.tok(i).and_then(|t| {
            if t.kind == TokKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            }
        })
    }

    /// Index just past the delimiter-balanced group opening at `i`
    /// (`toks[i]` must be `{`, `(`, or `[`).
    fn skip_balanced(&self, i: usize) -> usize {
        let (open, close) = match self.tok(i) {
            Some(t) if t.is_punct('{') => ('{', '}'),
            Some(t) if t.is_punct('(') => ('(', ')'),
            Some(t) if t.is_punct('[') => ('[', ']'),
            _ => return i + 1,
        };
        let mut depth = 0i32;
        let mut j = i;
        while let Some(t) = self.tok(j) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        j
    }

    /// Index just past a generic parameter list opening at `i` (`<`).
    /// `->` arrows inside bounds must not close the list.
    fn skip_generics(&self, i: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while let Some(t) = self.tok(j) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                if j > 0 && self.is_punct(j - 1, '-') {
                    // `->` arrow, not a close
                } else {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                j = self.skip_balanced(j);
                continue;
            }
            j += 1;
        }
        j
    }

    /// Parse an attribute opening at `i` (the `#`). Returns
    /// `(next_index, is_test_attr)`.
    fn attr(&self, i: usize) -> (usize, bool) {
        let mut j = i + 1;
        let inner = self.is_punct(j, '!');
        if inner {
            j += 1;
        }
        if !self.is_punct(j, '[') {
            return (i + 1, false);
        }
        let end = self.skip_balanced(j);
        if inner {
            return (end, false);
        }
        let idents: Vec<&str> = self.syms.toks[j..end]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        // `#[test]` / `#[cfg(test)]`, but not `#[cfg(not(test))]`
        let is_test = idents == ["test"]
            || (idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not"));
        (end, is_test)
    }

    /// Parse items in `[i, end)`; `self_type` is the enclosing impl's
    /// type, if any.
    fn items(&mut self, mut i: usize, end: usize, self_type: Option<&str>) {
        let mut pending_pub = false;
        let mut pending_test = false;
        while i < end {
            let Some(t) = self.tok(i) else { break };
            if t.is_punct('#') {
                let (next, is_test) = self.attr(i);
                pending_test |= is_test;
                i = next;
                continue;
            }
            if t.kind != TokKind::Ident {
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    i = self.skip_balanced(i);
                } else {
                    i += 1;
                }
                continue;
            }
            match t.text.as_str() {
                "pub" => {
                    if self.is_punct(i + 1, '(') {
                        // pub(crate) etc.: restricted, not public API
                        i = self.skip_balanced(i + 1);
                    } else {
                        pending_pub = true;
                        i += 1;
                    }
                }
                "fn" => {
                    i = self.function(i, pending_pub, pending_test, self_type);
                    pending_pub = false;
                    pending_test = false;
                }
                "mod" => {
                    let mut j = i + 2; // mod <name>
                    if self.is_punct(j, '{') {
                        let close = self.skip_balanced(j);
                        if !pending_test {
                            self.items(j + 1, close - 1, self_type);
                        }
                        j = close;
                    } else if self.is_punct(j, ';') {
                        j += 1;
                    }
                    i = j;
                    pending_pub = false;
                    pending_test = false;
                }
                "impl" | "trait" => {
                    // scan the header to the block, remembering the last
                    // top-level type name (`impl Tr for Type` → Type)
                    let mut j = i + 1;
                    let mut last_ident: Option<String> = None;
                    while let Some(h) = self.tok(j) {
                        if h.is_punct('{') {
                            break;
                        }
                        if h.is_punct('<') {
                            j = self.skip_generics(j);
                            continue;
                        }
                        if h.kind == TokKind::Ident
                            && h.text != "for"
                            && h.text != "where"
                            && h.text != "dyn"
                        {
                            last_ident = Some(h.text.clone());
                        }
                        j += 1;
                    }
                    if self.is_punct(j, '{') {
                        let close = self.skip_balanced(j);
                        if !pending_test {
                            self.items(j + 1, close - 1, last_ident.as_deref());
                        }
                        j = close;
                    }
                    i = j;
                    pending_pub = false;
                    pending_test = false;
                }
                "struct" => {
                    i = self.structure(i);
                    pending_pub = false;
                    pending_test = false;
                }
                "enum" | "union" => {
                    let mut j = i + 2;
                    if self.is_punct(j, '<') {
                        j = self.skip_generics(j);
                    }
                    while j < end && !self.is_punct(j, '{') && !self.is_punct(j, ';') {
                        j += 1;
                    }
                    i = if self.is_punct(j, '{') {
                        self.skip_balanced(j)
                    } else {
                        j + 1
                    };
                    pending_pub = false;
                    pending_test = false;
                }
                "macro_rules" => {
                    let mut j = i + 1;
                    while j < end
                        && !self.is_punct(j, '{')
                        && !self.is_punct(j, '(')
                        && !self.is_punct(j, '[')
                    {
                        j += 1;
                    }
                    i = self.skip_balanced(j);
                    pending_pub = false;
                    pending_test = false;
                }
                "const" | "static" if self.is_ident(i + 1, "fn") => {
                    // `const fn` — let the fn arm handle it
                    i += 1;
                }
                "static" => {
                    // `static [mut] NAME: Type = ...;` — record IM statics
                    let mut j = i + 1;
                    let is_mut = self.is_ident(j, "mut");
                    if is_mut {
                        j += 1;
                    }
                    let name = self.ident_text(j).map(str::to_string);
                    let mut ty: Option<String> = None;
                    while j < end {
                        if self.is_punct(j, ';') {
                            j += 1;
                            break;
                        }
                        if self.is_punct(j, '{') || self.is_punct(j, '(') || self.is_punct(j, '[') {
                            j = self.skip_balanced(j);
                            continue;
                        }
                        if ty.is_none() {
                            if let Some(id) = self.ident_text(j) {
                                if im_type(id) {
                                    ty = Some(id.to_string());
                                }
                            }
                        }
                        j += 1;
                    }
                    if let Some(name) = name {
                        if is_mut {
                            self.syms
                                .im_statics
                                .insert((name, "static mut".to_string()));
                        } else if let Some(ty) = ty {
                            self.syms.im_statics.insert((name, ty));
                        }
                    }
                    i = j;
                    pending_pub = false;
                    pending_test = false;
                }
                "thread_local" if self.is_punct(i + 1, '!') => {
                    // thread_local! { static NAME: Ty = ...; }
                    let mut j = i + 2;
                    if self.is_punct(j, '{') || self.is_punct(j, '(') || self.is_punct(j, '[') {
                        let close = self.skip_balanced(j);
                        let mut k = j + 1;
                        while k + 1 < close {
                            if self.is_ident(k, "static") {
                                let n = if self.is_ident(k + 1, "mut") {
                                    k + 2
                                } else {
                                    k + 1
                                };
                                if let Some(name) = self.ident_text(n) {
                                    self.syms
                                        .im_statics
                                        .insert((name.to_string(), "thread_local".to_string()));
                                }
                            }
                            k += 1;
                        }
                        j = close;
                    }
                    i = j;
                    pending_pub = false;
                    pending_test = false;
                }
                "use" | "const" | "type" | "extern" => {
                    // skip to the terminating `;`, stepping over groups
                    let mut j = i + 1;
                    while j < end {
                        if self.is_punct(j, ';') {
                            j += 1;
                            break;
                        }
                        if self.is_punct(j, '{') || self.is_punct(j, '(') || self.is_punct(j, '[') {
                            j = self.skip_balanced(j);
                        } else {
                            j += 1;
                        }
                    }
                    i = j;
                    pending_pub = false;
                    pending_test = false;
                }
                _ => i += 1,
            }
        }
    }

    /// Parse `struct Name { fields }`, recording hash-typed fields.
    fn structure(&mut self, i: usize) -> usize {
        let Some(name) = self.ident_text(i + 1).map(str::to_string) else {
            return i + 1;
        };
        let mut j = i + 2;
        if self.is_punct(j, '<') {
            j = self.skip_generics(j);
        }
        // where clause before the body
        while j < self.syms.toks.len()
            && !self.is_punct(j, '{')
            && !self.is_punct(j, '(')
            && !self.is_punct(j, ';')
        {
            j += 1;
        }
        if self.is_punct(j, '(') {
            // tuple struct: no named fields
            let after = self.skip_balanced(j);
            return if self.is_punct(after, ';') {
                after + 1
            } else {
                after
            };
        }
        if !self.is_punct(j, '{') {
            return j + 1;
        }
        let close = self.skip_balanced(j);
        let mut k = j + 1;
        while k < close - 1 {
            if self.is_punct(k, '#') {
                let (next, _) = self.attr(k);
                k = next;
                continue;
            }
            if self.is_ident(k, "pub") {
                k += 1;
                if self.is_punct(k, '(') {
                    k = self.skip_balanced(k);
                }
                continue;
            }
            let Some(field) = self.ident_text(k).map(str::to_string) else {
                k += 1;
                continue;
            };
            if !self.is_punct(k + 1, ':') {
                k += 1;
                continue;
            }
            // type runs to the `,` at this level (or the closing brace)
            let mut t = k + 2;
            let mut hash = false;
            let mut im: Option<String> = None;
            while t < close - 1 {
                if self.is_punct(t, ',') {
                    break;
                }
                if self.is_punct(t, '<') {
                    let g = self.skip_generics(t);
                    for x in &self.syms.toks[t..g] {
                        hash |= x.is_ident("HashMap") || x.is_ident("HashSet");
                        if im.is_none() && x.kind == TokKind::Ident && im_type(&x.text) {
                            im = Some(x.text.clone());
                        }
                    }
                    t = g;
                    continue;
                }
                if self.is_punct(t, '(') || self.is_punct(t, '[') || self.is_punct(t, '{') {
                    t = self.skip_balanced(t);
                    continue;
                }
                hash |= self.is_ident(t, "HashMap") || self.is_ident(t, "HashSet");
                if im.is_none() {
                    if let Some(id) = self.ident_text(t) {
                        if im_type(id) {
                            im = Some(id.to_string());
                        }
                    }
                }
                t += 1;
            }
            if hash {
                self.syms.hash_fields.insert((name.clone(), field.clone()));
            }
            if let Some(ty) = im {
                self.syms.im_fields.insert((name.clone(), field, ty));
            }
            k = t + 1;
        }
        close
    }

    /// Parse a `fn` item starting at `i` (the `fn` keyword). Returns the
    /// index past the item.
    fn function(
        &mut self,
        i: usize,
        is_pub: bool,
        in_test: bool,
        self_type: Option<&str>,
    ) -> usize {
        let line = self.tok(i).map(|t| t.line).unwrap_or(0);
        let Some(name) = self.ident_text(i + 1).map(str::to_string) else {
            // `fn(u32) -> u32` in type position
            return i + 1;
        };
        let mut j = i + 2;
        if self.is_punct(j, '<') {
            j = self.skip_generics(j);
        }
        if !self.is_punct(j, '(') {
            return j;
        }
        let params_end = self.skip_balanced(j);
        let (params, hash_params) = self.params(j + 1, params_end - 1);
        // signature tail: return type / where clause, to `{` or `;`
        let mut k = params_end;
        while let Some(t) = self.tok(k) {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.is_punct('<') {
                k = self.skip_generics(k);
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') {
                k = self.skip_balanced(k);
                continue;
            }
            k += 1;
        }
        if self.is_punct(k, ';') {
            // trait method declaration: record the signature, no body
            if !in_test {
                self.syms.fns.push(FnDef {
                    name,
                    line,
                    is_pub,
                    self_type: self_type.map(str::to_string),
                    body: (k, k),
                    params,
                    hash_params,
                    locals: Vec::new(),
                    calls: Vec::new(),
                    panics: Vec::new(),
                    is_closure: false,
                    passed_to: None,
                    captures: Vec::new(),
                    encl: None,
                });
            }
            return k + 1;
        }
        if !self.is_punct(k, '{') {
            return k;
        }
        let close = self.skip_balanced(k);
        if in_test {
            return close;
        }
        let mut def = FnDef {
            name,
            line,
            is_pub,
            self_type: self_type.map(str::to_string),
            body: (k, close - 1),
            params,
            hash_params,
            locals: Vec::new(),
            calls: Vec::new(),
            panics: Vec::new(),
            is_closure: false,
            passed_to: None,
            captures: Vec::new(),
            encl: None,
        };
        let mut closures = Vec::new();
        self.scan_body(k + 1, close - 1, &mut def, &mut closures, &[]);
        let encl = self.syms.fns.len();
        self.syms.fns.push(def);
        for mut c in closures {
            c.encl = Some(encl);
            self.syms.fns.push(c);
        }
        close
    }

    /// Parameter names in `[i, end)`: all of them (`self` included),
    /// plus the subset whose declared type mentions hash containers.
    fn params(&self, i: usize, end: usize) -> (Vec<String>, Vec<String>) {
        let mut all = Vec::new();
        let mut hash = Vec::new();
        let mut j = i;
        let mut current: Option<String> = None;
        let mut depth = 0i32;
        while j < end {
            let Some(t) = self.tok(j) else { break };
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                j = self.skip_balanced(j);
                continue;
            }
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !(j > 0 && self.is_punct(j - 1, '-')) {
                depth -= 1;
            } else if t.is_punct(',') && depth <= 0 {
                current = None;
            } else if t.kind == TokKind::Ident && depth <= 0 && t.text == "self" {
                all.push(t.text.clone());
            } else if t.kind == TokKind::Ident && self.is_punct(j + 1, ':') && depth <= 0 {
                all.push(t.text.clone());
                current = Some(t.text.clone());
            } else if t.kind == TokKind::Ident
                && (t.text == "HashMap" || t.text == "HashSet")
                && current.is_some()
            {
                if let Some(name) = current.take() {
                    hash.push(name);
                }
            }
            j += 1;
        }
        (all, hash)
    }

    /// Could the `|` at `j` open a closure literal? True when the
    /// previous token cannot end an expression (so `|` is not binary
    /// or-/union syntax): an opening/separator punct or a keyword like
    /// `move`. `a || b` and `x | y` never trigger — their first `|`
    /// follows an expression.
    fn closure_trigger(&self, j: usize, start: usize) -> bool {
        if j == start {
            return true;
        }
        let Some(p) = self.tok(j - 1) else {
            return false;
        };
        match p.kind {
            TokKind::Punct => matches!(
                p.text.chars().next(),
                Some('(' | ',' | '=' | '{' | ';' | '[' | ':')
            ),
            TokKind::Ident => matches!(p.text.as_str(), "move" | "return" | "else" | "in"),
            _ => false,
        }
    }

    /// The callee a closure starting at `j` is an argument of, if any:
    /// walk back over balanced groups to the first unbalanced `(` — the
    /// enclosing call's argument list — and name the ident before it.
    fn passed_to(&self, j: usize) -> Option<String> {
        let mut depth = 0i32;
        let mut k = j;
        while k > 0 {
            k -= 1;
            let t = self.tok(k)?;
            if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth += 1;
            } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                if depth > 0 {
                    depth -= 1;
                    continue;
                }
                if t.is_punct('(') && k > 0 {
                    if let Some(name) = self.ident_text(k - 1) {
                        if !NON_CALL_KEYWORDS.contains(&name) {
                            return Some(name.to_string());
                        }
                    }
                }
                return None;
            } else if depth == 0 && t.is_punct(';') {
                // a `(` cannot stay open across a statement boundary
                return None;
            }
        }
        None
    }

    /// Parse a closure literal whose first `|` is at `j`: its own
    /// [`FnDef`] named `{closure@<line>}` pushed into `closures`
    /// (nested ones too, flat), captures resolved against `scope`.
    /// Returns the index past the closure.
    fn closure(
        &mut self,
        j: usize,
        end: usize,
        closures: &mut Vec<FnDef>,
        scope: &[String],
    ) -> usize {
        let line = self.tok(j).map(|t| t.line).unwrap_or(0);
        let mut params = Vec::new();
        let mut k = j + 1;
        if self.is_punct(k, '|') {
            k += 1; // `||`: empty parameter list
        } else {
            let mut after_colon = false;
            while k < end && !self.is_punct(k, '|') {
                if self.is_punct(k, '(') || self.is_punct(k, '[') || self.is_punct(k, '{') {
                    k = self.skip_balanced(k);
                    continue;
                }
                if self.is_punct(k, '<') {
                    k = self.skip_generics(k);
                    continue;
                }
                if self.is_punct(k, ':') {
                    after_colon = true;
                } else if self.is_punct(k, ',') {
                    after_colon = false;
                } else if !after_colon {
                    if let Some(id) = self.ident_text(k) {
                        if id != "mut" && id != "ref" && id != "_" {
                            params.push(id.to_string());
                        }
                    }
                }
                k += 1;
            }
            k += 1; // past the closing `|`
        }
        // optional `-> Type` before a braced body
        if self.is_punct(k, '-') && self.is_punct(k + 1, '>') {
            k += 2;
            while k < end && !self.is_punct(k, '{') {
                if self.is_punct(k, '<') {
                    k = self.skip_generics(k);
                } else if self.is_punct(k, '(') || self.is_punct(k, '[') {
                    k = self.skip_balanced(k);
                } else {
                    k += 1;
                }
            }
        }
        let (body, past) = if self.is_punct(k, '{') {
            let close = self.skip_balanced(k);
            ((k, close - 1), close)
        } else {
            // expression body: runs to `,`/`;` at depth 0 or to the
            // closer of the group the closure sits in
            let mut depth = 0i32;
            let mut e = k;
            while e < end {
                let Some(t) = self.tok(e) else { break };
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth == 0 && (t.is_punct(',') || t.is_punct(';')) {
                    break;
                }
                e += 1;
            }
            // synthetic (open, close): scan range body.0+1..body.1
            ((k - 1, e), e)
        };
        let back = if j > 0 && self.is_ident(j - 1, "move") {
            j - 1
        } else {
            j
        };
        let mut c = FnDef {
            name: format!("{{closure@{line}}}"),
            line,
            is_pub: false,
            self_type: None,
            body,
            params: params.clone(),
            hash_params: Vec::new(),
            locals: Vec::new(),
            calls: Vec::new(),
            panics: Vec::new(),
            is_closure: true,
            passed_to: self.passed_to(back),
            captures: Vec::new(),
            encl: None,
        };
        // the closure's body scan sees the enclosing scope plus its own
        // params; nested closures land flat in the same out-vec
        let mut inner_scope: Vec<String> = scope.to_vec();
        inner_scope.extend(params);
        self.scan_body(body.0 + 1, body.1, &mut c, closures, &inner_scope);
        c.captures = self.free_idents(body.0 + 1, body.1, &c, scope);
        closures.push(c);
        past
    }

    /// Free identifiers in `[i, end)` — not path-qualified, not called,
    /// not bound by `def` — that resolve in the enclosing `scope`.
    fn free_idents(&self, i: usize, end: usize, def: &FnDef, scope: &[String]) -> Vec<String> {
        let bound: BTreeSet<&str> = def
            .params
            .iter()
            .chain(def.locals.iter())
            .map(String::as_str)
            .collect();
        let scope_set: BTreeSet<&str> = scope.iter().map(String::as_str).collect();
        let mut out = BTreeSet::new();
        for j in i..end.min(self.syms.toks.len()) {
            let Some(t) = self.tok(j) else { break };
            if t.kind != TokKind::Ident {
                continue;
            }
            let id = t.text.as_str();
            let after_path = (j >= 1 && self.is_punct(j - 1, '.'))
                || (j >= 2 && self.is_punct(j - 1, ':') && self.is_punct(j - 2, ':'));
            let is_called = self.is_punct(j + 1, '(') || self.is_punct(j + 1, '!');
            if !after_path && !is_called && !bound.contains(id) && scope_set.contains(id) {
                out.insert(id.to_string());
            }
        }
        out.into_iter().collect()
    }

    /// Scan a function body for calls, panic sites, `let`-bound locals,
    /// nested items, and closure literals. Closure regions are skipped
    /// here — their calls/panics belong to the closure's own [`FnDef`]
    /// (pushed into `closures`), kept reachable through the synthetic
    /// enclosing→closure edge [`CallGraph::build`] adds.
    fn scan_body(
        &mut self,
        i: usize,
        end: usize,
        def: &mut FnDef,
        closures: &mut Vec<FnDef>,
        outer_scope: &[String],
    ) {
        let mut j = i;
        while j < end {
            let Some(t) = self.tok(j) else { break };
            // nested fn: its own FnDef, not part of this body's calls
            if t.is_ident("fn") && self.tok(j + 1).is_some_and(|n| n.kind == TokKind::Ident) {
                j = self.function(j, false, false, None);
                continue;
            }
            // `let [mut] name =` / `for name in`: a local binding
            if t.is_ident("let") {
                let mut k = j + 1;
                if self.is_ident(k, "mut") {
                    k += 1;
                }
                if let Some(name) = self.ident_text(k) {
                    // plain binding, not `let Some(x)` destructuring
                    if self.is_punct(k + 1, '=') || self.is_punct(k + 1, ':') {
                        def.locals.push(name.to_string());
                    }
                }
                j += 1;
                continue;
            }
            if t.is_ident("for") {
                if let Some(name) = self.ident_text(j + 1) {
                    if self.is_ident(j + 2, "in") {
                        def.locals.push(name.to_string());
                    }
                }
            }
            if t.is_punct('|') && self.closure_trigger(j, i) {
                let mut scope: Vec<String> = outer_scope.to_vec();
                scope.extend(def.params.iter().cloned());
                scope.extend(def.locals.iter().cloned());
                j = self.closure(j, end, closures, &scope);
                continue;
            }
            if t.kind == TokKind::Ident && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
                // macro invocation `name!(..)` / `name![..]` / `name!{..}`
                if self.is_punct(j + 1, '!')
                    && (self.is_punct(j + 2, '(')
                        || self.is_punct(j + 2, '[')
                        || self.is_punct(j + 2, '{'))
                {
                    let mac = format!("{}!", t.text);
                    if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented") {
                        def.panics.push(PanicSite {
                            what: mac.clone(),
                            line: t.line,
                        });
                    }
                    def.calls.push(CallSite {
                        callee: mac,
                        qualifier: None,
                        is_method: false,
                        line: t.line,
                    });
                    j += 2;
                    continue;
                }
                // plain or method call `name(..)`
                if self.is_punct(j + 1, '(') {
                    let is_method = j > 0 && self.is_punct(j - 1, '.');
                    if is_method && matches!(t.text.as_str(), "unwrap" | "expect") {
                        def.panics.push(PanicSite {
                            what: t.text.clone(),
                            line: t.line,
                        });
                    }
                    let qualifier =
                        if j >= 3 && self.is_punct(j - 1, ':') && self.is_punct(j - 2, ':') {
                            self.ident_text(j - 3).map(str::to_string)
                        } else {
                            None
                        };
                    def.calls.push(CallSite {
                        callee: t.text.clone(),
                        qualifier,
                        is_method,
                        line: t.line,
                    });
                }
            }
            j += 1;
        }
    }
}

/// A function node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Which file (index into the [`CallGraph::files`] order).
    pub file: usize,
    /// Index into that file's `fns`.
    pub local: usize,
    /// Bare name (copied out for cheap access).
    pub name: String,
    /// Workspace-relative path.
    pub rel: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Unrestricted `pub`.
    pub is_pub: bool,
    /// Resolved callee node indices (deduped, stoplist applied).
    pub callees: Vec<usize>,
}

/// The workspace call graph over every parsed file.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Parsed files, in the order given to [`CallGraph::build`].
    pub files: Vec<FileSyms>,
    /// Flattened function nodes.
    pub nodes: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Build the graph from parsed files.
    pub fn build(files: Vec<FileSyms>) -> CallGraph {
        let mut g = CallGraph {
            files,
            nodes: Vec::new(),
            by_name: BTreeMap::new(),
        };
        let mut base = Vec::with_capacity(g.files.len());
        for (fi, file) in g.files.iter().enumerate() {
            base.push(g.nodes.len());
            for (li, f) in file.fns.iter().enumerate() {
                let idx = g.nodes.len();
                g.nodes.push(FnNode {
                    file: fi,
                    local: li,
                    name: f.name.clone(),
                    rel: file.rel.clone(),
                    line: f.line,
                    is_pub: f.is_pub,
                    callees: Vec::new(),
                });
                // closures never resolve by name; `{closure@N}` can
                // collide across a file and is reached via `encl` edges
                if !f.is_closure {
                    g.by_name.entry(f.name.clone()).or_default().push(idx);
                }
            }
        }
        for idx in 0..g.nodes.len() {
            let (fi, li) = (g.nodes[idx].file, g.nodes[idx].local);
            let mut callees = BTreeSet::new();
            for call in &g.files[fi].fns[li].calls {
                for &target in g.resolve(&call.callee) {
                    if target != idx {
                        callees.insert(target);
                    }
                }
            }
            // synthetic edge: enclosing fn → each of its closures
            for (ci, cf) in g.files[fi].fns.iter().enumerate() {
                if cf.is_closure && cf.encl == Some(li) && !g.files[fi].fns[li].is_closure {
                    callees.insert(base[fi] + ci);
                }
            }
            g.nodes[idx].callees = callees.into_iter().collect();
        }
        g
    }

    /// The function definition behind a node.
    pub fn def(&self, idx: usize) -> &FnDef {
        &self.files[self.nodes[idx].file].fns[self.nodes[idx].local]
    }

    /// Workspace functions a call site with this callee name may reach
    /// (empty for stoplisted or external names; macros never resolve).
    pub fn resolve(&self, callee: &str) -> &[usize] {
        if callee.ends_with('!') || EDGE_STOPLIST.contains(&callee) {
            return &[];
        }
        self.by_name.get(callee).map(Vec::as_slice).unwrap_or(&[])
    }

    /// For every node, whether it can reach a node satisfying `seed` by
    /// following call edges, and through which callee: `next[i]` is
    /// `Some(i)` for seeds themselves, `Some(callee)` for the first hop
    /// of a witness path, `None` when unreachable.
    pub fn reach(&self, seed: impl Fn(usize) -> bool) -> Vec<Option<usize>> {
        let mut next: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for (i, slot) in next.iter_mut().enumerate() {
            if seed(i) {
                *slot = Some(i);
                queue.push(i);
            }
        }
        // reverse-BFS: walking callers of reached nodes
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &c in &node.callees {
                callers[c].push(i);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            for &caller in &callers[cur] {
                if next[caller].is_none() {
                    next[caller] = Some(cur);
                    queue.push(caller);
                }
            }
        }
        next
    }

    /// The witness path from `from` to the seed, as node indices
    /// (`from` first, the seed last).
    pub fn chain(&self, from: usize, next: &[Option<usize>]) -> Vec<usize> {
        let mut out = vec![from];
        let mut cur = from;
        while let Some(n) = next[cur] {
            if n == cur {
                break;
            }
            out.push(n);
            cur = n;
        }
        out
    }

    /// Render a chain as `a → b → c` using function names.
    pub fn chain_names(&self, chain: &[usize]) -> String {
        chain
            .iter()
            .map(|&i| self.nodes[i].name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileSyms {
        parse_file("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn functions_and_visibility_are_recorded() {
        let syms = parse(
            "pub fn api() { helper(); }\n\
             fn helper() {}\n\
             pub(crate) fn internal() {}\n",
        );
        let names: Vec<(&str, bool)> = syms
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![("api", true), ("helper", false), ("internal", false)]
        );
        assert_eq!(syms.fns[0].calls.len(), 1);
        assert_eq!(syms.fns[0].calls[0].callee, "helper");
    }

    #[test]
    fn test_regions_are_dropped() {
        let syms = parse(
            "fn live() {}\n\
             #[cfg(test)]\nmod tests {\n  fn dead() { x.unwrap(); }\n}\n\
             #[test]\nfn also_dead() {}\n\
             fn live_too() {}\n",
        );
        let names: Vec<&str> = syms.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["live", "live_too"]);
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let syms = parse("#[cfg(not(test))]\nfn kept() {}\n");
        assert_eq!(syms.fns.len(), 1);
    }

    #[test]
    fn panic_sites_are_token_exact() {
        let syms = parse(
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
             fn g(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n\
             fn h() { panic!(\"boom\"); }\n",
        );
        assert_eq!(syms.fns[0].panics.len(), 1);
        assert_eq!(syms.fns[0].panics[0].what, "unwrap");
        assert!(syms.fns[1].panics.is_empty(), "unwrap_or is not unwrap");
        assert_eq!(syms.fns[2].panics[0].what, "panic!");
    }

    #[test]
    fn impl_methods_know_their_type() {
        let syms = parse(
            "struct Index { map: HashMap<u32, u32>, n: u32 }\n\
             impl Index {\n  fn rebuild(&mut self) { self.touch(); }\n  fn touch(&mut self) {}\n}\n\
             impl std::fmt::Display for Index {\n  fn fmt(&self) {}\n}\n",
        );
        assert!(syms
            .hash_fields
            .contains(&("Index".to_string(), "map".to_string())));
        assert!(!syms.hash_fields.iter().any(|(_, f)| f == "n"));
        let rebuild = syms.fns.iter().find(|f| f.name == "rebuild").unwrap();
        assert_eq!(rebuild.self_type.as_deref(), Some("Index"));
        let fmt = syms.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert_eq!(fmt.self_type.as_deref(), Some("Index"));
    }

    #[test]
    fn hash_typed_params_are_recorded() {
        let syms = parse("fn f(a: &HashMap<u32, u32>, b: u32, c: HashSet<u8>) {}\n");
        assert_eq!(syms.fns[0].hash_params, vec!["a", "c"]);
    }

    #[test]
    fn reachability_and_chains() {
        let files = vec![
            parse_file(
                "crates/demo/src/lib.rs",
                "pub fn api() { middle(); }\nfn middle() { deep(); }\n",
            ),
            parse_file(
                "crates/demo/src/deep.rs",
                "pub fn deep() { other(); }\nfn other() {}\nfn unrelated() {}\n",
            ),
        ];
        let g = CallGraph::build(files);
        let other = g.nodes.iter().position(|n| n.name == "other").unwrap();
        let next = g.reach(|i| i == other);
        let api = g.nodes.iter().position(|n| n.name == "api").unwrap();
        let chain = g.chain(api, &next);
        assert_eq!(g.chain_names(&chain), "api -> middle -> deep -> other");
        let unrelated = g.nodes.iter().position(|n| n.name == "unrelated").unwrap();
        assert!(next[unrelated].is_none());
    }

    #[test]
    fn stoplisted_names_make_no_edges() {
        let g = CallGraph::build(vec![parse_file(
            "crates/demo/src/lib.rs",
            "pub fn insert() {}\nfn f(v: &mut Vec<u32>) { v.insert(0, 1); }\n",
        )]);
        let f = g.nodes.iter().position(|n| n.name == "f").unwrap();
        assert!(g.nodes[f].callees.is_empty());
    }

    #[test]
    fn all_params_and_locals_are_recorded() {
        let syms = parse(
            "impl T { fn m(&self, snap: &World, n: u32) { let total = n + 1;\n\
             let mut acc: u32 = total; for row in rows { acc += row; } } }\n",
        );
        let m = &syms.fns[0];
        assert_eq!(m.params, vec!["self", "snap", "n"]);
        assert_eq!(m.locals, vec!["total", "acc", "row"]);
    }

    #[test]
    fn closure_becomes_anonymous_fn_with_captures() {
        let syms = parse(
            "fn outer(snap: &World, dict: &Dict) {\n\
             let scale = 2;\n\
             let out = map_indexed(&units, |i, unit| { helper(snap, scale); dict.classify(unit) });\n\
             }\n",
        );
        let names: Vec<&str> = syms.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "{closure@3}"]);
        let c = &syms.fns[1];
        assert!(c.is_closure);
        assert_eq!(c.passed_to.as_deref(), Some("map_indexed"));
        assert_eq!(c.params, vec!["i", "unit"]);
        // free idents resolved against outer's params + locals; `i` and
        // `unit` are bound, `helper` is a call, `units` is module-level
        assert_eq!(c.captures, vec!["dict", "scale", "snap"]);
        assert_eq!(c.encl, Some(0));
        // the closure's calls live on the closure, not on `outer`
        assert!(c.calls.iter().any(|s| s.callee == "helper"));
        assert!(!syms.fns[0].calls.iter().any(|s| s.callee == "helper"));
        assert!(syms.fns[0].calls.iter().any(|s| s.callee == "map_indexed"));
    }

    #[test]
    fn logical_or_and_bitor_are_not_closures() {
        let syms = parse("fn f(a: bool, b: u32) -> bool { a || (b | 3) > 4 }\n");
        assert_eq!(syms.fns.len(), 1, "no phantom closures from `||` or `|`");
    }

    #[test]
    fn expression_bodied_and_nested_closures() {
        let syms = parse(
            "fn outer(n: u32) {\n\
             let f = |x: u32| x + n;\n\
             run(move || { inner_call(n); spawn(|| n + 1); });\n\
             }\n",
        );
        let names: Vec<&str> = syms.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["outer", "{closure@2}", "{closure@3}", "{closure@3}"]
        );
        let expr = &syms.fns[1];
        assert_eq!(expr.captures, vec!["n"]);
        assert_eq!(expr.passed_to, None, "let-bound, not an argument");
        // nested closures attach flat to the enclosing fn
        let spawned = syms
            .fns
            .iter()
            .find(|f| f.passed_to.as_deref() == Some("spawn"));
        assert_eq!(spawned.unwrap().encl, Some(0));
        let run = syms
            .fns
            .iter()
            .find(|f| f.passed_to.as_deref() == Some("run"));
        assert!(run.unwrap().calls.iter().any(|s| s.callee == "inner_call"));
    }

    #[test]
    fn closure_panics_and_edges_flow_through_the_graph() {
        let g = CallGraph::build(vec![parse_file(
            "crates/demo/src/lib.rs",
            "pub fn api() { par_run(|| deep()); }\n\
             fn par_run(f: u32) {}\n\
             fn deep() { x.unwrap(); }\n",
        )]);
        let deep = g.nodes.iter().position(|n| n.name == "deep").unwrap();
        let next = g.reach(|i| i == deep);
        let api = g.nodes.iter().position(|n| n.name == "api").unwrap();
        let chain = g.chain(api, &next);
        assert_eq!(g.chain_names(&chain), "api -> {closure@1} -> deep");
        let closure = g
            .nodes
            .iter()
            .position(|n| n.name.starts_with("{closure"))
            .unwrap();
        assert!(g.def(closure).is_closure);
        assert_eq!(g.def(closure).passed_to.as_deref(), Some("par_run"));
    }

    #[test]
    fn interior_mutability_fields_and_statics() {
        let syms = parse(
            "struct View { memo: RefCell<HashMap<u32, u32>>, n: u32, hits: AtomicU64 }\n\
             struct Plain { k: u32 }\n\
             static TOTAL: AtomicUsize = AtomicUsize::new(0);\n\
             static NAME: &str = \"x\";\n\
             static mut RAW: u32 = 0;\n\
             thread_local! { static SCRATCH: Cell<u32> = Cell::new(0); }\n",
        );
        assert!(syms.im_fields.contains(&(
            "View".to_string(),
            "memo".to_string(),
            "RefCell".to_string()
        )));
        assert!(syms.im_fields.contains(&(
            "View".to_string(),
            "hits".to_string(),
            "AtomicU64".to_string()
        )));
        assert!(!syms.im_fields.iter().any(|(s, ..)| s == "Plain"));
        assert!(syms
            .im_statics
            .contains(&("TOTAL".to_string(), "AtomicUsize".to_string())));
        assert!(syms
            .im_statics
            .contains(&("RAW".to_string(), "static mut".to_string())));
        assert!(syms
            .im_statics
            .contains(&("SCRATCH".to_string(), "thread_local".to_string())));
        assert!(!syms.im_statics.iter().any(|(n, _)| n == "NAME"));
        // hash recording still works alongside the IM table
        assert!(syms
            .hash_fields
            .contains(&("View".to_string(), "memo".to_string())));
    }
}
