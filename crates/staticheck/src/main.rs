//! `staticheck` binary: thin wrapper over [`staticheck::cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(staticheck::cli::run(&args));
}
