//! SARIF 2.1.0 output (`staticheck --format sarif`).
//!
//! Hand-written emitter: the vendored serde derive cannot rename fields
//! to `$schema`, and the document shape is small and fixed. Diagnostics
//! with a `path:line` location become physical locations (so editors and
//! code-scanning UIs can jump to the line); policy findings, whose
//! locations are rule/entry descriptors, become logical locations.
//! Allowlisted findings are included with an external suppression so the
//! artifact is a complete record of the run.

use crate::diag::{describe, Diagnostic, Report, Severity, CODES};

/// Render a report as a SARIF 2.1.0 document.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"staticheck\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, code) in CODES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
            json_str(code),
            json_str(describe(code)),
            if i + 1 < CODES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let total = report.findings.len() + report.allowed.len();
    let mut n = 0;
    for (d, suppressed) in report
        .findings
        .iter()
        .map(|d| (d, false))
        .chain(report.allowed.iter().map(|d| (d, true)))
    {
        n += 1;
        out.push_str(&result_json(d, suppressed));
        if n < total {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn result_json(d: &Diagnostic, suppressed: bool) -> String {
    let level = match d.severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
    };
    let mut s = String::from("        {");
    s.push_str(&format!("\"ruleId\": {}, ", json_str(&d.code)));
    s.push_str(&format!("\"level\": \"{level}\", "));
    s.push_str(&format!(
        "\"message\": {{\"text\": {}}}, ",
        json_str(&d.message)
    ));
    match physical(&d.location) {
        Some((path, line)) => s.push_str(&format!(
            "\"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": {}}}, \"region\": {{\"startLine\": {line}}}}}}}]",
            json_str(path)
        )),
        None => s.push_str(&format!(
            "\"locations\": [{{\"logicalLocations\": \
             [{{\"fullyQualifiedName\": {}}}]}}]",
            json_str(&d.location)
        )),
    }
    if suppressed {
        s.push_str(", \"suppressions\": [{\"kind\": \"external\"}]");
    }
    s.push('}');
    s
}

/// Split a `path:line` lint location; policy locations (rule/entry
/// descriptors with spaces or no line suffix) return `None`.
fn physical(location: &str) -> Option<(&str, u32)> {
    let (path, line) = location.rsplit_once(':')?;
    if path.contains(' ') {
        return None;
    }
    Some((path, line.parse().ok()?))
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::default();
        r.findings.push(Diagnostic::new(
            "SC107",
            Severity::Error,
            "crates/demo/src/lib.rs:12",
            "hash iteration order flows into sink \"x\"",
        ));
        r.findings.push(Diagnostic::new(
            "SC004",
            Severity::Warning,
            "dict(DeCixFra) Exact(0:6695) vs PeerAsnLow { high: 0 }",
            "two semantics",
        ));
        r.allowed.push(Diagnostic::new(
            "SC101",
            Severity::Error,
            "crates/bgp-model/src/prefix.rs:252",
            "panicking construct",
        ));
        r
    }

    #[test]
    fn sarif_is_valid_json_with_results() {
        let doc = render_sarif(&sample());
        // the vendored serde_json exposes parse_value for validation
        serde_json::parse_value(&doc).expect("valid JSON");
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("SC107"));
        // every catalogued rule is declared
        for code in CODES {
            assert!(doc.contains(code), "missing rule {code}");
        }
    }

    #[test]
    fn physical_and_logical_locations_split() {
        let doc = render_sarif(&sample());
        assert!(doc.contains("\"artifactLocation\": {\"uri\": \"crates/demo/src/lib.rs\"}"));
        assert!(doc.contains("\"startLine\": 12"));
        assert!(doc.contains("fullyQualifiedName"));
    }

    #[test]
    fn allowlisted_findings_are_suppressed_not_dropped() {
        let doc = render_sarif(&sample());
        assert!(doc.contains("\"suppressions\": [{\"kind\": \"external\"}]"));
        assert!(doc.contains("prefix.rs"));
    }

    #[test]
    fn escaping_survives_quotes() {
        let doc = render_sarif(&sample());
        assert!(doc.contains("sink \\\"x\\\""));
    }
}
