//! The determinism dataflow pass (SC107) and interprocedural
//! panic-reachability (SC108), built on [`crate::callgraph`].
//!
//! * **SC107** — iteration over a `HashMap`/`HashSet` (`.iter()`,
//!   `.keys()`, `.values()`, `.drain()`, `for x in map`) whose order
//!   can reach serialized output, digests, metrics, or an ordered
//!   collection without an intervening sort. Hash iteration order is
//!   nondeterministic across processes, so one such path silently
//!   breaks every byte-identical oracle in this workspace (par
//!   equivalence, trace digests, chaos fingerprints, golden fixtures).
//!   The pass is interprocedural: an iteration handed to a function
//!   that transitively reaches a sink is flagged with the call chain.
//! * **SC108** — a public (unrestricted `pub`) function that can reach
//!   a panic site (`unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`)
//!   through any call chain. Panic sites waived for SC101 in
//!   `staticheck.toml` are treated as sanctioned (their waiver reason
//!   asserts unreachability) and do not taint callers. Chains of length
//!   one are SC101's territory and not re-reported.
//!
//! Known blind spots, by construction (documented in TESTING.md): flow
//! through return values into a caller that emits, flow through `&mut`
//! out-parameters, and method calls resolved by bare name (no type
//! info), mitigated by the std-name stoplist in the call graph.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::allow::Allowlist;
use crate::callgraph::{parse_file, CallGraph, FileSyms};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Tok, TokKind};

/// Iterator-producing methods whose order is the hash container's.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Chain terminators whose result is independent of iteration order.
const ORDER_INSENSITIVE: [&str; 11] = [
    "count",
    "sum",
    "product",
    "max",
    "min",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
    "any",
    "all",
];

/// Adapters that pass iteration order through unchanged.
const ORDER_PRESERVING: [&str; 16] = [
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "cloned",
    "copied",
    "rev",
    "enumerate",
    "zip",
    "chain",
    "take",
    "skip",
    "inspect",
    "peekable",
    "fuse",
];

/// Sorting methods that launder an order-tainted collection.
const SORTERS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Is a call to `name` (optionally `qual::name`) a serialization /
/// digest / metrics sink? Macro names carry their `!`.
pub(crate) fn is_sink_name(qual: Option<&str>, name: &str) -> bool {
    if let Some(base) = name.strip_suffix('!') {
        return matches!(
            base,
            "write" | "writeln" | "print" | "println" | "eprint" | "eprintln" | "format"
        );
    }
    if qual == Some("serde_json") {
        return true;
    }
    matches!(name, "push_str" | "hash" | "inc" | "observe" | "record")
        || name.contains("serialize")
        || name.contains("render")
        || name.contains("digest")
        || name.contains("json")
        || name.contains("fingerprint")
        || name.contains("prometheus")
}

/// Run both dataflow checks over the workspace rooted at `root`.
/// `only` restricts analysis to files whose workspace-relative path
/// starts with it (the `--only` self-lint filter).
pub fn analyze(root: &Path, allow: &Allowlist, only: Option<&str>) -> Vec<Diagnostic> {
    let mut sources = Vec::new();
    for file in crate::lints::workspace_sources(root) {
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        if only.is_some_and(|p| !rel.starts_with(p)) {
            continue;
        }
        sources.push((rel, text));
    }
    analyze_sources(&sources, allow)
}

/// The testable core: analyze in-memory `(rel_path, source)` pairs.
pub fn analyze_sources(sources: &[(String, String)], allow: &Allowlist) -> Vec<Diagnostic> {
    analyze_sources_filtered(sources, allow, None)
}

/// Like [`analyze_sources`], but when `dirty` is `Some`, the per-file
/// checks (SC107/SC108/SC109/SC111/SC112) scan and report only
/// functions defined in the listed file indices — the incremental
/// cache's reverse-callgraph cone. The global passes (SC110) always run
/// over the whole graph; reachability maps are always global, so a
/// dirty file's chains still extend through clean files.
pub fn analyze_sources_filtered(
    sources: &[(String, String)],
    allow: &Allowlist,
    dirty: Option<&BTreeSet<usize>>,
) -> Vec<Diagnostic> {
    let files: Vec<FileSyms> = sources
        .iter()
        .map(|(rel, text)| parse_file(rel, text))
        .collect();
    let graph = CallGraph::build(files);

    // a node seeds sink-reachability when its body calls a sink directly
    let sink_next = graph.reach(|i| {
        graph
            .def(i)
            .calls
            .iter()
            .any(|c| is_sink_name(c.qualifier.as_deref(), &c.callee))
    });

    let in_scope = |file: usize| dirty.is_none_or(|d| d.contains(&file));
    let mut out = Vec::new();
    sc107(&graph, &sink_next, &in_scope, &mut out);
    sc108(&graph, allow, &in_scope, &mut out);
    crate::concurrency::check(&graph, &sink_next, &in_scope, &mut out);
    out
}

/// Render the witness chain from a call into `callee` down to the
/// concrete sink call, e.g. `` `emit` -> `render` (sink `writeln!`) ``.
pub(crate) fn sink_chain(
    graph: &CallGraph,
    sink_next: &[Option<usize>],
    callee: &str,
) -> Option<String> {
    if is_sink_name(None, callee) {
        return Some(format!("sink `{callee}`"));
    }
    let target = graph
        .resolve(callee)
        .iter()
        .copied()
        .find(|&t| sink_next[t].is_some())?;
    let chain = graph.chain(target, sink_next);
    let last = *chain.last()?;
    let sink = graph
        .def(last)
        .calls
        .iter()
        .find(|c| is_sink_name(c.qualifier.as_deref(), &c.callee))
        .map(|c| c.callee.clone())
        .unwrap_or_else(|| "sink".to_string());
    Some(format!(
        "`{}` (sink `{sink}`)",
        graph.chain_names(&chain).replace(" -> ", "` -> `")
    ))
}

// --- SC107: hash-order determinism ---------------------------------------

/// What a scanned iteration chain ends up as.
enum ChainEnd {
    /// Provably order-insensitive (count/sum/... or collect into an
    /// unordered/sorted container).
    Clean,
    /// The iteration order escapes into a value (token index just past
    /// the chain).
    Escapes(usize),
    /// The chain itself contains a sink (description for the message).
    Sink(String),
}

fn sc107(
    graph: &CallGraph,
    sink_next: &[Option<usize>],
    in_scope: &impl Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    // every hash-typed struct field name in the workspace: receivers are
    // matched by path segment, not resolved types
    let hash_fields: BTreeSet<&str> = graph
        .files
        .iter()
        .flat_map(|f| f.hash_fields.iter().map(|(_, field)| field.as_str()))
        .collect();
    for (fi, file) in graph.files.iter().enumerate() {
        if !in_scope(fi) {
            continue;
        }
        for (li, def) in file.fns.iter().enumerate() {
            let _ = li;
            if def.body.0 == def.body.1 {
                continue;
            }
            // closure token ranges lie inside the enclosing fn's body, so
            // the enclosing scan already covers them; a second scan would
            // double-report every finding
            if def.is_closure {
                continue;
            }
            let mut scan = FnScan {
                graph,
                sink_next,
                file,
                fi,
                hash_fields: &hash_fields,
                hash_locals: def.hash_params.iter().cloned().collect(),
                ordered_locals: BTreeSet::new(),
                tainted: BTreeMap::new(),
                out,
            };
            scan.run(def.body.0 + 1, def.body.1);
        }
    }
}

/// Collection types whose iteration order is deterministic.
fn is_ordered_ty(ident: Option<&str>) -> bool {
    matches!(
        ident,
        Some("BTreeMap" | "BTreeSet" | "Vec" | "VecDeque" | "BinaryHeap")
    )
}

struct FnScan<'a> {
    graph: &'a CallGraph,
    sink_next: &'a [Option<usize>],
    file: &'a FileSyms,
    fi: usize,
    hash_fields: &'a BTreeSet<&'a str>,
    /// Locals (and params) currently known to hold hash containers.
    hash_locals: BTreeSet<String>,
    /// Locals positively declared with an ordered type (`BTreeMap`,
    /// `Vec`, ...): they shadow a same-named hash field elsewhere in
    /// the workspace, so the name heuristic must not fire on them.
    ordered_locals: BTreeSet<String>,
    /// Order-tainted locals: name → (line, origin description).
    tainted: BTreeMap<String, (u32, String)>,
    out: &'a mut Vec<Diagnostic>,
}

impl FnScan<'_> {
    fn toks(&self) -> &[Tok] {
        &self.file.toks
    }

    fn tok(&self, i: usize) -> Option<&Tok> {
        self.file.toks.get(i)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(c))
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.tok(i)
            .and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
    }

    fn skip_balanced(&self, i: usize) -> usize {
        let (open, close) = match self.tok(i) {
            Some(t) if t.is_punct('(') => ('(', ')'),
            Some(t) if t.is_punct('[') => ('[', ']'),
            Some(t) if t.is_punct('{') => ('{', '}'),
            _ => return i + 1,
        };
        let mut depth = 0i32;
        let mut j = i;
        while let Some(t) = self.tok(j) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        j
    }

    fn report(&mut self, line: u32, what: &str, via: &str) {
        self.out.push(Diagnostic::new(
            "SC107",
            Severity::Error,
            format!("{}:{line}", self.graph.files[self.fi].rel),
            format!(
                "hash iteration order of {what} flows into {via}: use a \
                 BTree collection or sort before emitting"
            ),
        ));
    }

    /// Main scan over `[i, end)` of the body.
    fn run(&mut self, i: usize, end: usize) {
        let mut j = i;
        while j < end {
            let Some(t) = self.tok(j) else { break };
            if t.kind != TokKind::Ident {
                j += 1;
                continue;
            }
            match t.text.as_str() {
                "let" => {
                    self.scan_let(j, end);
                    j += 1;
                }
                "for" => {
                    j = self.scan_for(j, end);
                }
                name if ITER_METHODS.contains(&name)
                    && self.is_punct(j.wrapping_sub(1), '.')
                    && self.is_punct(j + 1, '(') =>
                {
                    if let Some((recv, recv_start)) = self.receiver(j - 2) {
                        let tainted_recv =
                            recv.iter().any(|s| self.tainted.contains_key(s.as_str()));
                        if self.receiver_is_hash(&recv) || tainted_recv {
                            let line = t.line;
                            let what = format!("`{}.{}()`", recv.join("."), t.text);
                            let site = (line, what, recv_start);
                            j = self.scan_chain(self.skip_balanced(j + 1), end, site);
                            continue;
                        }
                    }
                    j += 1;
                }
                name if self.is_punct(j + 1, '!')
                    && self.is_punct(j + 2, '(')
                    && is_sink_name(None, &format!("{name}!"))
                    && !self.tainted.is_empty() =>
                {
                    self.inline_captures(j, &format!("{name}!"));
                    j += 1;
                }
                name if self.tainted.contains_key(name)
                    && !self.is_punct(j.wrapping_sub(1), '.') =>
                {
                    j = self.tainted_use(j, end, name.to_string());
                }
                _ => j += 1,
            }
        }
    }

    /// `let [mut] name [: Type] = RHS;` — track hash-typed bindings.
    fn scan_let(&mut self, i: usize, end: usize) {
        let mut j = i + 1;
        if self.ident(j) == Some("mut") {
            j += 1;
        }
        let Some(name) = self.ident(j).map(str::to_string) else {
            return;
        };
        // find the `=` and the end of the statement at this level
        let mut k = j + 1;
        let mut ty_hash = false;
        let mut ty_ordered = false;
        let mut eq = None;
        while k < end {
            if self.is_punct(k, ';') {
                break;
            }
            if self.is_punct(k, '=') && !self.is_punct(k + 1, '=') {
                eq = Some(k);
                break;
            }
            if self.is_punct(k, '(') || self.is_punct(k, '[') || self.is_punct(k, '{') {
                k = self.skip_balanced(k);
                continue;
            }
            ty_hash |= matches!(self.ident(k), Some("HashMap" | "HashSet"));
            ty_ordered |= is_ordered_ty(self.ident(k));
            k += 1;
        }
        let mut rhs_hash = false;
        let mut rhs_ordered = false;
        if let Some(eq) = eq {
            let mut r = eq + 1;
            while r < end && !self.is_punct(r, ';') {
                if self.is_punct(r, '(') || self.is_punct(r, '[') || self.is_punct(r, '{') {
                    r = self.skip_balanced(r);
                    continue;
                }
                // `HashMap::new()` / `collect::<HashMap<..>>()`
                if matches!(self.ident(r), Some("HashMap" | "HashSet")) {
                    rhs_hash = true;
                }
                rhs_ordered |= is_ordered_ty(self.ident(r));
                r += 1;
            }
        }
        if ty_hash || rhs_hash {
            self.hash_locals.insert(name.clone());
            self.ordered_locals.remove(&name);
        } else if ty_ordered || rhs_ordered {
            // positively ordered: shadows any same-named hash field
            self.ordered_locals.insert(name.clone());
            self.hash_locals.remove(&name);
        }
    }

    /// `for pat in expr { body }` — direct iteration over a hash
    /// container or a tainted vec.
    fn scan_for(&mut self, i: usize, end: usize) -> usize {
        // `for<'a>` higher-ranked bounds are not loops
        if self.is_punct(i + 1, '<') {
            return i + 1;
        }
        // find `in` at delimiter level 0
        let mut j = i + 1;
        while j < end {
            if self.is_punct(j, '(') || self.is_punct(j, '[') {
                j = self.skip_balanced(j);
                continue;
            }
            if self.is_punct(j, '{') {
                return i + 1; // malformed / not a loop
            }
            if self.ident(j) == Some("in") {
                break;
            }
            j += 1;
        }
        if j >= end {
            return i + 1;
        }
        // expression: from after `in` to the `{` at level 0
        let mut k = j + 1;
        let expr_start = k;
        while k < end && !self.is_punct(k, '{') {
            if self.is_punct(k, '(') || self.is_punct(k, '[') {
                k = self.skip_balanced(k);
                continue;
            }
            k += 1;
        }
        if k >= end {
            return i + 1;
        }
        // pure path expression `[&[mut]] a.b.c`?
        let mut segs = Vec::new();
        let mut p = expr_start;
        while p < k {
            match self.tok(p) {
                Some(t) if t.is_punct('&') || t.is_ident("mut") || t.is_punct('.') => p += 1,
                Some(t) if t.kind == TokKind::Ident => {
                    segs.push(t.text.clone());
                    p += 1;
                }
                _ => {
                    segs.clear();
                    break;
                }
            }
        }
        let body_end = self.skip_balanced(k);
        if segs.is_empty() {
            // method-chain header (`for k in m.keys() {`): the chain
            // handler sees the `in` before the receiver and scans the
            // loop body itself
            self.run(expr_start, k);
        } else {
            let line = self.tok(i).map(|t| t.line).unwrap_or(0);
            if self.receiver_is_hash(&segs) {
                let what = format!("`for _ in {}`", segs.join("."));
                self.loop_body(k + 1, body_end - 1, line, &what);
            } else if let Some(name) = segs.first() {
                if let Some((tline, origin)) = self.tainted.get(name.as_str()).cloned() {
                    let _ = tline;
                    let what = format!("`for _ in {name}` ({origin})");
                    self.loop_body(k + 1, body_end - 1, line, &what);
                }
            }
        }
        // scan the body normally too (nested lets, chains, uses)
        self.run(k + 1, body_end - 1);
        body_end
    }

    /// Inside a loop iterating in hash order: direct sinks are findings,
    /// pushes into locals taint them.
    fn loop_body(&mut self, i: usize, end: usize, line: u32, what: &str) {
        if let Some(via) = self.span_sink(i, end) {
            self.report(line, what, &via);
            return;
        }
        // `target.push(..)` / `target.extend(..)` inside the loop body
        let mut j = i;
        while j < end {
            if matches!(self.ident(j), Some("push" | "extend"))
                && self.is_punct(j.wrapping_sub(1), '.')
                && self.is_punct(j + 1, '(')
            {
                if let Some((recv, _)) = self.receiver(j - 2) {
                    if let Some(name) = recv.first() {
                        self.tainted
                            .insert(name.clone(), (line, format!("filled from {what}")));
                    }
                }
            }
            j += 1;
        }
    }

    /// First sink call in `[i, end)`, rendered with its chain.
    fn span_sink(&self, i: usize, end: usize) -> Option<String> {
        let mut j = i;
        while j < end {
            if let Some(name) = self.ident(j) {
                let mac = self.is_punct(j + 1, '!')
                    && (self.is_punct(j + 2, '(')
                        || self.is_punct(j + 2, '[')
                        || self.is_punct(j + 2, '{'));
                let call = self.is_punct(j + 1, '(');
                if mac {
                    let full = format!("{name}!");
                    if is_sink_name(None, &full) {
                        return Some(format!("sink `{full}`"));
                    }
                } else if call {
                    if let Some(chain) = sink_chain(self.graph, self.sink_next, name) {
                        return Some(chain);
                    }
                }
            }
            j += 1;
        }
        None
    }

    /// Walk back from `i` collecting a `a.b.c` receiver path. Returns
    /// the segments (in source order) and the start index.
    fn receiver(&self, i: usize) -> Option<(Vec<String>, usize)> {
        let mut segs = Vec::new();
        let mut j = i;
        loop {
            let t = self.tok(j)?;
            if t.kind != TokKind::Ident {
                return None;
            }
            segs.push(t.text.clone());
            if j >= 1 && self.is_punct(j - 1, '.') && j >= 2 {
                j -= 2;
                continue;
            }
            break;
        }
        segs.reverse();
        Some((segs, j))
    }

    /// Is any path segment a known hash local, param, or field name?
    /// A bare local positively declared with an ordered type shadows a
    /// same-named hash field elsewhere in the workspace.
    fn receiver_is_hash(&self, segs: &[String]) -> bool {
        if let [only] = segs {
            if self.ordered_locals.contains(only) {
                return false;
            }
        }
        segs.iter()
            .any(|s| self.hash_locals.contains(s) || self.hash_fields.contains(s.as_str()))
    }

    /// Walk a method chain starting at `cur` (just past the iterator
    /// call's closing paren). `site` is `(line, what, receiver_start)`.
    /// Returns the resume index for the main scan.
    fn scan_chain(&mut self, mut cur: usize, end: usize, site: (u32, String, usize)) -> usize {
        let (line, what, recv_start) = site;
        let verdict = loop {
            if cur >= end || !self.is_punct(cur, '.') {
                break ChainEnd::Escapes(cur);
            }
            let Some(m) = self.ident(cur + 1).map(str::to_string) else {
                break ChainEnd::Escapes(cur);
            };
            // `.await`-style or field access: stop
            // turbofish: collect::<...>
            let mut args = cur + 2;
            let mut turbofish = (args, args);
            if self.is_punct(args, ':')
                && self.is_punct(args + 1, ':')
                && self.is_punct(args + 2, '<')
            {
                let g = self.skip_generics_at(args + 2);
                turbofish = (args + 2, g);
                args = g;
            }
            if !self.is_punct(args, '(') {
                break ChainEnd::Escapes(cur);
            }
            let args_end = self.skip_balanced(args);
            if ORDER_INSENSITIVE.contains(&m.as_str()) {
                break ChainEnd::Clean;
            }
            if m == "collect" {
                let tf = &self.toks()[turbofish.0..turbofish.1];
                let unordered_or_sorted = tf.iter().any(|t| {
                    t.is_ident("BTreeMap")
                        || t.is_ident("BTreeSet")
                        || t.is_ident("HashMap")
                        || t.is_ident("HashSet")
                        || t.is_ident("BinaryHeap")
                });
                if unordered_or_sorted {
                    break ChainEnd::Clean;
                }
                // Vec / String / unannotated: order escapes
                break ChainEnd::Escapes(args_end);
            }
            if ORDER_PRESERVING.contains(&m.as_str()) {
                // a sink inside the adapter's closure runs per element,
                // in hash order
                if let Some(via) = self.span_sink(args + 1, args_end - 1) {
                    break ChainEnd::Sink(via);
                }
                cur = args_end;
                continue;
            }
            // order-sensitive consumers and unknown methods: a sink in
            // the closure is a finding; otherwise the value escapes
            if let Some(via) = self.span_sink(args + 1, args_end - 1) {
                break ChainEnd::Sink(via);
            }
            break ChainEnd::Escapes(args_end);
        };
        match verdict {
            ChainEnd::Clean => cur.max(recv_start + 1),
            ChainEnd::Sink(via) => {
                self.report(line, &what, &via);
                cur.max(recv_start + 1)
            }
            ChainEnd::Escapes(after) => {
                self.escaped(line, what, recv_start, after, end);
                after.max(recv_start + 1)
            }
        }
    }

    /// `skip_generics` for chain turbofish (delegates to the same logic
    /// as the parser).
    fn skip_generics_at(&self, i: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while let Some(t) = self.tok(j) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                if !(j > 0 && self.is_punct(j - 1, '-')) {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                j = self.skip_balanced(j);
                continue;
            }
            j += 1;
        }
        j
    }

    /// An iteration's order escaped as a value: bind, loop, or argument.
    fn escaped(&mut self, line: u32, what: String, recv_start: usize, after: usize, end: usize) {
        // `for x in <chain> { body }`?
        let before = recv_start.wrapping_sub(1);
        let header = (0..=2).any(|back| self.ident(before.wrapping_sub(back)) == Some("in"));
        if header {
            // the loop's `{` may sit exactly at `end` when the chain was
            // scanned as a for-header expression
            let _ = end;
            let n = self.toks().len();
            let mut k = after;
            while k < n && !self.is_punct(k, '{') {
                k += 1;
            }
            if k < n {
                let body_end = self.skip_balanced(k);
                self.loop_body(k + 1, body_end - 1, line, &what);
            }
            return;
        }
        // `let [mut] name = <chain>` / `let name: T = <chain>`?
        if let Some(name) = self.binding_name(recv_start) {
            self.tainted.insert(name, (line, format!("from {what}")));
            return;
        }
        // argument to an enclosing call that reaches a sink?
        if let Some(via) = self.enclosing_sink(recv_start) {
            self.report(line, &what, &via);
        }
    }

    /// If the expression starting at `recv_start` is the RHS of a `let`,
    /// return the bound name.
    fn binding_name(&self, recv_start: usize) -> Option<String> {
        if recv_start == 0 || !self.is_punct(recv_start - 1, '=') {
            return None;
        }
        // walk back a bounded window for `let [mut] name [: Type] =`
        let lo = recv_start.saturating_sub(40);
        let mut j = recv_start - 1;
        while j > lo {
            j -= 1;
            if self.ident(j) == Some("let") {
                let mut k = j + 1;
                if self.ident(k) == Some("mut") {
                    k += 1;
                }
                return self.ident(k).map(str::to_string);
            }
            if self.is_punct(j, ';') || self.is_punct(j, '{') || self.is_punct(j, '}') {
                break;
            }
        }
        None
    }

    /// Innermost enclosing call at `pos` whose callee reaches a sink.
    /// Reconstructed by walking back over unbalanced `(`s.
    fn enclosing_sink(&self, pos: usize) -> Option<String> {
        let mut depth = 0i32;
        let mut j = pos;
        while j > 0 {
            j -= 1;
            let t = self.tok(j)?;
            if t.is_punct(')') {
                depth += 1;
            } else if t.is_punct('(') {
                if depth == 0 {
                    // callee? `name(` or `name!(`
                    let callee = if self.is_punct(j.wrapping_sub(1), '!') {
                        self.ident(j.wrapping_sub(2)).map(|n| format!("{n}!"))
                    } else {
                        self.ident(j.wrapping_sub(1)).map(str::to_string)
                    };
                    if let Some(name) = callee {
                        if let Some(chain) = sink_chain(self.graph, self.sink_next, &name) {
                            return Some(chain);
                        }
                    }
                    // keep walking outward
                } else {
                    depth -= 1;
                }
            } else if t.is_punct(';') && depth == 0 {
                return None;
            }
        }
        None
    }

    /// A sink macro at `j` (`format!`, `writeln!`, ...): inline format
    /// captures (`"{ks:?}"`) never appear as identifier tokens, so scan
    /// the macro's string literals for tainted names by text.
    fn inline_captures(&mut self, j: usize, mac: &str) {
        let args_end = self.skip_balanced(j + 2);
        let names: Vec<String> = self.tainted.keys().cloned().collect();
        for name in names {
            let open = format!("{{{name}");
            let hit = self.toks()[j + 3..args_end.saturating_sub(1)]
                .iter()
                .any(|t| {
                    t.kind == TokKind::Str
                        && t.text
                            .split(&open)
                            .skip(1)
                            .any(|rest| rest.starts_with('}') || rest.starts_with(':'))
                });
            if hit {
                if let Some((_, origin)) = self.tainted.remove(&name) {
                    let line = self.tok(j).map(|t| t.line).unwrap_or(0);
                    let what = format!("`{name}` ({origin})");
                    self.report(line, &what, &format!("sink `{mac}`"));
                }
            }
        }
    }

    /// A use of a tainted local: sorting launders it, sinking flags it.
    fn tainted_use(&mut self, i: usize, end: usize, name: String) -> usize {
        let Some((line, origin)) = self.tainted.get(&name).cloned() else {
            return i + 1;
        };
        let _ = line;
        // `name.sort*()` launders
        if self.is_punct(i + 1, '.') {
            if let Some(m) = self.ident(i + 2) {
                if SORTERS.contains(&m) {
                    self.tainted.remove(&name);
                    return i + 3;
                }
            }
        }
        // used inside a sink-reaching call?
        if let Some(via) = self.enclosing_sink(i) {
            let use_line = self.tok(i).map(|t| t.line).unwrap_or(0);
            let what = format!("`{name}` ({origin})");
            self.report(use_line, &what, &via);
            self.tainted.remove(&name);
            return i + 1;
        }
        let _ = end;
        i + 1
    }
}

// --- SC108: interprocedural panic reachability ---------------------------

fn sc108(
    graph: &CallGraph,
    allow: &Allowlist,
    in_scope: &impl Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let in_bin = |rel: &str| rel.contains("/src/bin/");
    // a panic site is sanctioned when an SC101 allowlist entry covers it
    let sanctioned = |rel: &str, line: u32| {
        let probe = Diagnostic::new(
            "SC101",
            Severity::Error,
            format!("{rel}:{line}"),
            "panic-reachability probe",
        );
        allow.waiver(&probe).is_some()
    };
    let seeds: Vec<bool> = (0..graph.nodes.len())
        .map(|i| {
            let node = &graph.nodes[i];
            !in_bin(&node.rel)
                && graph
                    .def(i)
                    .panics
                    .iter()
                    .any(|p| !sanctioned(&node.rel, p.line))
        })
        .collect();
    let next = graph.reach(|i| seeds[i]);
    for (i, node) in graph.nodes.iter().enumerate() {
        if !in_scope(node.file) || !node.is_pub || in_bin(&node.rel) || next[i].is_none() {
            continue;
        }
        let chain = graph.chain(i, &next);
        if chain.len() < 2 {
            continue; // the entry panics directly: that is SC101's report
        }
        // a chain that only descends into the entry's own closures is a
        // panic in the entry's own body — also SC101's report
        if chain[1..].iter().all(|&n| graph.def(n).is_closure) {
            continue;
        }
        let seed = *chain.last().unwrap_or(&i);
        let site = graph
            .def(seed)
            .panics
            .iter()
            .find(|p| !sanctioned(&graph.nodes[seed].rel, p.line))
            .cloned();
        let Some(site) = site else { continue };
        out.push(Diagnostic::new(
            "SC108",
            Severity::Error,
            format!("{}:{}", node.rel, node.line),
            format!(
                "public `{}` can reach a panic: `{}` (`{}` at {}:{})",
                node.name,
                graph.chain_names(&chain).replace(" -> ", "` -> `"),
                site.what,
                graph.nodes[seed].rel,
                site.line
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let sources = vec![("crates/demo/src/lib.rs".to_string(), src.to_string())];
        analyze_sources(&sources, &Allowlist::default())
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn hash_keys_into_writeln_is_flagged() {
        let diags = run("use std::collections::HashMap;\n\
             pub fn emit(m: &HashMap<u32, u32>, out: &mut String) {\n\
                 for k in m.keys() { out.push_str(&k.to_string()); }\n\
             }\n");
        assert_eq!(codes(&diags), vec!["SC107"]);
        assert!(diags[0].message.contains("push_str"), "{diags:?}");
        assert!(diags[0].location.ends_with(":3"), "{diags:?}");
    }

    #[test]
    fn order_insensitive_reductions_are_clean() {
        let diags = run("use std::collections::HashMap;\n\
             pub fn total(m: &HashMap<u32, u32>) -> u32 {\n\
                 let n = m.values().count() as u32;\n\
                 n + m.values().sum::<u32>()\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn collect_into_btree_launders() {
        let diags = run("use std::collections::{BTreeMap, HashMap};\n\
             pub fn snapshot(m: &HashMap<u32, u32>) -> BTreeMap<u32, u32> {\n\
                 m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u32, u32>>()\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sort_before_emit_launders() {
        let diags = run("use std::collections::HashMap;\n\
             pub fn emit(m: &HashMap<u32, u32>, out: &mut String) {\n\
                 let mut ks = m.keys().copied().collect::<Vec<u32>>();\n\
                 ks.sort();\n\
                 for k in ks { out.push_str(&k.to_string()); }\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn ordered_local_shadows_same_named_hash_field() {
        // `index` is a HashMap *field* in another file; a local BTreeMap
        // with the same name must not inherit the field's hash taint
        let sources = vec![
            (
                "crates/store/src/lib.rs".to_string(),
                "use std::collections::HashMap;\n\
                 pub struct Store { pub index: HashMap<u32, u32> }\n"
                    .to_string(),
            ),
            (
                "crates/demo/src/lib.rs".to_string(),
                "use std::collections::BTreeMap;\n\
                 pub fn emit(out: &mut String) {\n\
                     let mut index: BTreeMap<u32, u32> = BTreeMap::new();\n\
                     index.insert(1, 2);\n\
                     for k in index.keys() { out.push_str(&k.to_string()); }\n\
                 }\n"
                .to_string(),
            ),
        ];
        let diags = analyze_sources(&sources, &Allowlist::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unsorted_vec_reaching_sink_is_flagged() {
        let diags = run("use std::collections::HashMap;\n\
             pub fn emit(m: &HashMap<u32, u32>) -> String {\n\
                 let ks = m.keys().copied().collect::<Vec<u32>>();\n\
                 format!(\"{ks:?}\")\n\
             }\n");
        assert_eq!(codes(&diags), vec!["SC107"]);
    }

    #[test]
    fn interprocedural_sink_is_found_with_chain() {
        let diags = run("use std::collections::HashMap;\n\
             fn render_row(k: u32) -> String { format!(\"{k}\") }\n\
             fn emit_rows(ks: Vec<u32>) -> String {\n\
                 ks.iter().map(|k| render_row(*k)).collect::<String>()\n\
             }\n\
             pub fn table(m: &HashMap<u32, u32>) -> String {\n\
                 emit_rows(m.keys().copied().collect::<Vec<u32>>())\n\
             }\n");
        assert_eq!(codes(&diags), vec!["SC107"]);
        assert!(diags[0].message.contains("emit_rows"), "{diags:?}");
    }

    #[test]
    fn sc108_reports_the_call_chain() {
        let diags = run("fn deep(x: Option<u8>) -> u8 { x.unwrap() }\n\
             fn middle(x: Option<u8>) -> u8 { deep(x) }\n\
             pub fn api(x: Option<u8>) -> u8 { middle(x) }\n");
        assert_eq!(codes(&diags), vec!["SC108"]);
        assert!(diags[0].message.contains("api` -> `middle` -> `deep"));
        assert!(diags[0].message.contains("unwrap"));
    }

    #[test]
    fn sc108_direct_panic_is_left_to_sc101() {
        let diags = run("pub fn api(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sc101_waivers_sanction_sc108_seeds() {
        let allow = Allowlist::parse(
            "[[allow]]\ncode = \"SC101\"\npath = \"crates/demo/src/lib.rs\"\n\
             reason = \"table lookups are total\"\n",
        )
        .expect("parse");
        let sources = vec![(
            "crates/demo/src/lib.rs".to_string(),
            "fn deep(x: Option<u8>) -> u8 { x.unwrap() }\n\
             pub fn api(x: Option<u8>) -> u8 { deep(x) }\n"
                .to_string(),
        )];
        let diags = analyze_sources(&sources, &allow);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
