//! Engine 1: the static policy verifier.
//!
//! Consumes a [`RsConfig`] plus a community [`Dictionary`] — no simulation
//! run — and reports, with stable diagnostic codes:
//!
//! * **SC001** — shadowed import rules (can never match);
//! * **SC002** — contradictory actions on intersecting rule matchers;
//! * **SC003** — statically ineffective action targets (the paper's §5.3
//!   pre-flight: the target AS has no session at the route server);
//! * **SC004** — ambiguous dictionary patterns (one community value, two
//!   semantics);
//! * **SC005** — import-rule actions that can never take effect: a
//!   symbolic route is pushed through import→action→export and the
//!   export outcome compared with and without the applied action
//!   (abstract interpretation of action *composition*, generalizing
//!   SC003's per-target check);
//! * **SC006** — cross-dictionary drift: the same community pattern
//!   mapped to conflicting action semantics at different IXPs, the
//!   static analogue of the paper's cross-IXP characterization
//!   ([`verify_cross_dictionaries`]).
//!
//! See the crate-level docs for the range-intersection model behind
//! SC001/SC004.

use std::collections::{BTreeMap, BTreeSet};

use bgp_model::asn::Asn;
use bgp_model::prefix::Afi;
use bgp_model::route::Route;

use community_dict::action::{Action, ActionKind, Target};
use community_dict::classify::classify_route;
use community_dict::dictionary::Dictionary;
use community_dict::entry::DictionaryEntry;
use community_dict::pattern::Pattern;
use community_dict::semantics::Semantics;

use route_server::config::RsConfig;
use route_server::policy::RoutePolicy;
use route_server::rules::{ImportRule, RuleAction, RuleMatch};

use crate::diag::{Diagnostic, Severity};

/// Run every policy check. `members` is the configured member set when
/// known (enables SC003); `None` skips membership-dependent checks.
pub fn verify(
    config: &RsConfig,
    dict: &Dictionary,
    members: Option<&BTreeSet<Asn>>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_shadowed_rules(&config.import_rules, &mut out);
    check_contradictory_rules(&config.import_rules, &mut out);
    if let Some(members) = members {
        check_ineffective_rules(&config.import_rules, members, &mut out);
        check_ineffective_entries(dict, members, &mut out);
    }
    check_ambiguous_patterns(dict, &mut out);
    check_composed_actions(config, dict, &mut out);
    out
}

/// The single-AS action targets on `routes` (classified against `dict`)
/// that have no session at the RS — the static side of the §5.5
/// effectiveness split. The dynamic side (`examples/ineffective_audit`)
/// must compute the identical set from the route server's digested
/// policies.
pub fn ineffective_targets<'a>(
    dict: &Dictionary,
    members: &BTreeSet<Asn>,
    routes: impl Iterator<Item = &'a Route>,
) -> BTreeSet<Asn> {
    let mut out = BTreeSet::new();
    for route in routes {
        for (_, classification) in classify_route(dict, route) {
            let Some(action) = classification.action() else {
                continue;
            };
            if let Target::Peer(asn) = action.target {
                if !members.contains(&asn) {
                    out.insert(asn);
                }
            }
        }
    }
    out
}

// --- match-set model ---------------------------------------------------

/// A rule matcher as closed sets per dimension (`None` = everything).
/// Prefix length is the one interval-valued dimension.
#[derive(Debug, Clone, Copy)]
struct Dims {
    afi: Option<Afi>,
    len: (u8, u8),
    peer: Option<Asn>,
    community: Option<Pattern>,
}

fn dims(m: &RuleMatch) -> Dims {
    Dims {
        afi: m.afi,
        len: m.prefix_len.unwrap_or((0, 128)),
        peer: m.peer,
        community: m.community,
    }
}

fn afi_covers(a: Option<Afi>, b: Option<Afi>) -> bool {
    match (a, b) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(x), Some(y)) => x == y,
    }
}

fn peer_covers(a: Option<Asn>, b: Option<Asn>) -> bool {
    match (a, b) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(x), Some(y)) => x == y,
    }
}

/// `(high, lo, hi)` of the community values a pattern matches.
fn pattern_interval(p: &Pattern) -> (u16, u16, u16) {
    match *p {
        Pattern::Exact(c) => (c.high(), c.low(), c.low()),
        Pattern::PeerAsnLow { high } => (high, 0, u16::MAX),
        Pattern::LowRange { high, lo, hi } => (high, lo, hi),
    }
}

/// Does `a`'s community constraint cover `b`'s? A route satisfying
/// "has a community matching `b`" then also satisfies `a`.
fn community_covers(a: Option<Pattern>, b: Option<Pattern>) -> bool {
    match (a, b) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(pa), Some(pb)) => {
            let (ha, la, ra) = pattern_interval(&pa);
            let (hb, lb, rb) = pattern_interval(&pb);
            ha == hb && la <= lb && rb <= ra
        }
    }
}

fn len_covers(a: (u8, u8), b: (u8, u8)) -> bool {
    a.0 <= b.0 && b.1 <= a.1
}

fn covers_except_len(a: &Dims, b: &Dims) -> bool {
    afi_covers(a.afi, b.afi)
        && peer_covers(a.peer, b.peer)
        && community_covers(a.community, b.community)
}

/// Can some route match both rules? Communities never exclude each
/// other here: a route may carry one community matching each pattern.
fn intersects(a: &Dims, b: &Dims) -> bool {
    let afi_ok = match (a.afi, b.afi) {
        (Some(x), Some(y)) => x == y,
        _ => true,
    };
    let peer_ok = match (a.peer, b.peer) {
        (Some(x), Some(y)) => x == y,
        _ => true,
    };
    let len_ok = a.len.0 <= b.len.1 && b.len.0 <= a.len.1;
    afi_ok && peer_ok && len_ok
}

// --- SC001: shadowed rules ---------------------------------------------

fn check_shadowed_rules(rules: &[ImportRule], out: &mut Vec<Diagnostic>) {
    let all: Vec<Dims> = rules.iter().map(|r| dims(&r.matcher)).collect();
    for (j, rule) in rules.iter().enumerate() {
        let late = &all[j];
        // single-rule coverage
        if let Some((i, earlier)) = rules[..j]
            .iter()
            .enumerate()
            .find(|(i, _)| covers_except_len(&all[*i], late) && len_covers(all[*i].len, late.len))
        {
            out.push(Diagnostic::new(
                "SC001",
                Severity::Error,
                format!("import_rules[{j}] '{}'", rule.name),
                format!(
                    "rule can never match: every route it matches is already \
                     decided by earlier rule '{}' (#{i})",
                    earlier.name
                ),
            ));
            continue;
        }
        // multi-rule coverage: rules covering all dimensions except
        // prefix length, whose length intervals union-cover this rule's.
        let mut intervals: Vec<(u8, u8)> = rules[..j]
            .iter()
            .enumerate()
            .filter(|(i, _)| covers_except_len(&all[*i], late))
            .map(|(i, _)| all[i].len)
            .collect();
        if intervals.len() < 2 {
            continue;
        }
        intervals.sort_unstable();
        let mut covered_to: Option<u8> = None; // highest length covered so far, from late.len.0
        for (lo, hi) in intervals {
            let reach = match covered_to {
                None => {
                    if lo > late.len.0 {
                        break;
                    }
                    hi
                }
                Some(c) => {
                    if lo > c.saturating_add(1) {
                        break;
                    }
                    c.max(hi)
                }
            };
            covered_to = Some(reach);
            if reach >= late.len.1 {
                break;
            }
        }
        if covered_to.is_some_and(|c| c >= late.len.1) {
            out.push(Diagnostic::new(
                "SC001",
                Severity::Error,
                format!("import_rules[{j}] '{}'", rule.name),
                "rule can never match: earlier rules jointly cover its entire \
                 prefix-length range"
                    .to_string(),
            ));
        }
    }
}

// --- SC002: contradictory actions --------------------------------------

fn contradictory(a: Action, b: Action) -> bool {
    let pair = |x: &Action, y: &Action| match (x.kind, y.kind) {
        (ActionKind::AnnounceOnlyTo, ActionKind::DoNotAnnounceTo) => x.target == y.target,
        (ActionKind::Blackhole, ActionKind::PrependTo(_)) => true,
        _ => false,
    };
    pair(&a, &b) || pair(&b, &a)
}

fn check_contradictory_rules(rules: &[ImportRule], out: &mut Vec<Diagnostic>) {
    let all: Vec<Dims> = rules.iter().map(|r| dims(&r.matcher)).collect();
    for i in 0..rules.len() {
        let RuleAction::Apply(a) = rules[i].action else {
            continue;
        };
        for j in (i + 1)..rules.len() {
            let RuleAction::Apply(b) = rules[j].action else {
                continue;
            };
            if intersects(&all[i], &all[j]) && contradictory(a, b) {
                out.push(Diagnostic::new(
                    "SC002",
                    Severity::Error,
                    format!(
                        "import_rules[{i}] '{}' vs import_rules[{j}] '{}'",
                        rules[i].name, rules[j].name
                    ),
                    format!(
                        "rules with intersecting matchers apply contradictory \
                         actions ({:?} vs {:?})",
                        a.kind, b.kind
                    ),
                ));
            }
        }
    }
}

// --- SC003: statically ineffective targets ------------------------------

fn check_ineffective_rules(
    rules: &[ImportRule],
    members: &BTreeSet<Asn>,
    out: &mut Vec<Diagnostic>,
) {
    for (i, rule) in rules.iter().enumerate() {
        let RuleAction::Apply(action) = rule.action else {
            continue;
        };
        if let Target::Peer(asn) = action.target {
            if !members.contains(&asn) {
                out.push(Diagnostic::new(
                    "SC003",
                    Severity::Error,
                    format!("import_rules[{i}] '{}'", rule.name),
                    format!(
                        "action targets AS{} which has no session at the \
                         route server — the rule is statically ineffective",
                        asn.value()
                    ),
                ));
            }
        }
    }
}

fn check_ineffective_entries(
    dict: &Dictionary,
    members: &BTreeSet<Asn>,
    out: &mut Vec<Diagnostic>,
) {
    for entry in dict.entries() {
        // Templated patterns hold a placeholder target resolved per
        // matched community; only concrete targets are statically known.
        if matches!(entry.pattern, Pattern::PeerAsnLow { .. }) {
            continue;
        }
        let Semantics::Action(action) = entry.semantics else {
            continue;
        };
        if let Target::Peer(asn) = action.target {
            if !members.contains(&asn) {
                // Warning, not error: the paper (§5.5) shows operators tag
                // absent targets defensively on purpose; this must not
                // block collection pre-flight.
                out.push(Diagnostic::new(
                    "SC003",
                    Severity::Warning,
                    format!("dict({:?}) {:?}", dict.ixp(), entry.pattern),
                    format!(
                        "dictionary action '{}' targets AS{} which has no \
                         session at the route server",
                        entry.description,
                        asn.value()
                    ),
                ));
            }
        }
    }
}

// --- SC004: ambiguous dictionary patterns -------------------------------

/// The community values matched by both patterns, if any.
fn overlap(p1: &Pattern, p2: &Pattern) -> Option<(u16, u16, u16)> {
    let (h1, l1, r1) = pattern_interval(p1);
    let (h2, l2, r2) = pattern_interval(p2);
    if h1 != h2 {
        return None;
    }
    let lo = l1.max(l2);
    let hi = r1.min(r2);
    if lo <= hi {
        Some((h1, lo, hi))
    } else {
        None
    }
}

fn resolved(e: &DictionaryEntry, high: u16, low: u16) -> Semantics {
    let c = bgp_model::community::StandardCommunity::from_parts(high, low);
    e.pattern.resolve(e.semantics, c)
}

fn check_ambiguous_patterns(dict: &Dictionary, out: &mut Vec<Diagnostic>) {
    // group by the fixed high bits: patterns with different highs are
    // disjoint by construction
    let mut by_high: BTreeMap<u16, Vec<usize>> = BTreeMap::new();
    let entries = dict.entries();
    for (i, e) in entries.iter().enumerate() {
        by_high.entry(e.pattern.high()).or_default().push(i);
    }
    for group in by_high.values() {
        for (gi, &i) in group.iter().enumerate() {
            for &j in &group[gi + 1..] {
                let (e1, e2) = (&entries[i], &entries[j]);
                let Some((high, lo, hi)) = overlap(&e1.pattern, &e2.pattern) else {
                    continue;
                };
                // sample the overlap: a finding requires a concrete value
                // that genuinely resolves to two different meanings
                let mid = lo + (hi - lo) / 2;
                let witness = [lo, mid, hi]
                    .into_iter()
                    .find(|&v| resolved(e1, high, v) != resolved(e2, high, v));
                let Some(v) = witness else {
                    continue;
                };
                // containment is deterministically resolved by the
                // specificity precedence (smaller pattern wins) — still
                // ambiguous on paper, but only warning-grade. Partial or
                // exact overlap has no such tiebreak: error.
                let (_, l1, r1) = pattern_interval(&e1.pattern);
                let (_, l2, r2) = pattern_interval(&e2.pattern);
                let strict_containment =
                    (l1, r1) != (l2, r2) && ((l1 <= l2 && r2 <= r1) || (l2 <= l1 && r1 <= r2));
                let severity = if strict_containment {
                    Severity::Warning
                } else {
                    Severity::Error
                };
                out.push(Diagnostic::new(
                    "SC004",
                    severity,
                    format!(
                        "dict({:?}) {:?} vs {:?}",
                        dict.ixp(),
                        e1.pattern,
                        e2.pattern
                    ),
                    format!(
                        "community {high}:{v} parses under two semantics \
                         ('{}' vs '{}')",
                        e1.description, e2.description
                    ),
                ));
            }
        }
    }
}

// --- SC005: actions that can never take effect ---------------------------

/// Export-visible outcome equality of two digested policies under
/// `config`. Probes [`RoutePolicy::decide`] at every ASN either policy
/// names plus one fresh sentinel (decisions are constant over unnamed
/// peers, so the sentinel stands for all of them), and the blackhole
/// flag only where the IXP honors it.
fn same_outcome(config: &RsConfig, a: &RoutePolicy, b: &RoutePolicy) -> bool {
    let mut peers: BTreeSet<Asn> = a.peer_targets().chain(b.peer_targets()).collect();
    let mut sentinel = 64512u32;
    while peers.contains(&Asn(sentinel)) {
        sentinel += 1;
    }
    peers.insert(Asn(sentinel));
    peers.iter().all(|&p| a.decide(p) == b.decide(p))
        && (!config.blackhole_enabled || a.blackhole == b.blackhole)
}

/// The minimal-carrier base policy for one witness: a route carrying
/// exactly the matcher's community, digested against the dictionary.
fn base_policy(dict: &Dictionary, witness: Option<(u16, u16)>) -> RoutePolicy {
    let mut p = RoutePolicy::default();
    if let Some((high, low)) = witness {
        let c = bgp_model::community::StandardCommunity::from_parts(high, low);
        if let Some(action) = dict.classify(c).action() {
            p.apply_action(action);
        }
    }
    p
}

/// SC005: abstract-interpret each `Apply` rule along import→action→
/// export. The symbolic route carries exactly what the matcher requires
/// (its community pattern, sampled at `[lo, mid, hi]`); if composing the
/// applied action changes the export outcome for no witness, the action
/// can never take effect.
fn check_composed_actions(config: &RsConfig, dict: &Dictionary, out: &mut Vec<Diagnostic>) {
    for (i, rule) in config.import_rules.iter().enumerate() {
        let RuleAction::Apply(applied) = rule.action else {
            continue;
        };
        // witness communities the matched route must carry
        let witnesses: Vec<Option<(u16, u16)>> = match rule.matcher.community {
            Some(p) => {
                let (high, lo, hi) = pattern_interval(&p);
                let mid = lo + (hi - lo) / 2;
                let mut vs: Vec<u16> = vec![lo, mid, hi];
                vs.dedup();
                vs.into_iter().map(|v| Some((high, v))).collect()
            }
            None => vec![None],
        };
        let ineffective = witnesses.iter().all(|&w| {
            let base = base_policy(dict, w);
            let mut composed = base.clone();
            composed.apply_action(applied);
            same_outcome(config, &base, &composed)
        });
        if !ineffective {
            continue;
        }
        let witness_text = match witnesses[0] {
            Some((h, v)) => format!("witness community {h}:{v}"),
            None => "witness route with no communities".to_string(),
        };
        let message = if applied.kind == ActionKind::Blackhole && !config.blackhole_enabled {
            format!(
                "applied action '{applied}' can never take effect: this IXP \
                 does not honor blackhole requests ({witness_text})"
            )
        } else {
            format!(
                "applied action '{applied}' can never take effect: the export \
                 outcome is identical with and without it ({witness_text})"
            )
        };
        out.push(Diagnostic::new(
            "SC005",
            Severity::Error,
            format!("import_rules[{i}] '{}'", rule.name),
            message,
        ));
    }
}

// --- SC006: cross-dictionary semantic drift -------------------------------

/// SC006: the same community pattern mapped to conflicting action
/// semantics at different IXPs. For every overlapping action-entry pair
/// across two dictionaries, witness values from the overlap are resolved
/// through the production [`Pattern::resolve`]; actions in a different
/// [`ActionGroup`](community_dict::action::ActionGroup) are error-grade
/// conflicts, same-group disagreements (e.g. avoid-all vs avoid-peer)
/// are warning-grade scope drift.
pub fn verify_cross_dictionaries(dicts: &[Dictionary]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (di, d1) in dicts.iter().enumerate() {
        for d2 in &dicts[di + 1..] {
            if d1.ixp() == d2.ixp() {
                continue;
            }
            for e1 in d1.entries() {
                if !e1.semantics.is_action() {
                    continue;
                }
                for e2 in d2.entries() {
                    if !e2.semantics.is_action() {
                        continue;
                    }
                    let Some((high, lo, hi)) = overlap(&e1.pattern, &e2.pattern) else {
                        continue;
                    };
                    let mid = lo + (hi - lo) / 2;
                    let conflict = [lo, mid, hi].into_iter().find_map(|v| {
                        let a1 = resolved(e1, high, v).action()?;
                        let a2 = resolved(e2, high, v).action()?;
                        (a1 != a2).then_some((v, a1, a2))
                    });
                    let Some((v, a1, a2)) = conflict else {
                        continue;
                    };
                    let severity = if a1.kind.group() == a2.kind.group() {
                        Severity::Warning
                    } else {
                        Severity::Error
                    };
                    let drift = if severity == Severity::Warning {
                        "scope drift"
                    } else {
                        "conflicting actions"
                    };
                    out.push(Diagnostic::new(
                        "SC006",
                        severity,
                        format!(
                            "dict({:?}) {:?} vs dict({:?}) {:?}",
                            d1.ixp(),
                            e1.pattern,
                            d2.ixp(),
                            e2.pattern
                        ),
                        format!(
                            "{drift}: community {high}:{v} means '{a1}' at {:?} \
                             but '{a2}' at {:?}",
                            d1.ixp(),
                            d2.ixp()
                        ),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use community_dict::entry::DictionaryEntry;
    use community_dict::ixp::IxpId;
    use community_dict::semantics::InfoKind;

    use bgp_model::community::StandardCommunity;

    const C: fn(u16, u16) -> StandardCommunity = StandardCommunity::from_parts;

    fn rule(name: &str, matcher: RuleMatch, action: RuleAction) -> ImportRule {
        ImportRule {
            name: name.into(),
            matcher,
            action,
        }
    }

    fn config_with(rules: Vec<ImportRule>) -> RsConfig {
        RsConfig::for_ixp(IxpId::DeCixFra).with_import_rules(rules)
    }

    fn empty_dict() -> Dictionary {
        Dictionary::new(IxpId::DeCixFra, Vec::new())
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_config_is_clean() {
        let diags = verify(&config_with(Vec::new()), &empty_dict(), None);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn catch_all_shadows_later_rule() {
        let diags = verify(
            &config_with(vec![
                rule("all", RuleMatch::default(), RuleAction::Accept),
                rule(
                    "narrow",
                    RuleMatch {
                        prefix_len: Some((24, 24)),
                        ..RuleMatch::default()
                    },
                    RuleAction::Reject,
                ),
            ]),
            &empty_dict(),
            None,
        );
        assert_eq!(codes(&diags), vec!["SC001"]);
        assert!(diags[0].location.contains("narrow"));
    }

    #[test]
    fn narrower_first_is_not_shadowed() {
        let diags = verify(
            &config_with(vec![
                rule(
                    "narrow",
                    RuleMatch {
                        prefix_len: Some((24, 24)),
                        ..RuleMatch::default()
                    },
                    RuleAction::Reject,
                ),
                rule("all", RuleMatch::default(), RuleAction::Accept),
            ]),
            &empty_dict(),
            None,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn union_of_length_ranges_shadows() {
        let diags = verify(
            &config_with(vec![
                rule(
                    "short",
                    RuleMatch {
                        prefix_len: Some((0, 20)),
                        ..RuleMatch::default()
                    },
                    RuleAction::Accept,
                ),
                rule(
                    "long",
                    RuleMatch {
                        prefix_len: Some((21, 128)),
                        ..RuleMatch::default()
                    },
                    RuleAction::Accept,
                ),
                rule("dead", RuleMatch::default(), RuleAction::Reject),
            ]),
            &empty_dict(),
            None,
        );
        assert_eq!(codes(&diags), vec!["SC001"]);
        assert!(diags[0].message.contains("jointly"));
    }

    #[test]
    fn gap_in_union_means_no_shadow() {
        let diags = verify(
            &config_with(vec![
                rule(
                    "short",
                    RuleMatch {
                        prefix_len: Some((0, 19)),
                        ..RuleMatch::default()
                    },
                    RuleAction::Accept,
                ),
                rule(
                    "long",
                    RuleMatch {
                        prefix_len: Some((21, 128)),
                        ..RuleMatch::default()
                    },
                    RuleAction::Accept,
                ),
                rule("alive", RuleMatch::default(), RuleAction::Reject),
            ]),
            &empty_dict(),
            None,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn community_pattern_containment_shadows() {
        let broad = Pattern::PeerAsnLow { high: 0 };
        let narrow = Pattern::Exact(C(0, 6939));
        let diags = verify(
            &config_with(vec![
                rule(
                    "broad",
                    RuleMatch {
                        community: Some(broad),
                        ..RuleMatch::default()
                    },
                    RuleAction::Reject,
                ),
                rule(
                    "narrow",
                    RuleMatch {
                        community: Some(narrow),
                        ..RuleMatch::default()
                    },
                    RuleAction::Accept,
                ),
            ]),
            &empty_dict(),
            None,
        );
        assert_eq!(codes(&diags), vec!["SC001"]);
    }

    #[test]
    fn contradictory_apply_rules_flagged() {
        let diags = verify(
            &config_with(vec![
                rule(
                    "only-he",
                    RuleMatch {
                        afi: Some(Afi::Ipv4),
                        ..RuleMatch::default()
                    },
                    RuleAction::Apply(Action::only(Asn(6939))),
                ),
                rule(
                    "avoid-he",
                    RuleMatch {
                        prefix_len: Some((24, 24)),
                        ..RuleMatch::default()
                    },
                    RuleAction::Apply(Action::avoid(Asn(6939))),
                ),
            ]),
            &empty_dict(),
            None,
        );
        // the narrow rule is also shadow-free and target-checks are off
        assert_eq!(codes(&diags), vec!["SC002"]);
    }

    #[test]
    fn blackhole_plus_prepend_flagged() {
        let diags = verify(
            &config_with(vec![
                rule(
                    "bh",
                    RuleMatch {
                        afi: Some(Afi::Ipv4),
                        ..RuleMatch::default()
                    },
                    RuleAction::Apply(Action::blackhole()),
                ),
                rule(
                    "pp",
                    RuleMatch {
                        peer: Some(Asn(64500)),
                        ..RuleMatch::default()
                    },
                    RuleAction::Apply(Action::new(
                        ActionKind::PrependTo(2),
                        Target::Peer(Asn(6939)),
                    )),
                ),
            ]),
            &empty_dict(),
            None,
        );
        assert_eq!(codes(&diags), vec!["SC002"]);
    }

    #[test]
    fn disjoint_matchers_do_not_contradict() {
        let diags = verify(
            &config_with(vec![
                rule(
                    "v4",
                    RuleMatch {
                        afi: Some(Afi::Ipv4),
                        ..RuleMatch::default()
                    },
                    RuleAction::Apply(Action::only(Asn(6939))),
                ),
                rule(
                    "v6",
                    RuleMatch {
                        afi: Some(Afi::Ipv6),
                        ..RuleMatch::default()
                    },
                    RuleAction::Apply(Action::avoid(Asn(6939))),
                ),
            ]),
            &empty_dict(),
            None,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn ineffective_rule_target_flagged_with_members() {
        let members: BTreeSet<Asn> = [Asn(39120), Asn(6939)].into_iter().collect();
        let config = config_with(vec![rule(
            "avoid-ovh",
            RuleMatch::default(),
            RuleAction::Apply(Action::avoid(Asn(16276))),
        )]);
        let diags = verify(&config, &empty_dict(), Some(&members));
        assert_eq!(codes(&diags), vec!["SC003"]);
        assert_eq!(diags[0].severity, Severity::Error);
        // without a member set the check is skipped
        assert!(verify(&config, &empty_dict(), None).is_empty());
    }

    #[test]
    fn ineffective_dict_entry_is_warning() {
        let members: BTreeSet<Asn> = [Asn(39120)].into_iter().collect();
        let dict = Dictionary::new(
            IxpId::DeCixFra,
            vec![DictionaryEntry::new(
                Pattern::Exact(C(65001, 16276)),
                Semantics::Action(Action::avoid(Asn(16276))),
                "avoid OVH",
            )],
        );
        let diags = verify(&config_with(Vec::new()), &dict, Some(&members));
        assert_eq!(codes(&diags), vec!["SC003"]);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn ambiguous_partial_overlap_is_error() {
        let dict = Dictionary::new(
            IxpId::DeCixFra,
            vec![
                DictionaryEntry::new(
                    Pattern::LowRange {
                        high: 65100,
                        lo: 0,
                        hi: 10,
                    },
                    Semantics::Informational(InfoKind::LearnedAt(0)),
                    "learned at",
                ),
                DictionaryEntry::new(
                    Pattern::LowRange {
                        high: 65100,
                        lo: 5,
                        hi: 20,
                    },
                    Semantics::Action(Action::blackhole()),
                    "blackhole block",
                ),
            ],
        );
        let diags = verify(&config_with(Vec::new()), &dict, None);
        assert_eq!(codes(&diags), vec!["SC004"]);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn containment_with_distinct_semantics_is_warning() {
        let dict = Dictionary::new(
            IxpId::DeCixFra,
            vec![
                DictionaryEntry::new(
                    Pattern::Exact(C(0, 6695)),
                    Semantics::Action(Action::new(ActionKind::DoNotAnnounceTo, Target::AllPeers)),
                    "avoid all",
                ),
                DictionaryEntry::new(
                    Pattern::PeerAsnLow { high: 0 },
                    Semantics::Action(Action::avoid(Asn(0))),
                    "avoid peer",
                ),
            ],
        );
        let diags = verify(&config_with(Vec::new()), &dict, None);
        assert_eq!(codes(&diags), vec!["SC004"]);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn containment_with_agreeing_semantics_is_silent() {
        // an exact entry that documents exactly what the template resolves
        // to is redundancy, not ambiguity
        let dict = Dictionary::new(
            IxpId::DeCixFra,
            vec![
                DictionaryEntry::new(
                    Pattern::Exact(C(0, 6939)),
                    Semantics::Action(Action::avoid(Asn(6939))),
                    "avoid HE",
                ),
                DictionaryEntry::new(
                    Pattern::PeerAsnLow { high: 0 },
                    Semantics::Action(Action::avoid(Asn(0))),
                    "avoid peer",
                ),
            ],
        );
        let diags = verify(&config_with(Vec::new()), &dict, None);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sc005_action_already_implied_by_matched_community() {
        // the matcher requires the avoid-all community; composing an
        // avoid-HE on top changes nothing: HE is already denied
        let avoid_all = Pattern::Exact(C(65001, 49999));
        let dict = Dictionary::new(
            IxpId::DeCixFra,
            vec![DictionaryEntry::new(
                avoid_all,
                Semantics::Action(Action::new(ActionKind::DoNotAnnounceTo, Target::AllPeers)),
                "avoid all",
            )],
        );
        let config = config_with(vec![rule(
            "redundant-avoid",
            RuleMatch {
                community: Some(avoid_all),
                ..RuleMatch::default()
            },
            RuleAction::Apply(Action::avoid(Asn(6939))),
        )]);
        let diags = verify(&config, &dict, None);
        assert_eq!(codes(&diags), vec!["SC005"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("witness community 65001:49999"));
        assert!(diags[0].location.contains("redundant-avoid"));
    }

    #[test]
    fn sc005_effective_action_is_silent() {
        let config = config_with(vec![rule(
            "avoid-he",
            RuleMatch::default(),
            RuleAction::Apply(Action::avoid(Asn(6939))),
        )]);
        assert!(verify(&config, &empty_dict(), None).is_empty());
    }

    #[test]
    fn sc005_region_target_is_a_noop() {
        // region-targeted actions never influence export in this model
        let config = config_with(vec![rule(
            "regional",
            RuleMatch::default(),
            RuleAction::Apply(Action::new(ActionKind::DoNotAnnounceTo, Target::Region(3))),
        )]);
        let diags = verify(&config, &empty_dict(), None);
        assert_eq!(codes(&diags), vec!["SC005"]);
    }

    #[test]
    fn sc005_blackhole_where_unsupported_names_the_reason() {
        // LINX does not honor blackhole requests (§5.3 support matrix)
        let config = RsConfig::for_ixp(IxpId::Linx).with_import_rules(vec![rule(
            "bh",
            RuleMatch::default(),
            RuleAction::Apply(Action::blackhole()),
        )]);
        assert!(!config.blackhole_enabled);
        let dict = Dictionary::new(IxpId::Linx, Vec::new());
        let diags = verify(&config, &dict, None);
        assert_eq!(codes(&diags), vec!["SC005"]);
        assert!(diags[0].message.contains("blackhole"), "{diags:?}");
        // where blackhole IS honored the same rule is effective
        let config = config_with(vec![rule(
            "bh",
            RuleMatch::default(),
            RuleAction::Apply(Action::blackhole()),
        )]);
        assert!(config.blackhole_enabled);
        assert!(verify(&config, &empty_dict(), None).is_empty());
    }

    #[test]
    fn sc006_conflicting_kinds_are_error() {
        let d1 = Dictionary::new(
            IxpId::DeCixFra,
            vec![DictionaryEntry::new(
                Pattern::Exact(C(65100, 10)),
                Semantics::Action(Action::avoid(Asn(6939))),
                "avoid HE",
            )],
        );
        let d2 = Dictionary::new(
            IxpId::AmsIx,
            vec![DictionaryEntry::new(
                Pattern::LowRange {
                    high: 65100,
                    lo: 0,
                    hi: 20,
                },
                Semantics::Action(Action::blackhole()),
                "blackhole block",
            )],
        );
        let diags = verify_cross_dictionaries(&[d1, d2]);
        assert_eq!(codes(&diags), vec!["SC006"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("65100:10"), "{diags:?}");
    }

    #[test]
    fn sc006_same_group_is_scope_drift_warning() {
        let d1 = Dictionary::new(
            IxpId::DeCixFra,
            vec![DictionaryEntry::new(
                Pattern::Exact(C(0, 7)),
                Semantics::Action(Action::new(ActionKind::DoNotAnnounceTo, Target::AllPeers)),
                "avoid all",
            )],
        );
        let d2 = Dictionary::new(
            IxpId::AmsIx,
            vec![DictionaryEntry::new(
                Pattern::PeerAsnLow { high: 0 },
                Semantics::Action(Action::avoid(Asn(0))),
                "avoid peer",
            )],
        );
        let diags = verify_cross_dictionaries(&[d1, d2]);
        assert_eq!(codes(&diags), vec!["SC006"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("scope drift"));
    }

    #[test]
    fn sc006_agreeing_semantics_are_silent() {
        // two IXPs documenting the same avoid-peer template do not drift
        let mk = |ixp| {
            Dictionary::new(
                ixp,
                vec![DictionaryEntry::new(
                    Pattern::PeerAsnLow { high: 0 },
                    Semantics::Action(Action::avoid(Asn(0))),
                    "avoid peer",
                )],
            )
        };
        let diags = verify_cross_dictionaries(&[mk(IxpId::DeCixFra), mk(IxpId::AmsIx)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn scheme_cross_dictionary_drift_is_warning_grade_only() {
        // the real 8 schemes share the avoid/only templates at high 0;
        // their drift must be scope-level, never conflicting kinds
        let dicts: Vec<Dictionary> = IxpId::ALL
            .iter()
            .map(|&ixp| community_dict::schemes::dictionary(ixp))
            .collect();
        let errors: Vec<Diagnostic> = verify_cross_dictionaries(&dicts)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn scheme_dictionaries_have_no_error_grade_findings() {
        // the committed tree must pass the gate: the real per-IXP schemes
        // may carry containment warnings but no errors
        for ixp in IxpId::ALL {
            let config = RsConfig::for_ixp(ixp);
            let dict = community_dict::schemes::dictionary(ixp);
            let errors: Vec<Diagnostic> = verify(&config, &dict, None)
                .into_iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{ixp:?}: {errors:?}");
        }
    }

    #[test]
    fn ineffective_targets_pure_function() {
        let dict = community_dict::schemes::dictionary(IxpId::DeCixFra);
        let members: BTreeSet<Asn> = [Asn(39120), Asn(6939)].into_iter().collect();
        let route = Route::builder(
            "193.0.10.0/24".parse().unwrap(),
            "198.32.0.7".parse().unwrap(),
        )
        .path([39120])
        .standard(community_dict::schemes::avoid_community(
            IxpId::DeCixFra,
            Asn(6939),
        ))
        .standard(community_dict::schemes::avoid_community(
            IxpId::DeCixFra,
            Asn(16276),
        ))
        .build();
        let set = ineffective_targets(&dict, &members, std::iter::once(&route));
        assert_eq!(set.into_iter().collect::<Vec<_>>(), vec![Asn(16276)]);
    }
}
