//! The incremental analysis cache (`--cache target/staticheck.cache`).
//!
//! Staticheck's cost is dominated by re-deriving findings for files
//! that did not change. The cache stores, per workspace file, an
//! FNV-1a fingerprint of the raw bytes plus the RAW (pre-allowlist)
//! findings each engine produced for that file, and on the next run
//! reuses everything whose inputs are provably unchanged:
//!
//! * **file-local lints** (SC101–SC103, SC105, SC106) depend only on
//!   the file's own bytes — reused whenever the fingerprint matches;
//! * **per-file dataflow findings** (SC107/SC108/SC109/SC111/SC112)
//!   anchor at a function and follow call chains downward, so a finding
//!   in file *A* can only change when *A* changed or when something *A*
//!   transitively calls changed. The re-scan set is therefore the
//!   changed files plus their **reverse-callgraph cone** (every file
//!   containing a function that can reach a changed file), computed on
//!   the new graph. Name-resolution edges depend only on callee *names*
//!   — so a `fields_fp` over every file's function names and
//!   field/static tables guards the cone argument: when it changes
//!   (a function or lock/field was added, removed, or renamed),
//!   everything is treated as dirty;
//! * **global passes** (SC104 registry, SC110 lock order) and the
//!   policy engine (SC001–SC006, a pure function of the built-in
//!   schemes) are reused only on a fully-unchanged tree, else
//!   recomputed whole;
//! * everything is keyed by a **salt** over [`CHECK_VERSION`], the
//!   mode, the `--only` filter, and the allowlist content (SC108
//!   consults SC101 waivers during analysis, so the allowlist is an
//!   analysis input, not just a report filter). A salt mismatch
//!   invalidates the whole document.
//!
//! Findings are cached *raw* and pushed through the allowlist at
//! report-assembly time, exactly like a cold run — so a warm run is
//! byte-identical to a cold one (property-tested in
//! `tests/cache_prop.rs`), and editing `staticheck.toml` can never
//! resurrect stale waiver decisions from a cache file.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::allow::Allowlist;
use crate::callgraph::{parse_file, CallGraph, FileSyms};
use crate::dataflow;
use crate::diag::Diagnostic;
use crate::lints;

/// Bumped whenever any check's behavior changes; salts every cache
/// document so stale findings can never survive an analyzer upgrade.
pub const CHECK_VERSION: &str = "staticheck-v8:SC001-SC112,closure-callgraph";

/// FNV-1a 64-bit.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a as a hex string (JSON-safe: the vendored serde_json rounds
/// large integers through f64).
pub fn fnv_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(bytes))
}

/// One file's cached state: fingerprint plus raw per-engine findings.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FileEntry {
    /// Workspace-relative path.
    rel: String,
    /// `fnv_hex` of the file bytes.
    fp: String,
    /// Raw file-local lint findings (SC101–SC103, SC105, SC106).
    lint: Vec<Diagnostic>,
    /// Raw per-file dataflow findings (SC107/108/109/111/112),
    /// in emission order.
    flow: Vec<Diagnostic>,
}

/// The on-disk cache document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheDoc {
    /// Salt over check version, mode, `--only`, and allowlist content.
    salt: String,
    /// Fingerprint of every file's function names and field/static
    /// tables — the inputs to cross-file name resolution.
    fields_fp: String,
    /// Policy findings (`None` when the cached run skipped policy).
    policy: Option<Vec<Diagnostic>>,
    /// SC104 registry findings.
    global_lints: Vec<Diagnostic>,
    /// SC110 lock-order findings (global: one finding pairs witness
    /// sites in two arbitrary files).
    global_flow: Vec<Diagnostic>,
    /// Per-file entries, in sorted path order.
    files: Vec<FileEntry>,
}

/// Cache-hit statistics for the stats line CI archives.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Files whose lint findings were reused.
    pub lint_hits: usize,
    /// Files analyzed in total.
    pub files: usize,
    /// Was the policy bucket reused?
    pub policy_reused: bool,
    /// Files re-scanned by the dataflow engines (0 = fully reused).
    pub flow_rescanned: usize,
}

impl CacheStats {
    /// One line for stderr / the CI artifact.
    pub fn render(&self) -> String {
        format!(
            "staticheck-cache: lint {}/{} files reused, policy {}, dataflow re-scanned {}/{} files",
            self.lint_hits,
            self.files,
            if self.policy_reused {
                "reused"
            } else {
                "computed"
            },
            self.flow_rescanned,
            self.files,
        )
    }
}

/// The per-file dataflow checks, in cold-run emission order (the
/// engines emit check-major, file-minor).
const FLOW_CODES: [&str; 5] = ["SC107", "SC108", "SC109", "SC111", "SC112"];

/// Everything that selects *what* a cached run analyzes. All of it is
/// folded into the cache salt: a run with a different shape must never
/// reuse another shape's entries.
pub struct RunShape<'a> {
    /// Workspace root the sources are gathered from.
    pub root: &'a Path,
    /// `--only` path-prefix filter, if any.
    pub only: Option<&'a str>,
    /// Whether the policy engine runs (mode `policy` or `all`).
    pub run_policy: bool,
    /// Whether the lint + dataflow engines run (mode `lints` or `all`).
    pub run_lints: bool,
    /// Fingerprint of the active allowlist (SC108 consults SC101
    /// waivers during analysis, so waiver edits must invalidate).
    pub allow_salt: &'a str,
}

/// Run the lint + dataflow engines (and optionally policy via
/// `policy_fn`) with the cache at `path`. Returns raw findings in
/// exactly the order the uncached pipeline emits them, plus hit stats.
pub fn analyze(
    shape: &RunShape<'_>,
    allow: &Allowlist,
    path: &Path,
    policy_fn: impl FnOnce() -> Vec<Diagnostic>,
) -> (Vec<Diagnostic>, CacheStats) {
    let RunShape {
        root,
        only,
        run_policy,
        run_lints,
        allow_salt,
    } = *shape;
    let salt = fnv_hex(
        format!(
            "{CHECK_VERSION}|mode={}{}|only={}|allow={allow_salt}",
            run_policy,
            run_lints,
            only.unwrap_or("")
        )
        .as_bytes(),
    );
    let old = load(path).filter(|doc| doc.salt == salt);

    // workspace sources, same set and order as the uncached pipeline
    let mut sources: Vec<(String, String)> = Vec::new();
    for file in lints::workspace_sources(root) {
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        if only.is_some_and(|p| !rel.starts_with(p)) {
            continue;
        }
        sources.push((rel, text));
    }
    let fps: Vec<String> = sources
        .iter()
        .map(|(_, text)| fnv_hex(text.as_bytes()))
        .collect();
    let old_by_rel: BTreeMap<&str, &FileEntry> = old
        .iter()
        .flat_map(|doc| doc.files.iter())
        .map(|e| (e.rel.as_str(), e))
        .collect();
    let unchanged = |i: usize| -> bool {
        old_by_rel
            .get(sources[i].0.as_str())
            .is_some_and(|e| e.fp == fps[i])
    };
    // identical file *set* too: a removed file can carry away findings
    let same_tree = old
        .as_ref()
        .is_some_and(|doc| doc.files.len() == sources.len())
        && (0..sources.len()).all(unchanged);

    let mut stats = CacheStats {
        files: sources.len(),
        ..CacheStats::default()
    };
    let mut findings = Vec::new();

    // --- policy (pure function of the built-in schemes + salt) ---
    let policy = if run_policy {
        let cached = old.as_ref().and_then(|doc| doc.policy.clone());
        let out = match cached {
            Some(p) => {
                stats.policy_reused = true;
                p
            }
            None => policy_fn(),
        };
        findings.extend(out.iter().cloned());
        Some(out)
    } else {
        None
    };

    let mut entries: Vec<FileEntry> = Vec::with_capacity(sources.len());
    let mut global_lints = Vec::new();
    let mut global_flow = Vec::new();
    let mut fields_fp = old
        .as_ref()
        .map(|doc| doc.fields_fp.clone())
        .unwrap_or_default();

    if run_lints {
        // --- file-local lints ---
        for (i, (rel, text)) in sources.iter().enumerate() {
            let lint = if unchanged(i) {
                stats.lint_hits += 1;
                old_by_rel[rel.as_str()].lint.clone()
            } else {
                let mut out = Vec::new();
                lints::lint_file(rel, text, &mut out);
                out
            };
            findings.extend(lint.iter().cloned());
            entries.push(FileEntry {
                rel: rel.clone(),
                fp: fps[i].clone(),
                lint,
                flow: Vec::new(),
            });
        }

        // --- SC104: reused only on a fully-unchanged tree (the registry
        // file is only fp-tracked when the --only filter includes it) ---
        if same_tree && only.is_none() {
            global_lints = old
                .as_ref()
                .map(|doc| doc.global_lints.clone())
                .unwrap_or_default();
        } else {
            lints::check_names_registry(root, &mut global_lints);
        }
        findings.extend(global_lints.iter().cloned());

        // --- dataflow: per-file buckets + the global SC110 pass ---
        if same_tree {
            for e in entries.iter_mut() {
                e.flow = old_by_rel[e.rel.as_str()].flow.clone();
            }
            global_flow = old
                .as_ref()
                .map(|doc| doc.global_flow.clone())
                .unwrap_or_default();
        } else {
            // parse once to fingerprint the resolution interface and
            // compute the re-scan cone
            let parsed: Vec<FileSyms> = sources
                .iter()
                .map(|(rel, text)| parse_file(rel, text))
                .collect();
            let mut iface = String::new();
            for f in &parsed {
                iface.push_str(&f.rel);
                for d in &f.fns {
                    if !d.is_closure {
                        iface.push_str(&d.name);
                        iface.push('|');
                    }
                }
                iface.push_str(&format!(
                    ";{:?};{:?};{:?}\n",
                    f.im_fields, f.im_statics, f.hash_fields
                ));
            }
            fields_fp = fnv_hex(iface.as_bytes());
            let iface_same = old.as_ref().is_some_and(|doc| doc.fields_fp == fields_fp);

            let changed: BTreeSet<usize> = (0..sources.len()).filter(|&i| !unchanged(i)).collect();
            let dirty: BTreeSet<usize> = if iface_same {
                let graph = CallGraph::build(parsed);
                let next = graph.reach(|n| changed.contains(&graph.nodes[n].file));
                let mut cone = changed.clone();
                for (n, hop) in next.iter().enumerate() {
                    if hop.is_some() {
                        cone.insert(graph.nodes[n].file);
                    }
                }
                cone
            } else {
                (0..sources.len()).collect()
            };
            stats.flow_rescanned = dirty.len();

            let fresh = dataflow::analyze_sources_filtered(&sources, allow, Some(&dirty));
            let mut fresh_by_rel: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
            for d in fresh {
                if d.code == "SC110" {
                    global_flow.push(d);
                } else {
                    let rel = d
                        .location
                        .rsplit_once(':')
                        .map(|(r, _)| r.to_string())
                        .unwrap_or_else(|| d.location.clone());
                    fresh_by_rel.entry(rel).or_default().push(d);
                }
            }
            for (i, e) in entries.iter_mut().enumerate() {
                e.flow = if dirty.contains(&i) {
                    fresh_by_rel.remove(e.rel.as_str()).unwrap_or_default()
                } else {
                    old_by_rel[e.rel.as_str()].flow.clone()
                };
            }
        }

        // emission order matches the uncached engines: check-major,
        // file-minor, with the global SC110 pass after SC109
        for code in FLOW_CODES {
            if code == "SC111" {
                findings.extend(global_flow.iter().cloned());
            }
            for e in &entries {
                findings.extend(e.flow.iter().filter(|d| d.code == code).cloned());
            }
        }
    }

    let doc = CacheDoc {
        salt,
        fields_fp,
        policy,
        global_lints,
        global_flow,
        files: entries,
    };
    store(path, &doc);
    (findings, stats)
}

fn load(path: &Path) -> Option<CacheDoc> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn store(path: &Path, doc: &CacheDoc) {
    // best effort: an unwritable cache degrades to cold runs
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Ok(text) = serde_json::to_string(doc) {
        let _ = std::fs::write(path, text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 64 test vectors from the reference implementation
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        assert_eq!(fnv_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn doc_round_trips_through_json() {
        let doc = CacheDoc {
            salt: "s".into(),
            fields_fp: "f".into(),
            policy: Some(vec![Diagnostic::new(
                "SC004",
                crate::diag::Severity::Warning,
                "dict(AmsIx)",
                "m",
            )]),
            global_lints: vec![],
            global_flow: vec![Diagnostic::new(
                "SC110",
                crate::diag::Severity::Error,
                "crates/x/src/lib.rs:3",
                "inverted",
            )],
            files: vec![FileEntry {
                rel: "crates/x/src/lib.rs".into(),
                fp: "00ff".into(),
                lint: vec![],
                flow: vec![],
            }],
        };
        let text = serde_json::to_string(&doc).expect("serialize");
        let back: CacheDoc = serde_json::from_str(&text).expect("parse");
        assert_eq!(back.salt, "s");
        assert_eq!(back.policy.as_ref().map(|p| p.len()), Some(1));
        assert_eq!(back.global_flow[0].code, "SC110");
        assert_eq!(back.files[0].rel, "crates/x/src/lib.rs");
    }
}
