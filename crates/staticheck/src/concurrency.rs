//! The concurrency-safety engine: four interprocedural checks over the
//! closure-aware call graph ([`crate::callgraph`]), guarding the
//! workspace's core claim that parallel runs are byte-identical to the
//! serial oracle.
//!
//! * **SC109** — a *par-task closure* (a closure passed to
//!   `par::map_indexed`, `thread::scope`, or a spawned handler) that
//!   captures or transitively reaches interior mutability. Unsynchronized
//!   types (`RefCell`, `Cell`, `UnsafeCell`, `static mut`,
//!   `thread_local!`) are errors — shared across tasks they are UB or
//!   borrow panics waiting on a schedule; synchronized types (`Mutex`,
//!   `RwLock`, `Atomic*`, `Condvar`) are warnings — safe, but the value
//!   sequence observed still depends on scheduling. Waiverable only via
//!   `staticheck.toml` with a determinism argument ([`crate::allow`]
//!   rejects SC109 waivers whose reason lacks one).
//! * **SC110** — inconsistent lock-acquisition order: per-function
//!   `Mutex`/`RwLock` acquisition sequences (strict `let guard = ..`
//!   statement bindings only — temporaries drop at statement end),
//!   propagated through the call graph; inverted pairs are reported
//!   with both witness chains.
//! * **SC111** — an `Ordering::Relaxed` atomic read whose value flows
//!   (let-taint or argument position, interprocedurally via the sink
//!   reachability map shared with SC107) into serialized output,
//!   metrics, or digests.
//! * **SC112** — a blocking call (`read`/`write` on streams, `sleep`,
//!   `pace`, `recv`, `accept`, ...) reachable from a par-task closure
//!   with no timeout/deadline anywhere on the chain: one straggler
//!   serializes the pool because the ordered join waits for every task.
//!
//! The `obs` and `par` crates implement the machinery these checks
//! protect (sharded counters, worker cursors) and are sanctioned: their
//! IM definitions seed nothing and their closures are not par tasks for
//! SC109/SC112 purposes. Everything else — including the looking-glass
//! transport — is in scope.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::dataflow::{is_sink_name, sink_chain};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Tok, TokKind};

/// Crates implementing the concurrency/metrics machinery itself.
fn sanctioned_rel(rel: &str) -> bool {
    rel.starts_with("crates/obs/") || rel.starts_with("crates/par/")
}

/// Callees whose closure argument runs as a parallel task.
const PAR_ENTRY: [&str; 3] = ["map_indexed", "scope", "spawn"];

/// Unsynchronized interior mutability: sharing across tasks is an error.
fn unsync_im(ty: &str) -> bool {
    matches!(ty, "RefCell" | "Cell" | "UnsafeCell") || ty == "static mut" || ty == "thread_local"
}

/// Run all four checks. `sink_next` is SC107's sink-reachability map
/// (reused by SC111). `in_scope` is the incremental cache's dirty-cone
/// filter for the per-file checks; SC110 is global (an inversion pairs
/// two witness sites in arbitrary files) and always runs in full.
pub fn check(
    graph: &CallGraph,
    sink_next: &[Option<usize>],
    in_scope: &impl Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let par_tasks: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let def = graph.def(i);
            in_scope(graph.nodes[i].file)
                && def.is_closure
                && def
                    .passed_to
                    .as_deref()
                    .is_some_and(|p| PAR_ENTRY.contains(&p))
                && !sanctioned_rel(&graph.nodes[i].rel)
        })
        .collect();
    sc109(graph, &par_tasks, out);
    sc110(graph, out);
    sc111(graph, sink_next, in_scope, out);
    sc112(graph, &par_tasks, out);
}

/// Token-scan helpers over one file's stream.
struct Scan<'a> {
    toks: &'a [Tok],
}

impl<'a> Scan<'a> {
    fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.tok(i)
            .and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(c))
    }

    fn skip_balanced(&self, i: usize) -> usize {
        let (open, close) = match self.tok(i) {
            Some(t) if t.is_punct('(') => ('(', ')'),
            Some(t) if t.is_punct('[') => ('[', ']'),
            Some(t) if t.is_punct('{') => ('{', '}'),
            _ => return i + 1,
        };
        let mut depth = 0i32;
        let mut j = i;
        while let Some(t) = self.tok(j) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        j
    }

    /// Walk back from `i` collecting an `a.b.c` receiver path. Returns
    /// the segments in source order and the start index.
    fn receiver(&self, i: usize) -> Option<(Vec<String>, usize)> {
        let mut segs = Vec::new();
        let mut j = i;
        loop {
            let t = self.tok(j)?;
            if t.kind != TokKind::Ident {
                return None;
            }
            segs.push(t.text.clone());
            if j >= 2 && self.is_punct(j - 1, '.') {
                j -= 2;
                continue;
            }
            break;
        }
        segs.reverse();
        Some((segs, j))
    }

    /// If the expression starting at `start` is the RHS of a
    /// `let [mut] name = ...`, return the bound name.
    fn binding_name(&self, start: usize) -> Option<String> {
        if start == 0 || !self.is_punct(start - 1, '=') {
            return None;
        }
        let lo = start.saturating_sub(40);
        let mut j = start - 1;
        while j > lo {
            j -= 1;
            if self.ident(j) == Some("let") {
                let mut k = j + 1;
                if self.ident(k) == Some("mut") {
                    k += 1;
                }
                return self.ident(k).map(str::to_string);
            }
            if self.is_punct(j, ';') || self.is_punct(j, '{') || self.is_punct(j, '}') {
                break;
            }
        }
        None
    }

    /// Innermost enclosing call at `pos` whose callee reaches a sink
    /// (same walk as SC107's escape analysis).
    fn enclosing_sink(
        &self,
        pos: usize,
        graph: &CallGraph,
        sink_next: &[Option<usize>],
    ) -> Option<String> {
        let mut depth = 0i32;
        let mut j = pos;
        while j > 0 {
            j -= 1;
            let t = self.tok(j)?;
            if t.is_punct(')') {
                depth += 1;
            } else if t.is_punct('(') {
                if depth == 0 {
                    let callee = if j >= 1 && self.is_punct(j - 1, '!') {
                        self.ident(j.wrapping_sub(2)).map(|n| format!("{n}!"))
                    } else {
                        self.ident(j.wrapping_sub(1)).map(str::to_string)
                    };
                    if let Some(name) = callee {
                        if let Some(chain) = sink_chain(graph, sink_next, &name) {
                            return Some(chain);
                        }
                    }
                } else {
                    depth -= 1;
                }
            } else if t.is_punct(';') && depth == 0 {
                return None;
            }
        }
        None
    }
}

// --- SC109: interior mutability reachable from par tasks ------------------

/// One interior-mutability value: how it is named at use sites, its
/// type, and a human description of where it lives.
struct ImIndex {
    /// field name → (type, owner description)
    fields: BTreeMap<String, (String, String)>,
    /// static name → (type, owner description)
    statics: BTreeMap<String, (String, String)>,
}

impl ImIndex {
    fn build(graph: &CallGraph) -> ImIndex {
        let mut fields = BTreeMap::new();
        let mut statics = BTreeMap::new();
        for file in &graph.files {
            if sanctioned_rel(&file.rel) {
                continue;
            }
            for (owner, field, ty) in &file.im_fields {
                fields
                    .entry(field.clone())
                    .or_insert_with(|| (ty.clone(), format!("field of `{owner}`")));
            }
            for (name, ty) in &file.im_statics {
                let desc = match ty.as_str() {
                    "static mut" => "mutable static".to_string(),
                    "thread_local" => "thread-local static".to_string(),
                    _ => "static".to_string(),
                };
                statics
                    .entry(name.clone())
                    .or_insert_with(|| (ty.clone(), desc));
            }
        }
        ImIndex { fields, statics }
    }
}

/// The first interior-mutability value a body references: field names
/// as `.name` accesses, static names as path idents.
fn im_ref(graph: &CallGraph, idx: usize, im: &ImIndex) -> Option<(String, String, String)> {
    let def = graph.def(idx);
    if def.body.0 >= def.body.1 {
        return None;
    }
    let scan = Scan {
        toks: &graph.files[graph.nodes[idx].file].toks,
    };
    for j in def.body.0 + 1..def.body.1 {
        let Some(id) = scan.ident(j) else { continue };
        if j >= 1 && scan.is_punct(j - 1, '.') {
            if let Some((ty, owner)) = im.fields.get(id) {
                return Some((id.to_string(), ty.clone(), owner.clone()));
            }
        } else if let Some((ty, owner)) = im.statics.get(id) {
            return Some((id.to_string(), ty.clone(), owner.clone()));
        }
    }
    None
}

/// Interior-mutability locals of a body: `let [mut] name = ...` whose
/// initializer statement mentions an IM type name.
fn im_locals(graph: &CallGraph, idx: usize) -> BTreeMap<String, String> {
    let def = graph.def(idx);
    let scan = Scan {
        toks: &graph.files[graph.nodes[idx].file].toks,
    };
    let mut out = BTreeMap::new();
    if def.body.0 >= def.body.1 {
        return out;
    }
    let mut j = def.body.0 + 1;
    while j < def.body.1 {
        if scan.ident(j) == Some("let") {
            let mut k = j + 1;
            if scan.ident(k) == Some("mut") {
                k += 1;
            }
            if let Some(name) = scan.ident(k).map(str::to_string) {
                // statement runs to the `;` at this level
                let mut t = k + 1;
                let mut ty = None;
                while t < def.body.1 && !scan.is_punct(t, ';') {
                    if scan.is_punct(t, '{') {
                        t = scan.skip_balanced(t);
                        continue;
                    }
                    if ty.is_none() {
                        if let Some(id) = scan.ident(t) {
                            if crate::callgraph::im_type(id) {
                                ty = Some(id.to_string());
                            }
                        }
                    }
                    t += 1;
                }
                if let Some(ty) = ty {
                    out.insert(name, ty);
                }
                j = t;
                continue;
            }
        }
        j += 1;
    }
    out
}

fn sc109(graph: &CallGraph, par_tasks: &[usize], out: &mut Vec<Diagnostic>) {
    let im = ImIndex::build(graph);
    let next =
        graph.reach(|i| !sanctioned_rel(&graph.nodes[i].rel) && im_ref(graph, i, &im).is_some());
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    // node index of the enclosing fn, for closures
    let encl_node = |i: usize| -> Option<usize> {
        let node = &graph.nodes[i];
        let encl = graph.def(i).encl?;
        Some(i - node.local + encl)
    };
    for &p in par_tasks {
        let node = &graph.nodes[p];
        let def = graph.def(p);
        let passed = def.passed_to.as_deref().unwrap_or("?");
        // captured IM locals of the enclosing function
        if let Some(e) = encl_node(p) {
            let locals = im_locals(graph, e);
            for cap in &def.captures {
                if let Some(ty) = locals.get(cap) {
                    if seen.insert((p, cap.clone())) {
                        out.push(Diagnostic::new(
                            "SC109",
                            if unsync_im(ty) {
                                Severity::Error
                            } else {
                                Severity::Warning
                            },
                            format!("{}:{}", node.rel, node.line),
                            format!(
                                "par-task closure (passed to `{passed}`) captures `{cap}` \
                                 ({ty} local of `{}`): scheduling-dependent state in a \
                                 parallel task; waiver requires a determinism argument",
                                graph.nodes[e].name
                            ),
                        ));
                    }
                }
            }
        }
        // IM reachable through the call graph
        if next[p].is_some() {
            let chain = graph.chain(p, &next);
            let seed = *chain.last().unwrap_or(&p);
            let Some((name, ty, owner)) = im_ref(graph, seed, &im) else {
                continue;
            };
            if !seen.insert((p, name.clone())) {
                continue;
            }
            let sev = if unsync_im(&ty) {
                Severity::Error
            } else {
                Severity::Warning
            };
            let msg = if chain.len() == 1 {
                format!(
                    "par-task closure (passed to `{passed}`) references `{name}` \
                     ({ty} {owner}): scheduling-dependent state in a parallel task; \
                     waiver requires a determinism argument"
                )
            } else {
                format!(
                    "par-task closure (passed to `{passed}`) reaches interior \
                     mutability: `{}` references `{name}` ({ty} {owner}); \
                     waiver requires a determinism argument",
                    graph.chain_names(&chain).replace(" -> ", "` -> `")
                )
            };
            out.push(Diagnostic::new(
                "SC109",
                sev,
                format!("{}:{}", node.rel, node.line),
                msg,
            ));
        }
    }
}

// --- SC110: lock-acquisition order ----------------------------------------

/// Where one witness saw lock `first` held while `second` was acquired.
#[derive(Clone)]
struct LockWitness {
    desc: String,
    location: String,
}

fn sc110(graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    // every Mutex/RwLock field or static name in the workspace
    let mut lock_names: BTreeSet<String> = BTreeSet::new();
    for file in &graph.files {
        for (_, field, ty) in &file.im_fields {
            if ty == "Mutex" || ty == "RwLock" {
                lock_names.insert(field.clone());
            }
        }
        for (name, ty) in &file.im_statics {
            if ty == "Mutex" || ty == "RwLock" {
                lock_names.insert(name.clone());
            }
        }
    }
    if lock_names.is_empty() {
        return;
    }

    // per node: direct acquisitions, ordered pairs, calls made under a
    // held lock (for interprocedural pairs)
    let mut direct: Vec<BTreeSet<String>> = vec![BTreeSet::new(); graph.nodes.len()];
    let mut pairs: BTreeMap<(String, String), LockWitness> = BTreeMap::new();
    let mut under: Vec<(usize, String, String, u32)> = Vec::new(); // (node, callee, held, line)
    for (i, node) in graph.nodes.iter().enumerate() {
        let def = graph.def(i);
        if def.is_closure || def.body.0 >= def.body.1 {
            continue; // closure tokens are inside the enclosing fn's range
        }
        let scan = Scan {
            toks: &graph.files[node.file].toks,
        };
        // (lock name, brace depth at acquisition, guard variable)
        let mut held: Vec<(String, i32, String, u32)> = Vec::new();
        let mut depth = 0i32;
        let mut j = def.body.0 + 1;
        while j < def.body.1 {
            let Some(t) = scan.tok(j) else { break };
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                held.retain(|(_, d, _, _)| *d <= depth);
            } else if t.is_ident("drop") && scan.is_punct(j + 1, '(') {
                if let Some(g) = scan.ident(j + 2) {
                    held.retain(|(_, _, guard, _)| guard != g);
                }
            } else if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "lock" | "read" | "write")
                && j >= 1
                && scan.is_punct(j - 1, '.')
                && scan.is_punct(j + 1, '(')
            {
                if let Some((segs, start)) = scan.receiver(j - 2) {
                    if let Some(name) = segs.last().filter(|s| lock_names.contains(*s)) {
                        for (h, _, _, hl) in &held {
                            if h != name {
                                pairs.entry((h.clone(), name.clone())).or_insert_with(|| {
                                    LockWitness {
                                        desc: format!(
                                            "`{}` locks `{h}` then `{name}` ({}:{} then :{})",
                                            node.name, node.rel, hl, t.line
                                        ),
                                        location: format!("{}:{}", node.rel, hl),
                                    }
                                });
                            }
                        }
                        direct[i].insert(name.clone());
                        // held only when statement-bound to a guard
                        if let Some(guard) = scan.binding_name(start) {
                            held.push((name.clone(), depth, guard, t.line));
                        }
                    }
                }
            } else if t.kind == TokKind::Ident
                && !held.is_empty()
                && scan.is_punct(j + 1, '(')
                && !scan.is_punct(j.wrapping_sub(1), '.')
            {
                // plain call under a held lock — method calls resolve too
                // noisily by name to chase here
                for (h, _, _, _) in &held {
                    under.push((i, t.text.clone(), h.clone(), t.line));
                }
            }
            j += 1;
        }
    }

    // transitive acquisitions, to a fixed point (the graph has cycles)
    let mut trans = direct.clone();
    loop {
        let mut changed = false;
        for i in 0..graph.nodes.len() {
            let mut add = Vec::new();
            for &c in &graph.nodes[i].callees {
                for l in &trans[c] {
                    if !trans[i].contains(l) {
                        add.push(l.clone());
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                trans[i].extend(add);
            }
        }
        if !changed {
            break;
        }
    }

    // per-lock reachability maps for witness chains, built lazily
    let mut reach_cache: BTreeMap<String, Vec<Option<usize>>> = BTreeMap::new();
    for (i, callee, h, line) in under {
        for &t in graph.resolve(&callee) {
            for b in trans[t].clone() {
                if b == h {
                    continue;
                }
                let key = (h.clone(), b.clone());
                if pairs.contains_key(&key) {
                    continue;
                }
                let next = reach_cache
                    .entry(b.clone())
                    .or_insert_with(|| graph.reach(|n| direct[n].contains(&b)));
                if next[t].is_none() {
                    continue;
                }
                let chain = graph.chain(t, next);
                let node = &graph.nodes[i];
                pairs.insert(
                    key,
                    LockWitness {
                        desc: format!(
                            "`{}` holds `{h}` ({}:{line}) and calls `{}` which locks `{b}`",
                            node.name,
                            node.rel,
                            graph.chain_names(&chain).replace(" -> ", "` -> `")
                        ),
                        location: format!("{}:{line}", node.rel),
                    },
                );
            }
        }
    }

    // inverted pairs: both (a, b) and (b, a) observed
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), w1) in &pairs {
        let Some(w2) = pairs.get(&(b.clone(), a.clone())) else {
            continue;
        };
        let key = if a < b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if !reported.insert(key) {
            continue;
        }
        out.push(Diagnostic::new(
            "SC110",
            Severity::Error,
            w1.location.clone(),
            format!(
                "inconsistent lock-acquisition order for `{a}` and `{b}`: \
                 {} — but — {}; concurrent execution can deadlock",
                w1.desc, w2.desc
            ),
        ));
    }
}

// --- SC111: Relaxed atomics into serialized output ------------------------

/// Atomic read/RMW methods whose result carries the racy value.
const RELAXED_READS: [&str; 10] = [
    "load",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
];

fn sc111(
    graph: &CallGraph,
    sink_next: &[Option<usize>],
    in_scope: &impl Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for (i, node) in graph.nodes.iter().enumerate() {
        let def = graph.def(i);
        if !in_scope(node.file) || def.is_closure || def.body.0 >= def.body.1 {
            continue; // closure tokens scan inside the enclosing fn
        }
        let scan = Scan {
            toks: &graph.files[node.file].toks,
        };
        // tainted local → the op description that produced it
        let mut tainted: BTreeMap<String, String> = BTreeMap::new();
        let mut j = def.body.0 + 1;
        while j < def.body.1 {
            let Some(t) = scan.tok(j) else { break };
            if t.kind != TokKind::Ident {
                j += 1;
                continue;
            }
            let name = t.text.as_str();
            if RELAXED_READS.contains(&name)
                && j >= 1
                && scan.is_punct(j - 1, '.')
                && scan.is_punct(j + 1, '(')
            {
                let args_end = scan.skip_balanced(j + 1);
                let relaxed =
                    (j + 2..args_end.saturating_sub(1)).any(|k| scan.ident(k) == Some("Relaxed"));
                if relaxed {
                    if let Some((segs, start)) = scan.receiver(j - 2) {
                        let op = format!("`{}.{name}(Relaxed)`", segs.join("."));
                        // statement-discarded RMW: the value is unused
                        let discarded = scan.is_punct(args_end, ';')
                            && (start == 0
                                || scan.is_punct(start - 1, ';')
                                || scan.is_punct(start - 1, '{')
                                || scan.is_punct(start - 1, '}'));
                        if !discarded {
                            if let Some(bound) = scan.binding_name(start) {
                                tainted.insert(bound, op);
                            } else if let Some(via) = scan.enclosing_sink(start, graph, sink_next) {
                                out.push(sc111_diag(&node.rel, t.line, &op, &via));
                            }
                        }
                        j = args_end;
                        continue;
                    }
                }
            } else if tainted.contains_key(name) && !scan.is_punct(j.wrapping_sub(1), '.') {
                if let Some(via) = scan.enclosing_sink(j, graph, sink_next) {
                    let op = tainted.remove(name).unwrap_or_default();
                    out.push(sc111_diag(&node.rel, t.line, &op, &via));
                }
            } else if scan.is_punct(j + 1, '!')
                && scan.is_punct(j + 2, '(')
                && is_sink_name(None, &format!("{name}!"))
                && !tainted.is_empty()
            {
                // inline format captures ("{n}") never lex as idents
                let mac_end = scan.skip_balanced(j + 2);
                let names: Vec<String> = tainted.keys().cloned().collect();
                for tn in names {
                    let open = format!("{{{tn}");
                    let hit = (j + 3..mac_end.saturating_sub(1)).any(|k| {
                        scan.tok(k).is_some_and(|t| {
                            t.kind == TokKind::Str
                                && t.text
                                    .split(&open)
                                    .skip(1)
                                    .any(|rest| rest.starts_with('}') || rest.starts_with(':'))
                        })
                    });
                    if hit {
                        let op = tainted.remove(&tn).unwrap_or_default();
                        out.push(sc111_diag(
                            &node.rel,
                            t.line,
                            &op,
                            &format!("sink `{name}!`"),
                        ));
                    }
                }
            }
            j += 1;
        }
    }
}

fn sc111_diag(rel: &str, line: u32, op: &str, via: &str) -> Diagnostic {
    Diagnostic::new(
        "SC111",
        Severity::Error,
        format!("{rel}:{line}"),
        format!(
            "value of Relaxed atomic op {op} flows into {via}: the observed \
             value is schedule-dependent; use acquire/release ordering or \
             waive with an output-invariance argument"
        ),
    )
}

// --- SC112: blocking calls in par tasks without deadlines -----------------

/// Calls that block the calling thread indefinitely by default.
const BLOCKING: [&str; 10] = [
    "sleep",
    "pace",
    "recv",
    "accept",
    "read_exact",
    "read_to_end",
    "read_line",
    "write_all",
    "park",
    "wait",
];

/// Tokens that bound a blocking call on the same chain.
const DEADLINE: [&str; 8] = [
    "set_read_timeout",
    "set_write_timeout",
    "set_nonblocking",
    "recv_timeout",
    "wait_timeout",
    "timeout",
    "deadline",
    "try_recv",
];

/// The first blocking call in a body; `read`/`write` count only as
/// method calls whose receiver is not a lock (`RwLock::read/write`).
fn blocking_site(
    graph: &CallGraph,
    idx: usize,
    lock_names: &BTreeSet<String>,
) -> Option<(String, u32)> {
    let def = graph.def(idx);
    if def.body.0 >= def.body.1 {
        return None;
    }
    let scan = Scan {
        toks: &graph.files[graph.nodes[idx].file].toks,
    };
    for j in def.body.0 + 1..def.body.1 {
        let Some(id) = scan.ident(j) else { continue };
        if !scan.is_punct(j + 1, '(') {
            continue;
        }
        if BLOCKING.contains(&id) {
            return Some((id.to_string(), scan.tok(j).map(|t| t.line).unwrap_or(0)));
        }
        if matches!(id, "read" | "write") && j >= 1 && scan.is_punct(j - 1, '.') {
            if let Some((segs, _)) = scan.receiver(j - 2) {
                if segs.last().is_some_and(|s| !lock_names.contains(s)) {
                    return Some((
                        format!("{}.{id}", segs.join(".")),
                        scan.tok(j).map(|t| t.line).unwrap_or(0),
                    ));
                }
            }
        }
    }
    None
}

/// Does the body mention any timeout/deadline machinery?
fn has_deadline(graph: &CallGraph, idx: usize) -> bool {
    let def = graph.def(idx);
    if def.body.0 >= def.body.1 {
        return false;
    }
    let scan = Scan {
        toks: &graph.files[graph.nodes[idx].file].toks,
    };
    (def.body.0 + 1..def.body.1).any(|j| {
        scan.ident(j)
            .is_some_and(|id| DEADLINE.contains(&id) || id.contains("timeout"))
    })
}

fn sc112(graph: &CallGraph, par_tasks: &[usize], out: &mut Vec<Diagnostic>) {
    let mut lock_names: BTreeSet<String> = BTreeSet::new();
    for file in &graph.files {
        for (_, field, ty) in &file.im_fields {
            if ty == "Mutex" || ty == "RwLock" {
                lock_names.insert(field.clone());
            }
        }
        for (name, ty) in &file.im_statics {
            if ty == "Mutex" || ty == "RwLock" {
                lock_names.insert(name.clone());
            }
        }
    }
    let sites: Vec<Option<(String, u32)>> = (0..graph.nodes.len())
        .map(|i| {
            if sanctioned_rel(&graph.nodes[i].rel) || has_deadline(graph, i) {
                None
            } else {
                blocking_site(graph, i, &lock_names)
            }
        })
        .collect();
    let next = graph.reach(|i| sites[i].is_some());
    let encl_node = |i: usize| -> Option<usize> {
        let node = &graph.nodes[i];
        let encl = graph.def(i).encl?;
        Some(i - node.local + encl)
    };
    for &p in par_tasks {
        if next[p].is_none() {
            continue;
        }
        let chain = graph.chain(p, &next);
        // a deadline anywhere on the chain (or in the enclosing fn that
        // configured the stream before handing it to the closure) bounds
        // the blocking call
        if chain.iter().any(|&n| has_deadline(graph, n)) {
            continue;
        }
        if encl_node(p).is_some_and(|e| has_deadline(graph, e)) {
            continue;
        }
        let seed = *chain.last().unwrap_or(&p);
        let Some((what, line)) = sites[seed].clone() else {
            continue;
        };
        let node = &graph.nodes[p];
        let passed = graph.def(p).passed_to.as_deref().unwrap_or("?");
        out.push(Diagnostic::new(
            "SC112",
            Severity::Error,
            format!("{}:{}", node.rel, node.line),
            format!(
                "par-task closure (passed to `{passed}`) reaches blocking \
                 `{what}` with no timeout/deadline on the chain: `{}` \
                 (`{what}` at {}:{line}); one straggler serializes the pool",
                graph.chain_names(&chain).replace(" -> ", "` -> `"),
                graph.nodes[seed].rel
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow::Allowlist;
    use crate::dataflow::analyze_sources;

    fn run(src: &str) -> Vec<Diagnostic> {
        let sources = vec![("crates/demo/src/lib.rs".to_string(), src.to_string())];
        analyze_sources(&sources, &Allowlist::default())
    }

    fn by_code<'a>(diags: &'a [Diagnostic], code: &str) -> Vec<&'a Diagnostic> {
        diags.iter().filter(|d| d.code == code).collect()
    }

    #[test]
    fn sc109_captured_refcell_is_an_error() {
        let diags = run("use std::cell::RefCell;\n\
             pub fn run(units: &[u32]) {\n\
             let memo = RefCell::new(0u32);\n\
             map_indexed(units, |i, u| { *memo.borrow_mut() += u; i });\n\
             }\n");
        let found = by_code(&diags, "SC109");
        assert_eq!(found.len(), 1, "{diags:?}");
        assert_eq!(found[0].severity, Severity::Error);
        assert!(found[0].message.contains("captures `memo`"), "{diags:?}");
        assert!(found[0].message.contains("RefCell"), "{diags:?}");
    }

    #[test]
    fn sc109_reached_im_field_names_the_chain() {
        let diags = run("use std::cell::RefCell;\n\
             pub struct View { memo: RefCell<u32> }\n\
             impl View { pub fn classify(&self) -> u32 { *self.memo.borrow() } }\n\
             fn analyze_unit(v: &View) -> u32 { v.classify() }\n\
             pub fn run(v: &View, units: &[u32]) {\n\
             map_indexed(units, |_i, _u| analyze_unit(v));\n\
             }\n");
        let found = by_code(&diags, "SC109");
        assert_eq!(found.len(), 1, "{diags:?}");
        assert_eq!(found[0].severity, Severity::Error);
        assert!(
            found[0].message.contains("analyze_unit` -> `classify"),
            "{diags:?}"
        );
        assert!(found[0].message.contains("`memo`"), "{diags:?}");
    }

    #[test]
    fn sc109_mutex_is_a_warning_not_an_error() {
        let diags = run("use std::sync::Mutex;\n\
             pub struct Shared { agg: Mutex<u32> }\n\
             pub fn run(s: &Shared, units: &[u32]) {\n\
             map_indexed(units, |i, u| { *s.agg.lock().unwrap() += u; i });\n\
             }\n");
        let found = by_code(&diags, "SC109");
        assert_eq!(found.len(), 1, "{diags:?}");
        assert_eq!(found[0].severity, Severity::Warning);
    }

    #[test]
    fn sc109_silent_without_par_entry() {
        // same capture, but the closure goes to a plain serial helper
        let diags = run("use std::cell::RefCell;\n\
             pub fn run(units: &[u32]) {\n\
             let memo = RefCell::new(0u32);\n\
             each_serial(units, |u| { *memo.borrow_mut() += u; });\n\
             }\n");
        assert!(by_code(&diags, "SC109").is_empty(), "{diags:?}");
    }

    #[test]
    fn sc110_inverted_lock_order_is_reported_with_both_chains() {
        let diags = run(
            "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             pub fn forward(s: &S) { let ga = s.a.lock().unwrap(); let gb = s.b.lock().unwrap(); }\n\
             pub fn backward(s: &S) { let gb = s.b.lock().unwrap(); let ga = s.a.lock().unwrap(); }\n",
        );
        let found = by_code(&diags, "SC110");
        assert_eq!(found.len(), 1, "{diags:?}");
        assert!(
            found[0].message.contains("`forward` locks `a` then `b`"),
            "{diags:?}"
        );
        assert!(
            found[0].message.contains("`backward` locks `b` then `a`"),
            "{diags:?}"
        );
    }

    #[test]
    fn sc110_interprocedural_inversion_names_the_callee_chain() {
        let diags = run(
            "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             fn grab_b(s: &S) { let g = s.b.lock().unwrap(); }\n\
             pub fn forward(s: &S) { let ga = s.a.lock().unwrap(); grab_b(s); }\n\
             pub fn backward(s: &S) { let gb = s.b.lock().unwrap(); let ga = s.a.lock().unwrap(); }\n",
        );
        let found = by_code(&diags, "SC110");
        assert_eq!(found.len(), 1, "{diags:?}");
        assert!(found[0].message.contains("holds `a`"), "{diags:?}");
        assert!(found[0].message.contains("grab_b"), "{diags:?}");
    }

    #[test]
    fn sc110_consistent_order_is_clean() {
        let diags = run("use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             pub fn one(s: &S) { let ga = s.a.lock().unwrap(); let gb = s.b.lock().unwrap(); }\n\
             pub fn two(s: &S) { let ga = s.a.lock().unwrap(); let gb = s.b.lock().unwrap(); }\n");
        assert!(by_code(&diags, "SC110").is_empty(), "{diags:?}");
    }

    #[test]
    fn sc110_temporary_guard_drops_at_statement_end() {
        // the second lock is taken after the first temporary guard is
        // gone: no ordering constraint, no inversion
        let diags = run("use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             pub fn one(s: &S) { let x = *s.a.lock().unwrap(); let gb = s.b.lock().unwrap(); }\n\
             pub fn two(s: &S) { let y = *s.b.lock().unwrap(); let ga = s.a.lock().unwrap(); }\n");
        // `let x = *s.a.lock()...` binds the copied value, not the guard
        // — still statement-bound, so this stays conservative: accept
        // either no finding or none is the requirement
        assert!(by_code(&diags, "SC110").is_empty(), "{diags:?}");
    }

    #[test]
    fn sc111_relaxed_load_into_sink_is_flagged() {
        let diags = run("use std::sync::atomic::{AtomicU64, Ordering};\n\
             pub fn emit(c: &AtomicU64, out: &mut String) {\n\
             let n = c.load(Ordering::Relaxed);\n\
             out.push_str(&format!(\"{n}\"));\n\
             }\n");
        let found = by_code(&diags, "SC111");
        assert_eq!(found.len(), 1, "{diags:?}");
        assert!(found[0].message.contains("c.load(Relaxed)"), "{diags:?}");
    }

    #[test]
    fn sc111_discarded_rmw_is_clean() {
        let diags = run("use std::sync::atomic::{AtomicU64, Ordering};\n\
             pub fn bump(c: &AtomicU64) {\n\
             c.fetch_add(1, Ordering::Relaxed);\n\
             }\n");
        assert!(by_code(&diags, "SC111").is_empty(), "{diags:?}");
    }

    #[test]
    fn sc111_interprocedural_flow_into_serializer() {
        let diags = run("use std::sync::atomic::{AtomicU64, Ordering};\n\
             fn render_count(n: u64) -> String { format!(\"{n}\") }\n\
             pub fn emit(c: &AtomicU64) -> String {\n\
             render_count(c.swap(0, Ordering::Relaxed))\n\
             }\n");
        let found = by_code(&diags, "SC111");
        assert_eq!(found.len(), 1, "{diags:?}");
        assert!(found[0].message.contains("render_count"), "{diags:?}");
    }

    #[test]
    fn sc111_seqcst_is_clean() {
        let diags = run("use std::sync::atomic::{AtomicU64, Ordering};\n\
             pub fn emit(c: &AtomicU64, out: &mut String) {\n\
             let n = c.load(Ordering::SeqCst);\n\
             out.push_str(&format!(\"{n}\"));\n\
             }\n");
        assert!(by_code(&diags, "SC111").is_empty(), "{diags:?}");
    }

    #[test]
    fn sc112_blocking_sleep_in_par_task_is_flagged() {
        let diags = run("pub fn run(units: &[u32]) {\n\
             map_indexed(units, |i, _u| { throttle(); i });\n\
             }\n\
             fn throttle() { std::thread::sleep(std::time::Duration::from_millis(5)); }\n");
        let found = by_code(&diags, "SC112");
        assert_eq!(found.len(), 1, "{diags:?}");
        assert!(found[0].message.contains("throttle"), "{diags:?}");
        assert!(found[0].message.contains("`sleep`"), "{diags:?}");
    }

    #[test]
    fn sc112_deadline_on_the_chain_sanctions() {
        let diags = run("pub fn run(units: &[u32]) {\n\
             map_indexed(units, |i, _u| { fetch(); i });\n\
             }\n\
             fn fetch() {\n\
             let s = connect();\n\
             s.set_read_timeout(None);\n\
             s.read_exact(&mut [0u8; 4]);\n\
             }\n");
        assert!(by_code(&diags, "SC112").is_empty(), "{diags:?}");
    }

    #[test]
    fn sc112_rwlock_read_is_not_blocking_io() {
        let diags = run("use std::sync::RwLock;\n\
             pub struct S { table: RwLock<u32> }\n\
             pub fn run(s: &S, units: &[u32]) {\n\
             map_indexed(units, |i, _u| { let g = s.table.read().unwrap(); i });\n\
             }\n");
        assert!(by_code(&diags, "SC112").is_empty(), "{diags:?}");
    }
}
