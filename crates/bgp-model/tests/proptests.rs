//! Property-based tests for the core data model invariants.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bgp_model::prelude::*;
use proptest::prelude::*;

fn arb_prefix_v4() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32)
        .prop_map(|(bits, len)| Prefix::new(IpAddr::V4(Ipv4Addr::from(bits)), len).unwrap())
}

fn arb_prefix_v6() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 0u8..=128)
        .prop_map(|(bits, len)| Prefix::new(IpAddr::V6(Ipv6Addr::from(bits)), len).unwrap())
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![arb_prefix_v4(), arb_prefix_v6()]
}

fn arb_aspath() -> impl Strategy<Value = AsPath> {
    proptest::collection::vec(1u32..400_000, 1..8)
        .prop_map(|v| AsPath::from_sequence(v.into_iter().map(Asn)))
}

proptest! {
    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn prefix_canonical_idempotent(p in arb_prefix()) {
        // re-canonicalizing an already-canonical prefix changes nothing
        let again = Prefix::new(p.addr(), p.len()).unwrap();
        prop_assert_eq!(again, p);
    }

    #[test]
    fn prefix_contains_reflexive(p in arb_prefix()) {
        prop_assert!(p.contains(&p));
    }

    #[test]
    fn prefix_containment_antisymmetric(a in arb_prefix(), b in arb_prefix()) {
        if a.contains(&b) && b.contains(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn prefix_contains_implies_shorter(a in arb_prefix(), b in arb_prefix()) {
        if a.contains(&b) {
            prop_assert!(a.len() <= b.len());
            prop_assert_eq!(a.afi(), b.afi());
        }
    }

    #[test]
    fn standard_community_parts_roundtrip(hi in any::<u16>(), lo in any::<u16>()) {
        let c = StandardCommunity::from_parts(hi, lo);
        prop_assert_eq!(c.high(), hi);
        prop_assert_eq!(c.low(), lo);
        let parsed: StandardCommunity = c.to_string().parse().unwrap();
        prop_assert_eq!(parsed, c);
    }

    #[test]
    fn large_community_text_roundtrip(g in any::<u32>(), a in any::<u32>(), b in any::<u32>()) {
        let c = LargeCommunity::new(g, a, b);
        let parsed: LargeCommunity = c.to_string().parse().unwrap();
        prop_assert_eq!(parsed, c);
    }

    #[test]
    fn extended_two_octet_kind_roundtrip(st in any::<u8>(), asn in any::<u16>(), local in any::<u32>()) {
        let e = ExtendedCommunity::two_octet_as(st, asn, local);
        match e.kind() {
            bgp_model::community::ExtendedKind::TwoOctetAsSpecific { subtype, asn: a, local: l, transitive } => {
                prop_assert!(transitive);
                prop_assert_eq!(subtype, st);
                prop_assert_eq!(a, Asn(asn as u32));
                prop_assert_eq!(l, local);
            }
            k => prop_assert!(false, "unexpected kind {:?}", k),
        }
    }

    #[test]
    fn aspath_prepend_extends_length(p in arb_aspath(), asn in 1u32..100_000, n in 1usize..6) {
        let q = p.prepend(Asn(asn), n);
        prop_assert_eq!(q.path_len(), p.path_len() + n);
        prop_assert_eq!(q.first_asn(), Some(Asn(asn)));
        // origin unchanged by prepending
        prop_assert_eq!(q.origin_asn(), p.origin_asn());
    }

    #[test]
    fn aspath_prepend_preserves_contains(p in arb_aspath(), asn in 1u32..100_000) {
        let q = p.prepend(Asn(asn), 2);
        prop_assert!(q.contains(Asn(asn)));
        for a in p.iter_asns() {
            prop_assert!(q.contains(a));
        }
    }

    #[test]
    fn community_serde_roundtrip(hi in any::<u16>(), lo in any::<u16>(), g in any::<u32>()) {
        let cs = vec![
            Community::Standard(StandardCommunity::from_parts(hi, lo)),
            Community::Large(LargeCommunity::new(g, hi as u32, lo as u32)),
            Community::Extended(ExtendedCommunity::two_octet_as(2, hi, g)),
        ];
        let js = serde_json::to_string(&cs).unwrap();
        let back: Vec<Community> = serde_json::from_str(&js).unwrap();
        prop_assert_eq!(back, cs);
    }

    #[test]
    fn rib_announce_then_withdraw_is_noop(p in arb_prefix(), origin in 1u32..100_000) {
        let mut rib = PeerRib::new();
        let nh: IpAddr = "198.32.0.9".parse().unwrap();
        let route = Route::builder(p, nh).path([origin]).build();
        rib.announce(route);
        prop_assert_eq!(rib.len(), 1);
        rib.withdraw(&p);
        prop_assert!(rib.is_empty());
    }

    #[test]
    fn rib_replace_keeps_single_entry(p in arb_prefix(), o1 in 1u32..100_000, o2 in 1u32..100_000) {
        let mut rib = PeerRib::new();
        let nh: IpAddr = "198.32.0.9".parse().unwrap();
        rib.announce(Route::builder(p, nh).path([o1]).build());
        rib.announce(Route::builder(p, nh).path([o2]).build());
        prop_assert_eq!(rib.len(), 1);
        prop_assert_eq!(rib.get(&p).unwrap().origin_asn(), Some(Asn(o2)));
    }

    #[test]
    fn asn_parse_display_roundtrip(v in any::<u32>()) {
        let a = Asn(v);
        let parsed: Asn = a.to_string().parse().unwrap();
        prop_assert_eq!(parsed, a);
    }
}
