//! # bgp-model
//!
//! The BGP data model shared by every crate in this workspace: ASNs,
//! IP prefixes, the three community types (standard / extended / large),
//! AS paths, route records and RIB structures.
//!
//! This is the vocabulary of the CoNEXT'22 paper *"Light, Camera, Actions:
//! characterizing the usage of IXPs' action BGP communities"*: routes
//! observed at IXP route servers carry lists of communities, and the
//! higher-level crates classify and count those communities.
//!
//! ```
//! use bgp_model::prelude::*;
//!
//! let route = Route::builder(
//!     "203.0.113.0/24".parse().unwrap(),
//!     "198.32.0.7".parse().unwrap(),
//! )
//! .path([64496, 15169])
//! .standard(StandardCommunity::from_parts(0, 6939)) // "do not announce to AS6939"
//! .build();
//!
//! assert_eq!(route.origin_asn(), Some(Asn(15169)));
//! assert_eq!(route.community_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod aspath;
pub mod community;
pub mod prefix;
pub mod rib;
pub mod route;

/// Common re-exports.
pub mod prelude {
    pub use crate::asn::Asn;
    pub use crate::aspath::{AsPath, Segment};
    pub use crate::community::{
        well_known, Community, CommunityType, ExtendedCommunity, LargeCommunity, StandardCommunity,
    };
    pub use crate::prefix::{Afi, Prefix};
    pub use crate::rib::{AdjRibIn, PeerRib};
    pub use crate::route::{Origin, Route, RouteBuilder};
}

pub use prelude::*;
