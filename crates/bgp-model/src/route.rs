//! Route records.
//!
//! A [`Route`] is what the paper's snapshots contain per entry: prefix,
//! next hop, AS path, origin attribute and the three community lists
//! ("The information, captured for every route, includes prefix, next-hop
//! address, AS-Path, and lists of BGP standard, extended, and large
//! communities", §3).

use std::fmt;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::aspath::AsPath;
use crate::community::{Community, ExtendedCommunity, LargeCommunity, StandardCommunity};
use crate::prefix::{Afi, Prefix};

/// BGP ORIGIN attribute (RFC 4271 §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Origin {
    /// Learned from an IGP (0).
    Igp,
    /// Learned via EGP (1).
    Egp,
    /// Unknown provenance (2).
    Incomplete,
}

impl Origin {
    /// Wire code.
    pub const fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// From wire code.
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Igp => write!(f, "IGP"),
            Origin::Egp => write!(f, "EGP"),
            Origin::Incomplete => write!(f, "incomplete"),
        }
    }
}

/// A route as announced to / exported by a route server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Destination prefix (the NLRI).
    pub prefix: Prefix,
    /// Next hop address. At an IXP this is the announcing member's address
    /// on the peering LAN (the RS does not rewrite it, RFC 7947 §2.2.1).
    pub next_hop: IpAddr,
    /// AS path.
    pub as_path: AsPath,
    /// Origin attribute.
    pub origin: Origin,
    /// Multi-exit discriminator, if present.
    pub med: Option<u32>,
    /// RFC 1997 standard communities.
    pub standard_communities: Vec<StandardCommunity>,
    /// RFC 4360 extended communities.
    pub extended_communities: Vec<ExtendedCommunity>,
    /// RFC 8092 large communities.
    pub large_communities: Vec<LargeCommunity>,
}

impl Route {
    /// Start building a route.
    pub fn builder(prefix: Prefix, next_hop: IpAddr) -> RouteBuilder {
        RouteBuilder::new(prefix, next_hop)
    }

    /// Address family of the route (from its prefix).
    pub fn afi(&self) -> Afi {
        self.prefix.afi()
    }

    /// Origin AS, if determinable.
    pub fn origin_asn(&self) -> Option<Asn> {
        self.as_path.origin_asn()
    }

    /// Total community instances of all three types — the paper's unit of
    /// counting ("over 4 billion community instances").
    pub fn community_count(&self) -> usize {
        self.standard_communities.len()
            + self.extended_communities.len()
            + self.large_communities.len()
    }

    /// Iterate all communities as the unified enum.
    pub fn communities(&self) -> impl Iterator<Item = Community> + '_ {
        self.standard_communities
            .iter()
            .copied()
            .map(Community::Standard)
            .chain(
                self.extended_communities
                    .iter()
                    .copied()
                    .map(Community::Extended),
            )
            .chain(self.large_communities.iter().copied().map(Community::Large))
    }

    /// True if the route carries the given standard community.
    pub fn has_standard(&self, c: StandardCommunity) -> bool {
        self.standard_communities.contains(&c)
    }

    /// Remove all communities (what the RS does before propagating a route
    /// whose action communities it has executed — "scrubbing").
    pub fn scrub_communities(&mut self) {
        self.standard_communities.clear();
        self.extended_communities.clear();
        self.large_communities.clear();
    }
}

/// Builder for [`Route`].
#[derive(Debug, Clone)]
pub struct RouteBuilder {
    prefix: Prefix,
    next_hop: IpAddr,
    as_path: AsPath,
    origin: Origin,
    med: Option<u32>,
    standard: Vec<StandardCommunity>,
    extended: Vec<ExtendedCommunity>,
    large: Vec<LargeCommunity>,
}

impl RouteBuilder {
    /// New builder with mandatory fields.
    pub fn new(prefix: Prefix, next_hop: IpAddr) -> Self {
        RouteBuilder {
            prefix,
            next_hop,
            as_path: AsPath::empty(),
            origin: Origin::Igp,
            med: None,
            standard: Vec::new(),
            extended: Vec::new(),
            large: Vec::new(),
        }
    }

    /// Set the AS path.
    pub fn as_path(mut self, path: AsPath) -> Self {
        self.as_path = path;
        self
    }

    /// Set the AS path from an ordered ASN list.
    pub fn path<I: IntoIterator<Item = u32>>(mut self, asns: I) -> Self {
        self.as_path = AsPath::from_sequence(asns.into_iter().map(Asn));
        self
    }

    /// Set the origin attribute.
    pub fn origin(mut self, origin: Origin) -> Self {
        self.origin = origin;
        self
    }

    /// Set the MED.
    pub fn med(mut self, med: u32) -> Self {
        self.med = Some(med);
        self
    }

    /// Add one standard community.
    pub fn standard(mut self, c: StandardCommunity) -> Self {
        self.standard.push(c);
        self
    }

    /// Add several standard communities.
    pub fn standards<I: IntoIterator<Item = StandardCommunity>>(mut self, cs: I) -> Self {
        self.standard.extend(cs);
        self
    }

    /// Add one extended community.
    pub fn extended(mut self, c: ExtendedCommunity) -> Self {
        self.extended.push(c);
        self
    }

    /// Add one large community.
    pub fn large(mut self, c: LargeCommunity) -> Self {
        self.large.push(c);
        self
    }

    /// Finish.
    pub fn build(self) -> Route {
        Route {
            prefix: self.prefix,
            next_hop: self.next_hop,
            as_path: self.as_path,
            origin: self.origin,
            med: self.med,
            standard_communities: self.standard,
            extended_communities: self.extended,
            large_communities: self.large,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::well_known;

    fn sample() -> Route {
        Route::builder(
            "203.0.113.0/24".parse().unwrap(),
            "198.32.0.7".parse().unwrap(),
        )
        .path([64496, 15169])
        .origin(Origin::Igp)
        .standard(StandardCommunity::from_parts(0, 6939))
        .standard(well_known::NO_EXPORT)
        .large(LargeCommunity::new(26162, 0, 6939))
        .build()
    }

    #[test]
    fn builder_sets_fields() {
        let r = sample();
        assert_eq!(r.prefix.to_string(), "203.0.113.0/24");
        assert_eq!(r.origin_asn(), Some(Asn(15169)));
        assert_eq!(r.afi(), Afi::Ipv4);
        assert_eq!(r.community_count(), 3);
        assert!(r.has_standard(well_known::NO_EXPORT));
        assert!(r.med.is_none());
    }

    #[test]
    fn communities_iterator_covers_all_types() {
        let r = sample();
        let mut std_n = 0;
        let mut lg_n = 0;
        for c in r.communities() {
            match c {
                Community::Standard(_) => std_n += 1,
                Community::Large(_) => lg_n += 1,
                Community::Extended(_) => {}
            }
        }
        assert_eq!((std_n, lg_n), (2, 1));
    }

    #[test]
    fn scrub_clears_everything() {
        let mut r = sample();
        r.scrub_communities();
        assert_eq!(r.community_count(), 0);
    }

    #[test]
    fn origin_codes_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_code(o.code()), Some(o));
        }
        assert_eq!(Origin::from_code(7), None);
    }

    #[test]
    fn serde_roundtrip() {
        let r = sample();
        let js = serde_json::to_string(&r).unwrap();
        let back: Route = serde_json::from_str(&js).unwrap();
        assert_eq!(back, r);
    }
}
