//! IP prefixes (IPv4 and IPv6).
//!
//! [`Prefix`] is the NLRI unit announced in BGP UPDATE messages. It is
//! stored canonicalized (host bits zeroed) so that equality and hashing
//! behave as route-server operators expect. Bogon membership and the
//! too-specific / too-broad bounds used by IXP route-server import filters
//! (paper §3) are provided here.

use std::cmp::Ordering;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use serde::{de, Deserialize, Deserializer, Serialize, Serializer};

/// Address family identifier, mirroring the IANA AFI values used by MP-BGP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Afi {
    /// IPv4 (AFI 1).
    Ipv4,
    /// IPv6 (AFI 2).
    Ipv6,
}

impl Afi {
    /// IANA AFI code.
    pub const fn code(self) -> u16 {
        match self {
            Afi::Ipv4 => 1,
            Afi::Ipv6 => 2,
        }
    }

    /// Construct from the IANA code.
    pub const fn from_code(code: u16) -> Option<Self> {
        match code {
            1 => Some(Afi::Ipv4),
            2 => Some(Afi::Ipv6),
            _ => None,
        }
    }

    /// Maximum prefix length in this family.
    pub const fn max_len(self) -> u8 {
        match self {
            Afi::Ipv4 => 32,
            Afi::Ipv6 => 128,
        }
    }
}

impl fmt::Display for Afi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Afi::Ipv4 => write!(f, "IPv4"),
            Afi::Ipv6 => write!(f, "IPv6"),
        }
    }
}

/// A canonicalized IP prefix: address plus prefix length, host bits zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    addr: IpAddr,
    len: u8,
}

/// Error constructing or parsing a [`Prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// Prefix length exceeds the family maximum.
    LengthOutOfRange {
        /// The offending length.
        len: u8,
        /// The family maximum.
        max: u8,
    },
    /// Text did not parse as `addr/len`.
    Malformed(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange { len, max } => {
                write!(f, "prefix length {len} exceeds maximum {max}")
            }
            PrefixError::Malformed(s) => write!(f, "malformed prefix: {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}

impl Prefix {
    /// Create a prefix, canonicalizing by zeroing host bits.
    pub fn new(addr: IpAddr, len: u8) -> Result<Self, PrefixError> {
        let max = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        if len > max {
            return Err(PrefixError::LengthOutOfRange { len, max });
        }
        Ok(Prefix {
            addr: mask_addr(addr, len),
            len,
        })
    }

    /// Create a prefix, clamping an over-long mask to the AFI maximum
    /// instead of failing. Infallible — for callers that compute the
    /// length and want saturation semantics.
    pub fn new_clamped(addr: IpAddr, len: u8) -> Self {
        let max = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        let len = len.min(max);
        Prefix {
            addr: mask_addr(addr, len),
            len,
        }
    }

    /// The host route for an address (`/32` or `/128`). Infallible.
    pub fn host(addr: IpAddr) -> Self {
        let len = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        Prefix { addr, len }
    }

    /// Create an IPv4 prefix from octets.
    pub fn v4(a: u8, b: u8, c: u8, d: u8, len: u8) -> Result<Self, PrefixError> {
        Prefix::new(IpAddr::V4(Ipv4Addr::new(a, b, c, d)), len)
    }

    /// Create an IPv6 prefix from segments.
    #[allow(clippy::too_many_arguments)]
    pub fn v6(
        a: u16,
        b: u16,
        c: u16,
        d: u16,
        e: u16,
        f: u16,
        g: u16,
        h: u16,
        len: u8,
    ) -> Result<Self, PrefixError> {
        Prefix::new(IpAddr::V6(Ipv6Addr::new(a, b, c, d, e, f, g, h)), len)
    }

    /// The (canonicalized) network address.
    pub const fn addr(&self) -> IpAddr {
        self.addr
    }

    /// The prefix length.
    // `len` is the CIDR mask length, not a container size — an
    // `is_empty` counterpart would be meaningless here.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length default route (`0.0.0.0/0` or `::/0`).
    pub const fn is_default_route(&self) -> bool {
        self.len == 0
    }

    /// Address family of this prefix.
    pub const fn afi(&self) -> Afi {
        match self.addr {
            IpAddr::V4(_) => Afi::Ipv4,
            IpAddr::V6(_) => Afi::Ipv6,
        }
    }

    /// True if `self` contains `other` (same family, shorter-or-equal
    /// length, matching network bits).
    pub fn contains(&self, other: &Prefix) -> bool {
        if self.afi() != other.afi() || self.len > other.len {
            return false;
        }
        mask_addr(other.addr, self.len) == self.addr
    }

    /// True if the given host address falls inside this prefix.
    pub fn contains_addr(&self, addr: IpAddr) -> bool {
        match (self.addr, addr) {
            (IpAddr::V4(_), IpAddr::V4(_)) | (IpAddr::V6(_), IpAddr::V6(_)) => {
                mask_addr(addr, self.len) == self.addr
            }
            _ => false,
        }
    }

    /// Bogon test: membership in the standard unroutable space
    /// (RFC 1918, loopback, link-local, documentation, multicast, etc.).
    /// Route servers reject announcements for these (paper §3).
    pub fn is_bogon(&self) -> bool {
        bogons_for(self.afi()).iter().any(|b| b.contains(self))
    }

    /// The paper's §3 "too specific" bound: stricter than /24 for IPv4.
    /// For IPv6 the conventional route-server bound is /48.
    pub const fn is_too_specific(&self) -> bool {
        match self.addr {
            IpAddr::V4(_) => self.len > 24,
            IpAddr::V6(_) => self.len > 48,
        }
    }

    /// The paper's §3 "too broad" bound: broader than /8 for IPv4.
    /// For IPv6 the conventional bound is /16 (the 2000::/3 allocations
    /// are never announced broader than that).
    pub const fn is_too_broad(&self) -> bool {
        match self.addr {
            IpAddr::V4(_) => self.len < 8,
            IpAddr::V6(_) => self.len < 16,
        }
    }
}

fn mask_addr(addr: IpAddr, len: u8) -> IpAddr {
    match addr {
        IpAddr::V4(a) => {
            let bits = u32::from(a);
            let mask = if len == 0 {
                0
            } else {
                u32::MAX << (32 - len as u32)
            };
            IpAddr::V4(Ipv4Addr::from(bits & mask))
        }
        IpAddr::V6(a) => {
            let bits = u128::from(a);
            let mask = if len == 0 {
                0
            } else {
                u128::MAX << (128 - len as u32)
            };
            IpAddr::V6(Ipv6Addr::from(bits & mask))
        }
    }
}

/// The well-known IPv4 bogon prefixes (fullbogons excluded: we model the
/// static Team-Cymru style list a route server configures).
fn bogons_for(afi: Afi) -> &'static [Prefix] {
    use std::sync::OnceLock;
    static V4: OnceLock<Vec<Prefix>> = OnceLock::new();
    static V6: OnceLock<Vec<Prefix>> = OnceLock::new();
    match afi {
        Afi::Ipv4 => V4.get_or_init(|| {
            [
                "0.0.0.0/8",       // "this network"
                "10.0.0.0/8",      // RFC 1918
                "100.64.0.0/10",   // CGN shared space
                "127.0.0.0/8",     // loopback
                "169.254.0.0/16",  // link local
                "172.16.0.0/12",   // RFC 1918
                "192.0.0.0/24",    // IETF protocol assignments
                "192.0.2.0/24",    // TEST-NET-1
                "192.168.0.0/16",  // RFC 1918
                "198.18.0.0/15",   // benchmarking
                "198.51.100.0/24", // TEST-NET-2
                "203.0.113.0/24",  // TEST-NET-3
                "224.0.0.0/4",     // multicast
                "240.0.0.0/4",     // reserved
            ]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect()
        }),
        Afi::Ipv6 => V6.get_or_init(|| {
            [
                "::/8",          // includes unspecified, loopback, v4-mapped
                "100::/64",      // discard only
                "2001:db8::/32", // documentation
                "fc00::/7",      // unique local
                "fe80::/10",     // link local
                "ff00::/8",      // multicast
            ]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect()
        }),
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.addr, self.len).cmp(&(other.addr, other.len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Malformed(s.to_string()))?;
        let addr: IpAddr = addr
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        Prefix::new(addr, len)
    }
}

impl Serialize for Prefix {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for Prefix {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_host_bits() {
        let p = Prefix::v4(192, 0, 2, 77, 24).unwrap();
        assert_eq!(p.to_string(), "192.0.2.0/24");
        let q: Prefix = "2001:db8::dead:beef/32".parse().unwrap();
        assert_eq!(q.to_string(), "2001:db8::/32");
    }

    #[test]
    fn rejects_out_of_range_length() {
        assert!(Prefix::v4(1, 2, 3, 4, 33).is_err());
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
    }

    #[test]
    fn host_routes_use_full_mask() {
        let v4 = Prefix::host("192.0.2.1".parse().unwrap());
        assert_eq!(v4.to_string(), "192.0.2.1/32");
        let v6 = Prefix::host("2001:db8::1".parse().unwrap());
        assert_eq!(v6.to_string(), "2001:db8::1/128");
    }

    #[test]
    fn clamped_saturates_and_canonicalizes() {
        let p = Prefix::new_clamped("192.0.2.77".parse().unwrap(), 64);
        assert_eq!(p.to_string(), "192.0.2.77/32");
        let q = Prefix::new_clamped("10.1.2.3".parse().unwrap(), 8);
        assert_eq!(q.to_string(), "10.0.0.0/8");
        assert_eq!(q, Prefix::new("10.0.0.0".parse().unwrap(), 8).unwrap());
    }

    #[test]
    fn parse_roundtrip() {
        for s in [
            "10.0.0.0/8",
            "203.0.113.0/24",
            "2001:db8:1::/48",
            "::/0",
            "0.0.0.0/0",
        ] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
        assert!("banana/24".parse::<Prefix>().is_err());
    }

    #[test]
    fn containment() {
        let big: Prefix = "10.0.0.0/8".parse().unwrap();
        let small: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));
        let v6: Prefix = "2001:db8::/32".parse().unwrap();
        assert!(!big.contains(&v6));
        assert!(big.contains_addr("10.200.0.1".parse().unwrap()));
        assert!(!big.contains_addr("11.0.0.1".parse().unwrap()));
        assert!(!big.contains_addr("2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn zero_length_contains_everything_in_family() {
        let any: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(any.contains(&"203.0.113.0/24".parse().unwrap()));
        assert!(any.is_default_route());
        assert!(!any.contains(&"2001:db8::/32".parse().unwrap()));
    }

    #[test]
    fn bogons() {
        assert!("10.1.2.0/24".parse::<Prefix>().unwrap().is_bogon());
        assert!("192.168.4.0/24".parse::<Prefix>().unwrap().is_bogon());
        assert!("100.77.0.0/16".parse::<Prefix>().unwrap().is_bogon());
        assert!("2001:db8:77::/48".parse::<Prefix>().unwrap().is_bogon());
        assert!("fe80::/64".parse::<Prefix>().unwrap().is_bogon());
        assert!(!"203.0.112.0/23".parse::<Prefix>().unwrap().is_bogon());
        assert!(!"8.8.8.0/24".parse::<Prefix>().unwrap().is_bogon());
        assert!(!"2a00:1450::/32".parse::<Prefix>().unwrap().is_bogon());
    }

    #[test]
    fn specificity_bounds_match_paper() {
        // §3: "prefixes too specific (>/24) or too broad (</8)"
        assert!("8.8.8.8/32".parse::<Prefix>().unwrap().is_too_specific());
        assert!("8.8.8.0/25".parse::<Prefix>().unwrap().is_too_specific());
        assert!(!"8.8.8.0/24".parse::<Prefix>().unwrap().is_too_specific());
        assert!("8.0.0.0/7".parse::<Prefix>().unwrap().is_too_broad());
        assert!(!"8.0.0.0/8".parse::<Prefix>().unwrap().is_too_broad());
        // v6 conventions
        assert!("2001:db8::/49".parse::<Prefix>().unwrap().is_too_specific());
        assert!(!"2001:db8::/48".parse::<Prefix>().unwrap().is_too_specific());
        assert!("2000::/15".parse::<Prefix>().unwrap().is_too_broad());
        assert!(!"2000::/16".parse::<Prefix>().unwrap().is_too_broad());
    }

    #[test]
    fn afi_codes() {
        assert_eq!(Afi::Ipv4.code(), 1);
        assert_eq!(Afi::Ipv6.code(), 2);
        assert_eq!(Afi::from_code(1), Some(Afi::Ipv4));
        assert_eq!(Afi::from_code(2), Some(Afi::Ipv6));
        assert_eq!(Afi::from_code(3), None);
    }

    #[test]
    fn ordering_is_total_and_by_addr_then_len() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "10.0.0.0/16".parse().unwrap();
        let c: Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn serde_as_string() {
        let p: Prefix = "203.0.113.0/24".parse().unwrap();
        let js = serde_json::to_string(&p).unwrap();
        assert_eq!(js, "\"203.0.113.0/24\"");
        let back: Prefix = serde_json::from_str(&js).unwrap();
        assert_eq!(back, p);
    }
}
