//! Routing Information Bases.
//!
//! A route server keeps one Adj-RIB-In per member (routes the member
//! announced, post-parse, pre-policy) and computes per-member export RIBs.
//! [`PeerRib`] is the per-peer table keyed by prefix; [`AdjRibIn`] maps
//! peers to their tables.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::prefix::{Afi, Prefix};
use crate::route::Route;

/// A per-peer route table keyed by prefix. One route per prefix per peer
/// (BGP semantics: a later announcement for the same NLRI replaces the
/// earlier one; an explicit withdraw removes it).
///
/// Routes are stored behind `Arc` so the export path can share an
/// unmodified route with every eligible peer instead of deep-cloning it
/// per (route, peer) pair; the table's own API still hands out `&Route`
/// unless a caller explicitly asks for the shared handle.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PeerRib {
    routes: BTreeMap<Prefix, Arc<Route>>,
}

impl PeerRib {
    /// Empty table.
    pub fn new() -> Self {
        PeerRib::default()
    }

    /// Insert or replace the route for its prefix. Returns the replaced
    /// route, if any (implicit withdraw). Accepts an owned [`Route`] or
    /// an already-shared `Arc<Route>` (re-announcing an exported route
    /// costs no copy).
    pub fn announce(&mut self, route: impl Into<Arc<Route>>) -> Option<Arc<Route>> {
        let route = route.into();
        self.routes.insert(route.prefix, route)
    }

    /// Remove the route for `prefix`. Returns it if present.
    pub fn withdraw(&mut self, prefix: &Prefix) -> Option<Arc<Route>> {
        self.routes.remove(prefix)
    }

    /// Route for an exact prefix.
    pub fn get(&self, prefix: &Prefix) -> Option<&Route> {
        self.routes.get(prefix).map(Arc::as_ref)
    }

    /// Shared handle to the route for an exact prefix (for callers that
    /// want to keep or re-export the route without copying it).
    pub fn get_shared(&self, prefix: &Prefix) -> Option<&Arc<Route>> {
        self.routes.get(prefix)
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no routes are held.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Iterate routes in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.routes.values().map(Arc::as_ref)
    }

    /// Iterate shared route handles in prefix order.
    pub fn iter_shared(&self) -> impl Iterator<Item = &Arc<Route>> {
        self.routes.values()
    }

    /// Routes of one address family.
    pub fn iter_afi(&self, afi: Afi) -> impl Iterator<Item = &Route> + '_ {
        self.iter().filter(move |r| r.afi() == afi)
    }

    /// Longest-prefix match for a host address.
    pub fn longest_match(&self, addr: std::net::IpAddr) -> Option<&Route> {
        self.iter()
            .filter(|r| r.prefix.contains_addr(addr))
            .max_by_key(|r| r.prefix.len())
    }
}

/// All members' announced routes: peer ASN → [`PeerRib`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AdjRibIn {
    tables: BTreeMap<Asn, PeerRib>,
}

impl AdjRibIn {
    /// Empty RIB.
    pub fn new() -> Self {
        AdjRibIn::default()
    }

    /// Announce a route from `peer` (inserting the peer on first use).
    /// Returns the replaced route, if any.
    pub fn announce(&mut self, peer: Asn, route: impl Into<Arc<Route>>) -> Option<Arc<Route>> {
        self.tables.entry(peer).or_default().announce(route)
    }

    /// Withdraw `prefix` from `peer`.
    pub fn withdraw(&mut self, peer: Asn, prefix: &Prefix) -> Option<Arc<Route>> {
        match self.tables.entry(peer) {
            Entry::Occupied(mut e) => e.get_mut().withdraw(prefix),
            Entry::Vacant(_) => None,
        }
    }

    /// Drop a peer entirely (session down). Returns its table.
    pub fn remove_peer(&mut self, peer: Asn) -> Option<PeerRib> {
        self.tables.remove(&peer)
    }

    /// Register a peer with an empty table (session up, no routes yet —
    /// the paper §3 captures "peers with active BGP sessions ... regardless
    /// whether the AS shares routes or not").
    pub fn ensure_peer(&mut self, peer: Asn) {
        self.tables.entry(peer).or_default();
    }

    /// The table of one peer.
    pub fn peer(&self, peer: Asn) -> Option<&PeerRib> {
        self.tables.get(&peer)
    }

    /// All peers with sessions, in ASN order.
    pub fn peers(&self) -> impl Iterator<Item = Asn> + '_ {
        self.tables.keys().copied()
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.tables.len()
    }

    /// Total route count across peers.
    pub fn route_count(&self) -> usize {
        self.tables.values().map(PeerRib::len).sum()
    }

    /// Distinct prefixes across all peers.
    pub fn distinct_prefixes(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for t in self.tables.values() {
            set.extend(t.iter().map(|r| r.prefix));
        }
        set.len()
    }

    /// Iterate `(peer, route)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, &Route)> {
        self.tables
            .iter()
            .flat_map(|(asn, t)| t.iter().map(move |r| (*asn, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Origin;

    fn route(pfx: &str, origin_as: u32) -> Route {
        Route::builder(pfx.parse().unwrap(), "198.32.0.9".parse().unwrap())
            .path([origin_as])
            .origin(Origin::Igp)
            .build()
    }

    #[test]
    fn announce_replace_withdraw() {
        let mut rib = PeerRib::new();
        assert!(rib.announce(route("203.0.113.0/24", 100)).is_none());
        assert_eq!(rib.len(), 1);
        // implicit withdraw: replacement returns old route
        let old = rib.announce(route("203.0.113.0/24", 200)).unwrap();
        assert_eq!(old.origin_asn(), Some(Asn(100)));
        assert_eq!(rib.len(), 1);
        let gone = rib.withdraw(&"203.0.113.0/24".parse().unwrap()).unwrap();
        assert_eq!(gone.origin_asn(), Some(Asn(200)));
        assert!(rib.is_empty());
        assert!(rib.withdraw(&"203.0.113.0/24".parse().unwrap()).is_none());
    }

    #[test]
    fn longest_match_prefers_more_specific() {
        let mut rib = PeerRib::new();
        rib.announce(route("203.0.0.0/16", 1));
        rib.announce(route("203.0.113.0/24", 2));
        let m = rib.longest_match("203.0.113.9".parse().unwrap()).unwrap();
        assert_eq!(m.prefix.len(), 24);
        let m = rib.longest_match("203.0.1.9".parse().unwrap()).unwrap();
        assert_eq!(m.prefix.len(), 16);
        assert!(rib.longest_match("8.8.8.8".parse().unwrap()).is_none());
    }

    #[test]
    fn afi_filter() {
        let mut rib = PeerRib::new();
        rib.announce(route("203.0.113.0/24", 1));
        rib.announce(
            Route::builder(
                "2001:db8:100::/48".parse().unwrap(),
                "2001:7f8::1".parse().unwrap(),
            )
            .path([1])
            .build(),
        );
        assert_eq!(rib.iter_afi(Afi::Ipv4).count(), 1);
        assert_eq!(rib.iter_afi(Afi::Ipv6).count(), 1);
    }

    #[test]
    fn adj_rib_in_counts() {
        let mut rib = AdjRibIn::new();
        rib.ensure_peer(Asn(300)); // session without routes
        rib.announce(Asn(100), route("203.0.113.0/24", 100));
        rib.announce(Asn(100), route("198.51.100.0/24", 100));
        rib.announce(Asn(200), route("203.0.113.0/24", 200));
        assert_eq!(rib.peer_count(), 3);
        assert_eq!(rib.route_count(), 3);
        assert_eq!(rib.distinct_prefixes(), 2);
        assert_eq!(rib.iter().count(), 3);
        assert!(rib.peer(Asn(300)).unwrap().is_empty());
    }

    #[test]
    fn remove_peer_drops_routes() {
        let mut rib = AdjRibIn::new();
        rib.announce(Asn(100), route("203.0.113.0/24", 100));
        let table = rib.remove_peer(Asn(100)).unwrap();
        assert_eq!(table.len(), 1);
        assert_eq!(rib.peer_count(), 0);
        assert!(rib
            .withdraw(Asn(100), &"203.0.113.0/24".parse().unwrap())
            .is_none());
    }
}
