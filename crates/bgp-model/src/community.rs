//! BGP communities: standard (RFC 1997), extended (RFC 4360) and
//! large (RFC 8092).
//!
//! The paper's unit of measurement is the *community instance*: one
//! community value attached to one route. This module defines the three
//! community types, the well-known values (including the BLACKHOLE
//! community of RFC 7999), and a unifying [`Community`] enum.

use std::fmt;
use std::str::FromStr;

use serde::{de, Deserialize, Deserializer, Serialize, Serializer};

use crate::asn::Asn;

/// An RFC 1997 standard community: a 32-bit value conventionally written
/// `high:low` where `high` is usually an ASN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StandardCommunity(pub u32);

/// Well-known communities (RFC 1997 + RFC 7999), in the 65535:* space.
pub mod well_known {
    use super::StandardCommunity;

    /// GRACEFUL_SHUTDOWN (RFC 8326), 65535:0.
    pub const GRACEFUL_SHUTDOWN: StandardCommunity = StandardCommunity(0xFFFF_0000);
    /// BLACKHOLE (RFC 7999), 65535:666.
    pub const BLACKHOLE: StandardCommunity = StandardCommunity(0xFFFF_029A);
    /// NO_EXPORT (RFC 1997), 65535:65281.
    pub const NO_EXPORT: StandardCommunity = StandardCommunity(0xFFFF_FF01);
    /// NO_ADVERTISE (RFC 1997), 65535:65282.
    pub const NO_ADVERTISE: StandardCommunity = StandardCommunity(0xFFFF_FF02);
    /// NO_EXPORT_SUBCONFED (RFC 1997), 65535:65283.
    pub const NO_EXPORT_SUBCONFED: StandardCommunity = StandardCommunity(0xFFFF_FF03);
    /// NOPEER (RFC 3765), 65535:65284.
    pub const NOPEER: StandardCommunity = StandardCommunity(0xFFFF_FF04);
}

impl StandardCommunity {
    /// Build from the conventional `high:low` parts.
    pub const fn from_parts(high: u16, low: u16) -> Self {
        StandardCommunity(((high as u32) << 16) | low as u32)
    }

    /// The high 16 bits (conventionally an ASN).
    pub const fn high(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits (conventionally the operator-defined value).
    pub const fn low(self) -> u16 {
        self.0 as u16
    }

    /// The high part interpreted as a (16-bit) ASN.
    pub const fn asn(self) -> Asn {
        Asn(self.high() as u32)
    }

    /// True for the reserved well-known space 65535:* and 0:* per RFC 1997
    /// ("communities with the first two octets 0x0000 or 0xFFFF are
    /// reserved").
    pub const fn is_reserved_space(self) -> bool {
        self.high() == 0 || self.high() == 0xFFFF
    }

    /// RFC 7999 BLACKHOLE.
    pub const fn is_blackhole(self) -> bool {
        self.0 == well_known::BLACKHOLE.0
    }
}

impl fmt::Display for StandardCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.high(), self.low())
    }
}

/// Error parsing any community type from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCommunityError(pub String);

impl fmt::Display for ParseCommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid community: {:?}", self.0)
    }
}

impl std::error::Error for ParseCommunityError {}

impl FromStr for StandardCommunity {
    type Err = ParseCommunityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (hi, lo) = s
            .split_once(':')
            .ok_or_else(|| ParseCommunityError(s.to_string()))?;
        let hi: u16 = hi.parse().map_err(|_| ParseCommunityError(s.to_string()))?;
        let lo: u16 = lo.parse().map_err(|_| ParseCommunityError(s.to_string()))?;
        Ok(StandardCommunity::from_parts(hi, lo))
    }
}

/// RFC 4360 extended community: 8 bytes, first one or two bytes are the
/// type. We keep the raw bytes plus typed accessors for the common
/// two-octet-AS-specific form that IXPs use for fine-grained actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExtendedCommunity(pub [u8; 8]);

/// High-level kind of an extended community.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtendedKind {
    /// Two-octet AS specific (types 0x00 transitive / 0x40 non-transitive).
    TwoOctetAsSpecific {
        /// Transitive across ASes?
        transitive: bool,
        /// Subtype byte (e.g. 0x02 = route target).
        subtype: u8,
        /// Global administrator ASN (2 bytes).
        asn: Asn,
        /// Local administrator value (4 bytes).
        local: u32,
    },
    /// Four-octet AS specific (types 0x02/0x42).
    FourOctetAsSpecific {
        /// Transitive across ASes?
        transitive: bool,
        /// Subtype byte.
        subtype: u8,
        /// Global administrator ASN (4 bytes).
        asn: Asn,
        /// Local administrator value (2 bytes).
        local: u16,
    },
    /// Anything else: carried opaque.
    Opaque {
        /// Type byte.
        typ: u8,
        /// Subtype byte.
        subtype: u8,
    },
}

impl ExtendedCommunity {
    /// Build a transitive two-octet-AS-specific extended community
    /// (the form IXPs like AMS-IX use for fine-grained prepend actions).
    pub fn two_octet_as(subtype: u8, asn: u16, local: u32) -> Self {
        let mut b = [0u8; 8];
        b[0] = 0x00;
        b[1] = subtype;
        b[2..4].copy_from_slice(&asn.to_be_bytes());
        b[4..8].copy_from_slice(&local.to_be_bytes());
        ExtendedCommunity(b)
    }

    /// Build a transitive four-octet-AS-specific extended community.
    pub fn four_octet_as(subtype: u8, asn: u32, local: u16) -> Self {
        let mut b = [0u8; 8];
        b[0] = 0x02;
        b[1] = subtype;
        b[2..6].copy_from_slice(&asn.to_be_bytes());
        b[6..8].copy_from_slice(&local.to_be_bytes());
        ExtendedCommunity(b)
    }

    /// Decode the type structure.
    pub fn kind(&self) -> ExtendedKind {
        let b = &self.0;
        match b[0] {
            0x00 | 0x40 => ExtendedKind::TwoOctetAsSpecific {
                transitive: b[0] & 0x40 == 0,
                subtype: b[1],
                asn: Asn(u16::from_be_bytes([b[2], b[3]]) as u32),
                local: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
            },
            0x02 | 0x42 => ExtendedKind::FourOctetAsSpecific {
                transitive: b[0] & 0x40 == 0,
                subtype: b[1],
                asn: Asn(u32::from_be_bytes([b[2], b[3], b[4], b[5]])),
                local: u16::from_be_bytes([b[6], b[7]]),
            },
            typ => ExtendedKind::Opaque { typ, subtype: b[1] },
        }
    }

    /// Raw 8 bytes, network order.
    pub const fn bytes(&self) -> [u8; 8] {
        self.0
    }
}

impl fmt::Display for ExtendedCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            ExtendedKind::TwoOctetAsSpecific {
                subtype,
                asn,
                local,
                ..
            } => write!(f, "ext:{:#04x}:{}:{}", subtype, asn.value(), local),
            ExtendedKind::FourOctetAsSpecific {
                subtype,
                asn,
                local,
                ..
            } => write!(f, "ext4:{:#04x}:{}:{}", subtype, asn.value(), local),
            ExtendedKind::Opaque { typ, subtype } => {
                write!(f, "ext-opaque:{typ:#04x}:{subtype:#04x}")
            }
        }
    }
}

/// RFC 8092 large community: three 32-bit words, written `global:a:b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LargeCommunity {
    /// Global administrator (an ASN, 4 bytes).
    pub global: u32,
    /// Local data part 1.
    pub data1: u32,
    /// Local data part 2.
    pub data2: u32,
}

impl LargeCommunity {
    /// Construct from the three parts.
    pub const fn new(global: u32, data1: u32, data2: u32) -> Self {
        LargeCommunity {
            global,
            data1,
            data2,
        }
    }

    /// The global administrator as an ASN.
    pub const fn asn(&self) -> Asn {
        Asn(self.global)
    }
}

impl fmt::Display for LargeCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.global, self.data1, self.data2)
    }
}

impl FromStr for LargeCommunity {
    type Err = ParseCommunityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split(':');
        let g = it.next().and_then(|x| x.parse().ok());
        let a = it.next().and_then(|x| x.parse().ok());
        let b = it.next().and_then(|x| x.parse().ok());
        match (g, a, b, it.next()) {
            (Some(g), Some(a), Some(b), None) => Ok(LargeCommunity::new(g, a, b)),
            _ => Err(ParseCommunityError(s.to_string())),
        }
    }
}

/// Structural type of a community, used by the paper's Fig. 2 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CommunityType {
    /// RFC 1997 standard.
    Standard,
    /// RFC 4360 extended.
    Extended,
    /// RFC 8092 large.
    Large,
}

impl fmt::Display for CommunityType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommunityType::Standard => write!(f, "standard"),
            CommunityType::Extended => write!(f, "extended"),
            CommunityType::Large => write!(f, "large"),
        }
    }
}

/// Any community attached to a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Community {
    /// RFC 1997.
    Standard(StandardCommunity),
    /// RFC 4360.
    Extended(ExtendedCommunity),
    /// RFC 8092.
    Large(LargeCommunity),
}

impl Community {
    /// Structural type (for the Fig. 2 breakdown).
    pub const fn community_type(&self) -> CommunityType {
        match self {
            Community::Standard(_) => CommunityType::Standard,
            Community::Extended(_) => CommunityType::Extended,
            Community::Large(_) => CommunityType::Large,
        }
    }

    /// Convenience: the standard community inside, if any.
    pub const fn as_standard(&self) -> Option<StandardCommunity> {
        match self {
            Community::Standard(c) => Some(*c),
            _ => None,
        }
    }
}

impl From<StandardCommunity> for Community {
    fn from(c: StandardCommunity) -> Self {
        Community::Standard(c)
    }
}

impl From<ExtendedCommunity> for Community {
    fn from(c: ExtendedCommunity) -> Self {
        Community::Extended(c)
    }
}

impl From<LargeCommunity> for Community {
    fn from(c: LargeCommunity) -> Self {
        Community::Large(c)
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Community::Standard(c) => c.fmt(f),
            Community::Extended(c) => c.fmt(f),
            Community::Large(c) => c.fmt(f),
        }
    }
}

// Serialize standard and large communities as their conventional text form;
// extended as hex bytes. Snapshots stay human-readable like real LG output.
impl Serialize for StandardCommunity {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for StandardCommunity {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        s.parse().map_err(de::Error::custom)
    }
}

impl Serialize for LargeCommunity {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for LargeCommunity {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        s.parse().map_err(de::Error::custom)
    }
}

fn parse_extended_hex(s: &str) -> Result<ExtendedCommunity, ParseCommunityError> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(ParseCommunityError(s.to_string()));
    }
    let mut b = [0u8; 8];
    for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
        let hx = std::str::from_utf8(chunk).map_err(|_| ParseCommunityError(s.to_string()))?;
        b[i] = u8::from_str_radix(hx, 16).map_err(|_| ParseCommunityError(s.to_string()))?;
    }
    Ok(ExtendedCommunity(b))
}

impl Serialize for ExtendedCommunity {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let hex: String = self.0.iter().map(|b| format!("{b:02x}")).collect();
        s.serialize_str(&hex)
    }
}

impl<'de> Deserialize<'de> for ExtendedCommunity {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        parse_extended_hex(&s).map_err(de::Error::custom)
    }
}

impl Serialize for Community {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Tag with a single-character prefix so the three spaces can't collide.
        let text = match self {
            Community::Standard(c) => format!("s:{c}"),
            Community::Extended(c) => {
                let hex: String = c.0.iter().map(|b| format!("{b:02x}")).collect();
                format!("e:{hex}")
            }
            Community::Large(c) => format!("l:{c}"),
        };
        s.serialize_str(&text)
    }
}

impl<'de> Deserialize<'de> for Community {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let (tag, body) = s
            .split_once(':')
            .ok_or_else(|| de::Error::custom("missing community tag"))?;
        match tag {
            "s" => body
                .parse::<StandardCommunity>()
                .map(Community::Standard)
                .map_err(de::Error::custom),
            "l" => body
                .parse::<LargeCommunity>()
                .map(Community::Large)
                .map_err(de::Error::custom),
            "e" => parse_extended_hex(body)
                .map(Community::Extended)
                .map_err(de::Error::custom),
            _ => Err(de::Error::custom("unknown community tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_parts_roundtrip() {
        let c = StandardCommunity::from_parts(6939, 42);
        assert_eq!(c.high(), 6939);
        assert_eq!(c.low(), 42);
        assert_eq!(c.to_string(), "6939:42");
        assert_eq!("6939:42".parse::<StandardCommunity>().unwrap(), c);
    }

    #[test]
    fn standard_parse_rejects() {
        assert!("6939".parse::<StandardCommunity>().is_err());
        assert!("70000:1".parse::<StandardCommunity>().is_err());
        assert!("1:70000".parse::<StandardCommunity>().is_err());
        assert!("a:b".parse::<StandardCommunity>().is_err());
    }

    #[test]
    fn well_known_values() {
        assert_eq!(well_known::NO_EXPORT.to_string(), "65535:65281");
        assert_eq!(well_known::BLACKHOLE.to_string(), "65535:666");
        assert!(well_known::BLACKHOLE.is_blackhole());
        assert!(well_known::NO_EXPORT.is_reserved_space());
        assert!(StandardCommunity::from_parts(0, 6939).is_reserved_space());
        assert!(!StandardCommunity::from_parts(6695, 0).is_reserved_space());
    }

    #[test]
    fn extended_two_octet_roundtrip() {
        let e = ExtendedCommunity::two_octet_as(0x02, 9002, 65001);
        match e.kind() {
            ExtendedKind::TwoOctetAsSpecific {
                transitive,
                subtype,
                asn,
                local,
            } => {
                assert!(transitive);
                assert_eq!(subtype, 0x02);
                assert_eq!(asn, Asn(9002));
                assert_eq!(local, 65001);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn extended_four_octet_roundtrip() {
        let e = ExtendedCommunity::four_octet_as(0x05, 263075, 300);
        match e.kind() {
            ExtendedKind::FourOctetAsSpecific {
                transitive,
                subtype,
                asn,
                local,
            } => {
                assert!(transitive);
                assert_eq!(subtype, 0x05);
                assert_eq!(asn, Asn(263075));
                assert_eq!(local, 300);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn extended_opaque_kind() {
        let e = ExtendedCommunity([0x03, 0x0c, 0, 0, 0, 0, 0, 1]);
        assert!(matches!(
            e.kind(),
            ExtendedKind::Opaque {
                typ: 0x03,
                subtype: 0x0c
            }
        ));
    }

    #[test]
    fn large_roundtrip() {
        let l: LargeCommunity = "6695:100:65001".parse().unwrap();
        assert_eq!(l, LargeCommunity::new(6695, 100, 65001));
        assert_eq!(l.to_string(), "6695:100:65001");
        assert!("1:2".parse::<LargeCommunity>().is_err());
        assert!("1:2:3:4".parse::<LargeCommunity>().is_err());
    }

    #[test]
    fn community_type_tags() {
        assert_eq!(
            Community::from(well_known::BLACKHOLE).community_type(),
            CommunityType::Standard
        );
        assert_eq!(
            Community::from(LargeCommunity::new(1, 2, 3)).community_type(),
            CommunityType::Large
        );
        assert_eq!(
            Community::from(ExtendedCommunity::two_octet_as(2, 1, 1)).community_type(),
            CommunityType::Extended
        );
    }

    #[test]
    fn community_serde_roundtrip() {
        let cs = vec![
            Community::Standard(StandardCommunity::from_parts(6695, 1000)),
            Community::Extended(ExtendedCommunity::two_octet_as(0x02, 9002, 7)),
            Community::Large(LargeCommunity::new(26162, 1, 2)),
        ];
        let js = serde_json::to_string(&cs).unwrap();
        let back: Vec<Community> = serde_json::from_str(&js).unwrap();
        assert_eq!(back, cs);
    }
}
