//! Autonomous System Numbers (ASNs).
//!
//! BGP originally used 16-bit AS numbers; RFC 6793 extended them to 32 bits.
//! [`Asn`] is a 32-bit newtype that covers both, with helpers for the
//! reserved, private-use and documentation ranges that an IXP route server
//! must treat as bogons on import.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The 2-byte placeholder ASN used in AS_PATHs by 4-byte-capable speakers
/// when talking to 2-byte-only peers (RFC 6793 §4.2.2).
pub const AS_TRANS: Asn = Asn(23456);

/// A 32-bit Autonomous System Number (RFC 6793).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// Construct an ASN from a raw 32-bit value.
    pub const fn new(value: u32) -> Self {
        Asn(value)
    }

    /// The raw numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// True if the ASN fits in the original 16-bit space.
    pub const fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }

    /// AS 0 is reserved and must never appear in routing (RFC 7607).
    pub const fn is_reserved_zero(self) -> bool {
        self.0 == 0
    }

    /// Private-use ASNs: 64512–65534 (RFC 6996) and
    /// 4200000000–4294967294 (RFC 6996 §5).
    pub const fn is_private(self) -> bool {
        (self.0 >= 64512 && self.0 <= 65534) || (self.0 >= 4_200_000_000 && self.0 <= 4_294_967_294)
    }

    /// Documentation-only ASNs: 64496–64511 and 65536–65551 (RFC 5398).
    pub const fn is_documentation(self) -> bool {
        (self.0 >= 64496 && self.0 <= 64511) || (self.0 >= 65536 && self.0 <= 65551)
    }

    /// 65535 and 4294967295 are reserved (RFC 7300); 65535 also hosts the
    /// well-known community prefix space.
    pub const fn is_reserved_last(self) -> bool {
        self.0 == 65535 || self.0 == u32::MAX
    }

    /// The AS_TRANS placeholder (RFC 6793).
    pub const fn is_as_trans(self) -> bool {
        self.0 == AS_TRANS.0
    }

    /// A "bogon" ASN must never be accepted from an external peer: AS 0,
    /// private use, documentation, AS_TRANS and the reserved top values.
    ///
    /// This is the check an IXP route server applies to every ASN in the
    /// AS_PATH of a received announcement (one of the paper's §3 filtering
    /// reasons: "bogon prefixes or ASNs").
    pub const fn is_bogon(self) -> bool {
        self.is_reserved_zero()
            || self.is_private()
            || self.is_documentation()
            || self.is_reserved_last()
            || self.is_as_trans()
    }
}

impl From<u32> for Asn {
    fn from(value: u32) -> Self {
        Asn(value)
    }
}

impl From<u16> for Asn {
    fn from(value: u16) -> Self {
        Asn(value as u32)
    }
}

impl From<Asn> for u32 {
    fn from(asn: Asn) -> Self {
        asn.0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Error parsing an ASN from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsnError(String);

impl fmt::Display for ParseAsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ASN: {:?}", self.0)
    }
}

impl std::error::Error for ParseAsnError {}

impl FromStr for Asn {
    type Err = ParseAsnError;

    /// Accepts `"65000"`, `"AS65000"` and `"as65000"`, plus the asdot
    /// notation `"1.10"` for 4-byte ASNs (RFC 5396).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        if let Some((hi, lo)) = body.split_once('.') {
            let hi: u32 = hi.parse().map_err(|_| ParseAsnError(s.to_string()))?;
            let lo: u32 = lo.parse().map_err(|_| ParseAsnError(s.to_string()))?;
            if hi > u16::MAX as u32 || lo > u16::MAX as u32 {
                return Err(ParseAsnError(s.to_string()));
            }
            return Ok(Asn((hi << 16) | lo));
        }
        body.parse::<u32>()
            .map(Asn)
            .map_err(|_| ParseAsnError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_as_prefix() {
        assert_eq!(Asn(6939).to_string(), "AS6939");
    }

    #[test]
    fn parse_plain_and_prefixed() {
        assert_eq!("65000".parse::<Asn>().unwrap(), Asn(65000));
        assert_eq!("AS6939".parse::<Asn>().unwrap(), Asn(6939));
        assert_eq!("as15169".parse::<Asn>().unwrap(), Asn(15169));
    }

    #[test]
    fn parse_asdot() {
        assert_eq!("1.10".parse::<Asn>().unwrap(), Asn(65546));
        assert_eq!("AS2.0".parse::<Asn>().unwrap(), Asn(131072));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Asn>().is_err());
        assert!("ASX".parse::<Asn>().is_err());
        assert!("1.70000".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err());
    }

    #[test]
    fn bogon_classification() {
        assert!(Asn(0).is_bogon());
        assert!(Asn(64512).is_bogon()); // private
        assert!(Asn(65534).is_bogon()); // private
        assert!(Asn(64500).is_bogon()); // documentation
        assert!(Asn(65536).is_bogon()); // documentation
        assert!(Asn(65535).is_bogon()); // reserved
        assert!(Asn(23456).is_bogon()); // AS_TRANS
        assert!(Asn(u32::MAX).is_bogon());
        assert!(Asn(4_200_000_000).is_bogon()); // private 4-byte

        assert!(!Asn(6939).is_bogon()); // Hurricane Electric
        assert!(!Asn(15169).is_bogon()); // Google
        assert!(!Asn(263075).is_bogon()); // ordinary 4-byte ASN
    }

    #[test]
    fn sixteen_bit_check() {
        assert!(Asn(65535).is_16bit());
        assert!(!Asn(65536).is_16bit());
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&Asn(6939)).unwrap();
        assert_eq!(json, "6939");
        let back: Asn = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Asn(6939));
    }
}
