//! AS_PATH representation (RFC 4271 §4.3, 4-byte ASNs per RFC 6793).
//!
//! An AS path is a sequence of segments; each segment is either an ordered
//! `AS_SEQUENCE` or an unordered `AS_SET` (from aggregation). The route
//! server never inserts its own ASN (RFC 7947 §2.2.2) but must still
//! validate paths and apply prepend actions on behalf of members.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::asn::Asn;

/// Segment type byte values from RFC 4271.
pub const SEGMENT_TYPE_SET: u8 = 1;
/// AS_SEQUENCE segment type byte.
pub const SEGMENT_TYPE_SEQUENCE: u8 = 2;

/// One AS_PATH segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Ordered list of traversed ASNs (most recent first).
    Sequence(Vec<Asn>),
    /// Unordered set from route aggregation.
    Set(Vec<Asn>),
}

impl Segment {
    /// ASNs in the segment, in stored order.
    pub fn asns(&self) -> &[Asn] {
        match self {
            Segment::Sequence(v) | Segment::Set(v) => v,
        }
    }

    /// Path-length contribution per RFC 4271 §9.1.2.2: a sequence counts
    /// each ASN, a set counts as one.
    pub fn path_len(&self) -> usize {
        match self {
            Segment::Sequence(v) => v.len(),
            Segment::Set(v) => usize::from(!v.is_empty()),
        }
    }
}

/// A full AS_PATH.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AsPath {
    segments: Vec<Segment>,
}

impl AsPath {
    /// The empty path (as originated into iBGP; never valid at an IXP RS).
    pub fn empty() -> Self {
        AsPath::default()
    }

    /// Build a path from a single ordered sequence, first element being the
    /// neighbor the route was learned from and last being the origin.
    pub fn from_sequence<I: IntoIterator<Item = Asn>>(asns: I) -> Self {
        AsPath {
            segments: vec![Segment::Sequence(asns.into_iter().collect())],
        }
    }

    /// Build from explicit segments.
    pub fn from_segments(segments: Vec<Segment>) -> Self {
        AsPath { segments }
    }

    /// The segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// True if there are no segments (or only empty ones).
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.asns().is_empty())
    }

    /// RFC 4271 path length (AS_SET counts 1).
    pub fn path_len(&self) -> usize {
        self.segments.iter().map(Segment::path_len).sum()
    }

    /// Total number of ASN slots (prepends included, sets expanded).
    pub fn asn_count(&self) -> usize {
        self.segments.iter().map(|s| s.asns().len()).sum()
    }

    /// The leftmost ASN: the neighbor that announced us the route.
    pub fn first_asn(&self) -> Option<Asn> {
        self.segments.iter().find_map(|s| s.asns().first().copied())
    }

    /// The origin AS: rightmost ASN of the last segment, when it is a
    /// sequence. Aggregated routes ending in an AS_SET have no single
    /// origin (RFC 4271), so this returns `None` for those.
    pub fn origin_asn(&self) -> Option<Asn> {
        match self.segments.last() {
            Some(Segment::Sequence(v)) => v.last().copied(),
            _ => None,
        }
    }

    /// True if `asn` appears anywhere in the path (loop detection — an IXP
    /// RS drops paths containing its own ASN or the target peer's ASN).
    pub fn contains(&self, asn: Asn) -> bool {
        self.segments.iter().any(|s| s.asns().contains(&asn))
    }

    /// Iterate over every ASN in the path, prepends included.
    pub fn iter_asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns().iter().copied())
    }

    /// Unique ASNs in order of first appearance.
    pub fn unique_asns(&self) -> Vec<Asn> {
        let mut seen = Vec::new();
        for asn in self.iter_asns() {
            if !seen.contains(&asn) {
                seen.push(asn);
            }
        }
        seen
    }

    /// Prepend `asn` `count` times at the front, merging into an existing
    /// leading sequence. This is what the RS does when executing a
    /// `prepend-to` action community before exporting to the target peer.
    pub fn prepend(&self, asn: Asn, count: usize) -> AsPath {
        if count == 0 {
            return self.clone();
        }
        let mut segments = self.segments.clone();
        match segments.first_mut() {
            Some(Segment::Sequence(v)) => {
                let mut head = vec![asn; count];
                head.append(v);
                *v = head;
            }
            _ => segments.insert(0, Segment::Sequence(vec![asn; count])),
        }
        AsPath { segments }
    }

    /// Number of leading repetitions of the first ASN (detects prepending).
    pub fn leading_prepend_count(&self) -> usize {
        match self.segments.first() {
            Some(Segment::Sequence(v)) => {
                let Some(first) = v.first() else { return 0 };
                v.iter().take_while(|a| *a == first).count()
            }
            _ => 0,
        }
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                Segment::Sequence(v) => {
                    let parts: Vec<String> = v.iter().map(|a| a.value().to_string()).collect();
                    write!(f, "{}", parts.join(" "))?;
                }
                Segment::Set(v) => {
                    let parts: Vec<String> = v.iter().map(|a| a.value().to_string()).collect();
                    write!(f, "{{{}}}", parts.join(","))?;
                }
            }
        }
        Ok(())
    }
}

impl FromIterator<Asn> for AsPath {
    fn from_iter<T: IntoIterator<Item = Asn>>(iter: T) -> Self {
        AsPath::from_sequence(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(v: &[u32]) -> AsPath {
        AsPath::from_sequence(v.iter().map(|&x| Asn(x)))
    }

    #[test]
    fn basic_accessors() {
        let p = path(&[64496, 3356, 15169]);
        assert_eq!(p.first_asn(), Some(Asn(64496)));
        assert_eq!(p.origin_asn(), Some(Asn(15169)));
        assert_eq!(p.path_len(), 3);
        assert_eq!(p.asn_count(), 3);
        assert!(p.contains(Asn(3356)));
        assert!(!p.contains(Asn(1)));
    }

    #[test]
    fn empty_path() {
        let p = AsPath::empty();
        assert!(p.is_empty());
        assert_eq!(p.first_asn(), None);
        assert_eq!(p.origin_asn(), None);
        assert_eq!(p.path_len(), 0);
    }

    #[test]
    fn as_set_counts_one_for_length() {
        let p = AsPath::from_segments(vec![
            Segment::Sequence(vec![Asn(100), Asn(200)]),
            Segment::Set(vec![Asn(300), Asn(400), Asn(500)]),
        ]);
        assert_eq!(p.path_len(), 3); // 2 + 1
        assert_eq!(p.asn_count(), 5);
        // origin undefined when path ends in a set
        assert_eq!(p.origin_asn(), None);
    }

    #[test]
    fn prepend_merges_into_leading_sequence() {
        let p = path(&[100, 200]);
        let q = p.prepend(Asn(100), 2);
        assert_eq!(q, path(&[100, 100, 100, 200]));
        assert_eq!(q.path_len(), 4);
        assert_eq!(q.leading_prepend_count(), 3);
        // original untouched
        assert_eq!(p.path_len(), 2);
    }

    #[test]
    fn prepend_zero_is_identity() {
        let p = path(&[100, 200]);
        assert_eq!(p.prepend(Asn(999), 0), p);
    }

    #[test]
    fn prepend_onto_leading_set_creates_new_segment() {
        let p = AsPath::from_segments(vec![Segment::Set(vec![Asn(1), Asn(2)])]);
        let q = p.prepend(Asn(100), 1);
        assert_eq!(q.segments().len(), 2);
        assert_eq!(q.first_asn(), Some(Asn(100)));
    }

    #[test]
    fn display_format() {
        let p = AsPath::from_segments(vec![
            Segment::Sequence(vec![Asn(64496), Asn(3356)]),
            Segment::Set(vec![Asn(15169), Asn(8075)]),
        ]);
        assert_eq!(p.to_string(), "64496 3356 {15169,8075}");
    }

    #[test]
    fn unique_asns_dedupes_prepends() {
        let p = path(&[100, 100, 100, 200, 300]);
        assert_eq!(p.unique_asns(), vec![Asn(100), Asn(200), Asn(300)]);
    }
}
