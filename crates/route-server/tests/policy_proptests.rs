//! Property tests for the action-policy engine: the route server must
//! honour every combination of action communities.

use bgp_model::asn::Asn;
use bgp_model::route::Route;
use community_dict::ixp::IxpId;
use community_dict::schemes;
use proptest::prelude::*;
use route_server::prelude::*;

const IXP: IxpId = IxpId::DeCixFra;

/// A pool of candidate peers (all 16-bit, non-bogon, mutually distinct).
const PEERS: [u32; 6] = [39120, 6939, 15169, 13335, 20940, 2906];

#[derive(Debug, Clone)]
struct ActionSpec {
    avoid: Vec<usize>, // indexes into PEERS
    only: Vec<usize>,  // indexes into PEERS
    avoid_all: bool,
    announce_all: bool,
    prepend: Option<(usize, u8)>,
}

fn arb_spec() -> impl Strategy<Value = ActionSpec> {
    (
        proptest::collection::vec(0usize..PEERS.len(), 0..4),
        proptest::collection::vec(0usize..PEERS.len(), 0..4),
        any::<bool>(),
        any::<bool>(),
        proptest::option::of((0usize..PEERS.len(), 1u8..=3)),
    )
        .prop_map(
            |(avoid, only, avoid_all, announce_all, prepend)| ActionSpec {
                avoid,
                only,
                avoid_all,
                announce_all,
                prepend,
            },
        )
}

fn build_route(announcer: Asn, spec: &ActionSpec) -> Route {
    let mut b = Route::builder(
        "193.0.10.0/24".parse().unwrap(),
        "198.32.0.7".parse().unwrap(),
    )
    .path([announcer.value(), 50_000]);
    for &i in &spec.avoid {
        b = b.standard(schemes::avoid_community(IXP, Asn(PEERS[i])));
    }
    for &i in &spec.only {
        b = b.standard(schemes::only_community(IXP, Asn(PEERS[i])));
    }
    if spec.avoid_all {
        b = b.standard(schemes::avoid_all_community(IXP));
    }
    if spec.announce_all {
        b = b.standard(schemes::announce_all_community(IXP));
    }
    if let Some((i, n)) = spec.prepend {
        b = b.standard(schemes::prepend_community(IXP, Asn(PEERS[i]), n).unwrap());
    }
    b.build()
}

fn server_with_peers(announcer: Asn) -> RouteServer {
    let mut rs = RouteServer::for_ixp(IXP);
    rs.add_member(announcer, true, false);
    for p in PEERS {
        rs.add_member(Asn(p), true, false);
    }
    rs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The ground rules, for every combination of actions:
    /// 1. an explicitly avoided peer never receives the route;
    /// 2. with an only-set and no announce-all, unlisted peers never do;
    /// 3. with avoid-all and no announce-all, only only-listed peers do;
    /// 4. exported routes carry no action communities (ActionsOnly scrub);
    /// 5. prepends grow the path for the target only, never change origin.
    #[test]
    fn export_respects_all_action_combinations(spec in arb_spec()) {
        let announcer = Asn(64000);
        let mut rs = server_with_peers(announcer);
        let route = build_route(announcer, &spec);
        prop_assert_eq!(rs.announce(announcer, route), IngestOutcome::Accepted);

        let dict = schemes::dictionary(IXP);
        let avoided: Vec<Asn> = spec.avoid.iter().map(|&i| Asn(PEERS[i])).collect();
        let onlyed: Vec<Asn> = spec.only.iter().map(|&i| Asn(PEERS[i])).collect();

        for p in PEERS {
            let peer = Asn(p);
            let exported = rs.export_to(peer);
            let got = !exported.is_empty();

            // the reference semantics, straight from the docs
            let expected = if avoided.contains(&peer) {
                false
            } else if onlyed.contains(&peer) {
                true
            } else if !onlyed.is_empty() && !spec.announce_all {
                false
            } else {
                // blocked only by an avoid-all with no announce-all override
                !spec.avoid_all || spec.announce_all
            };
            prop_assert_eq!(got, expected, "peer {} spec {:?}", peer, spec);

            if let Some(r) = exported.first() {
                // scrubbed: no action communities survive
                for c in &r.standard_communities {
                    prop_assert!(
                        dict.classify(*c).action().is_none(),
                        "action community {} leaked to {}",
                        c,
                        peer
                    );
                }
                // prepend accounting
                let base_len = 2;
                let expected_prepend = match spec.prepend {
                    Some((i, n)) if Asn(PEERS[i]) == peer => n as usize,
                    _ => 0,
                };
                prop_assert_eq!(
                    r.as_path.path_len(),
                    base_len + expected_prepend,
                    "peer {}",
                    peer
                );
                prop_assert_eq!(r.as_path.first_asn(), Some(announcer));
                prop_assert_eq!(r.as_path.origin_asn(), Some(Asn(50_000)));
            }
        }
    }

    /// Withdraw after announce always leaves the RS empty for that peer,
    /// no matter the communities involved.
    #[test]
    fn announce_withdraw_is_clean(spec in arb_spec()) {
        let announcer = Asn(64000);
        let mut rs = server_with_peers(announcer);
        let route = build_route(announcer, &spec);
        let prefix = route.prefix;
        rs.announce(announcer, route);
        prop_assert!(rs.withdraw(announcer, &prefix));
        for p in PEERS {
            prop_assert!(rs.export_to(Asn(p)).is_empty());
        }
        prop_assert_eq!(rs.accepted().route_count(), 0);
    }

    /// The policy digest is a pure function: digesting the same route
    /// twice gives the same decisions.
    #[test]
    fn digest_is_deterministic(spec in arb_spec()) {
        let dict = schemes::dictionary(IXP);
        let route = build_route(Asn(64000), &spec);
        let a = RoutePolicy::digest(&dict, &route);
        let b = RoutePolicy::digest(&dict, &route);
        prop_assert_eq!(&a, &b);
        for p in PEERS {
            prop_assert_eq!(a.decide(Asn(p)), b.decide(Asn(p)));
        }
    }
}
