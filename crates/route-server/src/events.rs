//! BMP-style update events emitted from RIB mutations.
//!
//! When event recording is enabled ([`RouteServer::enable_events`]), every
//! state change to the server — session registration, session teardown,
//! an accepted announcement, a withdraw that removed something — appends
//! one [`RibEvent`] to an in-server log that a monitoring session drains
//! ([`RouteServer::take_events`]). Announce events carry the route **as
//! stored**: after the blackhole next-hop rewrite and informational
//! tagging, so a consumer replaying the log reconstructs the RIB exactly.
//!
//! [`RouteServer::enable_events`]: crate::server::RouteServer::enable_events
//! [`RouteServer::take_events`]: crate::server::RouteServer::take_events

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;
use bgp_model::prefix::Prefix;
use bgp_model::route::Route;

/// One observable state change of a route server's Adj-RIB-In.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RibEvent {
    /// A member session came up (or its family set widened). The flags
    /// are the member's full session state *after* the change.
    PeerUp {
        /// Member ASN.
        peer: Asn,
        /// Has an IPv4 session after this event.
        ipv4: bool,
        /// Has an IPv6 session after this event.
        ipv6: bool,
    },
    /// A member session went down: the peer and all its routes are gone.
    PeerDown {
        /// Member ASN.
        peer: Asn,
    },
    /// A route was accepted into the RIB (possibly replacing an earlier
    /// route for the same prefix — an implicit withdraw).
    Announce {
        /// Announcing member.
        peer: Asn,
        /// The route exactly as stored (post rewrite/tagging).
        route: Route,
    },
    /// A previously accepted route was withdrawn.
    Withdraw {
        /// Withdrawing member.
        peer: Asn,
        /// The withdrawn prefix.
        prefix: Prefix,
    },
}

impl RibEvent {
    /// The member this event concerns.
    pub fn peer(&self) -> Asn {
        match self {
            RibEvent::PeerUp { peer, .. }
            | RibEvent::PeerDown { peer }
            | RibEvent::Announce { peer, .. }
            | RibEvent::Withdraw { peer, .. } => *peer,
        }
    }

    /// Short class name, for logs and fault accounting.
    pub fn kind(&self) -> &'static str {
        match self {
            RibEvent::PeerUp { .. } => "peer_up",
            RibEvent::PeerDown { .. } => "peer_down",
            RibEvent::Announce { .. } => "announce",
            RibEvent::Withdraw { .. } => "withdraw",
        }
    }
}
