//! Route-server configuration.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use serde::{Deserialize, Serialize};

use community_dict::ixp::IxpId;

use crate::rules::ImportRule;

/// What the RS scrubs from a route before exporting it to peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScrubPolicy {
    /// Remove IXP-defined action communities (they have been executed);
    /// keep informational and unknown ones. The typical behaviour the
    /// paper describes ("the RS scrubs the unnecessary BGP communities
    /// before propagating", §5.6).
    ActionsOnly,
    /// Remove every community.
    All,
    /// Keep everything (RFC 7947 permits transparency).
    None,
}

/// Configuration of one route server instance (one per IXP per our model;
/// real IXPs run redundant pairs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RsConfig {
    /// Which IXP this RS serves (fixes the community scheme and RS ASN).
    pub ixp: IxpId,
    /// Import filter: maximum AS-path length (hops, prepends included).
    pub max_path_len: usize,
    /// Import filter: maximum communities per route, if enabled
    /// (the DE-CIX "too many communities" filter of §5.6).
    pub max_communities: Option<usize>,
    /// Number of informational communities the RS tags onto every
    /// accepted route (location + origin class + optional notes).
    pub info_tags: u8,
    /// Scrub behaviour on export.
    pub scrub: ScrubPolicy,
    /// Whether blackholed routes are accepted at all (per the §5.3
    /// collection-window support matrix).
    pub blackhole_enabled: bool,
    /// Next hop installed on blackholed routes (the IXP discard address).
    pub blackhole_next_hop_v4: IpAddr,
    /// IPv6 discard next hop.
    pub blackhole_next_hop_v6: IpAddr,
    /// Per-peer prefix limit per family, if enforced (real route servers
    /// derive per-member limits from PeeringDB; we model one global cap).
    pub max_prefixes_per_peer: Option<usize>,
    /// Ordered declarative import rules, evaluated first-match-wins after
    /// the built-in filters (see [`crate::rules`]). Empty by default.
    #[serde(default)]
    pub import_rules: Vec<ImportRule>,
}

impl RsConfig {
    /// The standard configuration for one of the eight IXPs, with the
    /// paper's collection-window blackhole support.
    pub fn for_ixp(ixp: IxpId) -> Self {
        RsConfig {
            ixp,
            max_path_len: 32,
            // only DE-CIX runs the max-communities filter (§5.6); the
            // threshold sits above the defensive lists large ISPs tag
            max_communities: if ixp.is_decix() { Some(150) } else { None },
            info_tags: 2,
            scrub: ScrubPolicy::ActionsOnly,
            blackhole_enabled: community_dict::schemes::supports_blackhole(ixp),
            blackhole_next_hop_v4: IpAddr::V4(Ipv4Addr::new(198, 18, 255, 1)),
            blackhole_next_hop_v6: IpAddr::V6(Ipv6Addr::new(
                0x2001, 0xdb8, 0xffff, 0, 0, 0, 0, 0x666,
            )),
            max_prefixes_per_peer: None,
            import_rules: Vec::new(),
        }
    }

    /// Builder-style override of the per-peer prefix limit.
    pub fn with_prefix_limit(mut self, max: Option<usize>) -> Self {
        self.max_prefixes_per_peer = max;
        self
    }

    /// Builder-style override of the informational tag count.
    pub fn with_info_tags(mut self, n: u8) -> Self {
        self.info_tags = n;
        self
    }

    /// Builder-style override of the max-communities filter.
    pub fn with_max_communities(mut self, max: Option<usize>) -> Self {
        self.max_communities = max;
        self
    }

    /// Builder-style override of scrub policy.
    pub fn with_scrub(mut self, scrub: ScrubPolicy) -> Self {
        self.scrub = scrub;
        self
    }

    /// Builder-style override of the declarative import rules.
    pub fn with_import_rules(mut self, rules: Vec<ImportRule>) -> Self {
        self.import_rules = rules;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decix_has_max_communities_filter() {
        assert!(RsConfig::for_ixp(IxpId::DeCixFra).max_communities.is_some());
        assert!(RsConfig::for_ixp(IxpId::DeCixMad).max_communities.is_some());
        assert!(RsConfig::for_ixp(IxpId::Linx).max_communities.is_none());
        assert!(RsConfig::for_ixp(IxpId::IxBrSp).max_communities.is_none());
    }

    #[test]
    fn blackhole_support_follows_scheme() {
        assert!(RsConfig::for_ixp(IxpId::DeCixFra).blackhole_enabled);
        assert!(RsConfig::for_ixp(IxpId::AmsIx).blackhole_enabled);
        assert!(!RsConfig::for_ixp(IxpId::IxBrSp).blackhole_enabled);
        assert!(!RsConfig::for_ixp(IxpId::Linx).blackhole_enabled);
    }

    #[test]
    fn builders() {
        let c = RsConfig::for_ixp(IxpId::Linx)
            .with_info_tags(3)
            .with_max_communities(Some(10))
            .with_scrub(ScrubPolicy::All);
        assert_eq!(c.info_tags, 3);
        assert_eq!(c.max_communities, Some(10));
        assert_eq!(c.scrub, ScrubPolicy::All);
    }
}
