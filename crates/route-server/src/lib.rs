//! # route-server
//!
//! An IXP route server in the RFC 7947 mould, built for the CoNEXT'22
//! reproduction: members announce BGP routes tagged with action
//! communities; the server filters imports (the paper's §3
//! accepted/filtered split), tags informational communities, executes the
//! requested actions (do-not-announce / announce-only / prepend /
//! blackhole) when computing per-peer export RIBs, scrubs the executed
//! communities, and accounts for the §5.5 overhead of action communities
//! targeting ASes that are not members.
//!
//! ```
//! use bgp_model::prelude::*;
//! use community_dict::prelude::*;
//! use route_server::prelude::*;
//!
//! let mut rs = RouteServer::for_ixp(IxpId::DeCixFra);
//! rs.add_member(Asn(39120), true, true);
//! rs.add_member(Asn(6939), true, true);
//!
//! // announce a route asking the RS not to export it to AS6939
//! let route = Route::builder(
//!     "193.0.10.0/24".parse().unwrap(),
//!     "198.32.0.7".parse().unwrap(),
//! )
//! .path([39120])
//! .standard(schemes::avoid_community(IxpId::DeCixFra, Asn(6939)))
//! .build();
//! rs.announce(Asn(39120), route);
//!
//! assert!(rs.export_to(Asn(6939)).is_empty()); // action executed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod events;
pub mod filter;
pub mod metrics;
pub mod policy;
pub mod rules;
pub mod server;
pub mod stats;

/// Common re-exports.
pub mod prelude {
    pub use crate::config::{RsConfig, ScrubPolicy};
    pub use crate::events::RibEvent;
    pub use crate::filter::{check_import, FilterReason};
    pub use crate::policy::{ExportDecision, RoutePolicy};
    pub use crate::rules::{ImportRule, RuleAction, RuleMatch};
    pub use crate::server::{FilteredRoute, IngestOutcome, Member, RouteServer};
    pub use crate::stats::RsStats;
}

pub use prelude::*;
