//! Declarative per-route import rules.
//!
//! Real route servers let operators express policy beyond the built-in
//! sanity filters: "reject /25-and-longer from AS64500", "treat anything
//! tagged `65000:0` as do-not-announce-to-all". [`RsConfig`] carries an
//! ordered list of [`ImportRule`]s; after a route clears the built-in
//! [`check_import`](crate::filter::check_import) filters, the **first**
//! rule whose [`RuleMatch`] covers the route decides: accept it as-is,
//! reject it (surfaced as
//! [`PolicyRule`](crate::filter::FilterReason::PolicyRule)), or apply an
//! extra [`Action`] on top of whatever the route's own communities request.
//!
//! First-match-wins makes rule order significant — which is exactly what
//! the `staticheck` policy verifier analyses statically: a rule whose
//! match set is fully covered by earlier rules can never fire (SC001),
//! and Apply rules with contradictory actions on intersecting match sets
//! fight each other (SC002).

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;
use bgp_model::prefix::Afi;
use bgp_model::route::Route;

use community_dict::action::Action;
use community_dict::pattern::Pattern;

/// What a matching rule does to the route.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RuleAction {
    /// Accept the route unchanged (stop evaluating further rules).
    Accept,
    /// Reject the route
    /// ([`PolicyRule`](crate::filter::FilterReason::PolicyRule)).
    Reject,
    /// Accept and additionally apply this action, as if the route had
    /// carried the corresponding community.
    Apply(Action),
}

/// The match side of one rule. Every field is optional; `None` matches
/// anything, so the empty matcher is a catch-all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleMatch {
    /// Restrict to one address family.
    #[serde(default)]
    pub afi: Option<Afi>,
    /// Restrict to prefix lengths in `lo..=hi` (inclusive).
    #[serde(default)]
    pub prefix_len: Option<(u8, u8)>,
    /// Restrict to routes announced by this member.
    #[serde(default)]
    pub peer: Option<Asn>,
    /// Require at least one standard community matching this pattern.
    #[serde(default)]
    pub community: Option<Pattern>,
}

impl RuleMatch {
    /// Does this matcher cover `route` as announced by `peer`?
    pub fn matches(&self, peer: Asn, route: &Route) -> bool {
        if let Some(afi) = self.afi {
            if route.afi() != afi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.prefix_len {
            if !(lo..=hi).contains(&route.prefix.len()) {
                return false;
            }
        }
        if let Some(p) = self.peer {
            if peer != p {
                return false;
            }
        }
        if let Some(pattern) = self.community {
            if !route
                .standard_communities
                .iter()
                .any(|c| pattern.matches(*c))
            {
                return false;
            }
        }
        true
    }
}

/// One named, ordered import rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportRule {
    /// Operator-facing name (diagnostic locations point at it).
    pub name: String,
    /// Match side.
    #[serde(default)]
    pub matcher: RuleMatch,
    /// Action on match.
    pub action: RuleAction,
}

/// Evaluate an ordered rule list: the first match decides.
/// `None` means no rule matched (the implicit default is accept).
pub fn evaluate<'a>(rules: &'a [ImportRule], peer: Asn, route: &Route) -> Option<&'a ImportRule> {
    rules.iter().find(|r| r.matcher.matches(peer, route))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::community::StandardCommunity;

    fn route(pfx: &str, cs: &[StandardCommunity]) -> Route {
        Route::builder(pfx.parse().unwrap(), "198.32.0.7".parse().unwrap())
            .path([64500])
            .standards(cs.iter().copied())
            .build()
    }

    fn rule(name: &str, matcher: RuleMatch, action: RuleAction) -> ImportRule {
        ImportRule {
            name: name.into(),
            matcher,
            action,
        }
    }

    #[test]
    fn empty_matcher_is_catch_all() {
        let m = RuleMatch::default();
        assert!(m.matches(Asn(1), &route("193.0.10.0/24", &[])));
    }

    #[test]
    fn dimensions_restrict_independently() {
        let r = route("193.0.10.0/24", &[StandardCommunity::from_parts(65000, 7)]);
        let hit = RuleMatch {
            afi: Some(Afi::Ipv4),
            prefix_len: Some((20, 24)),
            peer: Some(Asn(64500)),
            community: Some(Pattern::Exact(StandardCommunity::from_parts(65000, 7))),
        };
        assert!(hit.matches(Asn(64500), &r));
        assert!(!RuleMatch {
            afi: Some(Afi::Ipv6),
            ..hit
        }
        .matches(Asn(64500), &r));
        assert!(!RuleMatch {
            prefix_len: Some((25, 32)),
            ..hit
        }
        .matches(Asn(64500), &r));
        assert!(!hit.matches(Asn(64501), &r));
        assert!(!RuleMatch {
            community: Some(Pattern::Exact(StandardCommunity::from_parts(65000, 8))),
            ..hit
        }
        .matches(Asn(64500), &r));
    }

    #[test]
    fn first_match_wins() {
        let rules = vec![
            rule(
                "narrow",
                RuleMatch {
                    prefix_len: Some((24, 24)),
                    ..RuleMatch::default()
                },
                RuleAction::Reject,
            ),
            rule("all", RuleMatch::default(), RuleAction::Accept),
        ];
        let hit = evaluate(&rules, Asn(1), &route("193.0.10.0/24", &[])).unwrap();
        assert_eq!(hit.name, "narrow");
        let hit = evaluate(&rules, Asn(1), &route("193.0.0.0/16", &[])).unwrap();
        assert_eq!(hit.name, "all");
    }

    #[test]
    fn no_match_returns_none() {
        let rules = vec![rule(
            "v6-only",
            RuleMatch {
                afi: Some(Afi::Ipv6),
                ..RuleMatch::default()
            },
            RuleAction::Reject,
        )];
        assert!(evaluate(&rules, Asn(1), &route("193.0.10.0/24", &[])).is_none());
    }
}
