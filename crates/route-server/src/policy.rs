//! The action-community policy engine: given a route's IXP-defined action
//! communities, decide per target peer whether (and how) to export.
//!
//! Semantics follow the documented behaviour of the real schemes
//! (DE-CIX/BIRD-style):
//!
//! 1. an explicit `do-not-announce-to <peer>` always denies that peer;
//! 2. an explicit `announce-only-to <peer>` allows that peer, overriding
//!    a blanket `do-not-announce-to all`;
//! 3. if any announce-only communities are present, peers not named are
//!    denied (unless `announce to all` is also present);
//! 4. a blanket `do-not-announce-to all` denies everyone not re-added;
//! 5. otherwise export, applying any prepend actions for the peer.

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;
use bgp_model::route::Route;

use community_dict::action::{Action, ActionKind, Target};
use community_dict::classify::classify_route;
use community_dict::dictionary::Dictionary;

/// Export decision for one (route, peer) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExportDecision {
    /// Do not export to this peer.
    Deny,
    /// Export, prepending the announcing member's ASN `prepend` times.
    Allow {
        /// Extra prepend count requested via prepend-to communities.
        prepend: u8,
    },
}

impl ExportDecision {
    /// Plain allow.
    pub const ALLOW: ExportDecision = ExportDecision::Allow { prepend: 0 };

    /// True when the route is exported.
    pub const fn is_allowed(&self) -> bool {
        matches!(self, ExportDecision::Allow { .. })
    }
}

/// The action communities of one route, digested for per-peer decisions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutePolicy {
    /// Peers explicitly denied.
    pub avoid_peers: Vec<Asn>,
    /// Deny everyone by default (avoid-all present).
    pub avoid_all: bool,
    /// Peers explicitly allowed (announce-only targets).
    pub only_peers: Vec<Asn>,
    /// Announce-to-all present (cancels the implicit only-deny).
    pub announce_all: bool,
    /// Per-peer prepend requests `(peer, count)`.
    pub prepend_peers: Vec<(Asn, u8)>,
    /// Prepend-to-all count.
    pub prepend_all: u8,
    /// Blackhole requested.
    pub blackhole: bool,
    /// Total action community instances seen (policy evaluations).
    pub action_instances: usize,
}

impl RoutePolicy {
    /// Digest a route's communities against the IXP dictionary.
    pub fn digest(dict: &Dictionary, route: &Route) -> Self {
        let mut p = RoutePolicy::default();
        for (_, classification) in classify_route(dict, route) {
            let Some(action) = classification.action() else {
                continue;
            };
            p.action_instances += 1;
            p.apply_action(action);
        }
        p
    }

    /// Fold one action into the digested policy. `digest` calls this for
    /// every action community on the route; config-level
    /// [`ImportRule`](crate::rules::ImportRule)s with a
    /// [`RuleAction::Apply`](crate::rules::RuleAction::Apply) arm call it
    /// for their injected action.
    pub fn apply_action(&mut self, action: Action) {
        match (action.kind, action.target) {
            (ActionKind::DoNotAnnounceTo, Target::AllPeers) => self.avoid_all = true,
            (ActionKind::DoNotAnnounceTo, Target::Peer(asn)) => self.avoid_peers.push(asn),
            (ActionKind::AnnounceOnlyTo, Target::AllPeers) => self.announce_all = true,
            (ActionKind::AnnounceOnlyTo, Target::Peer(asn)) => self.only_peers.push(asn),
            (ActionKind::PrependTo(n), Target::AllPeers) => {
                self.prepend_all = self.prepend_all.max(n)
            }
            (ActionKind::PrependTo(n), Target::Peer(asn)) => self.prepend_peers.push((asn, n)),
            (ActionKind::Blackhole, _) => self.blackhole = true,
            // region-targeted actions are modeled as no-ops for export
            // decisions (our synthetic world has a single facility per IXP)
            (_, Target::Region(_)) | (_, Target::TaggedPrefix) => {}
        }
    }

    /// Decide export towards `peer`.
    pub fn decide(&self, peer: Asn) -> ExportDecision {
        if self.avoid_peers.contains(&peer) {
            return ExportDecision::Deny;
        }
        let explicitly_only = self.only_peers.contains(&peer);
        if !explicitly_only {
            if !self.only_peers.is_empty() && !self.announce_all {
                return ExportDecision::Deny;
            }
            if self.avoid_all && !self.announce_all {
                return ExportDecision::Deny;
            }
        }
        let prepend = self
            .prepend_peers
            .iter()
            .filter(|(p, _)| *p == peer)
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0)
            .max(self.prepend_all);
        ExportDecision::Allow { prepend }
    }

    /// All single-AS targets referenced by this route's action communities
    /// (used by the §5.5 "targets not at the RS" analysis).
    pub fn peer_targets(&self) -> impl Iterator<Item = Asn> + '_ {
        self.avoid_peers
            .iter()
            .chain(self.only_peers.iter())
            .copied()
            .chain(self.prepend_peers.iter().map(|(a, _)| *a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use community_dict::ixp::IxpId;
    use community_dict::schemes;

    fn dict() -> Dictionary {
        schemes::dictionary(IxpId::DeCixFra)
    }

    fn route_with(communities: &[bgp_model::community::StandardCommunity]) -> Route {
        Route::builder(
            "203.0.113.0/24".parse().unwrap(),
            "198.32.0.7".parse().unwrap(),
        )
        .path([64496, 15169])
        .standards(communities.iter().copied())
        .build()
    }

    const IXP: IxpId = IxpId::DeCixFra;

    #[test]
    fn no_actions_allows_everyone() {
        let p = RoutePolicy::digest(&dict(), &route_with(&[]));
        assert_eq!(p.decide(Asn(6939)), ExportDecision::ALLOW);
        assert_eq!(p.action_instances, 0);
    }

    #[test]
    fn avoid_peer_denies_that_peer_only() {
        let r = route_with(&[schemes::avoid_community(IXP, Asn(6939))]);
        let p = RoutePolicy::digest(&dict(), &r);
        assert_eq!(p.decide(Asn(6939)), ExportDecision::Deny);
        assert_eq!(p.decide(Asn(15169)), ExportDecision::ALLOW);
        assert_eq!(p.action_instances, 1);
    }

    #[test]
    fn announce_only_denies_everyone_else() {
        let r = route_with(&[schemes::only_community(IXP, Asn(1916))]);
        let p = RoutePolicy::digest(&dict(), &r);
        assert_eq!(p.decide(Asn(1916)), ExportDecision::ALLOW);
        assert_eq!(p.decide(Asn(6939)), ExportDecision::Deny);
    }

    #[test]
    fn avoid_all_with_readd() {
        let r = route_with(&[
            schemes::avoid_all_community(IXP),
            schemes::only_community(IXP, Asn(1916)),
        ]);
        let p = RoutePolicy::digest(&dict(), &r);
        assert!(p.avoid_all);
        assert_eq!(p.decide(Asn(1916)), ExportDecision::ALLOW);
        assert_eq!(p.decide(Asn(6939)), ExportDecision::Deny);
    }

    #[test]
    fn explicit_avoid_beats_only() {
        let r = route_with(&[
            schemes::avoid_community(IXP, Asn(1916)),
            schemes::only_community(IXP, Asn(1916)),
        ]);
        let p = RoutePolicy::digest(&dict(), &r);
        assert_eq!(p.decide(Asn(1916)), ExportDecision::Deny);
    }

    #[test]
    fn announce_all_cancels_only_set_for_others() {
        let r = route_with(&[
            schemes::only_community(IXP, Asn(1916)),
            schemes::announce_all_community(IXP),
        ]);
        let p = RoutePolicy::digest(&dict(), &r);
        assert_eq!(p.decide(Asn(1916)), ExportDecision::ALLOW);
        assert_eq!(p.decide(Asn(6939)), ExportDecision::ALLOW);
    }

    #[test]
    fn prepend_applies_on_allow() {
        let c2 = schemes::prepend_community(IXP, Asn(6939), 2).unwrap();
        let p = RoutePolicy::digest(&dict(), &route_with(&[c2]));
        assert_eq!(p.decide(Asn(6939)), ExportDecision::Allow { prepend: 2 });
        assert_eq!(p.decide(Asn(15169)), ExportDecision::ALLOW);
    }

    #[test]
    fn max_prepend_wins_on_duplicates() {
        let c1 = schemes::prepend_community(IXP, Asn(6939), 1).unwrap();
        let c3 = schemes::prepend_community(IXP, Asn(6939), 3).unwrap();
        let p = RoutePolicy::digest(&dict(), &route_with(&[c1, c3]));
        assert_eq!(p.decide(Asn(6939)), ExportDecision::Allow { prepend: 3 });
    }

    #[test]
    fn blackhole_flag_set() {
        let r = route_with(&[bgp_model::community::well_known::BLACKHOLE]);
        let p = RoutePolicy::digest(&dict(), &r);
        assert!(p.blackhole);
    }

    #[test]
    fn peer_targets_collects_all() {
        let r = route_with(&[
            schemes::avoid_community(IXP, Asn(6939)),
            schemes::only_community(IXP, Asn(1916)),
        ]);
        let p = RoutePolicy::digest(&dict(), &r);
        let mut targets: Vec<Asn> = p.peer_targets().collect();
        targets.sort();
        assert_eq!(targets, vec![Asn(1916), Asn(6939)]);
    }

    #[test]
    fn unknown_communities_do_not_count_as_actions() {
        let r = route_with(&[bgp_model::community::StandardCommunity::from_parts(
            3356, 70,
        )]);
        let p = RoutePolicy::digest(&dict(), &r);
        assert_eq!(p.action_instances, 0);
        assert_eq!(p.decide(Asn(6939)), ExportDecision::ALLOW);
    }
}
