//! Route-server telemetry: every [`RsStats`](crate::stats::RsStats) counter
//! mirrored onto an [`obs::Registry`], plus ingest/export latency histograms
//! and a member-count gauge.
//!
//! The legacy `RsStats` struct stays the public API (`RouteServer::stats`
//! returns it by reference); this module records the same increments through
//! shared registry handles so the whole pipeline can be observed through one
//! snapshot. `tests/obs_regression.rs` in the workspace root asserts the two
//! bookkeeping paths agree on an identical scenario.

use obs::{names, Counter, Gauge, Histogram, Registry};

use crate::filter::FilterReason;

/// Metric-name slug for one filter reason
/// (`rs.routes_filtered.<slug>` counters).
pub fn filter_reason_slug(reason: FilterReason) -> &'static str {
    match reason {
        FilterReason::BogonPrefix => "bogon_prefix",
        FilterReason::BogonAsn => "bogon_asn",
        FilterReason::PathTooLong => "path_too_long",
        FilterReason::TooSpecific => "too_specific",
        FilterReason::TooBroad => "too_broad",
        FilterReason::RsAsnInPath => "rs_asn_in_path",
        FilterReason::EmptyPath => "empty_path",
        FilterReason::TooManyCommunities => "too_many_communities",
        FilterReason::BlackholeUnsupported => "blackhole_unsupported",
        FilterReason::PrefixLimitExceeded => "prefix_limit_exceeded",
        FilterReason::PolicyRule => "policy_rule",
    }
}

const ALL_REASONS: [FilterReason; 11] = [
    FilterReason::BogonPrefix,
    FilterReason::BogonAsn,
    FilterReason::PathTooLong,
    FilterReason::TooSpecific,
    FilterReason::TooBroad,
    FilterReason::RsAsnInPath,
    FilterReason::EmptyPath,
    FilterReason::TooManyCommunities,
    FilterReason::BlackholeUnsupported,
    FilterReason::PrefixLimitExceeded,
    FilterReason::PolicyRule,
];

const fn reason_index(reason: FilterReason) -> usize {
    // Keep in ALL_REASONS order; the test below cross-checks both stay in sync.
    match reason {
        FilterReason::BogonPrefix => 0,
        FilterReason::BogonAsn => 1,
        FilterReason::PathTooLong => 2,
        FilterReason::TooSpecific => 3,
        FilterReason::TooBroad => 4,
        FilterReason::RsAsnInPath => 5,
        FilterReason::EmptyPath => 6,
        FilterReason::TooManyCommunities => 7,
        FilterReason::BlackholeUnsupported => 8,
        FilterReason::PrefixLimitExceeded => 9,
        FilterReason::PolicyRule => 10,
    }
}

/// Pre-minted registry handles for everything the route server records.
#[derive(Debug, Clone)]
pub(crate) struct RsMetrics {
    pub updates_processed: Counter,
    pub routes_accepted: Counter,
    pub routes_withdrawn: Counter,
    pub routes_filtered_total: Counter,
    pub action_instances: Counter,
    pub effective_action_instances: Counter,
    pub ineffective_action_instances: Counter,
    pub export_evaluations: Counter,
    pub scrubbed_communities: Counter,
    pub export_routes_shared: Counter,
    pub export_routes_copied: Counter,
    pub members: Gauge,
    pub ingest_ns: Histogram,
    filtered: Vec<Counter>,
}

impl RsMetrics {
    pub fn new(registry: &Registry) -> Self {
        RsMetrics {
            updates_processed: registry.counter(names::RS_UPDATES_PROCESSED),
            routes_accepted: registry.counter(names::RS_ROUTES_ACCEPTED),
            routes_withdrawn: registry.counter(names::RS_ROUTES_WITHDRAWN),
            routes_filtered_total: registry.counter(names::RS_ROUTES_FILTERED),
            action_instances: registry.counter(names::RS_ACTION_INSTANCES),
            effective_action_instances: registry.counter(names::RS_EFFECTIVE_ACTION_INSTANCES),
            ineffective_action_instances: registry.counter(names::RS_INEFFECTIVE_ACTION_INSTANCES),
            export_evaluations: registry.counter(names::RS_EXPORT_EVALUATIONS),
            scrubbed_communities: registry.counter(names::RS_SCRUBBED_COMMUNITIES),
            export_routes_shared: registry.counter(names::RS_EXPORT_ROUTES_SHARED),
            export_routes_copied: registry.counter(names::RS_EXPORT_ROUTES_COPIED),
            members: registry.gauge(names::RS_MEMBERS),
            ingest_ns: registry.histogram(names::RS_INGEST_UPDATE),
            filtered: ALL_REASONS
                .iter()
                .map(|r| {
                    registry.counter(&names::rs_routes_filtered_reason(filter_reason_slug(*r)))
                })
                .collect(),
        }
    }

    /// Record one filtered route (total + per-reason counters).
    pub fn record_filtered(&self, reason: FilterReason) {
        self.routes_filtered_total.inc();
        self.filtered[reason_index(reason)].inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_index_matches_all_reasons_order() {
        for (i, reason) in ALL_REASONS.iter().enumerate() {
            assert_eq!(reason_index(*reason), i, "{reason:?}");
        }
    }

    #[test]
    fn every_reason_has_a_distinct_slug_and_counter() {
        let mut slugs: Vec<&str> = ALL_REASONS.iter().map(|r| filter_reason_slug(*r)).collect();
        slugs.sort();
        slugs.dedup();
        assert_eq!(slugs.len(), ALL_REASONS.len());

        let registry = Registry::new();
        let metrics = RsMetrics::new(&registry);
        for reason in ALL_REASONS {
            metrics.record_filtered(reason);
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["rs.routes_filtered"],
            ALL_REASONS.len() as u64
        );
        for reason in ALL_REASONS {
            let name = names::rs_routes_filtered_reason(filter_reason_slug(reason));
            assert_eq!(snap.counters[&name], 1, "{name}");
        }
    }
}
