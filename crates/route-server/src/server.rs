//! The route server itself (RFC 7947 style).
//!
//! Members announce routes (as parsed BGP UPDATEs or as model routes);
//! the server applies import filters (§3's accepted/filtered split), tags
//! informational communities, digests action communities, executes
//! blackhole next-hop rewrites, and computes per-peer export RIBs with
//! action semantics applied and communities scrubbed.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use bgp_model::asn::Asn;
use bgp_model::community::well_known;
use bgp_model::prefix::{Afi, Prefix};
use bgp_model::rib::AdjRibIn;
use bgp_model::route::Route;
use bgp_wire::convert;
use bgp_wire::message::UpdateMessage;
use bgp_wire::WireError;

use community_dict::dictionary::Dictionary;
use community_dict::ixp::IxpId;
use community_dict::schemes;

use crate::config::{RsConfig, ScrubPolicy};
use crate::events::RibEvent;
use crate::filter::{check_import, is_blackhole_request, FilterReason};
use crate::metrics::RsMetrics;
use crate::policy::RoutePolicy;
use crate::stats::RsStats;

/// A member's session state at the RS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Member {
    /// Member ASN.
    pub asn: Asn,
    /// Has an IPv4 session with the RS.
    pub ipv4: bool,
    /// Has an IPv6 session with the RS.
    pub ipv6: bool,
}

impl Member {
    /// Session presence for one family.
    pub fn has_session(&self, afi: Afi) -> bool {
        match afi {
            Afi::Ipv4 => self.ipv4,
            Afi::Ipv6 => self.ipv6,
        }
    }
}

/// A route rejected on import, kept for the LG's "filtered" view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilteredRoute {
    /// Announcing member.
    pub peer: Asn,
    /// The rejected route (as announced).
    pub route: Route,
    /// Why it was rejected.
    pub reason: FilterReason,
}

/// Outcome of ingesting one route announcement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestOutcome {
    /// Accepted into the RIB.
    Accepted,
    /// Rejected by an import filter.
    Filtered(FilterReason),
    /// Announcer has no session for the route's family.
    NoSession,
}

/// The route server.
#[derive(Debug, Clone)]
pub struct RouteServer {
    config: RsConfig,
    dict: Dictionary,
    members: BTreeMap<Asn, Member>,
    rib: AdjRibIn,
    policies: HashMap<(Asn, Prefix), RoutePolicy>,
    filtered: Vec<FilteredRoute>,
    stats: RsStats,
    metrics: RsMetrics,
    /// BMP-style event log: `Some` while recording is enabled.
    events: Option<Vec<RibEvent>>,
}

impl RouteServer {
    /// Create a route server for one IXP with its standard configuration.
    pub fn for_ixp(ixp: IxpId) -> Self {
        RouteServer::new(RsConfig::for_ixp(ixp))
    }

    /// Create a route server with explicit configuration, recording
    /// telemetry to the process-wide [`obs::global()`] registry.
    pub fn new(config: RsConfig) -> Self {
        RouteServer::with_registry(config, obs::global())
    }

    /// Create a route server recording telemetry to an explicit registry
    /// (an isolated [`obs::Registry::new`] for tests and benchmarks, or
    /// [`obs::Registry::noop`] to disable recording entirely). The legacy
    /// [`RsStats`] bookkeeping is always kept regardless.
    pub fn with_registry(config: RsConfig, registry: &obs::Registry) -> Self {
        let dict = schemes::dictionary(config.ixp);
        RouteServer {
            config,
            dict,
            members: BTreeMap::new(),
            rib: AdjRibIn::new(),
            policies: HashMap::new(),
            filtered: Vec::new(),
            stats: RsStats::default(),
            metrics: RsMetrics::new(registry),
            events: None,
        }
    }

    /// Start recording [`RibEvent`]s for every subsequent RIB mutation.
    /// Idempotent; recording is off by default and costs nothing then.
    pub fn enable_events(&mut self) {
        if self.events.is_none() {
            self.events = Some(Vec::new());
        }
    }

    /// Drain the recorded events (empty when recording is disabled).
    pub fn take_events(&mut self) -> Vec<RibEvent> {
        match &mut self.events {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Is event recording enabled?
    pub fn events_enabled(&self) -> bool {
        self.events.is_some()
    }

    fn emit(&mut self, event: impl FnOnce() -> RibEvent) {
        if let Some(log) = &mut self.events {
            log.push(event());
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RsConfig {
        &self.config
    }

    /// The community dictionary in force.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// The IXP this server belongs to.
    pub fn ixp(&self) -> IxpId {
        self.config.ixp
    }

    /// Register a member session (idempotent; families are OR-ed in).
    pub fn add_member(&mut self, asn: Asn, ipv4: bool, ipv6: bool) {
        let m = self.members.entry(asn).or_insert(Member {
            asn,
            ipv4: false,
            ipv6: false,
        });
        m.ipv4 |= ipv4;
        m.ipv6 |= ipv6;
        let (v4, v6) = (m.ipv4, m.ipv6);
        self.rib.ensure_peer(asn);
        self.metrics.members.set(self.members.len() as i64);
        self.emit(|| RibEvent::PeerUp {
            peer: asn,
            ipv4: v4,
            ipv6: v6,
        });
    }

    /// Remove a member and all its routes (session down).
    pub fn remove_member(&mut self, asn: Asn) {
        let existed = self.members.remove(&asn).is_some();
        self.rib.remove_peer(asn);
        self.policies.retain(|(peer, _), _| *peer != asn);
        self.filtered.retain(|f| f.peer != asn);
        self.metrics.members.set(self.members.len() as i64);
        if existed {
            self.emit(|| RibEvent::PeerDown { peer: asn });
        }
    }

    /// Member table.
    pub fn members(&self) -> impl Iterator<Item = &Member> {
        self.members.values()
    }

    /// Members with a session for one family (Table 1's "members at RS").
    pub fn members_for(&self, afi: Afi) -> impl Iterator<Item = &Member> {
        self.members.values().filter(move |m| m.has_session(afi))
    }

    /// Is `asn` a member with any session? (The §5.5 membership test.)
    pub fn is_member(&self, asn: Asn) -> bool {
        self.members.contains_key(&asn)
    }

    /// Ingest a parsed BGP UPDATE from a member.
    pub fn ingest_update(
        &mut self,
        peer: Asn,
        update: &UpdateMessage,
    ) -> Result<Vec<IngestOutcome>, WireError> {
        let _timer = self.metrics.ingest_ns.start();
        self.stats.updates_processed += 1;
        self.metrics.updates_processed.inc();
        let content = convert::update_to_routes(update)?;
        for prefix in &content.withdrawn {
            if self.rib.withdraw(peer, prefix).is_some() {
                self.stats.routes_withdrawn += 1;
                self.metrics.routes_withdrawn.inc();
                self.policies.remove(&(peer, *prefix));
                let prefix = *prefix;
                self.emit(|| RibEvent::Withdraw { peer, prefix });
            }
        }
        Ok(content
            .announced
            .into_iter()
            .map(|r| self.announce(peer, r))
            .collect())
    }

    /// Ingest one model-level route announcement from a member.
    pub fn announce(&mut self, peer: Asn, mut route: Route) -> IngestOutcome {
        let Some(member) = self.members.get(&peer) else {
            return IngestOutcome::NoSession;
        };
        if !member.has_session(route.afi()) {
            return IngestOutcome::NoSession;
        }
        // per-peer prefix limit (counted per family, replacements exempt)
        if let Some(limit) = self.config.max_prefixes_per_peer {
            let held = self
                .rib
                .peer(peer)
                .map(|t| t.iter_afi(route.afi()).count())
                .unwrap_or(0);
            let replacing = self
                .rib
                .peer(peer)
                .and_then(|t| t.get(&route.prefix))
                .is_some();
            if held >= limit && !replacing {
                let reason = FilterReason::PrefixLimitExceeded;
                self.stats.record_filtered(reason);
                self.metrics.record_filtered(reason);
                self.filtered.push(FilteredRoute {
                    peer,
                    route,
                    reason,
                });
                return IngestOutcome::Filtered(reason);
            }
        }
        if let Err(reason) = check_import(&route, &self.config) {
            self.stats.record_filtered(reason);
            self.metrics.record_filtered(reason);
            self.filtered.push(FilteredRoute {
                peer,
                route,
                reason,
            });
            return IngestOutcome::Filtered(reason);
        }

        // Declarative import rules: first match decides (crate::rules).
        // Accept proceeds unchanged; Apply injects an extra action into the
        // route's digested policy below.
        let mut injected_action = None;
        match crate::rules::evaluate(&self.config.import_rules, peer, &route).map(|r| r.action) {
            Some(crate::rules::RuleAction::Reject) => {
                let reason = FilterReason::PolicyRule;
                self.stats.record_filtered(reason);
                self.metrics.record_filtered(reason);
                self.filtered.push(FilteredRoute {
                    peer,
                    route,
                    reason,
                });
                return IngestOutcome::Filtered(reason);
            }
            Some(crate::rules::RuleAction::Apply(action)) => injected_action = Some(action),
            Some(crate::rules::RuleAction::Accept) | None => {}
        }

        // Blackhole execution: rewrite the next hop to the discard address.
        if self.config.blackhole_enabled && is_blackhole_request(&route) {
            route.next_hop = match route.afi() {
                Afi::Ipv4 => self.config.blackhole_next_hop_v4,
                Afi::Ipv6 => self.config.blackhole_next_hop_v6,
            };
        }

        // Informational tagging: the RS adds its location/origin tags to
        // every accepted route (§5.1: "informational ones being added by
        // the IXP typically to every route").
        let slots = schemes::info_slots(self.ixp());
        for k in 0..self.config.info_tags {
            let slot = ((peer.value() as u16).wrapping_mul(7).wrapping_add(k as u16)) % slots;
            let c = schemes::info_community(self.ixp(), slot);
            if !route.standard_communities.contains(&c) {
                route.standard_communities.push(c);
            }
        }

        // Digest the action communities once, at ingestion.
        let mut policy = RoutePolicy::digest(&self.dict, &route);
        if let Some(action) = injected_action {
            // Config-injected actions count as action instances so the
            // effectiveness accounting below covers them too.
            policy.action_instances += 1;
            policy.apply_action(action);
        }
        self.stats.action_instances += policy.action_instances as u64;
        self.metrics
            .action_instances
            .add(policy.action_instances as u64);
        for target in policy.peer_targets() {
            if self.members.contains_key(&target) {
                self.stats.effective_action_instances += 1;
                self.metrics.effective_action_instances.inc();
            } else {
                self.stats.ineffective_action_instances += 1;
                self.metrics.ineffective_action_instances.inc();
            }
        }

        self.policies.insert((peer, route.prefix), policy);
        if self.events.is_some() {
            // the event carries the route exactly as stored
            let stored = route.clone();
            self.emit(|| RibEvent::Announce {
                peer,
                route: stored,
            });
        }
        self.rib.announce(peer, route);
        self.stats.routes_accepted += 1;
        self.metrics.routes_accepted.inc();
        IngestOutcome::Accepted
    }

    /// Withdraw one prefix from a member.
    pub fn withdraw(&mut self, peer: Asn, prefix: &Prefix) -> bool {
        let had = self.rib.withdraw(peer, prefix).is_some();
        if had {
            self.stats.routes_withdrawn += 1;
            self.metrics.routes_withdrawn.inc();
            self.policies.remove(&(peer, *prefix));
            let prefix = *prefix;
            self.emit(|| RibEvent::Withdraw { peer, prefix });
        }
        had
    }

    /// The accepted routes (what the LG snapshot exposes per peer).
    pub fn accepted(&self) -> &AdjRibIn {
        &self.rib
    }

    /// The filtered routes with reasons.
    pub fn filtered(&self) -> &[FilteredRoute] {
        &self.filtered
    }

    /// The digested policy for one accepted route.
    pub fn policy(&self, peer: Asn, prefix: &Prefix) -> Option<&RoutePolicy> {
        self.policies.get(&(peer, *prefix))
    }

    /// Processing statistics.
    pub fn stats(&self) -> &RsStats {
        &self.stats
    }

    /// Compute the export RIB towards one peer: every other member's
    /// accepted routes, with action semantics applied (deny / allow /
    /// prepend), blackhole next hops preserved, and communities scrubbed.
    ///
    /// Routes the policy does not mutate (no prepend, scrub is a no-op)
    /// are **shared** with the RIB's stored copy — the returned
    /// `Arc<Route>` points at the same allocation, so exporting the full
    /// table to every peer costs one `Arc` bump per (route, peer) pair
    /// instead of a deep `Route` clone. Only routes a prepend or scrub
    /// actually changes are copied (copy-on-write); the
    /// `export_routes_shared` / `export_routes_copied` stats count the
    /// two paths.
    pub fn export_to(&mut self, peer: Asn) -> Vec<Arc<Route>> {
        let Some(member) = self.members.get(&peer).copied() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let default_policy = RoutePolicy::default();
        let announcers: Vec<Asn> = self.rib.peers().filter(|a| *a != peer).collect();
        for announcer in announcers {
            let Some(table) = self.rib.peer(announcer) else {
                continue;
            };
            for route in table.iter_shared() {
                if !member.has_session(route.afi()) {
                    continue;
                }
                self.stats.export_evaluations += 1;
                self.metrics.export_evaluations.inc();
                let policy = self
                    .policies
                    .get(&(announcer, route.prefix))
                    .unwrap_or(&default_policy);
                let crate::policy::ExportDecision::Allow { prepend } = policy.decide(peer) else {
                    continue;
                };
                if prepend == 0
                    && !scrub_would_modify(&self.config, &self.dict, route, policy.blackhole)
                {
                    self.stats.export_routes_shared += 1;
                    self.metrics.export_routes_shared.inc();
                    out.push(Arc::clone(route));
                } else {
                    let mut exported = Route::clone(route);
                    if prepend > 0 {
                        exported.as_path = exported.as_path.prepend(announcer, prepend as usize);
                    }
                    let scrubbed =
                        scrub_route(&self.config, &self.dict, &mut exported, policy.blackhole);
                    self.stats.scrubbed_communities += scrubbed;
                    self.metrics.scrubbed_communities.add(scrubbed);
                    self.stats.export_routes_copied += 1;
                    self.metrics.export_routes_copied.inc();
                    out.push(Arc::new(exported));
                }
            }
        }
        out
    }

    /// Compute the export RIB towards one peer with RFC 7947 §2.3 path
    /// selection: one best route per prefix, chosen *after* applying the
    /// per-peer action policy. Selecting per peer (the "multiple RIBs"
    /// approach of §2.3.2.2) avoids the path-hiding problem: if the best
    /// path is blocked towards this peer by a do-not-announce community,
    /// the next-best eligible path is exported instead of nothing.
    pub fn export_best_to(&mut self, peer: Asn) -> Vec<Arc<Route>> {
        let candidates = self.export_to(peer);
        let mut best: std::collections::BTreeMap<Prefix, Arc<Route>> =
            std::collections::BTreeMap::new();
        for route in candidates {
            match best.entry(route.prefix) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(route);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if better_path(&route, e.get()) {
                        e.insert(route);
                    }
                }
            }
        }
        best.into_values().collect()
    }
}

/// Would [`scrub_route`] change this route at all? The export fast path
/// shares the stored route when this is false, so the predicate must
/// match `scrub_route`'s retain logic exactly.
fn scrub_would_modify(
    config: &RsConfig,
    dict: &Dictionary,
    route: &Route,
    is_blackhole: bool,
) -> bool {
    match config.scrub {
        ScrubPolicy::None => false,
        // Scrubbing everything is a change whenever there is anything to
        // drop; re-adding the RFC 7999 signal is also a change when the
        // route had no communities at all.
        ScrubPolicy::All => route.community_count() > 0 || is_blackhole,
        ScrubPolicy::ActionsOnly => {
            let ixp = config.ixp;
            route.standard_communities.iter().any(|c| {
                !((is_blackhole && c.is_blackhole()) || dict.classify(*c).action().is_none())
            }) || route.large_communities.iter().any(|c| {
                community_dict::classify::classify_large(ixp, *c)
                    .action()
                    .is_some()
            }) || route.extended_communities.iter().any(|c| {
                community_dict::classify::classify_extended(ixp, *c)
                    .action()
                    .is_some()
            })
        }
    }
}

/// Scrub `route`'s communities per the config policy, returning how many
/// community instances were removed.
fn scrub_route(config: &RsConfig, dict: &Dictionary, route: &mut Route, is_blackhole: bool) -> u64 {
    match config.scrub {
        ScrubPolicy::None => 0,
        ScrubPolicy::All => {
            let scrubbed = route.community_count() as u64;
            route.scrub_communities();
            if is_blackhole {
                // peers still need the RFC 7999 signal
                route.standard_communities.push(well_known::BLACKHOLE);
            }
            scrubbed
        }
        ScrubPolicy::ActionsOnly => {
            let before = route.community_count();
            route.standard_communities.retain(|c| {
                (is_blackhole && c.is_blackhole()) || dict.classify(*c).action().is_none()
            });
            let ixp = config.ixp;
            route.large_communities.retain(|c| {
                community_dict::classify::classify_large(ixp, *c)
                    .action()
                    .is_none()
            });
            route.extended_communities.retain(|c| {
                community_dict::classify::classify_extended(ixp, *c)
                    .action()
                    .is_none()
            });
            (before - route.community_count()) as u64
        }
    }
}

/// RFC 4271 §9.1-style tie-breaking, reduced to what a route server can
/// see: shorter AS path wins; then lower origin code; then lower
/// first-hop (announcer) ASN for determinism.
fn better_path(a: &Route, b: &Route) -> bool {
    let key = |r: &Route| {
        (
            r.as_path.path_len(),
            r.origin.code(),
            r.as_path.first_asn().map(|x| x.value()).unwrap_or(u32::MAX),
        )
    };
    key(a) < key(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_wire::convert::routes_to_update;

    const IXP: IxpId = IxpId::DeCixFra;

    fn rs() -> RouteServer {
        let mut rs = RouteServer::for_ixp(IXP);
        rs.add_member(Asn(39120), true, true);
        rs.add_member(Asn(6939), true, true); // Hurricane Electric
        rs.add_member(Asn(15169), true, false); // Google, v4-only
        rs
    }

    fn route(pfx: &str, cs: &[bgp_model::community::StandardCommunity]) -> Route {
        Route::builder(pfx.parse().unwrap(), "198.32.0.7".parse().unwrap())
            .path([39120, 4200]) // wait: 4200 fine (not bogon)
            .standards(cs.iter().copied())
            .build()
    }

    #[test]
    fn accept_tag_and_export() {
        let mut server = rs();
        let r = route("193.0.10.0/24", &[]);
        assert_eq!(server.announce(Asn(39120), r), IngestOutcome::Accepted);
        // informational tags added
        let stored = server
            .accepted()
            .peer(Asn(39120))
            .unwrap()
            .get(&"193.0.10.0/24".parse().unwrap())
            .unwrap();
        assert_eq!(
            stored.standard_communities.len(),
            server.config().info_tags as usize
        );
        // exported to the other members
        let exp = server.export_to(Asn(6939));
        assert_eq!(exp.len(), 1);
        // info tags survive ActionsOnly scrubbing
        assert_eq!(exp[0].standard_communities.len(), 2);
    }

    #[test]
    fn unmodified_export_shares_the_stored_route() {
        let mut server = rs();
        // info tags only: ActionsOnly scrubbing is a no-op, no prepend
        let r = route("193.0.10.0/24", &[]);
        assert_eq!(server.announce(Asn(39120), r), IngestOutcome::Accepted);
        let exp = server.export_to(Asn(6939));
        assert_eq!(exp.len(), 1);
        let stored = server
            .accepted()
            .peer(Asn(39120))
            .unwrap()
            .get_shared(&"193.0.10.0/24".parse().unwrap())
            .unwrap();
        // same allocation, not a deep copy
        assert!(Arc::ptr_eq(&exp[0], stored));
        assert_eq!(server.stats().export_routes_shared, 1);
        assert_eq!(server.stats().export_routes_copied, 0);
    }

    #[test]
    fn mutated_export_copies_and_leaves_rib_intact() {
        let mut server = rs();
        // carries an action community targeting another member: exporting
        // to AS6939 is allowed but ActionsOnly scrubbing removes the tag
        let r = route(
            "193.0.10.0/24",
            &[schemes::avoid_community(IXP, Asn(15169))],
        );
        assert_eq!(server.announce(Asn(39120), r), IngestOutcome::Accepted);
        let exp = server.export_to(Asn(6939));
        assert_eq!(exp.len(), 1);
        let stored = server
            .accepted()
            .peer(Asn(39120))
            .unwrap()
            .get_shared(&"193.0.10.0/24".parse().unwrap())
            .unwrap();
        assert!(!Arc::ptr_eq(&exp[0], stored));
        // the scrub mutated the copy, never the stored route
        assert!(exp[0].standard_communities.len() < stored.standard_communities.len());
        assert_eq!(server.stats().export_routes_copied, 1);
        assert_eq!(server.stats().export_routes_shared, 0);
    }

    #[test]
    fn avoid_community_blocks_target_only() {
        let mut server = rs();
        let r = route("193.0.10.0/24", &[schemes::avoid_community(IXP, Asn(6939))]);
        server.announce(Asn(39120), r);
        assert!(server.export_to(Asn(6939)).is_empty());
        let to_google = server.export_to(Asn(15169));
        assert_eq!(to_google.len(), 1);
        // the action community was scrubbed on export
        assert!(to_google[0].standard_communities.iter().all(|c| server
            .dictionary()
            .classify(*c)
            .action()
            .is_none()));
    }

    #[test]
    fn effectiveness_accounting() {
        let mut server = rs();
        let r = route(
            "193.0.10.0/24",
            &[
                schemes::avoid_community(IXP, Asn(6939)), // member → effective
                schemes::avoid_community(IXP, Asn(16276)), // OVH not member → ineffective
            ],
        );
        server.announce(Asn(39120), r);
        assert_eq!(server.stats().effective_action_instances, 1);
        assert_eq!(server.stats().ineffective_action_instances, 1);
        assert_eq!(server.stats().action_instances, 2);
        assert!((server.stats().ineffective_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn filtered_routes_kept_with_reason() {
        let mut server = rs();
        let r = route("10.0.0.0/16", &[]);
        assert_eq!(
            server.announce(Asn(39120), r),
            IngestOutcome::Filtered(FilterReason::BogonPrefix)
        );
        assert_eq!(server.filtered().len(), 1);
        assert_eq!(server.stats().routes_accepted, 0);
        assert!(server.export_to(Asn(6939)).is_empty());
    }

    #[test]
    fn no_session_rejected() {
        let mut server = rs();
        // Google has no v6 session
        let r = Route::builder(
            "2a00:1450::/32".parse().unwrap(),
            "2001:7f8::1".parse().unwrap(),
        )
        .path([15169])
        .build();
        assert_eq!(server.announce(Asn(15169), r), IngestOutcome::NoSession);
        // unknown AS entirely
        let r = route("193.0.10.0/24", &[]);
        assert_eq!(server.announce(Asn(999), r), IngestOutcome::NoSession);
    }

    #[test]
    fn v6_routes_only_exported_to_v6_members() {
        let mut server = rs();
        let r = Route::builder(
            "2a00:1450::/32".parse().unwrap(),
            "2001:7f8::1".parse().unwrap(),
        )
        .path([39120])
        .build();
        assert_eq!(server.announce(Asn(39120), r), IngestOutcome::Accepted);
        assert_eq!(server.export_to(Asn(6939)).len(), 1);
        assert!(server.export_to(Asn(15169)).is_empty()); // v4-only member
    }

    #[test]
    fn prepend_executed_on_export() {
        let mut server = rs();
        let c = schemes::prepend_community(IXP, Asn(6939), 3).unwrap();
        let r = route("193.0.10.0/24", &[c]);
        server.announce(Asn(39120), r);
        let exp = server.export_to(Asn(6939));
        assert_eq!(exp.len(), 1);
        // path grew by 3 (prepends of the announcer's ASN)
        assert_eq!(exp[0].as_path.path_len(), 5);
        assert_eq!(exp[0].as_path.first_asn(), Some(Asn(39120)));
        // no prepend towards others
        let exp = server.export_to(Asn(15169));
        assert_eq!(exp[0].as_path.path_len(), 2);
    }

    #[test]
    fn blackhole_rewrites_next_hop_and_keeps_signal() {
        let mut server = rs();
        let r = route("193.0.10.66/32", &[well_known::BLACKHOLE]);
        assert_eq!(server.announce(Asn(39120), r), IngestOutcome::Accepted);
        let exp = server.export_to(Asn(6939));
        assert_eq!(exp.len(), 1);
        assert_eq!(exp[0].next_hop, server.config().blackhole_next_hop_v4);
        assert!(exp[0].has_standard(well_known::BLACKHOLE));
    }

    #[test]
    fn wire_updates_ingest() {
        let mut server = rs();
        let r = route("193.0.10.0/24", &[schemes::avoid_community(IXP, Asn(6939))]);
        let update = routes_to_update(std::slice::from_ref(&r));
        let outcomes = server.ingest_update(Asn(39120), &update).unwrap();
        assert_eq!(outcomes, vec![IngestOutcome::Accepted]);
        assert_eq!(server.stats().updates_processed, 1);
        // withdraw via wire
        let wd = UpdateMessage {
            withdrawn: vec!["193.0.10.0/24".parse().unwrap()],
            ..Default::default()
        };
        server.ingest_update(Asn(39120), &wd).unwrap();
        assert_eq!(server.stats().routes_withdrawn, 1);
        assert_eq!(server.accepted().route_count(), 0);
    }

    #[test]
    fn remove_member_cleans_up() {
        let mut server = rs();
        server.announce(Asn(39120), route("193.0.10.0/24", &[]));
        server.remove_member(Asn(39120));
        assert!(!server.is_member(Asn(39120)));
        assert_eq!(server.accepted().route_count(), 0);
        assert!(server.export_to(Asn(6939)).is_empty());
    }

    #[test]
    fn best_path_selection_one_route_per_prefix() {
        let mut server = rs();
        server.add_member(Asn(48500), true, false);
        // two members announce the same prefix with different path lengths
        let short = Route::builder(
            "81.0.0.0/24".parse().unwrap(),
            "198.32.0.7".parse().unwrap(),
        )
        .path([39120, 15169])
        .build();
        let long = Route::builder(
            "81.0.0.0/24".parse().unwrap(),
            "198.32.0.8".parse().unwrap(),
        )
        .path([48500, 51000, 15169])
        .build();
        server.announce(Asn(39120), short);
        server.announce(Asn(48500), long);
        let best = server.export_best_to(Asn(6939));
        assert_eq!(best.len(), 1);
        assert_eq!(best[0].as_path.first_asn(), Some(Asn(39120)));
        // the raw export still carries both (the LG's per-peer view)
        assert_eq!(server.export_to(Asn(6939)).len(), 2);
    }

    #[test]
    fn best_path_avoids_path_hiding() {
        // RFC 7947 §2.3.1: if the globally-best path is blocked towards a
        // peer by an action community, that peer must still get the
        // next-best path — not nothing.
        let mut server = rs();
        server.add_member(Asn(48500), true, false);
        let best_but_blocked = Route::builder(
            "81.0.0.0/24".parse().unwrap(),
            "198.32.0.7".parse().unwrap(),
        )
        .path([39120, 15169])
        .standard(schemes::avoid_community(IXP, Asn(6939)))
        .build();
        let fallback = Route::builder(
            "81.0.0.0/24".parse().unwrap(),
            "198.32.0.8".parse().unwrap(),
        )
        .path([48500, 51000, 15169])
        .build();
        server.announce(Asn(39120), best_but_blocked);
        server.announce(Asn(48500), fallback);
        // HE is avoided by the short path: it gets the long one
        let to_he = server.export_best_to(Asn(6939));
        assert_eq!(to_he.len(), 1);
        assert_eq!(to_he[0].as_path.first_asn(), Some(Asn(48500)));
        // everyone else gets the short path
        let to_google = server.export_best_to(Asn(15169));
        assert_eq!(to_google.len(), 1);
        assert_eq!(to_google[0].as_path.first_asn(), Some(Asn(39120)));
    }

    #[test]
    fn best_path_tie_breaks_deterministically() {
        let mut server = rs();
        server.add_member(Asn(48500), true, false);
        for announcer in [48500u32, 39120] {
            let r = Route::builder(
                "81.0.0.0/24".parse().unwrap(),
                "198.32.0.9".parse().unwrap(),
            )
            .path([announcer, 15169])
            .build();
            server.announce(Asn(announcer), r);
        }
        let best = server.export_best_to(Asn(6939));
        assert_eq!(best.len(), 1);
        // equal length, equal origin: lower announcer ASN wins
        assert_eq!(best[0].as_path.first_asn(), Some(Asn(39120)));
    }

    #[test]
    fn prefix_limit_drops_excess() {
        let config = RsConfig::for_ixp(IXP).with_prefix_limit(Some(3));
        let mut server = RouteServer::new(config);
        server.add_member(Asn(39120), true, false);
        for i in 0..5u8 {
            let r = Route::builder(
                format!("193.0.{i}.0/24").parse().unwrap(),
                "198.32.0.7".parse().unwrap(),
            )
            .path([39120])
            .build();
            let outcome = server.announce(Asn(39120), r);
            if i < 3 {
                assert_eq!(outcome, IngestOutcome::Accepted, "route {i}");
            } else {
                assert_eq!(
                    outcome,
                    IngestOutcome::Filtered(FilterReason::PrefixLimitExceeded),
                    "route {i}"
                );
            }
        }
        assert_eq!(server.accepted().route_count(), 3);
        // replacing an existing prefix stays allowed at the limit
        let r = Route::builder(
            "193.0.1.0/24".parse().unwrap(),
            "198.32.0.7".parse().unwrap(),
        )
        .path([39120, 15169])
        .build();
        assert_eq!(server.announce(Asn(39120), r), IngestOutcome::Accepted);
        assert_eq!(server.accepted().route_count(), 3);
    }

    #[test]
    fn import_rule_reject_surfaces_policy_reason() {
        use crate::rules::{ImportRule, RuleAction, RuleMatch};
        let config = RsConfig::for_ixp(IXP).with_import_rules(vec![ImportRule {
            name: "no-long-v4".into(),
            matcher: RuleMatch {
                prefix_len: Some((24, 24)),
                peer: Some(Asn(39120)),
                ..RuleMatch::default()
            },
            action: RuleAction::Reject,
        }]);
        let mut server = RouteServer::new(config);
        server.add_member(Asn(39120), true, true);
        server.add_member(Asn(6939), true, true);
        assert_eq!(
            server.announce(Asn(39120), route("193.0.10.0/24", &[])),
            IngestOutcome::Filtered(FilterReason::PolicyRule)
        );
        // other peers and other lengths pass
        let r = Route::builder(
            "193.0.0.0/20".parse().unwrap(),
            "198.32.0.7".parse().unwrap(),
        )
        .path([39120, 4200])
        .build();
        assert_eq!(server.announce(Asn(39120), r), IngestOutcome::Accepted);
        assert_eq!(server.stats().routes_filtered[&FilterReason::PolicyRule], 1);
    }

    #[test]
    fn import_rule_apply_injects_action() {
        use crate::rules::{ImportRule, RuleAction, RuleMatch};
        use community_dict::action::Action;
        // every route from 39120 is treated as do-not-announce-to HE
        let config = RsConfig::for_ixp(IXP).with_import_rules(vec![ImportRule {
            name: "shield-he".into(),
            matcher: RuleMatch {
                peer: Some(Asn(39120)),
                ..RuleMatch::default()
            },
            action: RuleAction::Apply(Action::avoid(Asn(6939))),
        }]);
        let mut server = RouteServer::new(config);
        server.add_member(Asn(39120), true, true);
        server.add_member(Asn(6939), true, true);
        server.add_member(Asn(15169), true, false);
        assert_eq!(
            server.announce(Asn(39120), route("193.0.10.0/24", &[])),
            IngestOutcome::Accepted
        );
        assert!(server.export_to(Asn(6939)).is_empty());
        assert_eq!(server.export_to(Asn(15169)).len(), 1);
        // the injected action counts in the effectiveness books
        assert_eq!(server.stats().action_instances, 1);
        assert_eq!(server.stats().effective_action_instances, 1);
    }

    #[test]
    fn members_for_family() {
        let server = rs();
        assert_eq!(server.members_for(Afi::Ipv4).count(), 3);
        assert_eq!(server.members_for(Afi::Ipv6).count(), 2);
    }
}
