//! Route-server processing statistics.
//!
//! §5.5's punchline is overhead: action communities targeting ASes not at
//! the RS "are achieving no goal other than unnecessary overheads on the
//! RS". These counters make that overhead measurable.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::filter::FilterReason;

/// Cumulative counters for one route server.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RsStats {
    /// UPDATE messages ingested.
    pub updates_processed: u64,
    /// Routes accepted by the import filters.
    pub routes_accepted: u64,
    /// Routes rejected, by reason.
    pub routes_filtered: BTreeMap<FilterReason, u64>,
    /// Routes withdrawn.
    pub routes_withdrawn: u64,
    /// Action community instances digested on accepted routes.
    pub action_instances: u64,
    /// Action instances whose single-AS target has a session at the RS
    /// (these can change routing).
    pub effective_action_instances: u64,
    /// Action instances whose single-AS target is NOT at the RS — the
    /// §5.5 pure-overhead case.
    pub ineffective_action_instances: u64,
    /// Per-(route, peer) export policy evaluations performed.
    pub export_evaluations: u64,
    /// Communities removed by scrubbing on export.
    pub scrubbed_communities: u64,
    /// Exported routes shared with the RIB copy (no prepend/scrub
    /// mutation, so no per-peer deep clone was allocated).
    pub export_routes_shared: u64,
    /// Exported routes that were copied because a prepend or scrub
    /// actually mutated them (copy-on-write slow path).
    pub export_routes_copied: u64,
}

impl RsStats {
    /// Record one filtered route.
    pub fn record_filtered(&mut self, reason: FilterReason) {
        *self.routes_filtered.entry(reason).or_insert(0) += 1;
    }

    /// Total filtered routes.
    pub fn filtered_total(&self) -> u64 {
        self.routes_filtered.values().sum()
    }

    /// Fraction of single-AS-targeted action instances that are
    /// ineffective (the §5.5 headline number, from the RS's perspective).
    pub fn ineffective_fraction(&self) -> f64 {
        let total = self.effective_action_instances + self.ineffective_action_instances;
        if total == 0 {
            0.0
        } else {
            self.ineffective_action_instances as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = RsStats::default();
        s.record_filtered(FilterReason::BogonPrefix);
        s.record_filtered(FilterReason::BogonPrefix);
        s.record_filtered(FilterReason::TooSpecific);
        assert_eq!(s.filtered_total(), 3);
        assert_eq!(s.routes_filtered[&FilterReason::BogonPrefix], 2);
    }

    #[test]
    fn ineffective_fraction() {
        let mut s = RsStats::default();
        assert_eq!(s.ineffective_fraction(), 0.0);
        s.effective_action_instances = 60;
        s.ineffective_action_instances = 40;
        assert!((s.ineffective_fraction() - 0.4).abs() < 1e-12);
    }
}
