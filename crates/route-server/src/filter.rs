//! Import filtering (paper §3).
//!
//! "Filtered routes are rejected according to rules specified in the route
//! server configuration file. Reasons include bogon prefixes or ASNs, AS
//! paths too long, and prefixes too specific (>/24) or too broad (</8)."
//! Filtered routes are kept (the LG exposes both sets) but never exported.

use std::fmt;

use serde::{Deserialize, Serialize};

use bgp_model::community::well_known;
use bgp_model::route::Route;

use crate::config::RsConfig;

/// Why a route was filtered on import.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FilterReason {
    /// Prefix is in the bogon space (RFC 1918 etc.).
    BogonPrefix,
    /// A bogon ASN appears in the AS path.
    BogonAsn,
    /// AS path longer than the configured maximum.
    PathTooLong,
    /// Prefix more specific than /24 (v4) or /48 (v6).
    TooSpecific,
    /// Prefix broader than /8 (v4) or /16 (v6), or a default route.
    TooBroad,
    /// The RS's own ASN appears in the path (loop).
    RsAsnInPath,
    /// Empty AS path (not valid over EBGP).
    EmptyPath,
    /// More communities than the configured maximum (the DE-CIX
    /// "too many communities" filter, §5.6).
    TooManyCommunities,
    /// Blackhole request at an IXP without blackhole support.
    BlackholeUnsupported,
    /// The member exceeded its per-peer prefix limit (RFC 7947 §4
    /// operational practice; modeled as drop-excess rather than session
    /// teardown).
    PrefixLimitExceeded,
    /// Rejected by a declarative [`ImportRule`](crate::rules::ImportRule)
    /// in the RS configuration.
    PolicyRule,
}

impl fmt::Display for FilterReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FilterReason::BogonPrefix => "bogon prefix",
            FilterReason::BogonAsn => "bogon ASN in path",
            FilterReason::PathTooLong => "AS path too long",
            FilterReason::TooSpecific => "prefix too specific",
            FilterReason::TooBroad => "prefix too broad",
            FilterReason::RsAsnInPath => "RS ASN in path",
            FilterReason::EmptyPath => "empty AS path",
            FilterReason::TooManyCommunities => "too many communities",
            FilterReason::BlackholeUnsupported => "blackhole not supported",
            FilterReason::PrefixLimitExceeded => "prefix limit exceeded",
            FilterReason::PolicyRule => "rejected by policy rule",
        };
        f.write_str(s)
    }
}

/// True if the route is a blackhole request (carries the RFC 7999
/// community).
pub fn is_blackhole_request(route: &Route) -> bool {
    route.has_standard(well_known::BLACKHOLE)
}

/// Apply the import filters. `Ok(())` means accepted.
pub fn check_import(route: &Route, config: &RsConfig) -> Result<(), FilterReason> {
    let blackhole = is_blackhole_request(route);
    if blackhole && !config.blackhole_enabled {
        return Err(FilterReason::BlackholeUnsupported);
    }
    if route.prefix.is_bogon() {
        return Err(FilterReason::BogonPrefix);
    }
    // Blackhole requests are exempt from the too-specific bound: they are
    // host routes by design (RFC 7999 §3.3).
    if !blackhole && route.prefix.is_too_specific() {
        return Err(FilterReason::TooSpecific);
    }
    if route.prefix.is_too_broad() || route.prefix.is_default_route() {
        return Err(FilterReason::TooBroad);
    }
    if route.as_path.is_empty() {
        return Err(FilterReason::EmptyPath);
    }
    if route.as_path.path_len() > config.max_path_len {
        return Err(FilterReason::PathTooLong);
    }
    if route.as_path.iter_asns().any(|a| a.is_bogon()) {
        return Err(FilterReason::BogonAsn);
    }
    if route.as_path.contains(config.ixp.rs_asn()) {
        return Err(FilterReason::RsAsnInPath);
    }
    if let Some(max) = config.max_communities {
        if route.community_count() > max {
            return Err(FilterReason::TooManyCommunities);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::community::StandardCommunity;
    use community_dict::ixp::IxpId;

    fn config() -> RsConfig {
        RsConfig::for_ixp(IxpId::DeCixFra)
    }

    fn route(pfx: &str, path: &[u32]) -> Route {
        Route::builder(pfx.parse().unwrap(), "198.32.0.7".parse().unwrap())
            .path(path.iter().copied())
            .build()
    }

    #[test]
    fn accepts_normal_route() {
        assert_eq!(
            check_import(&route("193.0.10.0/24", &[39120, 15169]), &config()),
            Ok(())
        );
        assert_eq!(
            check_import(&route("2001:db8:40::/44", &[39120]), &config()),
            // 2001:db8::/32 is a documentation bogon, so pick another block
            Err(FilterReason::BogonPrefix)
        );
        assert_eq!(
            check_import(&route("2a00:1450::/32", &[39120]), &config()),
            Ok(())
        );
    }

    #[test]
    fn rejects_bogon_prefix() {
        assert_eq!(
            check_import(&route("10.1.0.0/16", &[39120]), &config()),
            Err(FilterReason::BogonPrefix)
        );
    }

    #[test]
    fn rejects_specificity_violations() {
        assert_eq!(
            check_import(&route("8.8.8.0/25", &[39120]), &config()),
            Err(FilterReason::TooSpecific)
        );
        assert_eq!(
            check_import(&route("8.0.0.0/7", &[39120]), &config()),
            Err(FilterReason::TooBroad)
        );
        assert_eq!(
            check_import(&route("0.0.0.0/0", &[39120]), &config()),
            Err(FilterReason::TooBroad)
        );
    }

    #[test]
    fn rejects_path_problems() {
        assert_eq!(
            check_import(&route("8.8.8.0/24", &[]), &config()),
            Err(FilterReason::EmptyPath)
        );
        let long: Vec<u32> = (1..=40).collect();
        assert_eq!(
            check_import(&route("8.8.8.0/24", &long), &config()),
            Err(FilterReason::PathTooLong)
        );
        assert_eq!(
            check_import(&route("8.8.8.0/24", &[39120, 0]), &config()),
            Err(FilterReason::BogonAsn)
        );
        assert_eq!(
            check_import(&route("8.8.8.0/24", &[39120, 6695, 15169]), &config()),
            Err(FilterReason::RsAsnInPath)
        );
    }

    #[test]
    fn max_communities_filter() {
        let mut r = route("8.8.8.0/24", &[39120]);
        for i in 0..151u16 {
            r.standard_communities
                .push(StandardCommunity::from_parts(39120, i));
        }
        assert_eq!(
            check_import(&r, &config()),
            Err(FilterReason::TooManyCommunities)
        );
        // LINX has no such filter
        assert_eq!(check_import(&r, &RsConfig::for_ixp(IxpId::Linx)), Ok(()));
    }

    #[test]
    fn blackhole_host_route_exemption() {
        let mut r = route("193.0.10.66/32", &[39120]);
        r.standard_communities.push(well_known::BLACKHOLE);
        // DE-CIX: accepted despite /32
        assert_eq!(check_import(&r, &config()), Ok(()));
        // IX.br: blackhole unsupported during the window
        assert_eq!(
            check_import(&r, &RsConfig::for_ixp(IxpId::IxBrSp)),
            Err(FilterReason::BlackholeUnsupported)
        );
        // without the community the /32 is just too specific
        r.standard_communities.clear();
        assert_eq!(check_import(&r, &config()), Err(FilterReason::TooSpecific));
    }
}
