//! The twelve-week collection timeline (paper §4, Appendix A).
//!
//! Generates the daily metric series — members, prefixes, routes,
//! community instances — for every (IXP, family), anchored to the
//! paper's Table 4 min/max ranges, with two noise processes:
//! small day-to-day churn (Table 3 keeps weekly variation under ~4%) and
//! injected collection outages that create the "valleys" §3's sanitation
//! removes (13.5% of snapshots in the paper).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use bgp_model::prefix::Afi;
use community_dict::ixp::IxpId;
use looking_glass::sanitize::{detect_bad_days, SanitizeConfig, SeriesPoint};

/// Collection window length: 19 Jul – 4 Oct 2021.
pub const DAYS: u32 = 84;

/// Which collection path is driving a generated timeline: the paper's
/// periodic end-of-day snapshot polls, or the BMP-style monitoring
/// stream (`crates/stream`) drained incrementally through the day.
///
/// Day hooks observe this so cross-cutting per-day logic — the chaos
/// day-budget oracle above all — applies to both paths without
/// special-casing which collector produced the day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectionMode {
    /// Periodic snapshot polls (the paper's §3 method).
    #[default]
    Snapshot,
    /// Streamed per-update feed with an incremental state store.
    Stream,
}

/// Table 4 anchors: (min, max) over the twelve weekly snapshots.
#[derive(Debug, Clone, Copy)]
pub struct MetricAnchors {
    /// Members at the RS.
    pub members: (u32, u32),
    /// Distinct prefixes.
    pub prefixes: (u32, u32),
    /// Routes.
    pub routes: (u32, u32),
    /// Community instances.
    pub communities: (u64, u64),
}

/// The Table 4 row for one (IXP, family).
pub const fn anchors(ixp: IxpId, afi: Afi) -> MetricAnchors {
    match (ixp, afi) {
        (IxpId::IxBrSp, Afi::Ipv4) => MetricAnchors {
            members: (1652, 1748),
            prefixes: (154_140, 164_050),
            routes: (241_978, 282_697),
            communities: (4_327_692, 5_141_660),
        },
        (IxpId::IxBrSp, Afi::Ipv6) => MetricAnchors {
            members: (1370, 1518),
            prefixes: (57_862, 60_203),
            routes: (82_486, 88_652),
            communities: (1_368_582, 1_471_665),
        },
        (IxpId::AmsIx, Afi::Ipv4) => MetricAnchors {
            members: (618, 653),
            prefixes: (245_246, 265_025),
            routes: (245_251, 265_030),
            communities: (4_929_486, 5_206_070),
        },
        (IxpId::AmsIx, Afi::Ipv6) => MetricAnchors {
            members: (486, 495),
            prefixes: (61_187, 63_112),
            routes: (61_187, 63_112),
            communities: (955_198, 1_032_096),
        },
        (IxpId::Linx, Afi::Ipv4) => MetricAnchors {
            members: (622, 640),
            prefixes: (246_014, 255_927),
            routes: (316_479, 329_592),
            communities: (5_235_560, 5_666_094),
        },
        (IxpId::Linx, Afi::Ipv6) => MetricAnchors {
            members: (427, 451),
            prefixes: (59_238, 63_734),
            routes: (77_319, 81_922),
            communities: (1_082_610, 1_138_393),
        },
        (IxpId::DeCixFra, Afi::Ipv4) => MetricAnchors {
            members: (815, 827),
            prefixes: (444_054, 453_847),
            routes: (865_946, 888_705),
            communities: (13_782_937, 14_851_619),
        },
        (IxpId::DeCixFra, Afi::Ipv6) => MetricAnchors {
            members: (635, 648),
            prefixes: (62_828, 65_395),
            routes: (127_234, 132_389),
            communities: (1_848_666, 1_906_656),
        },
        (IxpId::Bcix, Afi::Ipv4) => MetricAnchors {
            members: (85, 91),
            prefixes: (98_405, 106_351),
            routes: (101_719, 111_166),
            communities: (1_550_217, 1_670_622),
        },
        (IxpId::Bcix, Afi::Ipv6) => MetricAnchors {
            members: (76, 78),
            prefixes: (45_455, 46_873),
            routes: (49_236, 50_569),
            communities: (746_216, 767_224),
        },
        (IxpId::DeCixNyc, Afi::Ipv4) => MetricAnchors {
            members: (169, 175),
            prefixes: (159_138, 164_570),
            routes: (175_905, 191_097),
            communities: (2_604_624, 2_915_428),
        },
        (IxpId::DeCixNyc, Afi::Ipv6) => MetricAnchors {
            members: (145, 147),
            prefixes: (48_041, 51_513),
            routes: (59_741, 64_033),
            communities: (997_500, 1_081_904),
        },
        (IxpId::DeCixMad, Afi::Ipv4) => MetricAnchors {
            members: (148, 152),
            prefixes: (103_023, 116_237),
            routes: (111_125, 125_812),
            communities: (1_834_093, 2_237_424),
        },
        (IxpId::DeCixMad, Afi::Ipv6) => MetricAnchors {
            members: (81, 85),
            prefixes: (43_227, 45_321),
            routes: (46_214, 48_711),
            communities: (699_110, 773_489),
        },
        (IxpId::Netnod, Afi::Ipv4) => MetricAnchors {
            members: (118, 127),
            prefixes: (124_756, 132_179),
            routes: (142_051, 151_081),
            communities: (4_853_934, 5_151_156),
        },
        (IxpId::Netnod, Afi::Ipv6) => MetricAnchors {
            members: (96, 101),
            prefixes: (44_661, 45_507),
            routes: (47_939, 48_874),
            communities: (896_846, 908_502),
        },
    }
}

/// Timeline generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TimelineConfig {
    /// Master seed.
    pub seed: u64,
    /// Days to generate.
    pub days: u32,
    /// Per-day probability of a collection outage (a sanitizable valley).
    /// The paper removed 13.5% of its snapshots.
    pub outage_rate: f64,
    /// The collection path this timeline is driving. Purely
    /// observational: the generated points are identical either way
    /// (that is the equivalence contract), but every [`DayHook`] sees it.
    pub mode: CollectionMode,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            seed: 0x1C0FFEE,
            days: DAYS,
            outage_rate: 0.135,
            mode: CollectionMode::Snapshot,
        }
    }
}

/// The generated series for one (IXP, family).
#[derive(Debug, Clone)]
pub struct Series {
    /// IXP.
    pub ixp: IxpId,
    /// Family.
    pub afi: Afi,
    /// One point per day, outages included.
    pub points: Vec<SeriesPoint>,
    /// Days on which an outage was injected (ground truth).
    pub injected_outages: Vec<u32>,
}

impl Series {
    /// The series after §3 sanitation (valley days removed).
    pub fn sanitized(&self) -> Vec<SeriesPoint> {
        let bad = detect_bad_days(&self.points, &SanitizeConfig::default());
        self.points
            .iter()
            .filter(|p| !bad.contains(&p.day))
            .copied()
            .collect()
    }

    /// The first clean snapshot of each week (the paper's Table 4 method:
    /// "the first snapshot each week (Monday) was used").
    pub fn weekly(&self) -> Vec<SeriesPoint> {
        let clean = self.sanitized();
        let mut out = Vec::new();
        for week in 0..(self.points.len() as u32).div_ceil(7) {
            let start = week * 7;
            if let Some(p) = clean.iter().find(|p| p.day >= start && p.day < start + 7) {
                out.push(*p);
            }
        }
        out
    }

    /// The last seven clean days (the paper's Table 3 window).
    pub fn last_week(&self) -> Vec<SeriesPoint> {
        let clean = self.sanitized();
        let n = clean.len();
        clean[n.saturating_sub(7)..].to_vec()
    }
}

/// What a [`DayHook`] observes for one generated day.
#[derive(Debug, Clone, Copy)]
pub struct DayContext {
    /// Day index within the timeline.
    pub day: u32,
    /// Whether this generator injected a collection outage on the day.
    pub outage: bool,
    /// The collection path driving the timeline ([`TimelineConfig::mode`]).
    pub mode: CollectionMode,
}

/// A per-day observer/mutator for timeline generation: called once per
/// day after the point is generated (and any outage applied), with the
/// day's [`DayContext`] and the mutable point. The context carries the
/// [`CollectionMode`], so hooks — the chaos day-budget oracle, fault
/// superimposition (peer flaps, RIB churn) — apply to the snapshot and
/// stream paths alike instead of assuming snapshot polls.
pub type DayHook<'a> = &'a mut dyn FnMut(DayContext, &mut SeriesPoint);

/// Generate the daily series for one (IXP, family).
pub fn generate_series(ixp: IxpId, afi: Afi, config: &TimelineConfig) -> Series {
    generate_series_with_hook(ixp, afi, config, &mut |_, _| {})
}

/// [`generate_series`] with a [`DayHook`] invoked on every generated day.
pub fn generate_series_with_hook(
    ixp: IxpId,
    afi: Afi,
    config: &TimelineConfig,
    hook: DayHook<'_>,
) -> Series {
    let a = anchors(ixp, afi);
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ ((ixp as u64) << 8) ^ ((afi as u64) << 4) ^ 0xA5A5);
    let registry = obs::global();
    let _span = obs::span!(obs::names::SIM_GENERATE_SERIES);
    let day_gauge = registry.gauge(obs::names::SIM_TIMELINE_DAY);
    let points_counter = registry.counter(obs::names::SIM_SERIES_POINTS);
    let outage_counter = registry.counter(obs::names::SIM_OUTAGE_DAYS);
    let mut points = Vec::with_capacity(config.days as usize);
    let mut injected = Vec::new();
    let horizon = (config.days.saturating_sub(1)).max(1) as f64;
    for day in 0..config.days {
        day_gauge.set(day as i64);
        // growth from the Table 4 minimum toward the Table 1 / Table 4
        // maximum, slightly superlinear (networks keep joining), with
        // ±1% daily jitter so a clean week stays within Table 3's <4%
        let t = (day as f64 / horizon).powf(1.15);
        let jitter = 1.0 + (rng.random::<f64>() - 0.5) * 0.02;
        let lerp_u32 = |(lo, hi): (u32, u32)| -> usize {
            ((lo as f64 + (hi - lo) as f64 * t) * jitter).round() as usize
        };
        let lerp_u64 = |(lo, hi): (u64, u64)| -> usize {
            ((lo as f64 + (hi - lo) as f64 * t) * jitter).round() as usize
        };
        let mut p = SeriesPoint {
            day,
            members: lerp_u32(a.members),
            prefixes: lerp_u32(a.prefixes),
            routes: lerp_u32(a.routes),
            communities: lerp_u64(a.communities),
        };
        // a collection outage loses 30–65% of the data for the day, and
        // never on the final day (the headline snapshot must be clean)
        let mut outage = false;
        if day + 1 < config.days && day > 0 && rng.random::<f64>() < config.outage_rate {
            let keep = 0.35 + rng.random::<f64>() * 0.35;
            p.members = (p.members as f64 * keep) as usize;
            p.prefixes = (p.prefixes as f64 * keep) as usize;
            p.routes = (p.routes as f64 * keep) as usize;
            p.communities = (p.communities as f64 * keep) as usize;
            outage_counter.inc();
            injected.push(day);
            outage = true;
        }
        hook(
            DayContext {
                day,
                outage,
                mode: config.mode,
            },
            &mut p,
        );
        points_counter.inc();
        points.push(p);
    }
    Series {
        ixp,
        afi,
        points,
        injected_outages: injected,
    }
}

/// Generate all 16 series (8 IXPs × 2 families).
///
/// Each (ixp, afi) series derives its own RNG stream from the config
/// seed, so they fan out onto the `par` pool; the ordered join keeps the
/// output order (and content) identical to the serial loop.
pub fn generate_all(config: &TimelineConfig) -> Vec<Series> {
    let units: Vec<(IxpId, Afi)> = IxpId::ALL
        .iter()
        .flat_map(|&ixp| [(ixp, Afi::Ipv4), (ixp, Afi::Ipv6)])
        .collect();
    par::map_indexed(&units, |_, &(ixp, afi)| {
        let _span = obs::span!(obs::names::SIM_SERIES_UNIT);
        generate_series(ixp, afi, config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_shape() {
        let s = generate_series(IxpId::Linx, Afi::Ipv4, &TimelineConfig::default());
        assert_eq!(s.points.len(), 84);
        assert!(!s.injected_outages.is_empty());
        // endpoints near the anchors
        let a = anchors(IxpId::Linx, Afi::Ipv4);
        let first = &s.points[0];
        let last = &s.points[83];
        assert!((first.members as f64 - a.members.0 as f64).abs() < a.members.0 as f64 * 0.03);
        assert!((last.members as f64 - a.members.1 as f64).abs() < a.members.1 as f64 * 0.03);
        assert!((last.routes as f64 - a.routes.1 as f64).abs() < a.routes.1 as f64 * 0.03);
    }

    #[test]
    fn sanitation_removes_injected_outages() {
        let cfg = TimelineConfig {
            seed: 5,
            ..TimelineConfig::default()
        };
        let s = generate_series(IxpId::DeCixFra, Afi::Ipv4, &cfg);
        let clean = s.sanitized();
        for p in &clean {
            assert!(
                !s.injected_outages.contains(&p.day),
                "outage day {} survived sanitation",
                p.day
            );
        }
        // nearly all clean days survive (isolated small jitter is kept)
        assert!(clean.len() >= 84 - s.injected_outages.len() - 3);
    }

    #[test]
    fn weekly_returns_up_to_twelve_points() {
        let s = generate_series(IxpId::IxBrSp, Afi::Ipv6, &TimelineConfig::default());
        let weekly = s.weekly();
        assert!(weekly.len() >= 11 && weekly.len() <= 12, "{}", weekly.len());
        // monotone day indices, one per week
        for w in weekly.windows(2) {
            assert!(w[1].day > w[0].day);
            assert!(w[1].day - w[0].day >= 5);
        }
    }

    #[test]
    fn last_week_variation_under_4_percent() {
        // Table 3's bound holds on clean days for every (ixp, afi)
        for ixp in IxpId::ALL {
            for afi in [Afi::Ipv4, Afi::Ipv6] {
                let s = generate_series(ixp, afi, &TimelineConfig::default());
                let week = s.last_week();
                let metric: Vec<usize> = week.iter().map(|p| p.members).collect();
                let lo = *metric.iter().min().unwrap() as f64;
                let hi = *metric.iter().max().unwrap() as f64;
                assert!(
                    (hi - lo) / lo < 0.045,
                    "{ixp}/{afi}: weekly variation {:.3}",
                    (hi - lo) / lo
                );
            }
        }
    }

    #[test]
    fn twelve_week_diff_matches_table4_scale() {
        let s = generate_series(IxpId::IxBrSp, Afi::Ipv4, &TimelineConfig::default());
        let weekly = s.weekly();
        let routes: Vec<usize> = weekly.iter().map(|p| p.routes).collect();
        let lo = *routes.iter().min().unwrap() as f64;
        let hi = *routes.iter().max().unwrap() as f64;
        let diff = (hi - lo) / lo;
        // paper: 14.40% for IX.br-SP-v4 routes
        assert!((0.08..0.22).contains(&diff), "diff {diff:.3}");
    }

    #[test]
    fn day_hook_sees_every_day_and_can_mutate() {
        let mut seen = Vec::new();
        let s = generate_series_with_hook(
            IxpId::Bcix,
            Afi::Ipv4,
            &TimelineConfig::default(),
            &mut |ctx, p| {
                seen.push((ctx.day, ctx.outage));
                if ctx.day == 3 {
                    p.members += 1000;
                }
            },
        );
        assert_eq!(seen.len(), 84);
        assert!(s.points[3].members >= 1000);
        let hook_outages: Vec<u32> = seen.iter().filter(|(_, o)| *o).map(|(d, _)| *d).collect();
        assert_eq!(hook_outages, s.injected_outages);
    }

    #[test]
    fn day_hook_observes_the_collection_mode() {
        for mode in [CollectionMode::Snapshot, CollectionMode::Stream] {
            let cfg = TimelineConfig {
                mode,
                ..TimelineConfig::default()
            };
            let mut modes = Vec::new();
            generate_series_with_hook(IxpId::Netnod, Afi::Ipv6, &cfg, &mut |ctx, _| {
                modes.push(ctx.mode);
            });
            assert_eq!(modes.len(), 84);
            assert!(modes.iter().all(|&m| m == mode));
        }
    }

    #[test]
    fn mode_does_not_perturb_the_generated_points() {
        // the equivalence contract starts here: the ground-truth series
        // is identical whichever collector the timeline is driving
        let snap = generate_series(IxpId::Linx, Afi::Ipv4, &TimelineConfig::default());
        let stream = generate_series(
            IxpId::Linx,
            Afi::Ipv4,
            &TimelineConfig {
                mode: CollectionMode::Stream,
                ..TimelineConfig::default()
            },
        );
        assert_eq!(snap.points.len(), stream.points.len());
        for (a, b) in snap.points.iter().zip(&stream.points) {
            assert_eq!(a.day, b.day);
            assert_eq!(a.members, b.members);
            assert_eq!(a.routes, b.routes);
            assert_eq!(a.communities, b.communities);
        }
        assert_eq!(snap.injected_outages, stream.injected_outages);
    }

    #[test]
    fn outage_fraction_near_13_5_percent() {
        let all = generate_all(&TimelineConfig::default());
        let total_days: usize = all.iter().map(|s| s.points.len()).sum();
        let outages: usize = all.iter().map(|s| s.injected_outages.len()).sum();
        let frac = outages as f64 / total_days as f64;
        assert!((0.09..0.18).contains(&frac), "outage fraction {frac:.3}");
    }
}
