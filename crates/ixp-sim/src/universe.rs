//! The global AS universe: which named networks sit at which IXP route
//! servers, and how popular each is as an avoid target (§5.4's
//! "favourite" avoided ASes differ per IXP: Hurricane Electric at
//! IX.br-SP, Google at LINX, OVHcloud at AMS-IX, Filanco for DE-CIX v6).

use bgp_model::asn::Asn;
use community_dict::ixp::IxpId;
use community_dict::known::{self, Category};

/// Well-known ASNs used throughout the simulation.
pub mod asns {
    use bgp_model::asn::Asn;
    /// Hurricane Electric.
    pub const HE: Asn = Asn(6939);
    /// Google.
    pub const GOOGLE: Asn = Asn(15169);
    /// Akamai.
    pub const AKAMAI: Asn = Asn(20940);
    /// Cloudflare.
    pub const CLOUDFLARE: Asn = Asn(13335);
    /// OVHcloud.
    pub const OVH: Asn = Asn(16276);
    /// Netflix.
    pub const NETFLIX: Asn = Asn(2906);
    /// Edgecast.
    pub const EDGECAST: Asn = Asn(15133);
    /// LeaseWeb.
    pub const LEASEWEB: Asn = Asn(60781);
    /// Filanco (the DE-CIX IPv6 top target).
    pub const FILANCO: Asn = Asn(29990);
    /// RNP (Brazilian education network).
    pub const RNP: Asn = Asn(1916);
    /// NIC-Simet.
    pub const NIC_SIMET: Asn = Asn(22548);
    /// Itau.
    pub const ITAU: Asn = Asn(28583);
    /// CDNetworks.
    pub const CDNETWORKS: Asn = Asn(36408);
}

/// Is this named network an RS member at this IXP in our world?
///
/// The table is engineered to reproduce the §5.4/§5.5 findings:
/// Hurricane Electric peers with every RS (and is the top §5.5 culprit);
/// Google left the LINX and AMS-IX route servers (making avoid-Google
/// ineffective there); OVHcloud is not at the AMS-IX or LINX RS; several
/// big CPs are PNI-only everywhere, which is exactly why members tag
/// against them.
pub fn famous_at_rs(ixp: IxpId, asn: Asn) -> bool {
    use asns::*;
    let cat = known::lookup(asn).map(|k| k.category);
    match cat {
        // large transit ISPs peer with every RS in our world
        Some(Category::LargeIsp) => true,
        Some(Category::RegionalIsp) => matches!(ixp, IxpId::IxBrSp),
        Some(Category::Educational) | Some(Category::Enterprise) => ixp == IxpId::IxBrSp,
        Some(Category::ContentProvider) => match asn {
            GOOGLE => matches!(ixp, IxpId::IxBrSp | IxpId::DeCixFra),
            AKAMAI => matches!(ixp, IxpId::IxBrSp | IxpId::DeCixFra | IxpId::AmsIx),
            CLOUDFLARE => true,
            OVH => matches!(ixp, IxpId::DeCixFra),
            NETFLIX => matches!(ixp, IxpId::IxBrSp),
            LEASEWEB => matches!(ixp, IxpId::AmsIx),
            EDGECAST | FILANCO => false,
            CDNETWORKS => matches!(ixp, IxpId::IxBrSp),
            _ => {
                // remaining CPs: at the two biggest European RSes only
                matches!(ixp, IxpId::DeCixFra | IxpId::AmsIx)
            }
        },
        None => false,
    }
}

/// Popularity weights for avoid targets at one IXP. Higher weight ⇒ more
/// members include the AS in their avoid list. Only CPs and a couple of
/// ISPs are popular targets (§5.4); everything else enters lists via the
/// defensive non-member pool.
pub fn avoid_weights(ixp: IxpId) -> Vec<(Asn, f64)> {
    use asns::*;
    let mut w: Vec<(Asn, f64)> = match ixp {
        IxpId::IxBrSp => vec![
            (HE, 34.0),
            (GOOGLE, 11.0),
            (AKAMAI, 9.0),
            (CLOUDFLARE, 7.0),
            (NETFLIX, 7.0),
            (OVH, 5.0),
            (LEASEWEB, 5.0),
            (EDGECAST, 4.0),
            (Asn(28329), 4.0), // PROLINK
            (Asn(28571), 3.5), // Syntegra
        ],
        // DE-CIX: no single AS dominates — the deny-all + re-add idiom
        // tops the chart instead (Fig. 5: `0:6695` at 2.8%)
        IxpId::DeCixFra | IxpId::DeCixMad | IxpId::DeCixNyc => vec![
            (FILANCO, 2.0),
            (GOOGLE, 1.8),
            (AKAMAI, 1.5),
            (LEASEWEB, 1.8),
            (OVH, 1.5),
            (HE, 1.2),
            (CLOUDFLARE, 1.2),
            (NETFLIX, 1.8),
            (EDGECAST, 1.5),
        ],
        IxpId::Linx => vec![
            (GOOGLE, 60.0),
            (OVH, 9.0),
            (AKAMAI, 8.0),
            (NETFLIX, 6.0),
            (LEASEWEB, 5.0),
            (EDGECAST, 5.0),
            (CLOUDFLARE, 2.0),
        ],
        IxpId::AmsIx => vec![
            (OVH, 35.0),
            (GOOGLE, 9.0),
            (LEASEWEB, 8.0),
            (AKAMAI, 7.0),
            (HE, 6.0),
            (NETFLIX, 5.0),
            (CLOUDFLARE, 5.0),
            (EDGECAST, 4.0),
        ],
        IxpId::Bcix | IxpId::Netnod => vec![
            (GOOGLE, 8.0),
            (AKAMAI, 7.0),
            (HE, 6.0),
            (OVH, 6.0),
            (CLOUDFLARE, 5.0),
            (LEASEWEB, 4.0),
        ],
    };
    // the long tail: every other known CP with a small weight
    let tail = if ixp.is_decix() { 1.0 } else { 1.5 };
    for k in known::of_category(Category::ContentProvider) {
        if !w.iter().any(|(a, _)| *a == k.asn) {
            w.push((k.asn, tail));
        }
    }
    w
}

/// The announce-only target pool at one IXP (IX.br's educational /
/// enterprise re-add targets, §5.4; elsewhere generic members are used).
pub fn only_targets(ixp: IxpId) -> Vec<Asn> {
    use asns::*;
    match ixp {
        IxpId::IxBrSp => vec![NIC_SIMET, RNP, ITAU, CDNETWORKS, HE, GOOGLE],
        _ => vec![HE, GOOGLE, AKAMAI, CLOUDFLARE],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asns::*;

    #[test]
    fn he_is_everywhere() {
        for ixp in IxpId::ALL {
            assert!(famous_at_rs(ixp, HE), "{ixp}");
        }
    }

    #[test]
    fn top_targets_are_non_members_where_paper_says() {
        // Google left the LINX/AMS-IX route servers
        assert!(!famous_at_rs(IxpId::Linx, GOOGLE));
        assert!(!famous_at_rs(IxpId::AmsIx, GOOGLE));
        assert!(famous_at_rs(IxpId::IxBrSp, GOOGLE));
        // OVH is not at the AMS-IX RS (top avoided there, §5.4)
        assert!(!famous_at_rs(IxpId::AmsIx, OVH));
        // Edgecast and Filanco are PNI-only everywhere
        for ixp in IxpId::ALL {
            assert!(!famous_at_rs(ixp, EDGECAST));
            assert!(!famous_at_rs(ixp, FILANCO));
        }
    }

    #[test]
    fn weights_lead_with_paper_targets() {
        let top = |ixp: IxpId| avoid_weights(ixp)[0].0;
        assert_eq!(top(IxpId::IxBrSp), HE);
        assert_eq!(top(IxpId::Linx), GOOGLE);
        assert_eq!(top(IxpId::AmsIx), OVH);
        assert_eq!(top(IxpId::DeCixFra), FILANCO);
    }

    #[test]
    fn weights_cover_all_cps() {
        let w = avoid_weights(IxpId::Linx);
        let n_cps = known::of_category(Category::ContentProvider).count();
        assert!(w.len() >= n_cps);
        assert!(w.iter().all(|(_, wt)| *wt > 0.0));
    }

    #[test]
    fn ixbr_only_targets_include_educational() {
        let t = only_targets(IxpId::IxBrSp);
        assert!(t.contains(&RNP));
        assert!(t.contains(&NIC_SIMET));
        assert!(t.contains(&ITAU));
    }
}
