//! Synthetic member populations.
//!
//! Each IXP's RS members are drawn as: the named networks present at that
//! RS (see [`crate::universe`]), then synthetic regional ISPs /
//! enterprises / educational networks. Route counts follow a heavy tail
//! (a few large ASes originate most routes — the premise behind Fig. 4b's
//! skew), and each member gets a tagging *behaviour* drawn from the
//! per-IXP calibration.

use rand::rngs::StdRng;
use rand::RngExt;

use bgp_model::asn::Asn;
use community_dict::ixp::IxpId;
use community_dict::known::{self, Category};

use crate::calibration::{calibration, Calibration};
use crate::universe;

/// What a member asks the RS to do, fixed once per member (operators
/// configure a community set and apply it to all exports).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Behavior {
    /// Tags action communities on IPv4 routes.
    pub uses_action_v4: bool,
    /// Tags action communities on IPv6 routes.
    pub uses_action_v6: bool,
    /// Uses the deny-all + re-add idiom (`0:<rs>` plus announce-only).
    pub avoid_all: bool,
    /// ASes to avoid.
    pub avoid_list: Vec<Asn>,
    /// ASes to announce-only to (re-add list when `avoid_all`).
    pub only_list: Vec<Asn>,
    /// A prepend request `(target, count)`; target `None` = all peers.
    pub prepend: Option<(Option<Asn>, u8)>,
    /// Number of blackhole host routes to announce (IPv4).
    pub blackhole_count: usize,
    /// Also announces an IPv6 blackhole host route (Table 2's small v6
    /// blackholing population at DE-CIX).
    pub blackhole_v6: bool,
    /// P(a given route carries the action communities).
    pub p_route_tagged: f64,
    /// Mean operator-private communities per route.
    pub unknown_per_route: f64,
    /// Also expresses (part of) the avoid list as large communities.
    pub use_large: bool,
    /// Also adds extended-community actions.
    pub use_extended: bool,
}

/// One synthetic RS member.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberProfile {
    /// Member ASN.
    pub asn: Asn,
    /// Business category.
    pub category: Category,
    /// Has an IPv4 session.
    pub v4: bool,
    /// Has an IPv6 session.
    pub v6: bool,
    /// IPv4 routes to announce.
    pub routes_v4: usize,
    /// IPv6 routes to announce.
    pub routes_v6: usize,
    /// Tagging behaviour.
    pub behavior: Behavior,
}

/// Transit ASNs used as the `high` part of operator-private (unknown)
/// communities. None collides with any scheme's template highs.
pub const UNKNOWN_HIGHS: [u16; 8] = [3356, 174, 1299, 2914, 6453, 3257, 6461, 3491];

/// Generate the member population for one IXP.
///
/// `n_v4` / `n_v6` are the session counts (already scaled); `routes_v4` /
/// `routes_v6` are the total route targets.
pub fn generate_members(
    ixp: IxpId,
    n_v4: usize,
    n_v6: usize,
    routes_v4: usize,
    routes_v6: usize,
    rng: &mut StdRng,
) -> Vec<MemberProfile> {
    let cal = calibration(ixp);

    // --- pick ASNs: named networks first, synthetics after ---
    let mut famous: Vec<&'static known::KnownAs> = known::KNOWN
        .iter()
        .filter(|k| universe::famous_at_rs(ixp, k.asn))
        .collect();
    // large ISPs first (they anchor the heavy tail), then CPs
    famous.sort_by_key(|k| match k.category {
        Category::LargeIsp => 0,
        Category::ContentProvider => 1,
        _ => 2,
    });
    let famous_quota = famous.len().min((n_v4 / 3).max(6)).min(n_v4);
    let famous = &famous[..famous_quota];

    let n_synthetic = n_v4 - famous.len();
    let famous_asns: Vec<Asn> = famous.iter().map(|k| k.asn).collect();
    let synth_16bit = known::synthetic_fill(n_synthetic.div_ceil(4) * 3, &famous_asns);
    let mut members: Vec<(Asn, Category)> = famous.iter().map(|k| (k.asn, k.category)).collect();
    let mut s16 = synth_16bit.into_iter();
    for i in 0..n_synthetic {
        // every 4th synthetic member gets a 4-byte ASN (untargetable via
        // standard communities — a real-world constraint)
        let asn = if i % 4 == 3 {
            Asn(263_000 + i as u32)
        } else {
            // fall back to the 4-byte range if the 16-bit pool runs dry
            s16.next().unwrap_or(Asn(263_000 + i as u32))
        };
        let category = match i % 20 {
            0 => Category::Educational,
            1..=3 => Category::Enterprise,
            _ => Category::RegionalIsp,
        };
        members.push((asn, category));
    }

    // --- route-count weights: heavy tail anchored by the large ISPs ---
    let weights: Vec<f64> = members
        .iter()
        .enumerate()
        .map(|(i, (asn, cat))| {
            if *asn == universe::asns::HE {
                85.0 // HE is the biggest announcer everywhere
            } else {
                match cat {
                    Category::LargeIsp => 18.0 + rng.random::<f64>() * 22.0,
                    Category::ContentProvider => 5.0 + rng.random::<f64>() * 8.0,
                    _ => {
                        // Zipf tail over the synthetic rank: the skew
                        // behind Fig. 4b (top 1% of ASes hold 50-86% of
                        // the action instances)
                        let rank = (i + 2) as f64;
                        5.0 / rank
                    }
                }
            }
        })
        .collect();
    let wsum: f64 = weights.iter().sum();

    // ~6% of members hold a session but announce nothing (§3 captures
    // "peers ... regardless whether the AS shares routes or not")
    let n = members.len().max(1);
    let silent: Vec<bool> = (0..members.len()).map(|i| i * 100 / n >= 94).collect();

    let pools = TargetPools::build(ixp, &members);

    let mut out = Vec::with_capacity(members.len());
    for (i, (asn, category)) in members.iter().enumerate() {
        let v6 = i < n_v6;
        let share = weights[i] / wsum;
        let routes4 = if silent[i] {
            0
        } else {
            ((routes_v4 as f64) * share).round().max(1.0) as usize
        };
        let routes6 = if v6 && !silent[i] {
            ((routes_v6 as f64) * share).round() as usize
        } else {
            0
        };
        // big announcers (top ~30% by weight) run richer export policies:
        // they are the source of most announce-only instances (§5.4's
        // IX.br re-add lists belong to sizeable networks)
        let is_big = weights[i] * (members.len() as f64) > 1.5 * wsum;
        let behavior = draw_behavior(ixp, &cal, *asn, *category, &pools, is_big, rng);
        out.push(MemberProfile {
            asn: *asn,
            category: *category,
            v4: true,
            v6,
            routes_v4: routes4,
            routes_v6: routes6,
            behavior,
        });
    }
    out
}

/// Avoid-target pools split by RS membership at this IXP. Whether an
/// avoid instance is effective (§5.5) depends on whether its target has a
/// session, so the split is what the calibration's `p_nonmember_target`
/// steers between.
#[derive(Debug, Clone)]
struct TargetPools {
    /// Popular targets that ARE members here, with popularity weights.
    member_weighted: Vec<(Asn, f64)>,
    /// Popular targets that are NOT members here (PNI-only CPs).
    nonmember_weighted: Vec<(Asn, f64)>,
    /// Every member ASN with a 16-bit ASN — standard communities cannot
    /// encode a 4-byte target, so only these are targetable (a real
    /// constraint of the RFC 1997 format the paper's IXPs share).
    targetable_members: Vec<Asn>,
}

impl TargetPools {
    fn build(ixp: IxpId, members: &[(Asn, Category)]) -> Self {
        let member_set: std::collections::BTreeSet<Asn> = members.iter().map(|(a, _)| *a).collect();
        let mut member_weighted = Vec::new();
        let mut nonmember_weighted = Vec::new();
        for (asn, w) in universe::avoid_weights(ixp) {
            if member_set.contains(&asn) {
                member_weighted.push((asn, w));
            } else {
                nonmember_weighted.push((asn, w));
            }
        }
        TargetPools {
            member_weighted,
            nonmember_weighted,
            targetable_members: member_set.into_iter().filter(|a| a.is_16bit()).collect(),
        }
    }

    /// One filler slot (after the popular targets were decided):
    /// member-side or non-member-side.
    fn pick_filler(&self, p_nonmember: f64, rng: &mut StdRng) -> Asn {
        if rng.random::<f64>() < p_nonmember {
            // defensive tagging of an arbitrary non-member network
            synthetic_target(rng)
        } else if !self.member_weighted.is_empty() && {
            // the member-side long tail still skews to the popular CPs
            // (the paper's §5.4 cross-IXP intersection of avoided ASes),
            // proportionally to how popular this IXP's member CPs are
            let total: f64 = self.member_weighted.iter().map(|(_, w)| w).sum();
            rng.random::<f64>() < (total / 40.0).min(0.75)
        } {
            let total: f64 = self.member_weighted.iter().map(|(_, w)| w).sum();
            let mut x = rng.random::<f64>() * total;
            for (a, w) in &self.member_weighted {
                if x < *w {
                    return *a;
                }
                x -= w;
            }
            self.member_weighted[0].0
        } else {
            self.targetable_members[rng.random_range(0..self.targetable_members.len())]
        }
    }
}

fn draw_behavior(
    ixp: IxpId,
    cal: &Calibration,
    asn: Asn,
    category: Category,
    pools: &TargetPools,
    is_big: bool,
    rng: &mut StdRng,
) -> Behavior {
    let mut b = Behavior {
        p_route_tagged: cal.p_route_tagged,
        unknown_per_route: cal.unknown_per_route * (0.6 + 0.8 * rng.random::<f64>()),
        ..Behavior::default()
    };
    // large ISPs essentially always run community-based policies; the
    // long tail matches the calibrated population share
    let p_use = match category {
        Category::LargeIsp => 0.97,
        Category::ContentProvider => cal.p_use_v4 * 0.8,
        _ => cal.p_use_v4 * 0.94,
    };
    b.uses_action_v4 = rng.random::<f64>() < p_use;
    // large ISPs run the same export policy on both families; the long
    // tail enables v6 tagging less often (Fig. 4a's lower v6 fractions)
    b.uses_action_v6 =
        b.uses_action_v4 && (category == Category::LargeIsp || rng.random::<f64>() < cal.p_use_v6);
    if !b.uses_action_v4 {
        return b;
    }

    let uses_avoid = rng.random::<f64>() < cal.p_avoid || category == Category::LargeIsp;
    let p_only = cal.p_only * if is_big { 1.6 } else { 0.75 };
    let uses_only = rng.random::<f64>() < p_only;
    let uses_prepend = cal.p_prepend > 0.0 && rng.random::<f64>() < cal.p_prepend;
    let uses_blackhole = cal.p_blackhole > 0.0 && rng.random::<f64>() < cal.p_blackhole;

    if uses_avoid {
        let (lo, hi) = if category == Category::LargeIsp {
            cal.avoid_large
        } else {
            cal.avoid_small
        };
        let len = rng.random_range(lo..=hi);
        b.avoid_list = draw_avoid_list(pools, len, cal.p_nonmember_target, rng);
    }
    if uses_only {
        b.avoid_all = rng.random::<f64>() < cal.p_avoid_all_idiom;
        let base = rng.random_range(cal.only_list.0..=cal.only_list.1);
        let len = if is_big { (base * 2).min(30) } else { base };
        // announce-only targets are networks you actually reach via the
        // RS, so they are drawn from members (plus the IXP's well-known
        // re-add targets, e.g. IX.br's educational networks)
        let pool = universe::only_targets(ixp);
        let mut list = Vec::with_capacity(len);
        for j in 0..len {
            let t = if j < pool.len() && rng.random::<f64>() < 0.25 {
                pool[j]
            } else {
                pools.targetable_members[rng.random_range(0..pools.targetable_members.len())]
            };
            if t != asn && !list.contains(&t) {
                list.push(t);
            }
        }
        b.only_list = list;
    }
    if uses_prepend {
        let count = rng.random_range(1u8..=3);
        let target = if community_dict::schemes::supports_peer_prepend(ixp) {
            Some(universe::avoid_weights(ixp)[rng.random_range(0..5usize)].0)
        } else {
            None // AMS-IX: prepend to all (standard communities)
        };
        b.prepend = Some((target, count));
    }
    if uses_blackhole {
        b.blackhole_count = rng.random_range(1..=3);
        b.blackhole_v6 = rng.random::<f64>() < 0.12;
    }
    b.use_large = rng.random::<f64>() < cal.p_use_large;
    b.use_extended = rng.random::<f64>() < cal.p_use_extended;
    // HE's defensive list is the largest in every IXP (Fig. 7: HE is
    // responsible for 24–59% of the ineffective instances)
    if asn == universe::asns::HE {
        let extra = draw_avoid_list(pools, cal.avoid_large.1, 0.70, rng);
        for t in extra {
            if b.avoid_list.len() >= 110 {
                break; // stay under the DE-CIX max-communities filter
            }
            if !b.avoid_list.contains(&t) {
                b.avoid_list.push(t);
            }
        }
        b.uses_action_v6 = b.uses_action_v4;
    }
    b
}

/// Weight scale for a popular target's inclusion probability; inclusion
/// saturates at 0.98 so signature targets reliably appear in large lists.
const AVOID_WEIGHT_REF: f64 = 15.0;

fn draw_avoid_list(
    pools: &TargetPools,
    len: usize,
    p_nonmember: f64,
    rng: &mut StdRng,
) -> Vec<Asn> {
    let mut list = Vec::with_capacity(len);
    // Popular targets enter each member's list independently, with a
    // probability proportional to their popularity weight — this is what
    // makes each IXP's Fig. 5 chart *lead* with its signature target
    // (HE at IX.br, Google at LINX, OVH at AMS-IX) instead of every
    // popular CP appearing in every long list.
    let reach = (len as f64 / 10.0).min(1.0);
    for (pool, branch) in [
        (&pools.member_weighted, 1.0 - p_nonmember),
        (&pools.nonmember_weighted, p_nonmember),
    ] {
        for (asn, w) in pool.iter() {
            let p = (branch * (w / AVOID_WEIGHT_REF) * reach).min(0.98);
            if rng.random::<f64>() < p && !list.contains(asn) {
                list.push(*asn);
            }
        }
    }
    // Fill the remaining slots with the long tail: arbitrary members or
    // defensive non-member targets.
    while list.len() < len {
        let target = pools.pick_filler(p_nonmember, rng);
        if !list.contains(&target) {
            list.push(target);
        } else if pools.targetable_members.len() <= len {
            break; // tiny worlds: avoid spinning on duplicates
        }
    }
    list
}

/// A synthetic 16-bit target ASN (mostly not an RS member anywhere).
fn synthetic_target(rng: &mut StdRng) -> Asn {
    loop {
        let v = rng.random_range(30_000u32..60_000);
        let asn = Asn(v);
        if !asn.is_bogon() {
            return asn;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen(ixp: IxpId, n_v4: usize, n_v6: usize) -> Vec<MemberProfile> {
        let mut rng = StdRng::seed_from_u64(7);
        generate_members(ixp, n_v4, n_v6, 20_000, 6_000, &mut rng)
    }

    #[test]
    fn population_counts() {
        let m = gen(IxpId::DeCixFra, 90, 70);
        assert_eq!(m.len(), 90);
        assert_eq!(m.iter().filter(|x| x.v6).count(), 70);
        assert!(m.iter().all(|x| x.v4));
    }

    #[test]
    fn asns_unique_and_non_bogon() {
        let m = gen(IxpId::Linx, 80, 50);
        let mut asns: Vec<Asn> = m.iter().map(|x| x.asn).collect();
        asns.sort();
        asns.dedup();
        assert_eq!(asns.len(), 80);
        assert!(asns.iter().all(|a| !a.is_bogon()));
    }

    #[test]
    fn he_present_and_biggest() {
        let m = gen(IxpId::AmsIx, 80, 50);
        let he = m.iter().find(|x| x.asn == universe::asns::HE).unwrap();
        let max_routes = m.iter().map(|x| x.routes_v4).max().unwrap();
        assert_eq!(he.routes_v4, max_routes);
        assert!(he.behavior.uses_action_v4);
        assert!(he.behavior.avoid_list.len() >= 30);
    }

    #[test]
    fn route_totals_near_target() {
        let m = gen(IxpId::IxBrSp, 150, 100);
        let total: usize = m.iter().map(|x| x.routes_v4).sum();
        assert!(
            (total as f64 - 20_000.0).abs() / 20_000.0 < 0.1,
            "total {total}"
        );
    }

    #[test]
    fn action_user_fraction_tracks_calibration() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = generate_members(IxpId::AmsIx, 400, 300, 50_000, 15_000, &mut rng);
        let users = m.iter().filter(|x| x.behavior.uses_action_v4).count();
        let frac = users as f64 / m.len() as f64;
        let want = calibration(IxpId::AmsIx).p_use_v4;
        assert!(
            (frac - want).abs() < 0.08,
            "fraction {frac:.3} vs calibrated {want:.3}"
        );
    }

    #[test]
    fn some_members_are_silent() {
        let m = gen(IxpId::DeCixFra, 100, 70);
        assert!(m.iter().any(|x| x.routes_v4 == 0));
    }

    #[test]
    fn blackhole_only_at_supporting_ixps() {
        let m = gen(IxpId::Linx, 100, 60);
        assert!(m.iter().all(|x| x.behavior.blackhole_count == 0));
        let mut rng = StdRng::seed_from_u64(13);
        let m = generate_members(IxpId::DeCixFra, 300, 200, 30_000, 9_000, &mut rng);
        assert!(m.iter().any(|x| x.behavior.blackhole_count > 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gen(IxpId::Netnod, 40, 25);
        let b = gen(IxpId::Netnod, 40, 25);
        assert_eq!(a, b);
    }
}
