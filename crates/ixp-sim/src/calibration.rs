//! Per-IXP behaviour calibration.
//!
//! Knob values are set so the *shapes* of the paper's results emerge:
//! the fractions of members using action communities (Fig. 4a / Table 2),
//! the action-vs-informational split (Fig. 3), the unknown share
//! (Fig. 1), the community-type mix (Fig. 2), the action-type mix
//! (§5.3), and the share of action communities targeting ASes not at the
//! RS (§5.5). EXPERIMENTS.md records measured-vs-paper for each.

use community_dict::ixp::IxpId;

/// Behaviour knobs for one IXP.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Fraction of RS members using action communities, IPv4 (Fig. 4a).
    pub p_use_v4: f64,
    /// Same for IPv6.
    pub p_use_v6: f64,
    /// P(member uses avoid communities | member uses actions)
    /// — Table 2 row 1 / Fig. 4a fraction.
    pub p_avoid: f64,
    /// P(announce-only | action user) — Table 2 row 2.
    pub p_only: f64,
    /// P(prepend | action user) — Table 2 row 3.
    pub p_prepend: f64,
    /// P(blackhole | action user) — Table 2 row 4.
    pub p_blackhole: f64,
    /// P(a route of an action user carries its action communities).
    pub p_route_tagged: f64,
    /// Avoid-list size range for large ISPs (defensive lists, §5.6).
    pub avoid_large: (usize, usize),
    /// Avoid-list size range for everyone else.
    pub avoid_small: (usize, usize),
    /// P(an avoid-list slot is filled from the non-member pool) — drives
    /// the §5.5 ineffective share together with famous non-members.
    pub p_nonmember_target: f64,
    /// P(an announce-only user uses the deny-all + re-add idiom)
    /// — DE-CIX's top community is `0:6695` (Fig. 5).
    pub p_avoid_all_idiom: f64,
    /// Announce-only list size range.
    pub only_list: (usize, usize),
    /// Informational communities the RS tags per route (Fig. 3 ratio).
    pub info_tags: u8,
    /// Mean operator-private (unknown) communities per route (Fig. 1).
    pub unknown_per_route: f64,
    /// Fraction of action users also expressing their avoid list as
    /// large communities (Fig. 2's large share; IX.br's table).
    pub p_use_large: f64,
    /// Fraction of action users adding extended-community actions
    /// (AMS-IX fine-grained prepending).
    pub p_use_extended: f64,
}

/// The calibration for one IXP.
pub fn calibration(ixp: IxpId) -> Calibration {
    match ixp {
        // Fig 4a: 51.9% v4 / 29.3% v6; Table 2: 48.3/6.1/5.7/0.0 (of RS
        // members) → conditionals ÷0.519; Fig 5: avoid-HE is 4.27% of
        // action instances; Fig 2: large ≈15%; §5.5: 31.8% ineffective.
        IxpId::IxBrSp => Calibration {
            p_use_v4: 0.60,
            p_use_v6: 0.55, // of the v6-enabled members (who skew large)
            p_avoid: 0.93,
            p_only: 0.118,
            p_prepend: 0.105,
            p_blackhole: 0.0,
            p_route_tagged: 0.79,
            avoid_large: (10, 24),
            avoid_small: (1, 6),
            p_nonmember_target: 0.17,
            p_avoid_all_idiom: 0.10,
            only_list: (3, 9),
            info_tags: 7,
            unknown_per_route: 5.3,
            p_use_large: 0.50,
            p_use_extended: 0.002,
        },
        // Fig 4a: 54.0% / 33.6%; Table 2: 38.1/24.4/8.3/15.7 ÷0.54;
        // Fig 5: avoid-all tops at 2.8%; §5.5: 49.5% ineffective.
        IxpId::DeCixFra | IxpId::DeCixMad | IxpId::DeCixNyc => Calibration {
            p_use_v4: 0.68,
            p_use_v6: 0.60,
            p_avoid: 0.58,
            p_only: 0.45,
            p_prepend: 0.154,
            p_blackhole: 0.28,
            p_route_tagged: 0.70,
            avoid_large: (12, 30),
            avoid_small: (1, 6),
            p_nonmember_target: 0.70,
            p_avoid_all_idiom: 1.0,
            only_list: (3, 10),
            info_tags: 7,
            unknown_per_route: 6.5,
            p_use_large: 0.45,
            p_use_extended: 0.10,
        },
        // Fig 4a: 40.4% / 28.5%; Table 2: 27.6/20.9/1.5/0 ÷0.404;
        // §5.5: 64.3% ineffective (Google et al. not at the RS).
        IxpId::Linx => Calibration {
            p_use_v4: 0.46,
            p_use_v6: 0.70,
            p_avoid: 0.55,
            p_only: 0.517,
            p_prepend: 0.037,
            p_blackhole: 0.0,
            p_route_tagged: 0.84,
            avoid_large: (10, 25),
            avoid_small: (1, 6),
            p_nonmember_target: 0.60,
            p_avoid_all_idiom: 0.25,
            only_list: (2, 4),
            info_tags: 4,
            unknown_per_route: 4.4,
            p_use_large: 0.55,
            p_use_extended: 0.08,
        },
        // Fig 4a: 35.5% / 24.1%; Table 2: 28.3/12.6/0.0/1.4 ÷0.355;
        // §5.5: 54.3% ineffective (OVH not at the RS).
        IxpId::AmsIx => Calibration {
            p_use_v4: 0.32,
            p_use_v6: 0.70,
            p_avoid: 0.78,
            p_only: 0.38,
            p_prepend: 0.0,
            p_blackhole: 0.05,
            p_route_tagged: 0.80,
            avoid_large: (10, 25),
            avoid_small: (1, 5),
            p_nonmember_target: 0.52,
            p_avoid_all_idiom: 0.20,
            only_list: (2, 6),
            info_tags: 4,
            unknown_per_route: 5.5,
            p_use_large: 0.02,
            p_use_extended: 0.60,
        },
        // smaller IXPs: paper notes Netnod/BCIX action share >95% of
        // standard IXP-defined, i.e. almost no informational tagging
        IxpId::Bcix => Calibration {
            p_use_v4: 0.45,
            p_use_v6: 0.35,
            p_avoid: 0.8,
            p_only: 0.3,
            p_prepend: 0.0,
            p_blackhole: 0.0,
            p_route_tagged: 0.7,
            avoid_large: (20, 50),
            avoid_small: (2, 12),
            p_nonmember_target: 0.4,
            p_avoid_all_idiom: 0.2,
            only_list: (3, 8),
            info_tags: 1,
            unknown_per_route: 3.0,
            p_use_large: 0.05,
            p_use_extended: 0.02,
        },
        IxpId::Netnod => Calibration {
            p_use_v4: 0.48,
            p_use_v6: 0.38,
            p_avoid: 0.82,
            p_only: 0.32,
            p_prepend: 0.08,
            p_blackhole: 0.0,
            p_route_tagged: 0.72,
            avoid_large: (20, 50),
            avoid_small: (2, 12),
            p_nonmember_target: 0.42,
            p_avoid_all_idiom: 0.2,
            only_list: (3, 8),
            info_tags: 1,
            unknown_per_route: 3.0,
            p_use_large: 0.05,
            p_use_extended: 0.02,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_in_range() {
        for ixp in IxpId::ALL {
            let c = calibration(ixp);
            for p in [
                c.p_use_v4,
                c.p_use_v6,
                c.p_avoid,
                c.p_only,
                c.p_prepend,
                c.p_blackhole,
                c.p_route_tagged,
                c.p_nonmember_target,
                c.p_avoid_all_idiom,
                c.p_use_large,
                c.p_use_extended,
            ] {
                assert!((0.0..=1.0).contains(&p), "{ixp}: {p}");
            }
            assert!(c.avoid_large.0 <= c.avoid_large.1);
            assert!(c.avoid_small.0 <= c.avoid_small.1);
            assert!(c.only_list.0 <= c.only_list.1);
        }
    }

    #[test]
    fn ordering_matches_fig4a() {
        // DE-CIX has the largest v4 action-user share, AMS-IX the smallest
        let shares: Vec<f64> = IxpId::BIG_FOUR
            .iter()
            .map(|i| calibration(*i).p_use_v4)
            .collect();
        let decix = calibration(IxpId::DeCixFra).p_use_v4;
        let ams = calibration(IxpId::AmsIx).p_use_v4;
        assert_eq!(decix, shares.iter().cloned().fold(f64::MIN, f64::max));
        assert_eq!(ams, shares.iter().cloned().fold(f64::MAX, f64::min));
    }

    #[test]
    fn blackhole_only_where_supported() {
        for ixp in IxpId::ALL {
            let c = calibration(ixp);
            if !community_dict::schemes::supports_blackhole(ixp) {
                assert_eq!(c.p_blackhole, 0.0, "{ixp}");
            }
        }
        assert!(calibration(IxpId::DeCixFra).p_blackhole > 0.1);
    }
}
