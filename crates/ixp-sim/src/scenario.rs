//! End-to-end scenario driver: world → route servers → Looking Glasses →
//! collector → snapshot store. This is the paper's §3 pipeline, run
//! against the synthetic world — through either collection path:
//! periodic snapshot polls, or the BMP-style monitoring stream whose
//! end state must serialize identically.

use std::sync::Arc;

use parking_lot::RwLock;

use bgp_model::prefix::Afi;
use community_dict::ixp::IxpId;
use looking_glass::client::{Collector, CollectorConfig};
use looking_glass::server::{FailureModel, LgServer};
use looking_glass::snapshot::SnapshotStore;
use stream::{RouterState, StreamCollector};

use crate::timeline::CollectionMode;
use crate::world::{build_world, IxpWorld, WorldConfig};

/// Scenario configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// World generation parameters.
    pub world: WorldConfig,
    /// IXPs to include.
    pub ixps: Vec<IxpId>,
    /// Failure model for the LG servers during collection.
    pub failures: FailureModel,
    /// The day index stamped on the collected snapshots.
    pub day: u32,
    /// Collection path: snapshot polls or the streamed update feed.
    pub mode: CollectionMode,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            world: WorldConfig::default(),
            ixps: IxpId::ALL.to_vec(),
            failures: FailureModel::NONE,
            day: 83, // the latest snapshot (4 Oct 2021 in the paper)
            mode: CollectionMode::Snapshot,
        }
    }
}

/// The result of a full collection run.
pub struct Scenario {
    /// The built worlds, LGs still attached.
    pub worlds: Vec<(IxpWorld, Arc<LgServer>)>,
    /// The collected snapshots (both families per IXP).
    pub store: SnapshotStore,
}

/// Build the world and collect one snapshot per (IXP, family) through the
/// Looking Glass pipeline.
pub fn run(config: &ScenarioConfig) -> Scenario {
    let registry = obs::global();
    let _scenario_span = obs::span!(obs::names::SIM_SCENARIO);
    registry.gauge(obs::names::SIM_DAY).set(config.day as i64);
    let worlds = {
        let _span = obs::span!(obs::names::SIM_BUILD_WORLD);
        build_world(&config.ixps, &config.world)
    };
    let collector = Collector::new(CollectorConfig::default());
    let stream_collector = StreamCollector::default();
    let snapshots_collected = registry.counter(obs::names::SIM_SNAPSHOTS_COLLECTED);
    let collections_failed = registry.counter(obs::names::SIM_COLLECTIONS_FAILED);
    // Fan out per IXP: each task owns its LG (rate-limiter state and all)
    // and runs both families against it sequentially, exactly like the
    // serial loop did. Virtual start times and LG seeds are derived from
    // (ixp, afi), not from wall time or scheduling, and the ordered join
    // merges snapshots in IXP order — the store is identical for any
    // `PAR_THREADS`.
    let results = par::map_indexed(&worlds, |_, world| {
        let ixp = world.ixp;
        let _ixp_span = obs::span!(obs::names::SIM_COLLECT_IXP);
        let rs = Arc::new(RwLock::new(world.rs.clone()));
        let lg = Arc::new(LgServer::new(
            Arc::clone(&rs),
            config.world.seed ^ (ixp as u64),
        ));
        lg.set_failures(config.failures.clone());
        let mut snaps = Vec::with_capacity(2);
        let mut failed = 0u64;
        match config.mode {
            CollectionMode::Snapshot => {
                for afi in [Afi::Ipv4, Afi::Ipv6] {
                    let mut transport = &*lg;
                    // start collections far enough apart that the bucket refills
                    let start = (ixp as u64) * 100_000_000 + (afi as u64) * 50_000_000;
                    if let Ok(report) = collector.collect(&mut transport, afi, config.day, start) {
                        snaps.push(report.snapshot);
                    } else {
                        failed += 1;
                    }
                }
            }
            CollectionMode::Stream => {
                // one drain rebuilds both families: the initial table dump
                // replays the whole RIB, and the state store snapshots
                // per-family views of the same incremental state
                let mut transport = &*lg;
                let mut state = RouterState::new(ixp);
                let start = (ixp as u64) * 100_000_000;
                match stream_collector.drain(&mut state, &mut transport, start) {
                    Ok(_) => {
                        for afi in [Afi::Ipv4, Afi::Ipv6] {
                            snaps.push(state.to_snapshot(afi, config.day));
                        }
                    }
                    Err(_) => failed += 2,
                }
            }
        }
        (lg, snaps, failed)
    });
    let mut store = SnapshotStore::new();
    let mut out = Vec::with_capacity(worlds.len());
    for (world, (lg, snaps, failed)) in worlds.into_iter().zip(results) {
        snapshots_collected.add(snaps.len() as u64);
        collections_failed.add(failed);
        for snapshot in snaps {
            store.insert(snapshot);
        }
        out.push((world, lg));
    }
    Scenario { worlds: out, store }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn full_pipeline_produces_snapshots() {
        let config = ScenarioConfig {
            world: WorldConfig {
                seed: 21,
                scale: 0.02,
            },
            ixps: vec![IxpId::Linx, IxpId::AmsIx],
            failures: FailureModel::NONE,
            day: 83,
            mode: CollectionMode::Snapshot,
        };
        let scenario = run(&config);
        assert_eq!(scenario.store.len(), 4); // 2 IXPs × 2 families
        let snap = scenario.store.get(IxpId::Linx, Afi::Ipv4, 83).unwrap();
        assert!(!snap.partial);
        assert!(snap.route_count() > 500);
        assert!(snap.community_instances() > snap.route_count());
        // the snapshot matches what the RS holds
        let (world, _) = scenario
            .worlds
            .iter()
            .find(|(w, _)| w.ixp == IxpId::Linx)
            .unwrap();
        let rs_v4_routes = world
            .rs
            .accepted()
            .iter()
            .filter(|(_, r)| r.afi() == Afi::Ipv4)
            .count();
        assert_eq!(snap.route_count(), rs_v4_routes);
    }

    #[test]
    fn streamed_scenario_serializes_identically_to_snapshots() {
        let base = ScenarioConfig {
            world: WorldConfig {
                seed: 23,
                scale: 0.01,
            },
            ixps: vec![IxpId::Bcix, IxpId::Netnod],
            failures: FailureModel::NONE,
            day: 41,
            mode: CollectionMode::Snapshot,
        };
        let polled = run(&base);
        let streamed = run(&ScenarioConfig {
            mode: CollectionMode::Stream,
            ..base
        });
        assert_eq!(polled.store.len(), streamed.store.len());
        for ixp in [IxpId::Bcix, IxpId::Netnod] {
            for afi in [Afi::Ipv4, Afi::Ipv6] {
                let a = polled.store.get(ixp, afi, 41).expect("polled snapshot");
                let b = streamed.store.get(ixp, afi, 41).expect("streamed snapshot");
                let left = serde_json::to_string(a).expect("snapshot serializes");
                let right = serde_json::to_string(b).expect("snapshot serializes");
                assert_eq!(left, right, "{ixp}/{afi}: streamed state diverged");
            }
        }
    }

    #[test]
    fn flaky_lg_still_collects_fully() {
        let config = ScenarioConfig {
            world: WorldConfig {
                seed: 22,
                scale: 0.01,
            },
            ixps: vec![IxpId::Netnod],
            failures: FailureModel::FLAKY,
            day: 0,
            mode: CollectionMode::Snapshot,
        };
        let scenario = run(&config);
        let snap = scenario.store.get(IxpId::Netnod, Afi::Ipv4, 0).unwrap();
        assert!(!snap.partial, "retries should absorb baseline flakiness");
    }
}
