//! World building: turn member profiles into announced routes and feed
//! them through a real [`RouteServer`].

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use bgp_model::community::{well_known, ExtendedCommunity, LargeCommunity, StandardCommunity};
use bgp_model::prefix::{Afi, Prefix};
use bgp_model::route::{Origin, Route};
use community_dict::classify::{ext_subtype, large_fn};
use community_dict::ixp::IxpId;
use community_dict::schemes;
use route_server::config::RsConfig;
use route_server::server::RouteServer;

use crate::calibration::calibration;
use crate::members::{generate_members, MemberProfile, UNKNOWN_HIGHS};
use crate::profile::profile;

/// Allocates globally unique, non-bogon synthetic prefixes.
#[derive(Debug, Clone, Default)]
pub struct PrefixAllocator {
    next_v4: u32,
    next_v6: u32,
    allocated_v4: Vec<Prefix>,
    allocated_v6: Vec<Prefix>,
}

impl PrefixAllocator {
    /// Fresh allocator.
    pub fn new() -> Self {
        PrefixAllocator::default()
    }

    /// Allocate a fresh /24 (v4) or /48 (v6).
    pub fn fresh(&mut self, afi: Afi) -> Prefix {
        match afi {
            Afi::Ipv4 => {
                let i = self.next_v4;
                self.next_v4 += 1;
                // 11.0.0.0 upwards in /24 steps: clear of every bogon range
                // for the first ~5.8M allocations
                let a = 11 + (i >> 16) as u8;
                let b = (i >> 8) as u8;
                let c = i as u8;
                let p = Prefix::new_clamped(IpAddr::V4(Ipv4Addr::new(a, b, c, 0)), 24);
                self.allocated_v4.push(p);
                p
            }
            Afi::Ipv6 => {
                let i = self.next_v6;
                self.next_v6 += 1;
                let hi = (i >> 16) as u16;
                let lo = i as u16;
                let p = Prefix::new_clamped(
                    IpAddr::V6(Ipv6Addr::new(0x2a10, hi, lo, 0, 0, 0, 0, 0)),
                    48,
                );
                self.allocated_v6.push(p);
                p
            }
        }
    }

    /// A previously allocated prefix (for multi-origin announcements), or
    /// a fresh one if none exist yet.
    pub fn reused(&mut self, afi: Afi, rng: &mut StdRng) -> Prefix {
        let pool = match afi {
            Afi::Ipv4 => &self.allocated_v4,
            Afi::Ipv6 => &self.allocated_v6,
        };
        if pool.is_empty() {
            self.fresh(afi)
        } else {
            pool[rng.random_range(0..pool.len())]
        }
    }
}

/// One fully built IXP: members, their announced routes, and the RS that
/// ingested them.
pub struct IxpWorld {
    /// Which IXP.
    pub ixp: IxpId,
    /// Member profiles (the ground truth the analyses never see).
    pub members: Vec<MemberProfile>,
    /// The route server after ingesting every announcement.
    pub rs: RouteServer,
}

/// World-building configuration.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Master seed.
    pub seed: u64,
    /// Scale factor applied to Table 1 member/route counts (1.0 = paper
    /// scale; 0.05 is plenty for tests).
    pub scale: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0x1C0FFEE,
            scale: 0.05,
        }
    }
}

/// Build one IXP world: generate members, synthesize their announcements
/// and run them through the route server.
pub fn build_ixp(ixp: IxpId, config: &WorldConfig) -> IxpWorld {
    let _span = obs::span!(obs::names::SIM_BUILD_IXP);
    let mut rng = StdRng::seed_from_u64(config.seed ^ (ixp as u64).wrapping_mul(0x9E37_79B9));
    let prof = profile(ixp);
    let cal = calibration(ixp);
    let scale = config.scale;
    let n_v4 = ((prof.members_rs_v4 as f64 * scale).round() as usize).max(8);
    let n_v6 = ((prof.members_rs_v6 as f64 * scale).round() as usize)
        .max(4)
        .min(n_v4);
    let routes_v4 = ((prof.routes_v4 as f64 * scale).round() as usize).max(50);
    let routes_v6 = ((prof.routes_v6 as f64 * scale).round() as usize).max(20);

    let members = generate_members(ixp, n_v4, n_v6, routes_v4, routes_v6, &mut rng);

    let rs_config = RsConfig::for_ixp(ixp).with_info_tags(cal.info_tags);
    let mut rs = RouteServer::new(rs_config);
    for m in &members {
        rs.add_member(m.asn, m.v4, m.v6);
    }

    // multi-origin rate makes distinct prefixes < routes (Table 1)
    let p_dup_v4 = 1.0 - (prof.prefixes_v4 as f64 / prof.routes_v4 as f64);
    let p_dup_v6 = 1.0 - (prof.prefixes_v6 as f64 / prof.routes_v6 as f64);
    let mut alloc = PrefixAllocator::new();

    for (mi, m) in members.iter().enumerate() {
        let next_hop_v4 = IpAddr::V4(Ipv4Addr::new(
            185,
            1,
            (mi / 250) as u8,
            (mi % 250 + 1) as u8,
        ));
        let next_hop_v6 = IpAddr::V6(Ipv6Addr::new(0x2001, 0x7f8, 0, 0, 0, 0, 0, (mi + 1) as u16));
        for (afi, count, p_dup, next_hop) in [
            (Afi::Ipv4, m.routes_v4, p_dup_v4, next_hop_v4),
            (Afi::Ipv6, m.routes_v6, p_dup_v6, next_hop_v6),
        ] {
            for _ in 0..count {
                let prefix = if rng.random::<f64>() < p_dup {
                    alloc.reused(afi, &mut rng)
                } else {
                    alloc.fresh(afi)
                };
                let route = synthesize_route(ixp, m, prefix, next_hop, &mut rng);
                rs.announce(m.asn, route);
            }
        }
        // blackhole host routes ride alongside regular announcements
        for k in 0..m.behavior.blackhole_count {
            let victim = Ipv4Addr::new(185, 1, (mi / 250) as u8, (200 + k) as u8);
            let route = Route::builder(Prefix::host(IpAddr::V4(victim)), next_hop_v4)
                .path([m.asn.value()])
                .origin(Origin::Igp)
                .standard(well_known::BLACKHOLE)
                .build();
            rs.announce(m.asn, route);
        }
        if m.behavior.blackhole_v6 && m.v6 {
            let victim = Ipv6Addr::new(0x2a10, 0xffff, mi as u16, 0, 0, 0, 0, 0x666);
            let route = Route::builder(Prefix::host(IpAddr::V6(victim)), next_hop_v6)
                .path([m.asn.value()])
                .origin(Origin::Igp)
                .standard(well_known::BLACKHOLE)
                .build();
            rs.announce(m.asn, route);
        }
    }

    IxpWorld { ixp, members, rs }
}

/// Synthesize one route announcement for a member: AS path, the member's
/// action communities (per its behaviour), operator-private communities,
/// and optional large/extended action variants.
fn synthesize_route(
    ixp: IxpId,
    m: &MemberProfile,
    prefix: Prefix,
    next_hop: IpAddr,
    rng: &mut StdRng,
) -> Route {
    // AS path: 65% self-originated, else via a (4-byte) customer;
    // occasional self-prepending unrelated to the RS actions
    let mut path: Vec<u32> = vec![m.asn.value()];
    if rng.random::<f64>() < 0.35 {
        path.push(263_500 + rng.random_range(0u32..400));
        if rng.random::<f64>() < 0.3 {
            path.push(264_000 + rng.random_range(0u32..400));
        }
    }
    if rng.random::<f64>() < 0.05 {
        path.insert(0, m.asn.value()); // self prepend
    }

    let mut builder =
        Route::builder(prefix, next_hop)
            .path(path)
            .origin(if rng.random::<f64>() < 0.9 {
                Origin::Igp
            } else {
                Origin::Incomplete
            });

    let b = &m.behavior;
    let uses_action = match prefix.afi() {
        Afi::Ipv4 => b.uses_action_v4,
        Afi::Ipv6 => b.uses_action_v6,
    };
    let tagged = uses_action && rng.random::<f64>() < b.p_route_tagged;
    if tagged {
        if b.avoid_all {
            builder = builder.standard(schemes::avoid_all_community(ixp));
        }
        for t in &b.avoid_list {
            debug_assert!(t.is_16bit(), "standard communities cannot target {t}");
            builder = builder.standard(schemes::avoid_community(ixp, *t));
        }
        for t in &b.only_list {
            debug_assert!(t.is_16bit(), "standard communities cannot target {t}");
            builder = builder.standard(schemes::only_community(ixp, *t));
        }
        if let Some((target, count)) = b.prepend {
            match target {
                Some(t) => {
                    if let Some(c) = schemes::prepend_community(ixp, t, count) {
                        builder = builder.standard(c);
                    }
                }
                None => {
                    if let Some(c) = schemes::prepend_all_community(ixp, count) {
                        builder = builder.standard(c);
                    }
                }
            }
        }
    }

    // operator-private communities: unknown to the IXP dictionary (Fig. 1)
    let mut unknowns = b.unknown_per_route.floor() as usize;
    if rng.random::<f64>() < b.unknown_per_route.fract() {
        unknowns += 1;
    }
    for _ in 0..unknowns {
        let high = UNKNOWN_HIGHS[rng.random_range(0..UNKNOWN_HIGHS.len())];
        let low = rng.random_range(1u16..1000);
        builder = builder.standard(StandardCommunity::from_parts(high, low));
    }

    let mut route = builder.build();

    // large/extended action variants (Fig. 2's non-standard shares)
    if tagged && b.use_large {
        let rs_asn = ixp.rs_asn().value();
        for t in b.avoid_list.iter().take(8) {
            route
                .large_communities
                .push(LargeCommunity::new(rs_asn, large_fn::AVOID, t.value()));
        }
        route.large_communities.push(LargeCommunity::new(
            rs_asn,
            large_fn::INFO_ORIGIN,
            rng.random_range(0u32..16),
        ));
    }
    if tagged && b.use_extended {
        let rs16 = ixp.rs_asn().value() as u16;
        let t = b
            .avoid_list
            .first()
            .copied()
            .unwrap_or(crate::universe::asns::GOOGLE);
        route
            .extended_communities
            .push(ExtendedCommunity::two_octet_as(
                ext_subtype::PREPEND1,
                rs16,
                t.value(),
            ));
        route
            .extended_communities
            .push(ExtendedCommunity::two_octet_as(
                ext_subtype::AVOID,
                rs16,
                t.value(),
            ));
    }
    route
}

/// Build all requested IXPs.
pub fn build_world(ixps: &[IxpId], config: &WorldConfig) -> Vec<IxpWorld> {
    // Each IXP derives its own RNG stream from the seed, so worlds build
    // in parallel with an ordered join — same Vec as the serial loop.
    par::map_indexed(ixps, |_, ixp| build_ixp(*ixp, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_prefixes_unique_and_clean() {
        let mut alloc = PrefixAllocator::new();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..2000 {
            let p = alloc.fresh(Afi::Ipv4);
            assert!(!p.is_bogon(), "{p}");
            assert!(!p.is_too_specific() && !p.is_too_broad());
            assert!(seen.insert(p), "duplicate {p}");
        }
        for _ in 0..1000 {
            let p = alloc.fresh(Afi::Ipv6);
            assert!(!p.is_bogon(), "{p}");
            assert!(seen.insert(p), "duplicate {p}");
        }
    }

    #[test]
    fn build_small_world() {
        let cfg = WorldConfig {
            seed: 42,
            scale: 0.02,
        };
        let world = build_ixp(IxpId::DeCixFra, &cfg);
        let rs = &world.rs;
        // every member has a session
        assert_eq!(rs.members_for(Afi::Ipv4).count(), world.members.len());
        // routes were accepted (import filters pass on synthetic routes)
        assert!(rs.stats().routes_accepted > 1000);
        // nearly nothing gets filtered: blackholes at DE-CIX are legal
        assert_eq!(rs.stats().filtered_total(), 0);
        // action communities were seen and some targets are non-members
        assert!(rs.stats().action_instances > 0);
        assert!(rs.stats().ineffective_action_instances > 0);
    }

    #[test]
    fn deterministic_build() {
        let cfg = WorldConfig {
            seed: 7,
            scale: 0.01,
        };
        let a = build_ixp(IxpId::Linx, &cfg);
        let b = build_ixp(IxpId::Linx, &cfg);
        assert_eq!(a.members, b.members);
        assert_eq!(a.rs.stats().action_instances, b.rs.stats().action_instances);
        assert_eq!(a.rs.accepted().route_count(), b.rs.accepted().route_count());
    }

    #[test]
    fn distinct_prefixes_below_routes_except_amsix() {
        let cfg = WorldConfig {
            seed: 9,
            scale: 0.03,
        };
        let decix = build_ixp(IxpId::DeCixFra, &cfg);
        let routes = decix.rs.accepted().route_count();
        let prefixes = decix.rs.accepted().distinct_prefixes();
        assert!(
            prefixes < routes,
            "DE-CIX should have multi-origin prefixes ({prefixes} vs {routes})"
        );
        let ams = build_ixp(IxpId::AmsIx, &cfg);
        let routes = ams.rs.accepted().route_count();
        let prefixes = ams.rs.accepted().distinct_prefixes();
        // AMS-IX: routes == prefixes in Table 1 (p_dup = 0); blackhole
        // host routes can add a couple of prefixes
        assert!(routes - prefixes <= 8, "{routes} vs {prefixes}");
    }

    #[test]
    fn decix_has_v6_blackholes_too() {
        // Table 2's small IPv6 blackholing population at DE-CIX
        let cfg = WorldConfig {
            seed: 5,
            scale: 0.15,
        };
        let world = build_ixp(IxpId::DeCixFra, &cfg);
        let v6_bh = world
            .rs
            .accepted()
            .iter()
            .filter(|(_, r)| {
                r.afi() == bgp_model::prefix::Afi::Ipv6 && r.has_standard(well_known::BLACKHOLE)
            })
            .count();
        assert!(v6_bh >= 1, "expected at least one v6 blackhole route");
        // and far fewer than the v4 ones
        let v4_bh = world
            .rs
            .accepted()
            .iter()
            .filter(|(_, r)| {
                r.afi() == bgp_model::prefix::Afi::Ipv4 && r.has_standard(well_known::BLACKHOLE)
            })
            .count();
        assert!(v4_bh > v6_bh);
    }

    #[test]
    fn blackholes_present_only_at_decix_family_and_amsix() {
        let cfg = WorldConfig {
            seed: 11,
            scale: 0.03,
        };
        for ixp in [IxpId::DeCixFra, IxpId::Linx] {
            let world = build_ixp(ixp, &cfg);
            let has_bh = world
                .rs
                .accepted()
                .iter()
                .any(|(_, r)| r.has_standard(well_known::BLACKHOLE));
            assert_eq!(
                has_bh,
                community_dict::schemes::supports_blackhole(ixp),
                "{ixp}"
            );
        }
    }
}
