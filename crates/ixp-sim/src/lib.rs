//! # ixp-sim
//!
//! The synthetic IXP ecosystem of the CoNEXT'22 reproduction: eight IXP
//! worlds calibrated to the paper's Table 1, member populations with
//! heavy-tailed route counts, a tagging behaviour model that reproduces
//! the paper's action-community usage patterns (PNI-driven avoidance of
//! content providers, defensive tagging of non-members by large ISPs),
//! the twelve-week collection timeline with injectable outages, and an
//! end-to-end scenario driver wiring everything through the route server
//! and Looking Glass layers.
//!
//! ```
//! use community_dict::ixp::IxpId;
//! use ixp_sim::world::{build_ixp, WorldConfig};
//!
//! let world = build_ixp(IxpId::Linx, &WorldConfig { seed: 1, scale: 0.01 });
//! assert!(world.rs.stats().routes_accepted > 0);
//! assert!(world.rs.stats().ineffective_action_instances > 0); // §5.5
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod members;
pub mod profile;
pub mod scenario;
pub mod timeline;
pub mod universe;
pub mod world;

/// Common re-exports.
pub mod prelude {
    pub use crate::calibration::{calibration, Calibration};
    pub use crate::members::{Behavior, MemberProfile};
    pub use crate::profile::{profile, IxpProfile};
    pub use crate::scenario::{run, Scenario, ScenarioConfig};
    pub use crate::timeline::{
        anchors, generate_all, generate_series, generate_series_with_hook, CollectionMode,
        DayContext, DayHook, Series, TimelineConfig,
    };
    pub use crate::universe::{avoid_weights, famous_at_rs, only_targets};
    pub use crate::world::{build_ixp, build_world, IxpWorld, PrefixAllocator, WorldConfig};
}

pub use prelude::*;
