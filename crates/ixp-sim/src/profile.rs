//! Per-IXP calibration targets, straight from the paper's Table 1
//! (latest snapshot, 4 Oct 2021).

use serde::{Deserialize, Serialize};

use community_dict::ixp::IxpId;

/// Table 1 of the paper: the eight IXPs in numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IxpProfile {
    /// Which IXP.
    pub ixp: IxpId,
    /// Average daily traffic, as printed (display only).
    pub traffic: &'static str,
    /// Total IXP members (including those not at the RS).
    pub total_members: usize,
    /// Members at the RS, IPv4.
    pub members_rs_v4: usize,
    /// Members at the RS, IPv6.
    pub members_rs_v6: usize,
    /// Observed distinct prefixes, IPv4.
    pub prefixes_v4: usize,
    /// Observed distinct prefixes, IPv6.
    pub prefixes_v6: usize,
    /// Observed routes, IPv4.
    pub routes_v4: usize,
    /// Observed routes, IPv6.
    pub routes_v6: usize,
}

/// The Table 1 row for one IXP.
pub const fn profile(ixp: IxpId) -> IxpProfile {
    match ixp {
        IxpId::IxBrSp => IxpProfile {
            ixp,
            traffic: "9.6 Tbps",
            total_members: 2338,
            members_rs_v4: 1803,
            members_rs_v6: 1627,
            prefixes_v4: 163_981,
            prefixes_v6: 60_203,
            routes_v4: 282_697,
            routes_v6: 88_652,
        },
        IxpId::DeCixFra => IxpProfile {
            ixp,
            traffic: "9.27 Tbps",
            total_members: 1072,
            members_rs_v4: 874,
            members_rs_v6: 711,
            prefixes_v4: 451_544,
            prefixes_v6: 65_395,
            routes_v4: 888_478,
            routes_v6: 130_084,
        },
        IxpId::Linx => IxpProfile {
            ixp,
            traffic: "3.8 Tbps",
            total_members: 847,
            members_rs_v4: 669,
            members_rs_v6: 508,
            prefixes_v4: 241_084,
            prefixes_v6: 62_912,
            routes_v4: 315_215,
            routes_v6: 79_690,
        },
        IxpId::AmsIx => IxpProfile {
            ixp,
            traffic: "7.6 Tbps",
            total_members: 861,
            members_rs_v4: 636,
            members_rs_v6: 488,
            prefixes_v4: 252_704,
            prefixes_v6: 61_528,
            routes_v4: 252_704,
            routes_v6: 61_528,
        },
        IxpId::DeCixMad => IxpProfile {
            ixp,
            traffic: "492 Gbps",
            total_members: 214,
            members_rs_v4: 151,
            members_rs_v6: 85,
            prefixes_v4: 116_237,
            prefixes_v6: 45_321,
            routes_v4: 125_812,
            routes_v6: 48_711,
        },
        IxpId::DeCixNyc => IxpProfile {
            ixp,
            traffic: "941 Gbps",
            total_members: 256,
            members_rs_v4: 171,
            members_rs_v6: 145,
            prefixes_v4: 162_469,
            prefixes_v6: 48_951,
            routes_v4: 186_983,
            routes_v6: 61_638,
        },
        IxpId::Bcix => IxpProfile {
            ixp,
            traffic: "640 Gbps",
            total_members: 145,
            members_rs_v4: 88,
            members_rs_v6: 78,
            prefixes_v4: 106_249,
            prefixes_v6: 46_873,
            routes_v4: 111_115,
            routes_v6: 50_569,
        },
        IxpId::Netnod => IxpProfile {
            ixp,
            traffic: "1.12 Tbps",
            total_members: 187,
            members_rs_v4: 127,
            members_rs_v6: 101,
            prefixes_v4: 132_179,
            prefixes_v6: 45_507,
            routes_v4: 150_670,
            routes_v6: 48_874,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_members_fraction_matches_paper() {
        // §3: RS members are on average 72.2% (v4) and 57.1% (v6) of total
        let (mut v4_sum, mut v6_sum) = (0.0, 0.0);
        for ixp in IxpId::ALL {
            let p = profile(ixp);
            v4_sum += p.members_rs_v4 as f64 / p.total_members as f64;
            v6_sum += p.members_rs_v6 as f64 / p.total_members as f64;
        }
        let v4_avg = v4_sum / 8.0;
        let v6_avg = v6_sum / 8.0;
        assert!((v4_avg - 0.722).abs() < 0.02, "v4 avg {v4_avg}");
        assert!((v6_avg - 0.571).abs() < 0.02, "v6 avg {v6_avg}");
    }

    #[test]
    fn amsix_routes_equal_prefixes() {
        // the Table 1 quirk: AMS-IX shows routes == prefixes
        let p = profile(IxpId::AmsIx);
        assert_eq!(p.routes_v4, p.prefixes_v4);
        assert_eq!(p.routes_v6, p.prefixes_v6);
    }

    #[test]
    fn route_ranges_match_paper_text() {
        // §3: "111k–888k IPv4 and 48k–130k IPv6 routes"
        let v4: Vec<usize> = IxpId::ALL.iter().map(|i| profile(*i).routes_v4).collect();
        let v6: Vec<usize> = IxpId::ALL.iter().map(|i| profile(*i).routes_v6).collect();
        assert_eq!(*v4.iter().min().unwrap(), 111_115);
        assert_eq!(*v4.iter().max().unwrap(), 888_478);
        assert_eq!(*v6.iter().min().unwrap(), 48_711);
        assert_eq!(*v6.iter().max().unwrap(), 130_084);
    }
}
