//! Property tests for the session FSM: no input sequence may panic it,
//! and it must always be restartable.

use bgp_model::asn::Asn;
use bgp_wire::fsm::{run_pair, Action, Config, Event, Fsm, State};
use bgp_wire::message::{Message, UpdateMessage};
use bytes::BytesMut;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Input {
    ManualStart,
    ManualStop,
    TransportUp,
    TransportDown,
    Garbage(Vec<u8>),
    ValidKeepalive,
    ValidUpdate,
    Tick(u64),
}

fn arb_input() -> impl Strategy<Value = Input> {
    prop_oneof![
        Just(Input::ManualStart),
        Just(Input::ManualStop),
        Just(Input::TransportUp),
        Just(Input::TransportDown),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Input::Garbage),
        Just(Input::ValidKeepalive),
        Just(Input::ValidUpdate),
        (0u64..200_000).prop_map(Input::Tick),
    ]
}

fn to_event(input: &Input) -> Event {
    match input {
        Input::ManualStart => Event::ManualStart,
        Input::ManualStop => Event::ManualStop,
        Input::TransportUp => Event::TransportUp,
        Input::TransportDown => Event::TransportDown,
        Input::Garbage(bytes) => Event::BytesReceived(BytesMut::from(&bytes[..])),
        Input::ValidKeepalive => {
            let wire = Message::Keepalive.encode().unwrap();
            Event::BytesReceived(BytesMut::from(&wire[..]))
        }
        Input::ValidUpdate => {
            let wire = Message::Update(UpdateMessage::default()).encode().unwrap();
            Event::BytesReceived(BytesMut::from(&wire[..]))
        }
        Input::Tick(ms) => Event::Tick { now_ms: *ms },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Absolutely any event sequence must be handled without panicking,
    /// and every SessionUp must be preceded by reaching Established.
    #[test]
    fn fsm_never_panics(inputs in proptest::collection::vec(arb_input(), 0..40)) {
        let mut fsm = Fsm::new(Config::new(Asn(39120), "192.0.2.1".parse().unwrap()));
        for input in &inputs {
            let state_before = fsm.state();
            let actions = fsm.handle(to_event(input));
            for a in &actions {
                if matches!(a, Action::SessionUp(_)) {
                    prop_assert_eq!(fsm.state(), State::Established);
                }
                if matches!(a, Action::DeliverUpdate(_)) {
                    // updates are only delivered while established
                    prop_assert_eq!(state_before, State::Established);
                }
            }
        }
    }

    /// After any battering, ManualStart + a fresh handshake still works:
    /// the FSM must never wedge.
    #[test]
    fn fsm_always_restartable(inputs in proptest::collection::vec(arb_input(), 0..30)) {
        let mut fsm = Fsm::new(Config::new(Asn(39120), "192.0.2.1".parse().unwrap()));
        for input in &inputs {
            let _ = fsm.handle(to_event(input));
        }
        // force back to Idle however it ended up
        fsm.handle(Event::ManualStop);
        fsm.handle(Event::TransportDown);
        prop_assert_eq!(fsm.state(), State::Idle);
        // a clean bring-up against a fresh peer must succeed
        let mut peer = Fsm::new(Config::new(Asn(6939), "192.0.2.2".parse().unwrap()));
        run_pair(&mut fsm, &mut peer);
        prop_assert_eq!(fsm.state(), State::Established);
        prop_assert_eq!(peer.state(), State::Established);
    }

    /// Fragmented delivery: a valid byte stream chopped at arbitrary
    /// points decodes identically to one-shot delivery.
    #[test]
    fn fragmentation_is_transparent(cut in 1usize..18) {
        let mut a = Fsm::new(Config::new(Asn(39120), "192.0.2.1".parse().unwrap()));
        let mut b = Fsm::new(Config::new(Asn(6939), "192.0.2.2".parse().unwrap()));
        run_pair(&mut a, &mut b);
        let Action::Send(wire) = a.send_update(UpdateMessage::default()).unwrap() else {
            panic!()
        };
        let cut = cut.min(wire.len() - 1);
        let mut acts = b.handle(Event::BytesReceived(BytesMut::from(&wire[..cut])));
        prop_assert!(acts.is_empty(), "no action from a partial frame");
        acts.extend(b.handle(Event::BytesReceived(BytesMut::from(&wire[cut..]))));
        prop_assert_eq!(
            acts,
            vec![Action::DeliverUpdate(UpdateMessage::default())]
        );
    }
}
