//! Round-trip property tests for the wire codec: arbitrary routes must
//! survive UPDATE encode/decode and MRT dump encode/decode bit-exactly.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bgp_model::prelude::*;
use bgp_wire::convert::{routes_to_update, routes_to_updates, update_to_routes};
use bgp_wire::message::Message;
use bgp_wire::mrt::MrtRibDump;
use bytes::BytesMut;
use proptest::prelude::*;

fn arb_v4_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32)
        .prop_map(|(bits, len)| Prefix::new(IpAddr::V4(Ipv4Addr::from(bits)), len).unwrap())
}

fn arb_v6_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 0u8..=128)
        .prop_map(|(bits, len)| Prefix::new(IpAddr::V6(Ipv6Addr::from(bits)), len).unwrap())
}

fn arb_standard() -> impl Strategy<Value = StandardCommunity> {
    (any::<u16>(), any::<u16>()).prop_map(|(h, l)| StandardCommunity::from_parts(h, l))
}

fn arb_large() -> impl Strategy<Value = LargeCommunity> {
    (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(g, a, b)| LargeCommunity::new(g, a, b))
}

fn arb_extended() -> impl Strategy<Value = ExtendedCommunity> {
    (any::<u8>(), any::<u16>(), any::<u32>())
        .prop_map(|(st, asn, local)| ExtendedCommunity::two_octet_as(st, asn, local))
}

prop_compose! {
    fn arb_v4_route()(
        prefix in arb_v4_prefix(),
        nh in any::<u32>(),
        path in proptest::collection::vec(1u32..4_000_000, 1..6),
        med in proptest::option::of(any::<u32>()),
        std_cs in proptest::collection::vec(arb_standard(), 0..12),
        ext_cs in proptest::collection::vec(arb_extended(), 0..4),
        lg_cs in proptest::collection::vec(arb_large(), 0..4),
        origin_code in 0u8..=2,
    ) -> Route {
        let mut r = Route::builder(prefix, IpAddr::V4(Ipv4Addr::from(nh)))
            .path(path)
            .origin(Origin::from_code(origin_code).unwrap())
            .standards(std_cs)
            .build();
        r.extended_communities = ext_cs;
        r.large_communities = lg_cs;
        r.med = med;
        r
    }
}

prop_compose! {
    fn arb_v6_route()(
        prefix in arb_v6_prefix(),
        nh in any::<u128>(),
        path in proptest::collection::vec(1u32..4_000_000, 1..6),
        std_cs in proptest::collection::vec(arb_standard(), 0..12),
        lg_cs in proptest::collection::vec(arb_large(), 0..4),
    ) -> Route {
        let mut r = Route::builder(prefix, IpAddr::V6(Ipv6Addr::from(nh)))
            .path(path)
            .standards(std_cs)
            .build();
        r.large_communities = lg_cs;
        r
    }
}

fn wire_roundtrip(route: &Route) -> Route {
    let update = routes_to_update(std::slice::from_ref(route));
    let wire = Message::Update(update).encode().expect("encodes");
    let mut buf = BytesMut::from(&wire[..]);
    let Some(Message::Update(decoded)) = Message::decode(&mut buf).expect("decodes") else {
        panic!("not an update");
    };
    assert!(buf.is_empty());
    update_to_routes(&decoded)
        .expect("valid update")
        .announced
        .remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn v4_route_survives_wire(route in arb_v4_route()) {
        prop_assert_eq!(wire_roundtrip(&route), route);
    }

    #[test]
    fn v6_route_survives_wire(route in arb_v6_route()) {
        prop_assert_eq!(wire_roundtrip(&route), route);
    }

    #[test]
    fn update_batching_preserves_all_routes(
        routes in proptest::collection::vec(arb_v4_route(), 1..40)
    ) {
        let updates = routes_to_updates(&routes);
        let mut recovered: Vec<Route> = updates
            .iter()
            .flat_map(|u| update_to_routes(u).unwrap().announced)
            .collect();
        let mut expected = routes.clone();
        // order is not preserved across attribute groups; compare as multisets
        recovered.sort_by_key(|r| (r.prefix, format!("{:?}", r.as_path)));
        expected.sort_by_key(|r| (r.prefix, format!("{:?}", r.as_path)));
        // routes with identical prefix+attrs dedupe into the same NLRI slot,
        // but both copies still appear since NLRI lists repeat prefixes
        prop_assert_eq!(recovered, expected);
    }

    #[test]
    fn mrt_dump_roundtrip(
        v4 in proptest::collection::vec(arb_v4_route(), 0..12),
        v6 in proptest::collection::vec(arb_v6_route(), 0..6),
        ts in any::<u32>(),
    ) {
        let pairs: Vec<(Asn, &Route)> = v4
            .iter()
            .chain(v6.iter())
            .enumerate()
            .map(|(i, r)| (Asn(64496 + (i as u32 % 5)), r))
            .collect();
        let dump = MrtRibDump::from_routes(ts, pairs.iter().map(|(a, r)| (*a, *r)));
        let wire = dump.encode().unwrap();
        let back = MrtRibDump::decode(wire).unwrap();
        prop_assert_eq!(&back, &dump);
        // multiset of (peer, route) pairs is preserved
        let mut got = back.to_routes();
        let mut want: Vec<(Asn, Route)> =
            pairs.iter().map(|(a, r)| (*a, (*r).clone())).collect();
        let key = |p: &(Asn, Route)| (p.0, p.1.prefix, format!("{:?}", p.1));
        got.sort_by_key(key);
        want.sort_by_key(key);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn decoder_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = BytesMut::from(&bytes[..]);
        let _ = Message::decode(&mut buf); // must not panic
        let _ = MrtRibDump::decode(bytes::Bytes::from(bytes)); // must not panic
    }

    #[test]
    fn decoder_never_panics_on_corrupted_frame(
        route in arb_v4_route(),
        flip in 0usize..64,
        value in any::<u8>(),
    ) {
        let update = routes_to_update(std::slice::from_ref(&route));
        let wire = Message::Update(update).encode().unwrap();
        let mut raw = BytesMut::from(&wire[..]);
        let idx = flip % raw.len();
        raw[idx] = value;
        let _ = Message::decode(&mut raw); // any result is fine, no panic
    }
}
