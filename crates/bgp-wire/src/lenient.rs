//! RFC 7606 "Revised Error Handling for BGP UPDATE Messages".
//!
//! A route server faces arbitrary junk from hundreds of peers; tearing the
//! session down on every malformed attribute (the RFC 4271 §6 behaviour)
//! would let one bad announcement take down a member's whole view. RFC
//! 7606 instead defines per-attribute fallbacks:
//!
//! - **attribute discard** for self-contained optional attributes whose
//!   loss cannot change path selection against the sender's intent
//!   (COMMUNITIES, EXTENDED_COMMUNITIES, LARGE_COMMUNITIES, MED, …);
//! - **treat-as-withdraw** when a mandatory attribute (ORIGIN, AS_PATH,
//!   NEXT_HOP) is malformed: the NLRI are processed as withdrawals;
//! - **session reset** only for framing errors that leave the byte stream
//!   unparseable (those still surface as [`WireError`]s).

use bytes::{Buf, Bytes};

use bgp_model::prefix::Afi;

use crate::attrs::{self, PathAttribute};
use crate::error::{ensure, WireError};
use crate::message::UpdateMessage;
use crate::nlri;

/// What the lenient parser did about one malformed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrFallback {
    /// The attribute was dropped; the routes stand (RFC 7606 §2, "attribute
    /// discard").
    Discarded {
        /// Attribute type code.
        code: u8,
        /// The decoder's complaint.
        reason: String,
    },
    /// A mandatory attribute was malformed; the UPDATE's announcements
    /// must be treated as withdrawals (RFC 7606 §2, "treat-as-withdraw").
    TreatAsWithdraw {
        /// Attribute type code.
        code: u8,
        /// The decoder's complaint.
        reason: String,
    },
}

/// Result of lenient UPDATE-body parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct LenientUpdate {
    /// The surviving message. When treat-as-withdraw fired, `nlri` has
    /// been moved into `withdrawn` (and MP_REACH NLRI into MP_UNREACH).
    pub update: UpdateMessage,
    /// Every fallback applied, in encounter order.
    pub fallbacks: Vec<AttrFallback>,
}

impl LenientUpdate {
    /// True if treat-as-withdraw was applied.
    pub fn treated_as_withdraw(&self) -> bool {
        self.fallbacks
            .iter()
            .any(|f| matches!(f, AttrFallback::TreatAsWithdraw { .. }))
    }
}

/// Is this attribute safe to discard when malformed (RFC 7606 §7)?
fn discardable(code: u8) -> bool {
    matches!(
        code,
        attrs::code::MED
            | attrs::code::LOCAL_PREF
            | attrs::code::ATOMIC_AGGREGATE
            | attrs::code::AGGREGATOR
            | attrs::code::COMMUNITIES
            | attrs::code::EXTENDED_COMMUNITIES
            | attrs::code::LARGE_COMMUNITIES
    )
}

/// Parse an UPDATE body (the bytes after the 19-byte header) with RFC
/// 7606 semantics. Framing errors (truncated lengths) still return `Err`
/// — those require a session reset.
pub fn decode_update_lenient(body: &mut Bytes) -> Result<LenientUpdate, WireError> {
    ensure(body, 2, "withdrawn routes length")?;
    let wd_len = body.get_u16() as usize;
    ensure(body, wd_len, "withdrawn routes")?;
    let mut wd = body.split_to(wd_len);
    let withdrawn = nlri::decode_prefixes(&mut wd, Afi::Ipv4)?;

    ensure(body, 2, "path attributes length")?;
    let attr_len = body.get_u16() as usize;
    ensure(body, attr_len, "path attribute block")?;
    let mut block = body.split_to(attr_len);

    let mut attributes = Vec::new();
    let mut fallbacks = Vec::new();
    while block.has_remaining() {
        // peek the attribute header so a value error can be attributed
        if block.remaining() < 3 {
            return Err(WireError::Truncated {
                context: "attribute header",
                needed: 3,
                available: block.remaining(),
            });
        }
        let code = block[1];
        match PathAttribute::decode(&mut block) {
            Ok(attr) => attributes.push(attr),
            Err(WireError::BadAttribute { code, reason }) => {
                if discardable(code) {
                    fallbacks.push(AttrFallback::Discarded {
                        code,
                        reason: reason.to_string(),
                    });
                } else {
                    fallbacks.push(AttrFallback::TreatAsWithdraw {
                        code,
                        reason: reason.to_string(),
                    });
                }
            }
            // a length error inside the block means we cannot find the
            // next attribute boundary: that is a framing error
            Err(e) => {
                let _ = code;
                return Err(e);
            }
        }
    }

    let nlri = nlri::decode_prefixes(body, Afi::Ipv4)?;
    let mut update = UpdateMessage {
        withdrawn,
        attributes,
        nlri,
    };

    if fallbacks
        .iter()
        .any(|f| matches!(f, AttrFallback::TreatAsWithdraw { .. }))
    {
        // move every announcement to the withdrawn side
        update.withdrawn.append(&mut update.nlri);
        let mut mp_withdrawn: Vec<bgp_model::prefix::Prefix> = Vec::new();
        update.attributes.retain_mut(|attr| match attr {
            PathAttribute::MpReach(mp) => {
                mp_withdrawn.append(&mut mp.nlri);
                false
            }
            _ => true,
        });
        if !mp_withdrawn.is_empty() {
            // merge into an existing MP_UNREACH or add one
            let mut merged = false;
            for attr in &mut update.attributes {
                if let PathAttribute::MpUnreach(mp) = attr {
                    mp.withdrawn.append(&mut mp_withdrawn);
                    merged = true;
                    break;
                }
            }
            if !merged {
                update
                    .attributes
                    .push(PathAttribute::MpUnreach(attrs::MpUnreach {
                        afi: Afi::Ipv6,
                        withdrawn: mp_withdrawn,
                    }));
            }
        }
    }

    Ok(LenientUpdate { update, fallbacks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::asn::Asn;
    use bgp_model::route::Route;
    use bytes::{BufMut, BytesMut};

    use crate::convert::routes_to_update;
    use crate::message::{Message, HEADER_LEN};

    fn update_body(update: &UpdateMessage) -> Bytes {
        let wire = Message::Update(update.clone()).encode().unwrap();
        wire.slice(HEADER_LEN..)
    }

    fn sample_update() -> UpdateMessage {
        let route = Route::builder(
            "193.0.10.0/24".parse().unwrap(),
            "198.32.0.7".parse().unwrap(),
        )
        .path([39120, 15169])
        .standard(bgp_model::community::StandardCommunity::from_parts(0, 6939))
        .build();
        routes_to_update(std::slice::from_ref(&route))
    }

    /// Re-encode an update with one attribute's value bytes replaced.
    fn body_with_broken_attr(update: &UpdateMessage, code: u8, bad_len: u8) -> Bytes {
        // hand-encode: withdrawn(0) + attrs with one broken + nlri
        let mut attrs_buf = BytesMut::new();
        for a in &update.attributes {
            if a.type_code() == code {
                attrs_buf.put_u8(0x40); // transitive
                attrs_buf.put_u8(code);
                attrs_buf.put_u8(bad_len);
                attrs_buf.put_bytes(0xAB, bad_len as usize);
            } else {
                a.encode(&mut attrs_buf);
            }
        }
        let mut body = BytesMut::new();
        body.put_u16(0);
        body.put_u16(attrs_buf.len() as u16);
        body.put_slice(&attrs_buf);
        crate::nlri::encode_prefixes(&update.nlri, &mut body);
        body.freeze()
    }

    #[test]
    fn clean_update_passes_through() {
        let update = sample_update();
        let mut body = update_body(&update);
        let lenient = decode_update_lenient(&mut body).unwrap();
        assert!(lenient.fallbacks.is_empty());
        assert_eq!(lenient.update, update);
    }

    #[test]
    fn malformed_communities_discarded_routes_stand() {
        let update = sample_update();
        // COMMUNITIES with length 3 (not a multiple of 4)
        let mut body = body_with_broken_attr(&update, attrs::code::COMMUNITIES, 3);
        let lenient = decode_update_lenient(&mut body).unwrap();
        assert!(!lenient.treated_as_withdraw());
        assert_eq!(lenient.fallbacks.len(), 1);
        assert!(matches!(
            lenient.fallbacks[0],
            AttrFallback::Discarded {
                code: attrs::code::COMMUNITIES,
                ..
            }
        ));
        // the announcement survives, just without communities
        assert_eq!(lenient.update.nlri, update.nlri);
        assert!(lenient.update.attribute(attrs::code::COMMUNITIES).is_none());
    }

    #[test]
    fn malformed_origin_treats_as_withdraw() {
        let update = sample_update();
        // ORIGIN with 2 bytes
        let mut body = body_with_broken_attr(&update, attrs::code::ORIGIN, 2);
        let lenient = decode_update_lenient(&mut body).unwrap();
        assert!(lenient.treated_as_withdraw());
        assert!(lenient.update.nlri.is_empty());
        assert_eq!(lenient.update.withdrawn, update.nlri);
    }

    #[test]
    fn malformed_aspath_treats_as_withdraw() {
        let update = sample_update();
        // AS_PATH segment header promising more ASNs than present
        let mut attrs_buf = BytesMut::new();
        for a in &update.attributes {
            if a.type_code() == attrs::code::AS_PATH {
                attrs_buf.put_u8(0x40);
                attrs_buf.put_u8(attrs::code::AS_PATH);
                attrs_buf.put_u8(6); // value length
                attrs_buf.put_u8(2); // AS_SEQUENCE
                attrs_buf.put_u8(5); // claims 5 ASNs but only 1 fits
                attrs_buf.put_u32(39120);
            } else {
                a.encode(&mut attrs_buf);
            }
        }
        let mut body = BytesMut::new();
        body.put_u16(0);
        body.put_u16(attrs_buf.len() as u16);
        body.put_slice(&attrs_buf);
        crate::nlri::encode_prefixes(&update.nlri, &mut body);
        let mut body = body.freeze();
        let lenient = decode_update_lenient(&mut body).unwrap();
        assert!(lenient.treated_as_withdraw());
        assert_eq!(lenient.update.withdrawn.len(), 1);
    }

    #[test]
    fn treat_as_withdraw_covers_mp_reach() {
        let route = Route::builder(
            "2a00:1450::/32".parse().unwrap(),
            "2001:7f8::1".parse().unwrap(),
        )
        .path([39120])
        .build();
        let update = routes_to_update(std::slice::from_ref(&route));
        // break ORIGIN → v6 announcement must become an MP_UNREACH
        let mut attrs_buf = BytesMut::new();
        for a in &update.attributes {
            if a.type_code() == attrs::code::ORIGIN {
                attrs_buf.put_u8(0x40);
                attrs_buf.put_u8(attrs::code::ORIGIN);
                attrs_buf.put_u8(2);
                attrs_buf.put_u16(0);
            } else {
                a.encode(&mut attrs_buf);
            }
        }
        let mut body = BytesMut::new();
        body.put_u16(0);
        body.put_u16(attrs_buf.len() as u16);
        body.put_slice(&attrs_buf);
        let mut body = body.freeze();
        let lenient = decode_update_lenient(&mut body).unwrap();
        assert!(lenient.treated_as_withdraw());
        let Some(PathAttribute::MpUnreach(mp)) = lenient
            .update
            .attributes
            .iter()
            .find(|a| matches!(a, PathAttribute::MpUnreach(_)))
        else {
            panic!("expected MP_UNREACH");
        };
        assert_eq!(mp.withdrawn, vec!["2a00:1450::/32".parse().unwrap()]);
        assert!(!lenient
            .update
            .attributes
            .iter()
            .any(|a| matches!(a, PathAttribute::MpReach(_))));
    }

    #[test]
    fn framing_errors_still_fail() {
        // attribute length runs past the block: unrecoverable
        let mut body = BytesMut::new();
        body.put_u16(0); // no withdrawn
        body.put_u16(3); // attr block of 3 bytes
        body.put_u8(0x40);
        body.put_u8(attrs::code::ORIGIN);
        body.put_u8(200); // claims 200 value bytes
        let mut body = body.freeze();
        assert!(decode_update_lenient(&mut body).is_err());
    }

    #[test]
    fn unknown_asn_is_not_affected() {
        // sanity: Asn import used
        assert_eq!(Asn(1).value(), 1);
    }
}
