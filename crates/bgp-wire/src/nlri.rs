//! NLRI prefix encoding (RFC 4271 §4.3: length byte + minimal octets).

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut};

use bgp_model::prefix::{Afi, Prefix};

use crate::error::{ensure, WireError};

/// Encode one prefix: 1 length byte + ceil(len/8) address octets.
pub fn encode_prefix(prefix: &Prefix, out: &mut impl BufMut) {
    out.put_u8(prefix.len());
    let nbytes = (prefix.len() as usize).div_ceil(8);
    match prefix.addr() {
        IpAddr::V4(a) => out.put_slice(&a.octets()[..nbytes]),
        IpAddr::V6(a) => out.put_slice(&a.octets()[..nbytes]),
    }
}

/// Decode one prefix of the given family.
pub fn decode_prefix(buf: &mut impl Buf, afi: Afi) -> Result<Prefix, WireError> {
    ensure(buf, 1, "NLRI length byte")?;
    let len = buf.get_u8();
    if len > afi.max_len() {
        return Err(WireError::BadPrefixLength(len));
    }
    let nbytes = (len as usize).div_ceil(8);
    ensure(buf, nbytes, "NLRI prefix octets")?;
    let addr = match afi {
        Afi::Ipv4 => {
            let mut oct = [0u8; 4];
            buf.copy_to_slice(&mut oct[..nbytes]);
            IpAddr::V4(Ipv4Addr::from(oct))
        }
        Afi::Ipv6 => {
            let mut oct = [0u8; 16];
            buf.copy_to_slice(&mut oct[..nbytes]);
            IpAddr::V6(Ipv6Addr::from(oct))
        }
    };
    // Constructor re-canonicalizes; trailing bits inside the last octet that
    // fall beyond `len` are zeroed, as RFC 4271 requires receivers to ignore.
    Prefix::new(addr, len).map_err(|_| WireError::BadPrefixLength(len))
}

/// Decode a run of prefixes until the buffer is exhausted.
pub fn decode_prefixes(buf: &mut impl Buf, afi: Afi) -> Result<Vec<Prefix>, WireError> {
    let mut out = Vec::new();
    while buf.has_remaining() {
        out.push(decode_prefix(buf, afi)?);
    }
    Ok(out)
}

/// Encode a run of prefixes.
pub fn encode_prefixes(prefixes: &[Prefix], out: &mut impl BufMut) {
    for p in prefixes {
        encode_prefix(p, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip(s: &str) {
        let p: Prefix = s.parse().unwrap();
        let mut buf = BytesMut::new();
        encode_prefix(&p, &mut buf);
        let mut rd = buf.freeze();
        let q = decode_prefix(&mut rd, p.afi()).unwrap();
        assert_eq!(q, p, "roundtrip {s}");
        assert!(!rd.has_remaining());
    }

    #[test]
    fn prefix_roundtrips() {
        for s in [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "203.0.113.0/24",
            "203.0.113.128/25",
            "192.0.2.1/32",
            "::/0",
            "2001:db8::/32",
            "2001:db8:1:2::/64",
            "2001:db8::1/128",
        ] {
            roundtrip(s);
        }
    }

    #[test]
    fn minimal_octets() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut buf = BytesMut::new();
        encode_prefix(&p, &mut buf);
        assert_eq!(buf.len(), 2); // 1 length byte + 1 address octet
        let p: Prefix = "203.0.113.0/24".parse().unwrap();
        let mut buf = BytesMut::new();
        encode_prefix(&p, &mut buf);
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn rejects_overlong_length() {
        let raw = [33u8, 1, 2, 3, 4, 5];
        let mut buf = &raw[..];
        assert_eq!(
            decode_prefix(&mut buf, Afi::Ipv4),
            Err(WireError::BadPrefixLength(33))
        );
    }

    #[test]
    fn truncated_prefix_errors() {
        let raw = [24u8, 1]; // /24 promises 3 octets, provides 1
        let mut buf = &raw[..];
        assert!(matches!(
            decode_prefix(&mut buf, Afi::Ipv4),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn nonzero_trailing_bits_are_masked() {
        // /23 with the 24th bit set in the third octet: must canonicalize
        let raw = [23u8, 203, 0, 113];
        let mut buf = &raw[..];
        let p = decode_prefix(&mut buf, Afi::Ipv4).unwrap();
        assert_eq!(p.to_string(), "203.0.112.0/23");
    }

    #[test]
    fn run_decoding() {
        let mut buf = BytesMut::new();
        let ps: Vec<Prefix> = ["10.0.0.0/8", "203.0.113.0/24", "198.51.100.0/24"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        encode_prefixes(&ps, &mut buf);
        let mut rd = buf.freeze();
        let back = decode_prefixes(&mut rd, Afi::Ipv4).unwrap();
        assert_eq!(back, ps);
    }
}
