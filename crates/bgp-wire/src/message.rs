//! BGP-4 messages (RFC 4271 §4): header, OPEN, UPDATE, NOTIFICATION,
//! KEEPALIVE, with the capabilities IXP route servers negotiate
//! (4-octet ASNs — RFC 6793; multiprotocol IPv6 — RFC 4760).

use std::net::Ipv4Addr;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use bgp_model::asn::{Asn, AS_TRANS};
use bgp_model::prefix::{Afi, Prefix};

use crate::attrs::{self, PathAttribute};
use crate::error::{ensure, WireError};
use crate::nlri;

/// Fixed header size (16-byte marker + 2 length + 1 type).
pub const HEADER_LEN: usize = 19;
/// Maximum BGP message size (RFC 4271; we do not implement RFC 8654).
pub const MAX_MESSAGE_LEN: usize = 4096;

/// Message type byte values.
pub mod msg_type {
    /// OPEN.
    pub const OPEN: u8 = 1;
    /// UPDATE.
    pub const UPDATE: u8 = 2;
    /// NOTIFICATION.
    pub const NOTIFICATION: u8 = 3;
    /// KEEPALIVE.
    pub const KEEPALIVE: u8 = 4;
    /// ROUTE-REFRESH (RFC 2918).
    pub const ROUTE_REFRESH: u8 = 5;
}

/// A capability advertised in OPEN (RFC 5492 optional parameter 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capability {
    /// RFC 4760 multiprotocol: AFI/SAFI pair (SAFI always 1 here).
    Multiprotocol(Afi),
    /// RFC 6793 four-octet AS number.
    FourOctetAs(Asn),
    /// RFC 7911 additional paths would go here; kept opaque.
    Unknown {
        /// Capability code.
        code: u8,
        /// Raw capability value.
        value: Bytes,
    },
}

/// OPEN message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMessage {
    /// Sender ASN. Encoded as AS_TRANS in the 2-byte field when >65535.
    pub asn: Asn,
    /// Proposed hold time in seconds (0 or ≥3 per RFC 4271).
    pub hold_time: u16,
    /// BGP identifier.
    pub bgp_id: Ipv4Addr,
    /// Capabilities.
    pub capabilities: Vec<Capability>,
}

impl OpenMessage {
    /// A typical route-server OPEN: 4-octet AS + multiprotocol for both
    /// families.
    pub fn route_server(asn: Asn, bgp_id: Ipv4Addr, hold_time: u16) -> Self {
        OpenMessage {
            asn,
            hold_time,
            bgp_id,
            capabilities: vec![
                Capability::FourOctetAs(asn),
                Capability::Multiprotocol(Afi::Ipv4),
                Capability::Multiprotocol(Afi::Ipv6),
            ],
        }
    }

    /// The effective ASN after capability processing: prefer the 4-octet
    /// capability value, fall back to the 2-byte field.
    pub fn effective_asn(&self) -> Asn {
        self.capabilities
            .iter()
            .find_map(|c| match c {
                Capability::FourOctetAs(a) => Some(*a),
                _ => None,
            })
            .unwrap_or(self.asn)
    }

    /// True if the peer advertised multiprotocol support for `afi`.
    pub fn supports(&self, afi: Afi) -> bool {
        self.capabilities
            .iter()
            .any(|c| matches!(c, Capability::Multiprotocol(a) if *a == afi))
    }
}

/// UPDATE message: withdrawn IPv4 routes, path attributes, IPv4 NLRI.
/// IPv6 reachability rides inside MP_REACH/MP_UNREACH attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UpdateMessage {
    /// Withdrawn IPv4 prefixes.
    pub withdrawn: Vec<Prefix>,
    /// Path attributes.
    pub attributes: Vec<PathAttribute>,
    /// Announced IPv4 prefixes.
    pub nlri: Vec<Prefix>,
}

impl UpdateMessage {
    /// An end-of-RIB marker for the given family (RFC 4724 §2).
    pub fn end_of_rib(afi: Afi) -> Self {
        match afi {
            Afi::Ipv4 => UpdateMessage::default(),
            Afi::Ipv6 => UpdateMessage {
                withdrawn: vec![],
                attributes: vec![PathAttribute::MpUnreach(attrs::MpUnreach {
                    afi: Afi::Ipv6,
                    withdrawn: vec![],
                })],
                nlri: vec![],
            },
        }
    }

    /// True if this is an end-of-RIB marker.
    pub fn is_end_of_rib(&self) -> bool {
        if !self.withdrawn.is_empty() || !self.nlri.is_empty() {
            return false;
        }
        match self.attributes.as_slice() {
            [] => true,
            [PathAttribute::MpUnreach(mp)] => mp.withdrawn.is_empty(),
            _ => false,
        }
    }

    /// Find an attribute by type code.
    pub fn attribute(&self, code: u8) -> Option<&PathAttribute> {
        self.attributes.iter().find(|a| a.type_code() == code)
    }
}

/// NOTIFICATION error codes (RFC 4271 §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotificationCode {
    /// Message header error.
    MessageHeader,
    /// OPEN message error.
    OpenMessage,
    /// UPDATE message error.
    UpdateMessage,
    /// Hold timer expired.
    HoldTimerExpired,
    /// FSM error.
    FiniteStateMachine,
    /// Administrative cease (RFC 4486 subcodes).
    Cease,
}

impl NotificationCode {
    /// Wire code.
    pub const fn code(self) -> u8 {
        match self {
            NotificationCode::MessageHeader => 1,
            NotificationCode::OpenMessage => 2,
            NotificationCode::UpdateMessage => 3,
            NotificationCode::HoldTimerExpired => 4,
            NotificationCode::FiniteStateMachine => 5,
            NotificationCode::Cease => 6,
        }
    }

    /// From wire code.
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(NotificationCode::MessageHeader),
            2 => Some(NotificationCode::OpenMessage),
            3 => Some(NotificationCode::UpdateMessage),
            4 => Some(NotificationCode::HoldTimerExpired),
            5 => Some(NotificationCode::FiniteStateMachine),
            6 => Some(NotificationCode::Cease),
            _ => None,
        }
    }
}

/// NOTIFICATION message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMessage {
    /// Major error code.
    pub code: NotificationCode,
    /// Subcode (error-specific).
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Bytes,
}

impl NotificationMessage {
    /// A cease with no data.
    pub fn cease(subcode: u8) -> Self {
        NotificationMessage {
            code: NotificationCode::Cease,
            subcode,
            data: Bytes::new(),
        }
    }
}

/// Any BGP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// OPEN.
    Open(OpenMessage),
    /// UPDATE.
    Update(UpdateMessage),
    /// NOTIFICATION.
    Notification(NotificationMessage),
    /// KEEPALIVE.
    Keepalive,
    /// ROUTE-REFRESH for one address family (RFC 2918; SAFI fixed to
    /// unicast). The receiver re-advertises its Adj-RIB-Out.
    RouteRefresh(Afi),
}

impl Message {
    /// Encode to a complete wire message with header.
    pub fn encode(&self) -> Result<Bytes, WireError> {
        let mut body = BytesMut::new();
        let typ = match self {
            Message::Open(open) => {
                body.put_u8(4); // version
                let as2 = if open.asn.is_16bit() {
                    open.asn.value() as u16
                } else {
                    AS_TRANS.value() as u16
                };
                body.put_u16(as2);
                body.put_u16(open.hold_time);
                body.put_slice(&open.bgp_id.octets());
                // optional params: one capabilities parameter
                let mut caps = BytesMut::new();
                for cap in &open.capabilities {
                    match cap {
                        Capability::Multiprotocol(afi) => {
                            caps.put_u8(1);
                            caps.put_u8(4);
                            caps.put_u16(afi.code());
                            caps.put_u8(0); // reserved
                            caps.put_u8(1); // SAFI unicast
                        }
                        Capability::FourOctetAs(asn) => {
                            caps.put_u8(65);
                            caps.put_u8(4);
                            caps.put_u32(asn.value());
                        }
                        Capability::Unknown { code, value } => {
                            if value.len() > 255 {
                                return Err(WireError::ValueTooLarge("capability"));
                            }
                            caps.put_u8(*code);
                            caps.put_u8(value.len() as u8);
                            caps.put_slice(value);
                        }
                    }
                }
                if caps.len() > 253 {
                    return Err(WireError::ValueTooLarge("capabilities parameter"));
                }
                if caps.is_empty() {
                    body.put_u8(0);
                } else {
                    body.put_u8(caps.len() as u8 + 2); // opt params length
                    body.put_u8(2); // param type: capabilities
                    body.put_u8(caps.len() as u8);
                    body.put_slice(&caps);
                }
                msg_type::OPEN
            }
            Message::Update(update) => {
                let mut wd = BytesMut::new();
                nlri::encode_prefixes(&update.withdrawn, &mut wd);
                if wd.len() > u16::MAX as usize {
                    return Err(WireError::ValueTooLarge("withdrawn routes"));
                }
                body.put_u16(wd.len() as u16);
                body.put_slice(&wd);
                let ab = attrs::encode_attributes(&update.attributes);
                if ab.len() > u16::MAX as usize {
                    return Err(WireError::ValueTooLarge("path attributes"));
                }
                body.put_u16(ab.len() as u16);
                body.put_slice(&ab);
                nlri::encode_prefixes(&update.nlri, &mut body);
                msg_type::UPDATE
            }
            Message::Notification(n) => {
                body.put_u8(n.code.code());
                body.put_u8(n.subcode);
                body.put_slice(&n.data);
                msg_type::NOTIFICATION
            }
            Message::Keepalive => msg_type::KEEPALIVE,
            Message::RouteRefresh(afi) => {
                body.put_u16(afi.code());
                body.put_u8(0); // reserved
                body.put_u8(1); // SAFI unicast
                msg_type::ROUTE_REFRESH
            }
        };
        let total = HEADER_LEN + body.len();
        if total > MAX_MESSAGE_LEN {
            return Err(WireError::ValueTooLarge("message exceeds 4096 bytes"));
        }
        let mut out = BytesMut::with_capacity(total);
        out.put_slice(&[0xFF; 16]);
        out.put_u16(total as u16);
        out.put_u8(typ);
        out.put_slice(&body);
        let frame = out.freeze();
        let m = crate::metrics::handles();
        m.msgs_encoded.inc();
        m.bytes_encoded.add(frame.len() as u64);
        Ok(frame)
    }

    /// Decode one message from the front of `buf`, consuming exactly its
    /// bytes. Returns `None` (consuming nothing) if a full message is not
    /// yet available — suitable for use on a streaming receive buffer.
    pub fn decode(buf: &mut BytesMut) -> Result<Option<Message>, WireError> {
        let before = buf.len();
        let result = Self::decode_inner(buf);
        let m = crate::metrics::handles();
        match &result {
            Ok(Some(_)) => {
                m.msgs_decoded.inc();
                m.bytes_decoded.add((before - buf.len()) as u64);
            }
            Ok(None) => {}
            Err(_) => m.decode_errors.inc(),
        }
        result
    }

    fn decode_inner(buf: &mut BytesMut) -> Result<Option<Message>, WireError> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if buf[..16].iter().any(|&b| b != 0xFF) {
            return Err(WireError::BadMarker);
        }
        let total = u16::from_be_bytes([buf[16], buf[17]]) as usize;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&total) {
            return Err(WireError::BadLength(total as u16));
        }
        if buf.len() < total {
            return Ok(None);
        }
        let frame = buf.split_to(total).freeze();
        let typ = frame[18];
        let mut body = frame.slice(HEADER_LEN..);
        let msg = match typ {
            msg_type::OPEN => Message::Open(Self::decode_open(&mut body)?),
            msg_type::UPDATE => Message::Update(Self::decode_update(&mut body)?),
            msg_type::NOTIFICATION => {
                ensure(&body, 2, "notification code/subcode")?;
                let code = body.get_u8();
                let code =
                    NotificationCode::from_code(code).ok_or(WireError::UnknownMessageType(code))?;
                let subcode = body.get_u8();
                let data = body.copy_to_bytes(body.remaining());
                Message::Notification(NotificationMessage {
                    code,
                    subcode,
                    data,
                })
            }
            msg_type::KEEPALIVE => {
                if body.has_remaining() {
                    return Err(WireError::BadLength(total as u16));
                }
                Message::Keepalive
            }
            msg_type::ROUTE_REFRESH => {
                ensure(&body, 4, "route refresh body")?;
                let afi = Afi::from_code(body.get_u16())
                    .ok_or(WireError::BadCapability("route refresh AFI"))?;
                body.advance(2); // reserved + SAFI
                Message::RouteRefresh(afi)
            }
            other => return Err(WireError::UnknownMessageType(other)),
        };
        Ok(Some(msg))
    }

    fn decode_open(body: &mut Bytes) -> Result<OpenMessage, WireError> {
        ensure(body, 10, "OPEN fixed part")?;
        let version = body.get_u8();
        if version != 4 {
            return Err(WireError::UnsupportedVersion(version));
        }
        let as2 = body.get_u16();
        let hold_time = body.get_u16();
        let mut id = [0u8; 4];
        body.copy_to_slice(&mut id);
        let opt_len = body.get_u8() as usize;
        ensure(body, opt_len, "OPEN optional parameters")?;
        let mut params = body.split_to(opt_len);
        let mut capabilities = Vec::new();
        while params.has_remaining() {
            ensure(&params, 2, "optional parameter header")?;
            let ptype = params.get_u8();
            let plen = params.get_u8() as usize;
            ensure(&params, plen, "optional parameter body")?;
            let mut pbody = params.split_to(plen);
            if ptype != 2 {
                continue; // non-capability parameters ignored
            }
            while pbody.has_remaining() {
                ensure(&pbody, 2, "capability header")?;
                let code = pbody.get_u8();
                let clen = pbody.get_u8() as usize;
                ensure(&pbody, clen, "capability body")?;
                let mut cval = pbody.split_to(clen);
                match code {
                    1 => {
                        if clen != 4 {
                            return Err(WireError::BadCapability("MP length"));
                        }
                        let afi = Afi::from_code(cval.get_u16());
                        cval.advance(2);
                        if let Some(afi) = afi {
                            capabilities.push(Capability::Multiprotocol(afi));
                        }
                    }
                    65 => {
                        if clen != 4 {
                            return Err(WireError::BadCapability("4-octet AS length"));
                        }
                        capabilities.push(Capability::FourOctetAs(Asn(cval.get_u32())));
                    }
                    _ => capabilities.push(Capability::Unknown {
                        code,
                        value: cval.copy_to_bytes(cval.remaining()),
                    }),
                }
            }
        }
        Ok(OpenMessage {
            asn: Asn(as2 as u32),
            hold_time,
            bgp_id: Ipv4Addr::from(id),
            capabilities,
        })
    }

    fn decode_update(body: &mut Bytes) -> Result<UpdateMessage, WireError> {
        ensure(body, 2, "withdrawn routes length")?;
        let wd_len = body.get_u16() as usize;
        ensure(body, wd_len, "withdrawn routes")?;
        let mut wd = body.split_to(wd_len);
        let withdrawn = nlri::decode_prefixes(&mut wd, Afi::Ipv4)?;
        ensure(body, 2, "path attributes length")?;
        let attr_len = body.get_u16() as usize;
        let attributes = attrs::decode_attributes(body, attr_len)?;
        let nlri = nlri::decode_prefixes(body, Afi::Ipv4)?;
        Ok(UpdateMessage {
            withdrawn,
            attributes,
            nlri,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::aspath::AsPath;
    use bgp_model::community::StandardCommunity;
    use bgp_model::route::Origin;

    fn roundtrip(msg: Message) -> Message {
        let wire = msg.encode().unwrap();
        let mut buf = BytesMut::from(&wire[..]);
        let back = Message::decode(&mut buf).unwrap().unwrap();
        assert!(buf.is_empty());
        back
    }

    #[test]
    fn keepalive_roundtrip() {
        assert_eq!(roundtrip(Message::Keepalive), Message::Keepalive);
        let wire = Message::Keepalive.encode().unwrap();
        assert_eq!(wire.len(), HEADER_LEN);
    }

    #[test]
    fn open_roundtrip_16bit_asn() {
        let open = OpenMessage::route_server(Asn(6695), "192.0.2.1".parse().unwrap(), 90);
        let back = roundtrip(Message::Open(open.clone()));
        match back {
            Message::Open(o) => {
                assert_eq!(o.effective_asn(), Asn(6695));
                assert_eq!(o.asn, Asn(6695));
                assert_eq!(o.hold_time, 90);
                assert!(o.supports(Afi::Ipv4));
                assert!(o.supports(Afi::Ipv6));
            }
            m => panic!("wrong message {m:?}"),
        }
    }

    #[test]
    fn open_uses_as_trans_for_4byte_asn() {
        let open = OpenMessage::route_server(Asn(263075), "192.0.2.1".parse().unwrap(), 90);
        let back = roundtrip(Message::Open(open));
        match back {
            Message::Open(o) => {
                assert_eq!(o.asn, AS_TRANS); // 2-byte field
                assert_eq!(o.effective_asn(), Asn(263075)); // capability wins
            }
            m => panic!("wrong message {m:?}"),
        }
    }

    #[test]
    fn update_roundtrip_v4() {
        let update = UpdateMessage {
            withdrawn: vec!["198.51.100.0/24".parse().unwrap()],
            attributes: vec![
                PathAttribute::Origin(Origin::Igp),
                PathAttribute::AsPath(AsPath::from_sequence([Asn(64496), Asn(15169)])),
                PathAttribute::NextHop("198.32.0.7".parse().unwrap()),
                PathAttribute::Communities(vec![StandardCommunity::from_parts(0, 6939)]),
            ],
            nlri: vec![
                "203.0.113.0/24".parse().unwrap(),
                "203.0.112.0/23".parse().unwrap(),
            ],
        };
        assert_eq!(
            roundtrip(Message::Update(update.clone())),
            Message::Update(update)
        );
    }

    #[test]
    fn update_roundtrip_v6_mp_reach() {
        let update = UpdateMessage {
            withdrawn: vec![],
            attributes: vec![
                PathAttribute::Origin(Origin::Igp),
                PathAttribute::AsPath(AsPath::from_sequence([Asn(64496)])),
                PathAttribute::MpReach(attrs::MpReach {
                    afi: Afi::Ipv6,
                    next_hop: "2001:7f8::1".parse().unwrap(),
                    nlri: vec!["2001:db8::/32".parse().unwrap()],
                }),
            ],
            nlri: vec![],
        };
        assert_eq!(
            roundtrip(Message::Update(update.clone())),
            Message::Update(update)
        );
    }

    #[test]
    fn end_of_rib_markers() {
        let v4 = UpdateMessage::end_of_rib(Afi::Ipv4);
        assert!(v4.is_end_of_rib());
        let v6 = UpdateMessage::end_of_rib(Afi::Ipv6);
        assert!(v6.is_end_of_rib());
        assert_eq!(roundtrip(Message::Update(v6.clone())), Message::Update(v6));
        let real = UpdateMessage {
            nlri: vec!["203.0.113.0/24".parse().unwrap()],
            ..Default::default()
        };
        assert!(!real.is_end_of_rib());
    }

    #[test]
    fn route_refresh_roundtrip() {
        for afi in [Afi::Ipv4, Afi::Ipv6] {
            assert_eq!(
                roundtrip(Message::RouteRefresh(afi)),
                Message::RouteRefresh(afi)
            );
        }
        let wire = Message::RouteRefresh(Afi::Ipv6).encode().unwrap();
        assert_eq!(wire.len(), HEADER_LEN + 4);
        // unknown AFI rejected
        let mut raw = BytesMut::from(&wire[..]);
        raw[HEADER_LEN] = 0;
        raw[HEADER_LEN + 1] = 77;
        assert!(Message::decode(&mut raw).is_err());
    }

    #[test]
    fn notification_roundtrip() {
        let n = NotificationMessage {
            code: NotificationCode::Cease,
            subcode: 2, // administrative shutdown
            data: Bytes::from_static(b"bye"),
        };
        assert_eq!(
            roundtrip(Message::Notification(n.clone())),
            Message::Notification(n)
        );
    }

    #[test]
    fn streaming_decode_partial_then_complete() {
        let wire = Message::Keepalive.encode().unwrap();
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&wire[..10]);
        assert_eq!(Message::decode(&mut buf).unwrap(), None);
        assert_eq!(buf.len(), 10); // nothing consumed
        buf.extend_from_slice(&wire[10..]);
        assert_eq!(Message::decode(&mut buf).unwrap(), Some(Message::Keepalive));
        assert!(buf.is_empty());
    }

    #[test]
    fn streaming_decode_two_messages() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&Message::Keepalive.encode().unwrap());
        buf.extend_from_slice(&Message::Keepalive.encode().unwrap());
        assert!(Message::decode(&mut buf).unwrap().is_some());
        assert!(Message::decode(&mut buf).unwrap().is_some());
        assert_eq!(Message::decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn bad_marker_rejected() {
        let wire = Message::Keepalive.encode().unwrap();
        let mut raw = BytesMut::from(&wire[..]);
        raw[0] = 0;
        assert_eq!(Message::decode(&mut raw), Err(WireError::BadMarker));
    }

    #[test]
    fn bad_length_rejected() {
        let wire = Message::Keepalive.encode().unwrap();
        let mut raw = BytesMut::from(&wire[..]);
        raw[16] = 0xFF;
        raw[17] = 0xFF; // 65535 > 4096
        assert!(matches!(
            Message::decode(&mut raw),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let wire = Message::Keepalive.encode().unwrap();
        let mut raw = BytesMut::from(&wire[..]);
        raw[18] = 99;
        assert_eq!(
            Message::decode(&mut raw),
            Err(WireError::UnknownMessageType(99))
        );
    }

    #[test]
    fn oversized_update_rejected_at_encode() {
        // ~1000 prefixes of 4 bytes each exceeds 4096
        let nlri: Vec<Prefix> = (0..1500u32)
            .map(|i| {
                let a = 1 + (i >> 16) as u8;
                let b = (i >> 8) as u8;
                let c = i as u8;
                Prefix::v4(a, b, c, 0, 24).unwrap()
            })
            .collect();
        let update = UpdateMessage {
            nlri,
            ..Default::default()
        };
        assert_eq!(
            Message::Update(update).encode(),
            Err(WireError::ValueTooLarge("message exceeds 4096 bytes"))
        );
    }
}
