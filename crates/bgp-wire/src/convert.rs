//! Conversions between the wire [`UpdateMessage`] and the model
//! [`Route`].
//!
//! One UPDATE can announce many prefixes sharing one attribute set; the
//! decomposition here produces one [`Route`] per announced prefix, which is
//! the granularity the route server and the paper's snapshots use.

use std::net::IpAddr;

use bgp_model::prefix::{Afi, Prefix};
use bgp_model::route::Route;

use crate::attrs::{code, MpReach, PathAttribute};
use crate::error::WireError;
use crate::message::UpdateMessage;

/// What one UPDATE message means, in model terms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdateContent {
    /// Routes announced (IPv4 NLRI and MP_REACH combined).
    pub announced: Vec<Route>,
    /// Prefixes withdrawn (IPv4 withdrawn field and MP_UNREACH combined).
    pub withdrawn: Vec<Prefix>,
}

/// Decompose an UPDATE into announced routes and withdrawn prefixes.
///
/// Returns an error if announcements are present without the mandatory
/// ORIGIN / AS_PATH / next-hop attributes (RFC 4271 §6.3).
pub fn update_to_routes(update: &UpdateMessage) -> Result<UpdateContent, WireError> {
    let mut content = UpdateContent {
        announced: Vec::new(),
        withdrawn: update.withdrawn.clone(),
    };

    let mut origin = None;
    let mut as_path = None;
    let mut next_hop_v4 = None;
    let mut med = None;
    let mut standard = Vec::new();
    let mut extended = Vec::new();
    let mut large = Vec::new();
    let mut mp_reach: Option<&MpReach> = None;

    for attr in &update.attributes {
        match attr {
            PathAttribute::Origin(o) => origin = Some(*o),
            PathAttribute::AsPath(p) => as_path = Some(p.clone()),
            PathAttribute::NextHop(nh) => next_hop_v4 = Some(IpAddr::V4(*nh)),
            PathAttribute::Med(m) => med = Some(*m),
            PathAttribute::Communities(cs) => standard = cs.clone(),
            PathAttribute::ExtendedCommunities(cs) => extended = cs.clone(),
            PathAttribute::LargeCommunities(cs) => large = cs.clone(),
            PathAttribute::MpReach(mp) => mp_reach = Some(mp),
            PathAttribute::MpUnreach(mp) => content.withdrawn.extend(mp.withdrawn.iter().copied()),
            _ => {}
        }
    }

    let announcements: Vec<(Prefix, IpAddr)> = update
        .nlri
        .iter()
        .map(|p| (*p, next_hop_v4.unwrap_or(IpAddr::V4([0, 0, 0, 0].into()))))
        .chain(
            mp_reach
                .into_iter()
                .flat_map(|mp| mp.nlri.iter().map(move |p| (*p, mp.next_hop))),
        )
        .collect();

    if !announcements.is_empty() {
        let origin = origin.ok_or(WireError::BadAttribute {
            code: code::ORIGIN,
            reason: "missing mandatory ORIGIN",
        })?;
        let as_path = as_path.ok_or(WireError::BadAttribute {
            code: code::AS_PATH,
            reason: "missing mandatory AS_PATH",
        })?;
        if !update.nlri.is_empty() && next_hop_v4.is_none() {
            return Err(WireError::BadAttribute {
                code: code::NEXT_HOP,
                reason: "missing mandatory NEXT_HOP for IPv4 NLRI",
            });
        }
        for (prefix, next_hop) in announcements {
            let mut r = Route::builder(prefix, next_hop)
                .as_path(as_path.clone())
                .origin(origin)
                .standards(standard.iter().copied())
                .build();
            r.extended_communities = extended.clone();
            r.large_communities = large.clone();
            r.med = med;
            content.announced.push(r);
        }
    }

    Ok(content)
}

/// Build an UPDATE announcing a batch of routes that share an attribute
/// set. All routes must have the same AFI, path, origin, MED, next hop and
/// communities as `routes[0]`; callers group routes accordingly
/// (see [`routes_to_updates`] for the grouping front-end).
pub fn routes_to_update(routes: &[Route]) -> UpdateMessage {
    let Some(first) = routes.first() else {
        return UpdateMessage::default();
    };
    let mut attributes = vec![
        PathAttribute::Origin(first.origin),
        PathAttribute::AsPath(first.as_path.clone()),
    ];
    if let Some(med) = first.med {
        attributes.push(PathAttribute::Med(med));
    }
    if !first.standard_communities.is_empty() {
        attributes.push(PathAttribute::Communities(
            first.standard_communities.clone(),
        ));
    }
    if !first.extended_communities.is_empty() {
        attributes.push(PathAttribute::ExtendedCommunities(
            first.extended_communities.clone(),
        ));
    }
    if !first.large_communities.is_empty() {
        attributes.push(PathAttribute::LargeCommunities(
            first.large_communities.clone(),
        ));
    }
    match (first.afi(), first.next_hop) {
        (Afi::Ipv4, IpAddr::V4(nh)) => {
            attributes.push(PathAttribute::NextHop(nh));
            UpdateMessage {
                withdrawn: vec![],
                attributes,
                nlri: routes.iter().map(|r| r.prefix).collect(),
            }
        }
        _ => {
            attributes.push(PathAttribute::MpReach(MpReach {
                afi: first.afi(),
                next_hop: first.next_hop,
                nlri: routes.iter().map(|r| r.prefix).collect(),
            }));
            UpdateMessage {
                withdrawn: vec![],
                attributes,
                nlri: vec![],
            }
        }
    }
}

/// Group arbitrary routes by shared attribute set and emit one UPDATE per
/// group, each within the 4096-byte limit (NLRI split into chunks).
pub fn routes_to_updates(routes: &[Route]) -> Vec<UpdateMessage> {
    use std::collections::BTreeMap;
    // Group key: everything except the prefix. Ordering via the serialized
    // display strings keeps the map deterministic without a custom Ord.
    let mut groups: BTreeMap<String, Vec<&Route>> = BTreeMap::new();
    for r in routes {
        let key = format!(
            "{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            r.afi(),
            r.next_hop,
            r.as_path,
            r.origin,
            r.med,
            r.standard_communities,
            r.extended_communities,
            r.large_communities,
        );
        groups.entry(key).or_default().push(r);
    }
    let mut updates = Vec::new();
    for group in groups.values() {
        // Conservative chunking: budget ~2000 bytes of NLRI per UPDATE
        // (prefix encodings are ≤17 bytes), leaving ample room for
        // attributes within 4096.
        let chunk_size = 100usize;
        for chunk in group.chunks(chunk_size) {
            let owned: Vec<Route> = chunk.iter().map(|r| (*r).clone()).collect();
            updates.push(routes_to_update(&owned));
        }
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use bgp_model::community::{LargeCommunity, StandardCommunity};
    use bgp_model::prelude::Asn;
    use bgp_model::route::Origin;

    fn v4_route(pfx: &str) -> Route {
        Route::builder(pfx.parse().unwrap(), "198.32.0.7".parse().unwrap())
            .path([64496, 15169])
            .origin(Origin::Igp)
            .standard(StandardCommunity::from_parts(0, 6939))
            .build()
    }

    #[test]
    fn route_update_roundtrip_v4() {
        let r = v4_route("203.0.113.0/24");
        let update = routes_to_update(std::slice::from_ref(&r));
        let content = update_to_routes(&update).unwrap();
        assert_eq!(content.announced, vec![r]);
        assert!(content.withdrawn.is_empty());
    }

    #[test]
    fn route_update_roundtrip_v6() {
        let mut r = Route::builder(
            "2001:db8:42::/48".parse().unwrap(),
            "2001:7f8::6939:1".parse().unwrap(),
        )
        .path([6939, 44])
        .origin(Origin::Incomplete)
        .build();
        r.large_communities = vec![LargeCommunity::new(26162, 0, 6939)];
        r.med = Some(50);
        let update = routes_to_update(std::slice::from_ref(&r));
        assert!(update.nlri.is_empty(), "v6 rides in MP_REACH");
        let content = update_to_routes(&update).unwrap();
        assert_eq!(content.announced, vec![r]);
    }

    #[test]
    fn shared_attributes_one_update() {
        let routes = vec![v4_route("203.0.113.0/24"), v4_route("198.51.100.0/24")];
        let updates = routes_to_updates(&routes);
        assert_eq!(updates.len(), 1);
        let content = update_to_routes(&updates[0]).unwrap();
        assert_eq!(content.announced.len(), 2);
    }

    #[test]
    fn different_attributes_split_updates() {
        let a = v4_route("203.0.113.0/24");
        let mut b = v4_route("198.51.100.0/24");
        b.standard_communities
            .push(StandardCommunity::from_parts(6695, 1));
        let updates = routes_to_updates(&[a, b]);
        assert_eq!(updates.len(), 2);
    }

    #[test]
    fn withdraw_only_update() {
        let update = UpdateMessage {
            withdrawn: vec!["203.0.113.0/24".parse().unwrap()],
            ..Default::default()
        };
        let content = update_to_routes(&update).unwrap();
        assert!(content.announced.is_empty());
        assert_eq!(content.withdrawn.len(), 1);
    }

    #[test]
    fn missing_mandatory_attrs_rejected() {
        let update = UpdateMessage {
            nlri: vec!["203.0.113.0/24".parse().unwrap()],
            ..Default::default()
        };
        assert!(update_to_routes(&update).is_err());
    }

    #[test]
    fn large_batch_chunks_fit_wire_limit() {
        let routes: Vec<Route> = (0..500u32)
            .map(|i| {
                let b = (i >> 8) as u8;
                let c = i as u8;
                Route::builder(
                    Prefix::v4(100, b, c, 0, 24).unwrap(),
                    "198.32.0.7".parse().unwrap(),
                )
                .path([64496, 15169])
                .build()
            })
            .collect();
        let updates = routes_to_updates(&routes);
        assert!(updates.len() >= 5);
        let mut total = 0;
        for u in &updates {
            // must encode within the 4096 limit
            let wire = Message::Update(u.clone()).encode().unwrap();
            assert!(wire.len() <= 4096);
            total += update_to_routes(u).unwrap().announced.len();
        }
        assert_eq!(total, 500);
    }

    #[test]
    fn as_path_asn_preserved() {
        let r = v4_route("203.0.113.0/24");
        let update = routes_to_update(std::slice::from_ref(&r));
        let content = update_to_routes(&update).unwrap();
        assert_eq!(content.announced[0].as_path.first_asn(), Some(Asn(64496)));
    }
}
