//! MRT TABLE_DUMP_V2-style RIB snapshots (RFC 6396, subset).
//!
//! The paper releases its twelve-week dataset as snapshot files; we persist
//! route-server snapshots in the same spirit using the MRT RIB dump
//! framing: one PEER_INDEX_TABLE record followed by one RIB record per
//! prefix, each carrying the per-peer attribute sets. The subset implemented
//! is exactly what a route-server snapshot needs (unicast v4/v6 RIBs,
//! 4-octet ASNs); records we do not generate are rejected on read.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use bgp_model::asn::Asn;
use bgp_model::prefix::{Afi, Prefix};
use bgp_model::route::Route;

use crate::attrs;
use crate::convert;
use crate::error::{ensure, WireError};
use crate::message::UpdateMessage;
use crate::nlri;

/// MRT type for TABLE_DUMP_V2.
pub const MRT_TABLE_DUMP_V2: u16 = 13;
/// Subtype: peer index table.
pub const SUBTYPE_PEER_INDEX_TABLE: u16 = 1;
/// Subtype: IPv4 unicast RIB.
pub const SUBTYPE_RIB_IPV4_UNICAST: u16 = 2;
/// Subtype: IPv6 unicast RIB.
pub const SUBTYPE_RIB_IPV6_UNICAST: u16 = 4;

/// One peer in the index table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrtPeer {
    /// Peer ASN.
    pub asn: Asn,
    /// Peer BGP identifier.
    pub bgp_id: Ipv4Addr,
    /// Peer address on the peering LAN.
    pub addr: IpAddr,
}

/// One RIB entry: a route as announced by one peer.
#[derive(Debug, Clone, PartialEq)]
pub struct RibEntry {
    /// Index into the peer table.
    pub peer_index: u16,
    /// Time the route was originated/learned (seconds).
    pub originated: u32,
    /// The route itself.
    pub route: Route,
}

/// A complete RIB dump.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MrtRibDump {
    /// Snapshot timestamp (seconds).
    pub timestamp: u32,
    /// Peer index table.
    pub peers: Vec<MrtPeer>,
    /// RIB: per-prefix groups of entries, in writing order.
    pub rib: Vec<(Prefix, Vec<RibEntry>)>,
}

impl MrtRibDump {
    /// Build a dump from `(peer, route)` pairs, constructing the peer
    /// table and grouping entries by prefix. Peer addresses/BGP IDs are
    /// synthesized from the route next hops.
    pub fn from_routes<'a, I>(timestamp: u32, pairs: I) -> Self
    where
        I: IntoIterator<Item = (Asn, &'a Route)>,
    {
        use std::collections::BTreeMap;
        let mut peer_idx: BTreeMap<Asn, u16> = BTreeMap::new();
        let mut peers: Vec<MrtPeer> = Vec::new();
        let mut groups: BTreeMap<Prefix, Vec<RibEntry>> = BTreeMap::new();
        for (asn, route) in pairs {
            let idx = *peer_idx.entry(asn).or_insert_with(|| {
                let v = asn.value() % 0xFFFF_FF00;
                peers.push(MrtPeer {
                    asn,
                    bgp_id: Ipv4Addr::from(v.to_be_bytes()),
                    addr: route.next_hop,
                });
                (peers.len() - 1) as u16
            });
            groups.entry(route.prefix).or_default().push(RibEntry {
                peer_index: idx,
                originated: timestamp,
                route: route.clone(),
            });
        }
        MrtRibDump {
            timestamp,
            peers,
            rib: groups.into_iter().collect(),
        }
    }

    /// Flatten back to `(peer ASN, route)` pairs.
    pub fn to_routes(&self) -> Vec<(Asn, Route)> {
        let mut out = Vec::new();
        for (_, entries) in &self.rib {
            for e in entries {
                if let Some(peer) = self.peers.get(e.peer_index as usize) {
                    out.push((peer.asn, e.route.clone()));
                }
            }
        }
        out
    }

    /// Total RIB entries.
    pub fn entry_count(&self) -> usize {
        self.rib.iter().map(|(_, v)| v.len()).sum()
    }

    /// Serialize: PEER_INDEX_TABLE record, then one RIB record per prefix.
    pub fn encode(&self) -> Result<Bytes, WireError> {
        let mut out = BytesMut::new();
        // --- peer index table ---
        let mut body = BytesMut::new();
        body.put_u32(0); // collector BGP id
        body.put_u16(0); // view name length (none)
        if self.peers.len() > u16::MAX as usize {
            return Err(WireError::ValueTooLarge("peer table"));
        }
        body.put_u16(self.peers.len() as u16);
        for p in &self.peers {
            // peer type: bit 0 = ipv6 address, bit 1 = 4-byte AS (always)
            let ipv6 = matches!(p.addr, IpAddr::V6(_));
            body.put_u8(if ipv6 { 0b11 } else { 0b10 });
            body.put_slice(&p.bgp_id.octets());
            match p.addr {
                IpAddr::V4(a) => body.put_slice(&a.octets()),
                IpAddr::V6(a) => body.put_slice(&a.octets()),
            }
            body.put_u32(p.asn.value());
        }
        put_record(&mut out, self.timestamp, SUBTYPE_PEER_INDEX_TABLE, &body)?;

        // --- RIB records ---
        for (seq, (prefix, entries)) in self.rib.iter().enumerate() {
            let mut body = BytesMut::new();
            body.put_u32(seq as u32);
            nlri::encode_prefix(prefix, &mut body);
            if entries.len() > u16::MAX as usize {
                return Err(WireError::ValueTooLarge("rib entry count"));
            }
            body.put_u16(entries.len() as u16);
            for e in entries {
                body.put_u16(e.peer_index);
                body.put_u32(e.originated);
                let update = convert::routes_to_update(std::slice::from_ref(&e.route));
                let ab = attrs::encode_attributes(&update.attributes);
                if ab.len() > u16::MAX as usize {
                    return Err(WireError::ValueTooLarge("rib entry attributes"));
                }
                body.put_u16(ab.len() as u16);
                body.put_slice(&ab);
            }
            let subtype = match prefix.afi() {
                Afi::Ipv4 => SUBTYPE_RIB_IPV4_UNICAST,
                Afi::Ipv6 => SUBTYPE_RIB_IPV6_UNICAST,
            };
            put_record(&mut out, self.timestamp, subtype, &body)?;
        }
        crate::metrics::handles()
            .mrt_entries_encoded
            .add(self.entry_count() as u64);
        Ok(out.freeze())
    }

    /// Parse a dump produced by [`encode`](Self::encode).
    pub fn decode(mut buf: Bytes) -> Result<Self, WireError> {
        let mut dump = MrtRibDump::default();
        let mut first = true;
        while buf.has_remaining() {
            let (timestamp, subtype, mut body) = get_record(&mut buf)?;
            if first {
                dump.timestamp = timestamp;
                if subtype != SUBTYPE_PEER_INDEX_TABLE {
                    return Err(WireError::BadMrtRecord("first record must be peer index"));
                }
                dump.peers = decode_peer_table(&mut body)?;
                first = false;
                continue;
            }
            let afi = match subtype {
                SUBTYPE_RIB_IPV4_UNICAST => Afi::Ipv4,
                SUBTYPE_RIB_IPV6_UNICAST => Afi::Ipv6,
                _ => return Err(WireError::BadMrtRecord("unsupported subtype")),
            };
            ensure(&body, 4, "rib sequence")?;
            body.advance(4); // sequence number (regenerated on encode)
            let prefix = nlri::decode_prefix(&mut body, afi)?;
            ensure(&body, 2, "rib entry count")?;
            let count = body.get_u16() as usize;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                ensure(&body, 8, "rib entry header")?;
                let peer_index = body.get_u16();
                let originated = body.get_u32();
                let attr_len = body.get_u16() as usize;
                let attributes = attrs::decode_attributes(&mut body, attr_len)?;
                // Rebuild the route: v4 prefixes come from the record
                // header; v6 prefixes ride inside MP_REACH already.
                let update = UpdateMessage {
                    withdrawn: vec![],
                    nlri: if afi == Afi::Ipv4 {
                        vec![prefix]
                    } else {
                        vec![]
                    },
                    attributes,
                };
                let content = convert::update_to_routes(&update)?;
                let route = content
                    .announced
                    .into_iter()
                    .next()
                    .ok_or(WireError::BadMrtRecord("rib entry without route"))?;
                entries.push(RibEntry {
                    peer_index,
                    originated,
                    route,
                });
            }
            dump.rib.push((prefix, entries));
        }
        if first {
            return Err(WireError::BadMrtRecord("empty dump"));
        }
        crate::metrics::handles()
            .mrt_entries_decoded
            .add(dump.entry_count() as u64);
        Ok(dump)
    }
}

fn put_record(
    out: &mut BytesMut,
    timestamp: u32,
    subtype: u16,
    body: &[u8],
) -> Result<(), WireError> {
    if body.len() > u32::MAX as usize {
        return Err(WireError::ValueTooLarge("mrt record"));
    }
    out.put_u32(timestamp);
    out.put_u16(MRT_TABLE_DUMP_V2);
    out.put_u16(subtype);
    out.put_u32(body.len() as u32);
    out.put_slice(body);
    Ok(())
}

fn get_record(buf: &mut Bytes) -> Result<(u32, u16, Bytes), WireError> {
    ensure(buf, 12, "mrt header")?;
    let timestamp = buf.get_u32();
    let typ = buf.get_u16();
    if typ != MRT_TABLE_DUMP_V2 {
        return Err(WireError::BadMrtRecord("unsupported MRT type"));
    }
    let subtype = buf.get_u16();
    let len = buf.get_u32() as usize;
    ensure(buf, len, "mrt record body")?;
    Ok((timestamp, subtype, buf.split_to(len)))
}

fn decode_peer_table(body: &mut Bytes) -> Result<Vec<MrtPeer>, WireError> {
    ensure(body, 8, "peer index header")?;
    body.advance(4); // collector id
    let view_len = body.get_u16() as usize;
    ensure(body, view_len, "view name")?;
    body.advance(view_len);
    let count = body.get_u16() as usize;
    let mut peers = Vec::with_capacity(count);
    for _ in 0..count {
        ensure(body, 5, "peer entry")?;
        let ptype = body.get_u8();
        if ptype & 0b10 == 0 {
            return Err(WireError::BadMrtRecord("2-byte AS peers not supported"));
        }
        let mut id = [0u8; 4];
        body.copy_to_slice(&mut id);
        let addr = if ptype & 0b01 != 0 {
            ensure(body, 16, "peer v6 address")?;
            let mut o = [0u8; 16];
            body.copy_to_slice(&mut o);
            IpAddr::V6(Ipv6Addr::from(o))
        } else {
            ensure(body, 4, "peer v4 address")?;
            let mut o = [0u8; 4];
            body.copy_to_slice(&mut o);
            IpAddr::V4(Ipv4Addr::from(o))
        };
        ensure(body, 4, "peer asn")?;
        let asn = Asn(body.get_u32());
        peers.push(MrtPeer {
            asn,
            bgp_id: Ipv4Addr::from(id),
            addr,
        });
    }
    Ok(peers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_model::community::{LargeCommunity, StandardCommunity};
    use bgp_model::route::Origin;

    fn v4_route(pfx: &str, peer: u32) -> Route {
        Route::builder(pfx.parse().unwrap(), "198.32.0.7".parse().unwrap())
            .path([peer, 15169])
            .origin(Origin::Igp)
            .standard(StandardCommunity::from_parts(0, 6939))
            .build()
    }

    fn v6_route(pfx: &str, peer: u32) -> Route {
        let mut r = Route::builder(pfx.parse().unwrap(), "2001:7f8::1".parse().unwrap())
            .path([peer, 13335])
            .origin(Origin::Igp)
            .build();
        r.large_communities = vec![LargeCommunity::new(26162, 0, 6939)];
        r
    }

    #[test]
    fn dump_roundtrip_mixed_families() {
        let r1 = v4_route("203.0.113.0/24", 64496);
        let r2 = v4_route("203.0.113.0/24", 64497);
        let r3 = v4_route("198.51.100.0/24", 64496);
        let r6 = v6_route("2001:db8:42::/48", 64496);
        let dump = MrtRibDump::from_routes(
            1_633_305_600, // 4 Oct 2021
            [
                (Asn(64496), &r1),
                (Asn(64497), &r2),
                (Asn(64496), &r3),
                (Asn(64496), &r6),
            ],
        );
        assert_eq!(dump.peers.len(), 2);
        assert_eq!(dump.entry_count(), 4);
        let wire = dump.encode().unwrap();
        let back = MrtRibDump::decode(wire).unwrap();
        assert_eq!(back, dump);
    }

    #[test]
    fn to_routes_flattens() {
        let r1 = v4_route("203.0.113.0/24", 64496);
        let dump = MrtRibDump::from_routes(0, [(Asn(64496), &r1)]);
        let pairs = dump.to_routes();
        assert_eq!(pairs, vec![(Asn(64496), r1)]);
    }

    #[test]
    fn communities_survive_roundtrip() {
        let r = v4_route("203.0.113.0/24", 64496);
        let dump = MrtRibDump::from_routes(7, [(Asn(64496), &r)]);
        let back = MrtRibDump::decode(dump.encode().unwrap()).unwrap();
        let (_, route) = &back.to_routes()[0];
        assert_eq!(route.standard_communities, r.standard_communities);
    }

    #[test]
    fn empty_dump_rejected() {
        assert!(MrtRibDump::decode(Bytes::new()).is_err());
    }

    #[test]
    fn missing_peer_table_rejected() {
        // hand-craft a RIB record first
        let r = v4_route("203.0.113.0/24", 64496);
        let dump = MrtRibDump::from_routes(7, [(Asn(64496), &r)]);
        let wire = dump.encode().unwrap();
        // skip the first record (peer table)
        let mut buf = wire.clone();
        let (_, _, _) = get_record(&mut buf).unwrap();
        assert!(matches!(
            MrtRibDump::decode(buf),
            Err(WireError::BadMrtRecord(_))
        ));
    }

    #[test]
    fn truncated_dump_rejected() {
        let r = v4_route("203.0.113.0/24", 64496);
        let dump = MrtRibDump::from_routes(7, [(Asn(64496), &r)]);
        let wire = dump.encode().unwrap();
        let cut = wire.slice(..wire.len() - 3);
        assert!(MrtRibDump::decode(cut).is_err());
    }

    #[test]
    fn timestamp_preserved() {
        let r = v4_route("203.0.113.0/24", 64496);
        let dump = MrtRibDump::from_routes(1_626_652_800, [(Asn(64496), &r)]);
        let back = MrtRibDump::decode(dump.encode().unwrap()).unwrap();
        assert_eq!(back.timestamp, 1_626_652_800);
    }
}
